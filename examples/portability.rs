//! The paper's §5.4 workflow, literally: run the same benchmark binary
//! on three platforms, switching *only* a configuration file.
//!
//! ```sh
//! cargo run --release --example portability
//! ```
//!
//! Prints one line per configuration with the virtual execution time
//! and the per-module monitoring counters of node 0 — the
//! "architecture-independent and programming-model-independent tool
//! support" of §4.3.

use hamster::apps::world::{run_hamster, HamsterWorld};
use hamster::apps::BenchResult;
use hamster::core::ClusterConfig;

const CONFIGS: [(&str, &str); 3] = [
    ("smp.cfg", "nodes = 2\nplatform = smp        # dual-CPU multiprocessor"),
    ("sci.cfg", "nodes = 2\nplatform = hybrid     # SCI shared memory cluster"),
    ("eth.cfg", "nodes = 2\nplatform = swdsm      # Ethernet Beowulf"),
];

fn main() {
    let n = 128;
    let mut checksums = Vec::new();
    for (name, text) in CONFIGS {
        // In a deployment these would be files next to the binary; the
        // contents are inlined here so the example is self-contained.
        let cfg = ClusterConfig::parse(text)
            .unwrap_or_else(|e| panic!("config {name}: {e}"));
        let (_, results) = run_hamster(&cfg, |w: &HamsterWorld| {
            hamster::apps::lu::lu(w, n)
        });
        let merged = BenchResult::merge(&results);
        println!(
            "{name:<8} ({:?}): LU {n}x{n} in {:>9.4}s virtual \
             [init {:.4}s, barriers {:.4}s]",
            cfg.platform,
            merged.secs(),
            merged.phases["init"] as f64 / 1e9,
            merged.phases["bar"] as f64 / 1e9,
        );
        checksums.push(merged.checksum);
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "platforms disagree on the factorization!"
    );
    println!("\nidentical results on all three platforms ✓ (checksum {:#x})", checksums[0]);
}
