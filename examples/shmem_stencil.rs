//! A one-dimensional halo-exchange stencil written against the Cray
//! shmem model — the one-sided end of HAMSTER's programming-model
//! spectrum.
//!
//! ```sh
//! cargo run --example shmem_stencil
//! ```
//!
//! Each PE owns a strip of the domain in its symmetric heap instance
//! and *pushes* its edge cells into the neighbours' halo slots with
//! `put` (no receiver cooperation), then a `barrier_all` opens the next
//! step — the classic shmem communication pattern.

use hamster::core::{ClusterConfig, PlatformKind, Runtime};
use hamster::models::shmem::shmem_init;

const STRIP: usize = 64; // cells per PE
const STEPS: usize = 20;

fn main() {
    let cfg = ClusterConfig::new(4, PlatformKind::HybridDsm);
    let rt = Runtime::new(cfg);
    let (report, sums) = rt.run(|ham| {
        let sh = shmem_init(ham.clone());
        let (me, npes) = (sh.my_pe(), sh.n_pes());

        // Layout per PE instance: [left_halo][STRIP cells][right_halo].
        let cells = sh.malloc((STRIP + 2) * 8);
        let at = |i: usize| i * 8;

        // Initialize my strip: a bump at PE 0's right edge, so the
        // halo exchange with PE 1 actually carries the action.
        for i in 0..STRIP {
            let v = if me == 0 && i == STRIP - 1 { 1.0 } else { 0.0 };
            sh.double_p(cells, at(1 + i), v, me);
        }
        sh.barrier_all();

        for _ in 0..STEPS {
            // Push my edges into the neighbours' halos (one-sided).
            if me > 0 {
                let edge = sh.double_g(cells, at(1), me);
                sh.double_p(cells, at(STRIP + 1), edge, me - 1);
            }
            if me + 1 < npes {
                let edge = sh.double_g(cells, at(STRIP), me);
                sh.double_p(cells, at(0), edge, me + 1);
            }
            sh.quiet();
            sh.barrier_all();

            // Diffuse: read my strip + halos, write back.
            let mut strip = vec![0.0f64; STRIP + 2];
            for (i, v) in strip.iter_mut().enumerate() {
                *v = sh.double_g(cells, at(i), me);
            }
            for i in 1..=STRIP {
                let v = 0.5 * strip[i] + 0.25 * (strip[i - 1] + strip[i + 1]);
                sh.double_p(cells, at(i), v, me);
            }
            ham.compute(STRIP as u64 * 20);
            sh.barrier_all();
        }

        // Mass is conserved up to the open boundaries; report my share.
        let mut sum = 0.0;
        for i in 0..STRIP {
            sum += sh.double_g(cells, at(1 + i), me);
        }
        sh.finalize();
        sum
    });
    let total: f64 = sums.iter().sum();
    println!("diffused mass across PEs: {:?}", sums);
    println!("total ≈ {:.6} (1.0 injected, open boundaries)", total);
    println!("virtual time: {:.3} ms", report.sim_time_ns as f64 / 1e6);
    assert!((total - 1.0).abs() < 1e-9, "diffusion must conserve mass away from the edges");
    assert!(sums[1] > 1e-6, "the bump never crossed the PE boundary");
}
