//! Capture a whole-cluster event trace and export it for
//! `chrome://tracing` / Perfetto — the OBSERVABILITY.md quickstart.
//!
//! ```sh
//! cargo run --example chrome_trace
//! ```
//!
//! Writes `trace.json` and prints the ASCII Gantt summary.

use hamster::core::{
    chrome_trace_json, gantt_summary, validate_chrome_trace, ClusterConfig, PlatformKind,
};
use hamster::sim::trace::TraceSession;

fn main() {
    let session = TraceSession::begin();
    let cfg = ClusterConfig::new(2, PlatformKind::SwDsm);
    hamster::core::run_spmd(&cfg, |ham| {
        let r = ham.mem().alloc_default(4096).unwrap();
        ham.sync().barrier(0);
        if ham.task().rank() == 0 {
            ham.mem().write_u64(r.addr(), 42);
        }
        ham.cons().barrier_sync(1);
        assert_eq!(ham.mem().read_u64(r.addr()), 42);
        ham.cons().barrier_sync(2);
    });
    let events = session.finish();

    let json = chrome_trace_json(&events);
    let n = validate_chrome_trace(&json).expect("export must be schema-valid");
    std::fs::write("trace.json", &json).expect("write trace.json");
    println!("{}", gantt_summary(&events, 72));
    println!("wrote trace.json ({n} events) — load it in chrome://tracing or ui.perfetto.dev");
}
