//! The paper's §6 vision, running: several DSM mechanisms combined
//! within a single application.
//!
//! ```sh
//! cargo run --release --example mixed_dsm
//! ```
//!
//! An irregular-update workload over a large array: bulk data has good
//! locality (page-based engine amortizes whole pages), but a small,
//! hot, finely shared index is poison for a page protocol (every update
//! invalidates whole pages cluster-wide). The mixed platform lets the
//! application place each allocation on the engine that suits it —
//! "custom-tailored, shared memory solutions for individual
//! applications".

use hamster::core::{
    AllocSpec, ClusterConfig, Distribution, EngineHint, Hamster, PlatformKind, Runtime,
};

const ROUNDS: u64 = 20;
const TABLE_WORDS: usize = 4096;

fn workload(ham: &Hamster, index_engine: EngineHint) -> u64 {
    let nodes = ham.task().nodes();
    // Bulk table: block-distributed, page-based (good locality).
    let table = ham
        .mem()
        .alloc(
            TABLE_WORDS * 8,
            AllocSpec { dist: Distribution::Block, ..Default::default() },
        )
        .unwrap();
    // Hot index: one counter per node, finely shared every round.
    let index = ham
        .mem()
        .alloc(
            nodes * 4096,
            AllocSpec {
                dist: Distribution::Cyclic,
                engine: index_engine,
                ..Default::default()
            },
        )
        .unwrap();
    ham.sync().barrier(1);

    let me = ham.task().rank();
    let (lo, hi) = {
        let per = TABLE_WORDS.div_ceil(nodes);
        (me * per, ((me + 1) * per).min(TABLE_WORDS))
    };
    for round in 0..ROUNDS {
        // Bulk phase: update my table block (page engine, home-local).
        for w in lo..hi {
            let a = table.at(w * 8);
            let v = ham.mem().read_u64(a);
            ham.mem().write_u64(a, v + round);
        }
        // Fine-grained phase: publish my progress, read everyone's.
        ham.mem().write_u64(index.at(me * 4096), round + 1);
        ham.cons().barrier_sync(2);
        let mut progress = 0;
        for peer in 0..nodes {
            progress += ham.mem().read_u64(index.at(peer * 4096));
        }
        assert_eq!(progress, (round + 1) * nodes as u64);
        ham.cons().barrier_sync(3);
    }
    ham.wtime_ns()
}

fn main() {
    let mut times = Vec::new();
    for (label, engine) in [
        ("hot index page-based (pure software-DSM style)", EngineHint::PageBased),
        ("hot index word-based (mixed, §6)", EngineHint::WordBased),
    ] {
        let rt = Runtime::new(ClusterConfig::new(4, PlatformKind::Mixed));
        let (report, _) = rt.run(|ham| workload(ham, engine));
        println!("{label:<48} {:>9.3} ms virtual", report.sim_time_ns as f64 / 1e6);
        times.push(report.sim_time_ns as f64);
    }
    println!(
        "\nplacing only the hot structure on the word-based engine wins {:.1}x —\n\
         the bulk data stays page-based and keeps its locality amortization.",
        times[0] / times[1]
    );
}
