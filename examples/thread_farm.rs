//! A distributed task farm written against the POSIX-thread model:
//! thread creation is *forwarded* to the node each worker should run on
//! (the mechanism the paper's §5.2 calls out as the thread adapters'
//! main complexity), and a shared work queue hands out chunks under a
//! mutex.
//!
//! ```sh
//! cargo run --example thread_farm
//! ```

use hamster::core::{ClusterConfig, GlobalAddr, Hamster, PlatformKind, Runtime};
use hamster::models::pthreads::Pthreads;

const TASKS: u64 = 64;

/// One worker: pull task indices from the shared queue until empty,
/// "process" them (a deterministic pseudo-hash), and accumulate into
/// the shared result cell.
fn worker(ham: Hamster, queue: GlobalAddr, result: GlobalAddr) {
    let pt = Pthreads::init(ham.clone());
    let m = pt.mutex_init(1);
    loop {
        // Take the next task index.
        pt.mutex_lock(m);
        let next = ham.mem().read_u64(queue);
        if next >= TASKS {
            pt.mutex_unlock(m);
            return;
        }
        ham.mem().write_u64(queue, next + 1);
        pt.mutex_unlock(m);

        // "Work": fold the task id a few thousand times.
        let mut acc = next;
        for _ in 0..2_000 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
        ham.compute(2_000 * 4);

        pt.mutex_lock(m);
        let cur = ham.mem().read_u64(result);
        ham.mem().write_u64(result, cur ^ acc);
        pt.mutex_unlock(m);
    }
}

fn main() {
    let cfg = ClusterConfig::new(4, PlatformKind::SwDsm);
    let rt = Runtime::new(cfg);
    let (report, results) = rt.run(|ham| {
        let pt = Pthreads::init(ham.clone());
        let region = ham.mem().alloc_default(64).unwrap();
        let queue = region.addr();
        let result = region.at(8);
        pt.barrier_wait(1);

        if pt.self_id() == 0 {
            // The master spawns one worker on every other node (the
            // create call forwards to the target node) plus one local.
            let mut threads = Vec::new();
            for node in 0..ham.task().nodes() {
                let (q, r) = (queue, result);
                threads.push(pt.create_on(node, move |remote| worker(remote, q, r)));
            }
            for t in threads {
                pt.join(t);
            }
        }
        pt.barrier_wait(2);
        ham.mem().read_u64(result)
    });

    // Sequential reference.
    let mut expect = 0u64;
    for t in 0..TASKS {
        let mut acc = t;
        for _ in 0..2_000 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
        expect ^= acc;
    }
    assert!(results.iter().all(|&r| r == expect), "farm lost or duplicated tasks");
    println!("{} tasks farmed to 4 nodes, checksum {expect:#018x} ✓", TASKS);
    println!("virtual time: {:.3} ms", report.sim_time_ns as f64 / 1e6);
}
