//! Quickstart: the same shared-memory program on all three platforms.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Demonstrates the paper's core claim (§5.4): the program below is
//! written once against the HAMSTER interface and runs unmodified on
//! hardware shared memory (SMP), the hybrid DSM (SCI-style cluster),
//! and the software DSM (Ethernet Beowulf) — only the configuration
//! changes.

use hamster::core::{ClusterConfig, Hamster, PlatformKind, Runtime};

/// A small parallel histogram: every node bins its slice of synthetic
/// data into a shared table under a lock, then everyone verifies the
/// total after a barrier.
fn histogram(ham: &Hamster) -> u64 {
    const BINS: usize = 16;
    const PER_NODE: usize = 10_000;

    let table = ham.mem().alloc_default(BINS * 8).expect("alloc histogram");
    ham.sync().barrier(1);

    // Bin my share of the data (deterministic pseudo-data).
    let mut local = [0u64; BINS];
    let me = ham.task().rank() as u64;
    for i in 0..PER_NODE as u64 {
        let sample = (me * 1_000_003 + i).wrapping_mul(2654435761) >> 7;
        local[(sample % BINS as u64) as usize] += 1;
    }
    ham.compute(PER_NODE as u64 * 10);

    // Merge into the shared table under a lock (a consistency scope on
    // the software DSM, a plain lock on coherent hardware).
    ham.cons().acquire_scope(1);
    for (b, &count) in local.iter().enumerate() {
        let addr = table.at(b * 8);
        let cur = ham.mem().read_u64(addr);
        ham.mem().write_u64(addr, cur + count);
    }
    ham.cons().release_scope(1);
    ham.cons().barrier_sync(2);

    (0..BINS).map(|b| ham.mem().read_u64(table.at(b * 8))).sum()
}

fn main() {
    for platform in [PlatformKind::Smp, PlatformKind::HybridDsm, PlatformKind::SwDsm] {
        let cfg = ClusterConfig::new(4, platform);
        let rt = Runtime::new(cfg);
        let (report, totals) = rt.run(histogram);
        assert!(totals.iter().all(|&t| t == 40_000), "histogram lost samples");
        println!(
            "{platform:?}: total = {} samples, virtual time = {:.3} ms, \
             messages = {}",
            totals[0],
            report.sim_time_ns as f64 / 1e6,
            report.net_stats["requests"] + report.net_stats["posts"],
        );
    }
    println!("\nSame binary, three platforms — only the configuration changed.");
}
