//! An external monitoring tool attaching to a HAMSTER run (paper §4.3:
//! counters and traces are architecture- and model-independent, so the
//! same tool works on any platform).
//!
//! ```sh
//! cargo run --release --example trace_tool
//! ```
//!
//! Runs a small lock/barrier workload with tracing enabled, then — from
//! *outside* the application — merges the per-node event streams into
//! one virtual-time timeline and prints a per-module summary alongside
//! the monitoring counters.

use hamster::core::{merge_timelines, ClusterConfig, PlatformKind, Runtime};
use std::collections::BTreeMap;

fn main() {
    let rt = Runtime::new(ClusterConfig::new(3, PlatformKind::SwDsm));
    let (report, handles) = rt.run(|ham| {
        ham.tracer().start();
        let r = ham.mem().alloc_default(4096).unwrap();
        ham.sync().barrier(1);
        for _ in 0..3 {
            ham.sync().lock(7);
            let v = ham.mem().read_u64(r.addr());
            ham.mem().write_u64(r.addr(), v + 1);
            ham.sync().unlock(7);
        }
        ham.cons().barrier_sync(2);
        assert_eq!(ham.mem().read_u64(r.addr()), 9);
        ham.tracer().stop();
        // Hand the whole node handle out: the "external tool" below
        // reads traces and counters without the application's help.
        ham.clone()
    });

    // --- the external tool ---
    let timeline = merge_timelines(handles.iter().map(|h| h.tracer().take()).collect());
    println!("merged timeline ({} events):", timeline.len());
    for ev in timeline.iter().take(24) {
        println!(
            "  {:>12.3} µs  node{}  {:>4}.{:<12} arg={}",
            ev.t_ns as f64 / 1e3,
            ev.node,
            ev.module,
            ev.op,
            ev.arg
        );
    }
    if timeline.len() > 24 {
        println!("  … {} more", timeline.len() - 24);
    }

    let mut per_op: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for ev in &timeline {
        *per_op.entry((ev.module, ev.op)).or_insert(0) += 1;
    }
    println!("\nevent counts:");
    for ((module, op), n) in &per_op {
        println!("  {module}.{op:<14} {n}");
    }

    println!("\nmodule counters (node 0):");
    for module in ["mem", "sync", "cons"] {
        println!("  {module}: {:?}", handles[0].monitor().query(module));
    }
    println!("\nvirtual time: {:.3} ms", report.sim_time_ns as f64 / 1e6);

    // Sanity: lock/unlock alternate correctly in virtual time per node.
    let locks: Vec<_> =
        timeline.iter().filter(|e| e.module == "sync" && e.op != "barrier").collect();
    assert_eq!(locks.len(), 3 * 3 * 2, "expected 3 nodes × 3 lock/unlock pairs");
}
