//! Workspace-level integration: the monitoring story of paper §4.3.
//!
//! Performance statistics must be (a) per-module, (b) queryable and
//! resettable independently, (c) maintained regardless of platform, and
//! (d) reflect the protocol work actually performed underneath.

use hamster::core::{ClusterConfig, PlatformKind, Runtime};

#[test]
fn module_counters_track_a_mixed_workload() {
    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::SwDsm));
    let (_, snaps) = rt.run(|ham| {
        let r = ham.mem().alloc_default(8192).unwrap();
        ham.sync().barrier(1);
        for i in 0..4u32 {
            ham.sync().lock(5);
            let v = ham.mem().read_u64(r.addr().add(i * 8));
            ham.mem().write_u64(r.addr().add(i * 8), v + 1);
            ham.sync().unlock(5);
        }
        ham.cons().barrier_sync(2);
        if ham.task().rank() == 0 {
            ham.cluster().send(1, 1, vec![0xAB]);
        } else {
            let _ = ham.cluster().recv(1);
        }
        (
            ham.monitor().query("mem"),
            ham.monitor().query("sync"),
            ham.monitor().query("cons"),
            ham.monitor().query("cluster"),
        )
    });
    let (mem, sync, cons, cluster) = &snaps[0];
    assert_eq!(mem["allocs"], 1);
    assert_eq!(mem["reads"], 4);
    assert_eq!(mem["writes"], 4);
    assert_eq!(sync["locks"], 4);
    assert_eq!(sync["unlocks"], 4);
    assert_eq!(cons["sync_barriers"], 1);
    assert_eq!(cluster["msgs_sent"], 1);
    let (_, _, _, cluster1) = &snaps[1];
    assert_eq!(cluster1["msgs_recv"], 1);
}

#[test]
fn platform_statistics_expose_protocol_work() {
    // The DSM-level counters underneath the module counters: remote
    // fetches and diffs on the software DSM, remote accesses on the
    // hybrid DSM — "the amount of information provided may depend on
    // the base architecture capabilities" (paper §4.3, footnote).
    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::SwDsm));
    let (_, _) = rt.run(|ham| {
        let r = ham.mem().alloc(
            4096,
            hamster::core::AllocSpec {
                dist: hamster::core::Distribution::OnNode(0),
                ..Default::default()
            },
        )
        .unwrap();
        ham.sync().barrier(1);
        if ham.task().rank() == 1 {
            ham.mem().write_u64(r.addr(), 5);
        }
        ham.cons().barrier_sync(2);
    });
    let stats1 = rt.platform_stats(1);
    assert_eq!(stats1["getpages"], 1, "remote write-allocate fetch missing");
    assert!(stats1["diffs"] >= 1, "release must ship a diff");
    assert!(stats1["twins"] >= 1);

    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::HybridDsm));
    let (_, _) = rt.run(|ham| {
        let r = ham.mem().alloc(
            4096,
            hamster::core::AllocSpec {
                dist: hamster::core::Distribution::OnNode(0),
                ..Default::default()
            },
        )
        .unwrap();
        ham.sync().barrier(1);
        if ham.task().rank() == 1 {
            ham.mem().write_u64(r.addr(), 5);
        }
        ham.cons().barrier_sync(2);
    });
    let stats1 = rt.platform_stats(1);
    assert_eq!(stats1["remote_writes"], 1);
    assert!(stats1["flushes"] >= 1);
}

#[test]
fn external_monitor_can_watch_without_cooperation() {
    // "An independent monitoring system may attach externally" (§4.3):
    // read another node's module counters from outside the run loop.
    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::Smp));
    let (_, monitors) = rt.run(|ham| {
        let r = ham.mem().alloc_default(64).unwrap();
        ham.sync().barrier(1);
        ham.mem().write_u64(r.addr(), 1);
        ham.sync().barrier(2);
        // Hand the monitor handle out of the run (it is cheap+shared).
        ham.monitor().clone()
    });
    // After the run, the "external tool" inspects node 1's counters.
    assert!(monitors[1].query("mem")["writes"] >= 1);
    assert!(monitors[1].query("sync")["barriers"] >= 2);
}

#[test]
fn reset_between_phases_isolates_measurements() {
    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::HybridDsm));
    let (_, counts) = rt.run(|ham| {
        let r = ham.mem().alloc_default(4096).unwrap();
        ham.sync().barrier(1);
        // Phase 1: 10 writes.
        for i in 0..10u32 {
            ham.mem().write_u64(r.addr().add(i * 8), 1);
        }
        let phase1 = ham.monitor().query("mem")["writes"];
        ham.monitor().reset("mem");
        // Phase 2: 3 writes.
        for i in 0..3u32 {
            ham.mem().write_u64(r.addr().add(i * 8), 2);
        }
        let phase2 = ham.monitor().query("mem")["writes"];
        ham.sync().barrier(2);
        (phase1, phase2)
    });
    assert_eq!(counts[0], (10, 3));
}
