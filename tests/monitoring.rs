//! Workspace-level integration: the monitoring story of paper §4.3.
//!
//! Performance statistics must be (a) per-module, (b) queryable and
//! resettable independently, (c) maintained regardless of platform, and
//! (d) reflect the protocol work actually performed underneath.

use hamster::core::{ClusterConfig, PlatformKind, Runtime};

#[test]
fn module_counters_track_a_mixed_workload() {
    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::SwDsm));
    let (_, snaps) = rt.run(|ham| {
        let r = ham.mem().alloc_default(8192).unwrap();
        ham.sync().barrier(1);
        for i in 0..4u32 {
            ham.sync().lock(5);
            let v = ham.mem().read_u64(r.addr().add(i * 8));
            ham.mem().write_u64(r.addr().add(i * 8), v + 1);
            ham.sync().unlock(5);
        }
        ham.cons().barrier_sync(2);
        if ham.task().rank() == 0 {
            ham.cluster().send(1, 1, vec![0xAB]);
        } else {
            let _ = ham.cluster().recv(1);
        }
        (
            ham.monitor().query("mem"),
            ham.monitor().query("sync"),
            ham.monitor().query("cons"),
            ham.monitor().query("cluster"),
        )
    });
    let (mem, sync, cons, cluster) = &snaps[0];
    assert_eq!(mem["allocs"], 1);
    assert_eq!(mem["reads"], 4);
    assert_eq!(mem["writes"], 4);
    assert_eq!(sync["locks"], 4);
    assert_eq!(sync["unlocks"], 4);
    assert_eq!(cons["sync_barriers"], 1);
    assert_eq!(cluster["msgs_sent"], 1);
    let (_, _, _, cluster1) = &snaps[1];
    assert_eq!(cluster1["msgs_recv"], 1);
}

#[test]
fn platform_statistics_expose_protocol_work() {
    // The DSM-level counters underneath the module counters: remote
    // fetches and diffs on the software DSM, remote accesses on the
    // hybrid DSM — "the amount of information provided may depend on
    // the base architecture capabilities" (paper §4.3, footnote).
    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::SwDsm));
    let (_, _) = rt.run(|ham| {
        let r = ham.mem().alloc(
            4096,
            hamster::core::AllocSpec {
                dist: hamster::core::Distribution::OnNode(0),
                ..Default::default()
            },
        )
        .unwrap();
        ham.sync().barrier(1);
        if ham.task().rank() == 1 {
            ham.mem().write_u64(r.addr(), 5);
        }
        ham.cons().barrier_sync(2);
    });
    let stats1 = rt.platform_stats(1);
    assert_eq!(stats1["getpages"], 1, "remote write-allocate fetch missing");
    assert!(stats1["diffs"] >= 1, "release must ship a diff");
    assert!(stats1["twins"] >= 1);

    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::HybridDsm));
    let (_, _) = rt.run(|ham| {
        let r = ham.mem().alloc(
            4096,
            hamster::core::AllocSpec {
                dist: hamster::core::Distribution::OnNode(0),
                ..Default::default()
            },
        )
        .unwrap();
        ham.sync().barrier(1);
        if ham.task().rank() == 1 {
            ham.mem().write_u64(r.addr(), 5);
        }
        ham.cons().barrier_sync(2);
    });
    let stats1 = rt.platform_stats(1);
    assert_eq!(stats1["remote_writes"], 1);
    assert!(stats1["flushes"] >= 1);
}

#[test]
fn external_monitor_can_watch_without_cooperation() {
    // "An independent monitoring system may attach externally" (§4.3):
    // read another node's module counters from outside the run loop.
    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::Smp));
    let (_, monitors) = rt.run(|ham| {
        let r = ham.mem().alloc_default(64).unwrap();
        ham.sync().barrier(1);
        ham.mem().write_u64(r.addr(), 1);
        ham.sync().barrier(2);
        // Hand the monitor handle out of the run (it is cheap+shared).
        ham.monitor().clone()
    });
    // After the run, the "external tool" inspects node 1's counters.
    assert!(monitors[1].query("mem")["writes"] >= 1);
    assert!(monitors[1].query("sync")["barriers"] >= 2);
}

#[test]
fn traced_sor_run_covers_all_modules_and_exports_chrome_json() {
    // The full observability story in one run: a 2-node SOR benchmark
    // through the JiaJia adapter on the software DSM, with the global
    // trace session open. Afterwards (a) every one of the five
    // management modules has counted work, and (b) the collected
    // timeline exports to schema-valid Chrome trace JSON.
    use hamster::apps::world::run_hamster;
    use hamster::core::{chrome_trace_json, validate_chrome_trace};

    let session = hamster::sim::trace::TraceSession::begin();
    let cfg = ClusterConfig::new(2, PlatformKind::SwDsm);
    let (report, snaps) = run_hamster(&cfg, |w| {
        let r = hamster::apps::sor::sor(w, 32, 4, false);
        assert_ne!(r.checksum, 0);
        let ham = w.ham();
        // SOR exercises mem and cons; touch the remaining modules so
        // all five stat sets see protocol work in the same run.
        ham.sync().barrier(9);
        let _ = ham.cluster().nodes();
        if ham.task().rank() == 0 {
            let t = ham.task().remote_exec(1, |_| {});
            ham.task().join(t);
        }
        ham.sync().barrier(10);
        (
            ham.monitor().query("mem"),
            ham.monitor().query("cons"),
            ham.monitor().query("sync"),
            ham.monitor().query("task"),
            ham.monitor().query("cluster"),
            w.jia().adapter_stats().api_calls(),
        )
    });
    let events = session.finish();
    assert_eq!(report.nodes, 2);

    let (mem, cons, sync, task, cluster, api_calls) = &snaps[0];
    assert!(mem["allocs"] >= 2, "SOR allocates two grids");
    assert!(mem["reads"] > 0 && mem["writes"] > 0);
    assert!(cons["sync_barriers"] > 0, "jia_barrier maps to barrier_sync");
    assert!(sync["barriers"] >= 2);
    assert_eq!(task["remote_spawns"], 1);
    assert_eq!(task["joins"], 1);
    assert!(cluster["queries"] >= 1);
    assert!(*api_calls > 0, "adapter call counter saw the benchmark");
    // Node 1 worked too.
    let (mem1, ..) = &snaps[1];
    assert!(mem1["reads"] > 0);

    // The trace saw the protocol layers underneath: DSM engine, the
    // messaging fabric, and the benchmark's phase timeline.
    assert!(!events.is_empty());
    for layer in ["swdsm", "net", "phase"] {
        assert!(
            events.iter().any(|e| e.module == layer),
            "no {layer} events on the timeline"
        );
    }
    assert!(events.iter().any(|e| e.node == 1), "node 1 emitted nothing");

    let json = chrome_trace_json(&events);
    let n = validate_chrome_trace(&json).expect("schema-valid Chrome trace");
    assert_eq!(n, events.len());
}

#[test]
fn reset_between_phases_isolates_measurements() {
    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::HybridDsm));
    let (_, counts) = rt.run(|ham| {
        let r = ham.mem().alloc_default(4096).unwrap();
        ham.sync().barrier(1);
        // Phase 1: 10 writes.
        for i in 0..10u32 {
            ham.mem().write_u64(r.addr().add(i * 8), 1);
        }
        let phase1 = ham.monitor().query("mem")["writes"];
        ham.monitor().reset("mem");
        // Phase 2: 3 writes.
        for i in 0..3u32 {
            ham.mem().write_u64(r.addr().add(i * 8), 2);
        }
        let phase2 = ham.monitor().query("mem")["writes"];
        ham.sync().barrier(2);
        (phase1, phase2)
    });
    assert_eq!(counts[0], (10, 3));
}
