//! Workspace-level integration: the trace-analysis engine against real
//! traced runs (see `OBSERVABILITY.md`, "Trace analysis").
//!
//! These tests cross-check the analyzer against independent ground
//! truth produced by the same run: the application's own `PhaseTimer`
//! accounting, and workloads constructed to contain (or be free of)
//! false sharing. Every assertion is on timing-robust content — each
//! test compares quantities *within one run*, so the bus-saturation
//! ordering caveat documented in `OBSERVABILITY.md` does not apply.

use hamster::analyzer::{self, Lane};
use hamster::apps::world::run_hamster;
use hamster::core::{ClusterConfig, PlatformKind};
use hamster::sim::trace::TraceSession;

/// Run a traced 2-node kernel on the software DSM and return the
/// analyzer report plus each rank's benchmark result.
fn traced_swdsm<T: Send>(
    kernel: impl Fn(&hamster::apps::world::HamsterWorld) -> T + Send + Sync,
) -> (analyzer::Report, Vec<T>) {
    let session = TraceSession::begin();
    let cfg = ClusterConfig::new(2, PlatformKind::SwDsm);
    let (_, results) = run_hamster(&cfg, kernel);
    (analyzer::analyze(&session.finish()), results)
}

/// |a - b| as a fraction of max(a, b).
fn rel_err(a: u64, b: u64) -> f64 {
    let hi = a.max(b) as f64;
    if hi == 0.0 {
        0.0
    } else {
        (a.abs_diff(b)) as f64 / hi
    }
}

#[test]
fn barrier_wait_attribution_matches_phase_timer() {
    // Optimized SOR brackets every `w.barrier(2)` with
    // `PhaseTimer::enter_at("barrier", ..)` / `close_at(..)`, so the
    // application's own phase accounting is independent ground truth
    // for what the analyzer attributes to the barrier-wait lane inside
    // that phase: the two must agree to within 1%.
    let (report, results) =
        traced_swdsm(|w| hamster::apps::sor::sor(w, 64, 6, true));

    let timer_total: u64 = results
        .iter()
        .map(|r| *r.phases.get("barrier").expect("SOR times a barrier phase"))
        .sum();
    assert!(timer_total > 0, "PhaseTimer saw no barrier time");

    let phase = report
        .phases
        .iter()
        .find(|p| p.name == "barrier")
        .expect("analyzer reconstructed the barrier phase from the trace");

    // The phase's total must match the PhaseTimer's sum (both measure
    // the same enter→close windows, summed across ranks) ...
    assert!(
        rel_err(phase.total_ns, timer_total) < 0.01,
        "phase total {} vs PhaseTimer {} (>1% apart)",
        phase.total_ns,
        timer_total
    );
    // ... and virtually all of it must land in the barrier-wait lane:
    // the phase opens immediately before the barrier call at the same
    // virtual instant, so the barrier span tiles the whole window.
    let barrier_lane = phase.lanes[Lane::BarrierWait as usize];
    assert!(
        rel_err(barrier_lane, timer_total) < 0.01,
        "barrier-wait lane {} vs PhaseTimer {} (>1% apart)",
        barrier_lane,
        timer_total
    );
}

#[test]
fn lane_totals_tile_each_nodes_makespan() {
    // The sweep's core invariant, checked on a real mixed workload:
    // every virtual nanosecond of every node is attributed to exactly
    // one lane, so the per-node lane sums reproduce the makespans.
    let (report, _) = traced_swdsm(|w| hamster::apps::lu::lu(w, 48));
    assert!(report.makespan_ns > 0);
    for node in &report.nodes {
        let sum: u64 = node.lanes.iter().sum();
        assert_eq!(
            sum, node.makespan_ns,
            "node {} lanes sum {} != makespan {}",
            node.node, sum, node.makespan_ns
        );
    }
    analyzer::validate(&report.to_json()).expect("schema-valid report");
}

#[test]
fn false_sharing_flagged_on_unoptimized_sor() {
    // 120 doubles per row = 960 bytes, so the cyclic layout puts both
    // ranks' writes into the same pages at cache-line-disjoint offsets
    // — the textbook false-sharing pattern the detector must flag.
    let (report, _) =
        traced_swdsm(|w| hamster::apps::sor::sor(w, 120, 3, false));
    assert!(
        !report.false_sharing.is_empty(),
        "unoptimized SOR must trip the false-sharing detector"
    );
    for fs in &report.false_sharing {
        assert!(fs.nodes.len() >= 2, "flagged page needs two writers");
        assert_eq!(fs.nodes.len(), fs.offsets.len());
        // The witness offsets must really be cache-line-disjoint.
        for (i, &a) in fs.offsets.iter().enumerate() {
            for &b in &fs.offsets[i + 1..] {
                assert!(
                    a.abs_diff(b) >= analyzer::CACHE_LINE_BYTES,
                    "offsets {a} and {b} share a cache line"
                );
            }
        }
    }
}

#[test]
fn pi_has_no_false_sharing_false_positives() {
    // PI's only shared write target is one 8-byte accumulator that both
    // ranks update under a lock: true sharing of a single datum. The
    // detector must not confuse it with false sharing.
    let (report, results) = traced_swdsm(|w| hamster::apps::pi::pi(w, 4000));
    assert!(results[0].checksum != 0);
    assert!(
        report.false_sharing.is_empty(),
        "PI flagged for false sharing: {:?}",
        report.false_sharing
    );
    // The lock itself must still be visible to the contention engine.
    assert!(
        report.locks.iter().any(|l| l.acquires >= 2),
        "PI's accumulation lock missing from lock stats"
    );
}
