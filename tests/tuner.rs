//! Tuning is *performance-only*: whatever plan the tuner emits, the
//! program's results must not move (ISSUE 8, satellite 3).
//!
//! A proptest draws random [`tuner::TuningPlan`]s — page re-homes
//! (valid, redundant, and never-allocated targets alike), lock
//! placements, layout padding, and sync-topology switches — applies
//! them the same way the `tune` bench does (placement and topology as
//! `ClusterConfig`, padding as the kernel's `AlignHint`), and asserts
//! at 4 and 64 nodes under both delivery engines:
//!
//! * the tuned run's workload checksum is bit-identical to the
//!   untuned baseline's,
//! * the tuned configuration is itself deterministic: two runs agree
//!   on virtual makespan and every net counter,
//! * both engines agree on the checksum under the same plan.

use apps::world::{run_hamster, HamsterWorld, World};
use cluster::{BarrierTopology, EngineMode, LockTopology, SyncTopology};
use hamster_core::{ClusterConfig, Placement, PlatformKind};
use memwire::{AlignHint, Distribution, PageId};
use proptest::prelude::*;
use tuner::{Action, TuningPlan};

/// Lock the mixed kernel contends on (inside the generated lock-id
/// range, so some plans re-place exactly this lock).
const KERNEL_LOCK: u32 = 5;
const ROUNDS: usize = 3;
const SLOT: usize = 64;

/// Mixed shared-memory kernel: per-rank counter slots (hint-aware
/// layout), a shared accumulator cell, and contended locks. Two rules
/// keep it inside the repo's deterministic regime (the same ones
/// tests/engine.rs documents for its lock ring): lock turns are
/// barrier-serialized so grant order never depends on message races,
/// and critical sections do not write shared memory — the accumulator
/// is updated between the unlock and the turn's barrier, so releases
/// publish empty intervals and grants carry no racy notice payloads.
fn kernel(w: &HamsterWorld, hint: AlignHint) -> u64 {
    let stride = hint.padded_stride(SLOT);
    let slots = w.alloc_dist(w.nprocs() * stride, Distribution::Cyclic);
    let acc = w.alloc_dist(SLOT, Distribution::OnNode(0));
    w.barrier(900);
    let mut bar = 910u32;
    for round in 0..ROUNDS {
        let mine = slots.add((w.rank() * stride) as u32);
        let v = w.read_f64(mine);
        w.write_f64(mine, v + (round + 1) as f64);
        w.barrier(bar);
        bar += 1;
        for turn in 0..w.nprocs() {
            if w.rank() == turn {
                w.lock(KERNEL_LOCK);
                w.compute(500 + round as u64 * 37);
                w.unlock(KERNEL_LOCK);
                let cur = w.read_f64(acc);
                w.write_f64(acc, cur + 1.0 + round as f64);
            }
            w.barrier(bar);
            bar += 1;
        }
    }
    let mut sum = 0u64;
    for r in 0..w.nprocs() {
        let v = w.read_f64(slots.add((r * stride) as u32));
        sum = sum.rotate_left(7) ^ v.to_bits();
    }
    sum = sum.rotate_left(7) ^ w.read_f64(acc).to_bits();
    w.barrier(bar);
    sum
}

fn actions() -> impl Strategy<Value = Action> {
    prop_oneof![
        // Regions 0..=2 cover whatever the runtime actually allocates;
        // region 9 never exists, so its re-homes must be inert.
        ((0u32..=2), (0u32..8), (0usize..4)).prop_map(|(region, index, to)| {
            Action::RehomePage { page: PageId { region, index }, to }
        }),
        ((9u32..=9), (0u32..8), (0usize..4)).prop_map(|(region, index, to)| {
            Action::RehomePage { page: PageId { region, index }, to }
        }),
        ((0u32..8), (0usize..4)).prop_map(|(lock, to)| Action::PlaceLock { lock, to }),
        prop_oneof![Just(128u32), Just(512), Just(4096)]
            .prop_map(|pad_to| Action::PadRegion { region: 0, pad_to }),
        Just(Action::SwitchLocks),
        (2u32..=8).prop_map(|fanout| Action::SwitchBarrier { fanout }),
    ]
}

fn plans() -> impl Strategy<Value = TuningPlan> {
    proptest::collection::vec(actions(), 0..8).prop_map(|actions| TuningPlan { actions })
}

/// Split a plan into its configuration carriers, exactly as the `tune`
/// bench does.
fn carriers(plan: &TuningPlan) -> (AlignHint, Placement, SyncTopology) {
    let mut hint = AlignHint::None;
    let mut placement = Placement::default();
    let mut sync = SyncTopology::centralized();
    for a in &plan.actions {
        match *a {
            Action::PadRegion { pad_to, .. } => hint = AlignHint::PadTo(pad_to),
            Action::RehomePage { page, to } => placement.homes.push((page, to)),
            Action::PlaceLock { lock, to } => placement.locks.push((lock, to)),
            Action::SwitchLocks => sync.locks = LockTopology::TokenQueue,
            Action::SwitchBarrier { fanout } => {
                sync.barrier = BarrierTopology::Tree { fanout: fanout as usize }
            }
        }
    }
    (hint, placement, sync)
}

struct Observed {
    checksum: u64,
    sim_time_ns: u64,
    net_stats: std::collections::BTreeMap<&'static str, u64>,
}

fn observe(
    nodes: usize,
    engine: EngineMode,
    hint: AlignHint,
    placement: &Placement,
    sync: SyncTopology,
) -> Observed {
    let mut cfg = ClusterConfig::new(nodes, PlatformKind::SwDsm);
    // The deterministic cost regime from the engine equivalence test:
    // below bus-window saturation with enough latency that 64-node
    // fan-ins never stack into one window (see tests/engine.rs).
    cfg.cost.ethernet.bytes_per_sec = 1_000_000_000;
    cfg.cost.ethernet.latency_ns = 400_000;
    cfg.cost.ethernet.recv_overhead_ns = 500;
    cfg.cost.ethernet.send_overhead_ns = 500;
    cfg.cost.ethernet.handler_ns = 200;
    cfg.engine = engine;
    cfg.sync = sync;
    cfg.placement = placement.clone();
    let (report, checksums) = run_hamster(&cfg, move |w| kernel(w, hint));
    assert!(
        checksums.iter().all(|&c| c == checksums[0]),
        "ranks disagree on checksum: {checksums:?}"
    );
    Observed {
        checksum: checksums[0],
        sim_time_ns: report.sim_time_ns,
        net_stats: report.net_stats,
    }
}

fn assert_plan_preserves(plan: &TuningPlan, nodes: usize) {
    let (hint, placement, sync) = carriers(plan);
    for engine in [EngineMode::ThreadPerNode, EngineMode::Sharded { workers: 0 }] {
        let baseline =
            observe(nodes, engine, AlignHint::None, &Placement::default(), SyncTopology::centralized());
        let tuned = observe(nodes, engine, hint, &placement, sync);
        prop_assert_eq!(
            baseline.checksum,
            tuned.checksum,
            "plan changed the workload result at {} nodes under {:?}: {:?}",
            nodes,
            engine,
            plan
        );
        let again = observe(nodes, engine, hint, &placement, sync);
        prop_assert_eq!(
            tuned.sim_time_ns,
            again.sim_time_ns,
            "tuned virtual makespan wobbled at {} nodes under {:?}: {:?}",
            nodes,
            engine,
            plan
        );
        prop_assert_eq!(
            &tuned.net_stats,
            &again.net_stats,
            "tuned net counters wobbled at {} nodes under {:?}: {:?}",
            nodes,
            engine,
            plan
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn random_plans_preserve_results_and_determinism(plan in plans()) {
        assert_plan_preserves(&plan, 4);
        assert_plan_preserves(&plan, 64);
    }
}

/// Pinned coverage: one plan touching every action kind at once, so a
/// proptest draw never silently skips a carrier.
#[test]
fn full_catalogue_plan_preserves_results() {
    let plan = TuningPlan {
        actions: vec![
            Action::PadRegion { region: 0, pad_to: 4096 },
            Action::RehomePage { page: PageId { region: 0, index: 0 }, to: 1 },
            Action::RehomePage { page: PageId { region: 9, index: 3 }, to: 2 },
            Action::PlaceLock { lock: KERNEL_LOCK, to: 3 },
            Action::SwitchLocks,
            Action::SwitchBarrier { fanout: 4 },
        ],
    };
    assert_plan_preserves(&plan, 4);
}
