//! Workspace-level integration: the portability matrix.
//!
//! Every programming model × every platform, one small program each —
//! the full cross product behind the paper's §5.4 claim that models and
//! platforms compose freely through the single HAMSTER core.

use hamster::core::{ClusterConfig, PlatformKind, Runtime};

const PLATFORMS: [PlatformKind; 3] =
    [PlatformKind::Smp, PlatformKind::HybridDsm, PlatformKind::SwDsm];

fn on_each_platform(nodes: usize, f: impl Fn(&hamster::core::Hamster) -> u64 + Send + Sync) {
    let mut results = Vec::new();
    for platform in PLATFORMS {
        let rt = Runtime::new(ClusterConfig::new(nodes, platform));
        let (_, rs) = rt.run(|ham| f(ham));
        assert!(rs.iter().all(|&v| v == rs[0]), "{platform:?}: nodes disagree: {rs:?}");
        results.push(rs[0]);
    }
    assert!(
        results.iter().all(|&v| v == results[0]),
        "platforms disagree: {results:?}"
    );
}

#[test]
fn spmd_model_everywhere() {
    on_each_platform(3, |ham| {
        let spmd = hamster::models::spmd::spmd_begin(ham.clone());
        let arr = spmd.shared_array(12);
        spmd.barrier(1);
        let (lo, hi) = spmd.my_block(12);
        for i in lo..hi {
            spmd.put(&arr, i, (i * i) as f64);
        }
        spmd.barrier(2);
        let mut out = vec![0.0; 12];
        spmd.get_range(&arr, 0, &mut out);
        spmd.spmd_end();
        out.iter().sum::<f64>() as u64
    });
}

#[test]
fn jiajia_model_everywhere() {
    on_each_platform(2, |ham| {
        let jia = hamster::models::jiajia::jia_init(ham.clone());
        let a = jia.jia_alloc(4096);
        jia.jia_barrier();
        jia.jia_lock(1);
        let v = jia.load_u64(a);
        jia.store_u64(a, v + 7);
        jia.jia_unlock(1);
        jia.jia_barrier();
        let out = jia.load_u64(a);
        jia.jia_exit();
        out
    });
}

#[test]
fn hlrc_model_everywhere() {
    on_each_platform(2, |ham| {
        let h = hamster::models::hlrc::hlrc_init(ham.clone());
        let a = h.malloc(4096);
        h.barrier(1);
        if h.my_pid() == 0 {
            h.acquire(2);
            h.write_long(a, 99);
            h.release(2);
        }
        h.barrier(2);
        let v = h.read_long(a);
        h.exit();
        v
    });
}

#[test]
fn shmem_model_everywhere() {
    on_each_platform(4, |ham| {
        let sh = hamster::models::shmem::shmem_init(ham.clone());
        let sym = sh.malloc(128);
        sh.barrier_all();
        sh.long_p(sym, 0, 1 + sh.my_pe() as u64, (sh.my_pe() + 1) % sh.n_pes());
        sh.quiet();
        sh.barrier_all();
        let got = sh.long_g(sym, 0, sh.my_pe());
        sh.finalize();
        // Sum across nodes differs per node; reduce through the model.
        let scratch = sh.malloc(512);
        sh.barrier_all();
        sh.double_sum_to_all(scratch, got as f64) as u64
    });
}

#[test]
fn anl_model_everywhere() {
    on_each_platform(2, |ham| {
        let env = hamster::models::anl::Anl::init(ham.clone());
        let a = env.g_malloc(64);
        let l = env.lock_init();
        let b = env.barrier_init();
        env.barrier(b);
        env.lock(l);
        let v = env.ham().mem().read_u64(a);
        env.ham().mem().write_u64(a, v + 3);
        env.unlock(l);
        env.barrier(b);
        let out = env.ham().mem().read_u64(a);
        env.main_end();
        out
    });
}

#[test]
fn treadmarks_model_on_software_dsm() {
    // Single-node allocation semantics only make sense on the DSM
    // platforms; exercise the full distribute flow on the software DSM.
    let rt = Runtime::new(ClusterConfig::new(4, PlatformKind::SwDsm));
    let (_, rs) = rt.run(|ham| {
        let tmk = hamster::models::treadmarks::tmk_startup(ham.clone());
        let a = if tmk.tmk_proc_id() == 2 {
            let a = tmk.tmk_malloc(4096);
            tmk.store_u64(a, 1234);
            tmk.tmk_distribute(a, 4096);
            a
        } else {
            tmk.tmk_receive_distribution()
        };
        tmk.tmk_barrier(1);
        let v = tmk.load_u64(a);
        tmk.tmk_exit();
        v
    });
    assert_eq!(rs, vec![1234; 4]);
}

#[test]
fn native_and_hamster_agree_on_results() {
    // The Figure 2 setup must be result-identical, not just
    // overhead-comparable.
    use hamster::apps::world::{run_hamster, run_native};
    let (_, native) = run_native(4, Default::default(), apps_sum);
    let cfg = ClusterConfig::new(4, PlatformKind::SwDsm);
    let (_, ham) = run_hamster(&cfg, apps_sum);
    assert_eq!(native, ham);

    fn apps_sum<W: hamster::apps::World>(w: &W) -> u64 {
        let r = hamster::apps::lu::lu(w, 32);
        r.checksum
    }
}

#[test]
fn virtual_time_ordering_across_platforms() {
    // For a communication-heavy pattern, Ethernet must cost more
    // virtual time than SCI, which must cost more than the SMP.
    let mut times = Vec::new();
    for platform in PLATFORMS {
        let rt = Runtime::new(ClusterConfig::new(4, platform));
        let (report, _) = rt.run(|ham| {
            let r = ham.mem().alloc_default(16 * 4096).unwrap();
            ham.sync().barrier(1);
            for round in 0..8u32 {
                let slot = ((ham.task().rank() as u32 + round) % 16) * 4096;
                ham.mem().write_u64(r.addr().add(slot), round as u64);
                ham.sync().barrier(10 + round);
                let _ = ham.mem().read_u64(r.addr().add(((slot as usize + 4096) % (16 * 4096)) as u32));
            }
        });
        times.push(report.sim_time_ns);
    }
    let (smp, sci, eth) = (times[0], times[1], times[2]);
    assert!(smp < sci, "SMP ({smp}) should beat SCI ({sci})");
    assert!(sci < eth, "SCI ({sci}) should beat Ethernet ({eth})");
}
