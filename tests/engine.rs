//! Workspace-level engine equivalence: the sharded event-driven engine
//! must be *indistinguishable in virtual time* from the legacy
//! thread-per-node engine (see `DESIGN.md`, "Delivery engines").
//!
//! A proptest drives random SOR / LU / lock-ring schedules through both
//! engines at 4 and 64 nodes and asserts, per schedule:
//!
//! * bit-identical workload checksums,
//! * identical virtual history (`sim_time_ns` + every net counter),
//! * identical analyzer output for the traced run — same per-node
//!   makespans and same per-node lane totals, lane by lane.
//!
//! The engines differ only in *real-time* mechanics (who executes a
//! handler, when, on which OS thread); everything observable in virtual
//! time — including the causal trace the analyzer consumes — must not
//! move by a single nanosecond.

use analyzer::LANES;
use apps::world::{NativeWorld, World};
use cluster::{Cluster, EngineMode, FabricConfig, LinkKind, RunReport};
use memwire::Distribution;
use proptest::prelude::*;
use sim::trace::TraceSession;

/// One randomly drawn schedule: which kernel runs, and how big.
#[derive(Clone, Copy, Debug)]
enum Schedule {
    Sor { n: usize, iters: usize },
    Lu { n: usize },
    LockRing { rounds: u32, skew: u32 },
}

fn schedules() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        ((40usize..=72), (2usize..=3)).prop_map(|(n, iters)| Schedule::Sor { n, iters }),
        (24usize..=48).prop_map(|n| Schedule::Lu { n }),
        ((2u32..=4), (100u32..=9_000)).prop_map(|(rounds, skew)| Schedule::LockRing { rounds, skew }),
    ]
}

/// Lock ring: `nprocs` global locks circulate around the nodes — in
/// round `r`, rank `i` holds lock `(i + r) % nprocs` for a skewed slice
/// of compute, so every lock visits every node and every grant carries
/// a causal floor from the previous round's holder. Two deliberate
/// design points keep the schedule inside the repo's *deterministic*
/// regime (OBSERVABILITY.md):
///
/// * a barrier separates rounds, so no two nodes ever contend for the
///   same lock at once — contended grants go in real message-arrival
///   order and are legitimately engine-dependent;
/// * the critical sections do not write shared memory, so releases
///   publish empty intervals and grants carry no write notices — the
///   notice payload reflects racy page-table state and wobbles the
///   grant's wire size run to run. Shared counters are instead written
///   between barriers, each rank to its own slot.
fn lock_ring(w: &NativeWorld, rounds: u32, skew: u32) -> u64 {
    let nprocs = w.nprocs();
    let counters = w.alloc_dist(nprocs * 8, Distribution::Block);
    w.barrier(900);
    for round in 0..rounds {
        w.compute(1_000 + w.rank() as u64 * skew as u64 + round as u64 * 131);
        let id = 700 + ((w.rank() + round as usize) % nprocs) as u32;
        w.lock(id);
        w.compute(500 + id as u64);
        w.unlock(id);
        let slot = counters.add((w.rank() * 8) as u32);
        let v = w.read_u64(slot);
        w.write_u64(slot, v.wrapping_mul(31).wrapping_add(round as u64 + 1));
        w.barrier(902 + round);
    }
    w.barrier(901);
    let mut acc = 0u64;
    for i in 0..nprocs {
        acc = acc
            .wrapping_mul(0x0000_0100_0000_01b3)
            .wrapping_add(w.read_u64(counters.add((i * 8) as u32)));
    }
    acc
}

/// Everything virtual-time-observable about one traced run.
#[derive(Debug, PartialEq)]
struct Observed {
    checksum: u64,
    sim_time_ns: u64,
    net_stats: std::collections::BTreeMap<&'static str, u64>,
    /// Analyzer view of the trace: (node, makespan, lane totals).
    node_lanes: Vec<(usize, u64, [u64; LANES])>,
}

/// Run `schedule` on the software DSM under `engine` with tracing on,
/// and capture the full virtual-time observation.
fn observe(engine: EngineMode, nodes: usize, schedule: Schedule) -> Observed {
    let session = TraceSession::begin();
    // Put the cost model in the *deterministic regime*: below
    // bus-window saturation, every transfer is a pure function of
    // `(time, bytes)` and the engines must agree to the nanosecond;
    // above it, slowdown depends on real-time registration order
    // (OBSERVABILITY.md, "Bus saturation"). The 64-node legs make this
    // a tight fit — LU broadcasts a 4 KiB pivot page to 63 peers every
    // step — so three knobs move together:
    //
    // * 1 GB/s links (the `analyze` bench's 250 MB/s still saturates
    //   under a 63-wide page fan-in: 63 × 4 KiB > 250 KB per window);
    // * small per-message service overheads, so 64 barrier arrivals per
    //   step don't saturate the manager's fixed 1 GB/s service bus;
    // * 400 µs latency, stretching virtual time so consecutive fan-in
    //   steps land in different 1 ms bus windows instead of stacking
    //   their reply bytes into one (latency is additive and
    //   bus-independent, so it is pure schedule spacing).
    let mut cost = sim::cost::CostModel::default();
    cost.ethernet.bytes_per_sec = 1_000_000_000;
        cost.ethernet.latency_ns = 400_000;
        cost.ethernet.latency_ns = 400_000;
    cost.ethernet.recv_overhead_ns = 500;
    cost.ethernet.send_overhead_ns = 500;
    cost.ethernet.handler_ns = 200;
    let fabric = FabricConfig::builder()
        .nodes(nodes)
        .link(LinkKind::Ethernet)
        .cost(cost)
        .engine(engine)
        .build();
    let cluster = Cluster::new(fabric);
    let dsm = swdsm::SwDsm::install(&cluster, swdsm::DsmConfig::default());
    let (report, checksums): (RunReport, Vec<u64>) = cluster.run(|ctx| {
        let w = NativeWorld::new(dsm.node(ctx));
        match schedule {
            Schedule::Sor { n, iters } => apps::sor::sor(&w, n, iters, true).checksum,
            Schedule::Lu { n } => apps::lu::lu(&w, n).checksum,
            Schedule::LockRing { rounds, skew } => lock_ring(&w, rounds, skew),
        }
    });
    let trace = session.finish();
    assert!(
        checksums.iter().all(|&c| c == checksums[0]),
        "ranks disagree on checksum under {engine:?}: {checksums:?}"
    );
    let analysis = analyzer::analyze(&trace);
    Observed {
        checksum: checksums[0],
        sim_time_ns: report.sim_time_ns,
        net_stats: report.net_stats,
        node_lanes: analysis
            .nodes
            .iter()
            .map(|n| (n.node, n.makespan_ns, n.lanes))
            .collect(),
    }
}

/// Assert two engines produced literally the same virtual history.
fn assert_equivalent(schedule: Schedule, nodes: usize) {
    let legacy = observe(EngineMode::ThreadPerNode, nodes, schedule);
    let sharded = observe(EngineMode::Sharded { workers: 0 }, nodes, schedule);
    prop_assert_eq!(
        legacy.checksum,
        sharded.checksum,
        "checksum diverged at {} nodes for {:?}",
        nodes,
        schedule
    );
    prop_assert_eq!(
        legacy.sim_time_ns,
        sharded.sim_time_ns,
        "virtual makespan diverged at {} nodes for {:?}",
        nodes,
        schedule
    );
    prop_assert_eq!(
        &legacy.net_stats,
        &sharded.net_stats,
        "net counters diverged at {} nodes for {:?}",
        nodes,
        schedule
    );
    prop_assert_eq!(
        &legacy.node_lanes,
        &sharded.node_lanes,
        "analyzer lane totals diverged at {} nodes for {:?}",
        nodes,
        schedule
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The tentpole invariant (ISSUE 6, satellite 4): random schedules
    /// through both engines at 4 and 64 nodes are bit-identical in
    /// every virtual-time observable.
    #[test]
    fn engines_agree_on_random_schedules(schedule in schedules()) {
        assert_equivalent(schedule, 4);
        assert_equivalent(schedule, 64);
    }
}

/// Pinned non-random coverage: each kernel shape once, so a proptest
/// draw never silently skips a kernel family, and failures name the
/// exact offender without shrinking.
#[test]
fn engines_agree_on_each_kernel_family() {
    for schedule in [
        Schedule::Sor { n: 48, iters: 2 },
        Schedule::Lu { n: 32 },
        Schedule::LockRing { rounds: 3, skew: 977 },
    ] {
        assert_equivalent(schedule, 4);
    }
}


