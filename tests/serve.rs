//! Workspace-level SLO-telemetry tests: the multi-tenant KV service
//! workload (`apps::kv`) and its `Telemetry` pipeline (latency sketches
//! + virtual-time metrics timeseries), end to end through HAMSTER.
//!
//! * Property: for *any* workload seed and shape, the same seed yields
//!   byte-identical checksums, per-(tenant, op) quantiles, and metrics
//!   timeseries — at 4 and at 64 nodes, under both delivery engines,
//!   with the cost model in the deterministic (below bus-window
//!   saturation) regime.
//! * Integration: under the chaos bench's fault plan, every platform
//!   still produces the fault-free checksum, and for every tenant the
//!   faulted p99 is no better than the fault-free p99 — faults surface
//!   as user-visible latency, never as wrong answers.

use apps::kv::{serve, KvConfig};
use apps::world::run_hamster;
use apps::BenchResult;
use cluster::EngineMode;
use hamster_core::{ClusterConfig, PlatformKind, ServiceOp, Telemetry};
use interconnect::fault::{CrashWindow, FaultPlan, LinkFaults};
use proptest::prelude::*;
use sim::stats::{MetricsRow, Quantiles};
use sim::CostModel;

/// Metrics window: 1 ms of virtual time, matching the `serve` bench.
const WINDOW_NS: u64 = 1_000_000;

/// 4-node cost model: the paper testbed with Ethernet pinned below
/// bus-window saturation (the same rate as
/// `bench::suite::PINNED_ETHERNET_BPS`; this crate does not depend on
/// the bench crate, so the pin is restated here).
fn pinned_cost() -> CostModel {
    let mut cost = CostModel::default();
    cost.ethernet.bytes_per_sec = 250_000_000;
    cost
}

/// 64-node cost model: the deterministic-regime knobs from
/// `tests/engine.rs` — 1 GB/s links, small per-message overheads, and
/// 400 µs latency so wide fan-ins land in different bus windows instead
/// of saturating one (see the rationale there).
fn wide_cost() -> CostModel {
    let mut cost = CostModel::default();
    cost.ethernet.bytes_per_sec = 1_000_000_000;
    cost.ethernet.latency_ns = 400_000;
    cost.ethernet.recv_overhead_ns = 500;
    cost.ethernet.send_overhead_ns = 500;
    cost.ethernet.handler_ns = 200;
    cost
}

/// Everything the SLO artifact is built from, for one run.
#[derive(Debug, PartialEq)]
struct Observed {
    checksum: u64,
    total_ns: u64,
    /// Per tenant: get, put, and merged quantiles.
    quantiles: Vec<Quantiles>,
    rows: Vec<MetricsRow>,
}

fn observe(
    nodes: usize,
    platform: PlatformKind,
    engine: EngineMode,
    cost: CostModel,
    kv: &KvConfig,
    faults: Option<FaultPlan>,
) -> Observed {
    let mut cfg = ClusterConfig::new(nodes, platform);
    cfg.cost = cost;
    cfg.engine = engine;
    cfg.faults = faults;
    let tel = Telemetry::new(kv.tenants, WINDOW_NS);
    let (t2, k2) = (tel.clone(), kv.clone());
    let (_, rs) = run_hamster(&cfg, move |w| serve(w, &k2, &t2));
    let r = BenchResult::merge(&rs);
    let mut quantiles = Vec::new();
    for t in 0..kv.tenants {
        quantiles.push(tel.quantiles(t, ServiceOp::Get));
        quantiles.push(tel.quantiles(t, ServiceOp::Put));
        quantiles.push(tel.tenant_quantiles(t));
    }
    Observed { checksum: r.checksum, total_ns: r.total_ns, quantiles, rows: tel.series_rows() }
}

/// A drawn workload shape. `keys_per_part` stays at the smallest legal
/// value (one page per partition) so the 64-node legs stay CI-sized.
fn kv_config(seed: u64, rounds: usize, batch: usize) -> KvConfig {
    let mut kv = KvConfig::quick();
    kv.seed = seed;
    kv.rounds = rounds;
    kv.batch = batch;
    kv.keys_per_part = 64;
    kv.clients = 128;
    kv
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The tentpole determinism property (ISSUE 10): same seed ⇒
    /// byte-identical checksums, quantiles, and timeseries, at 4 and
    /// 64 nodes, under both delivery engines.
    #[test]
    fn telemetry_is_deterministic_across_engines_and_scale(
        seed in 0u64..=u32::MAX as u64,
        rounds in 2usize..=3,
        batch in 30usize..=60,
    ) {
        let kv = kv_config(seed, rounds, batch);
        for (nodes, cost) in [(4usize, pinned_cost()), (64, wide_cost())] {
            let legacy =
                observe(nodes, PlatformKind::SwDsm, EngineMode::ThreadPerNode, cost, &kv, None);
            let sharded = observe(
                nodes,
                PlatformKind::SwDsm,
                EngineMode::Sharded { workers: 0 },
                cost,
                &kv,
                None,
            );
            let again =
                observe(nodes, PlatformKind::SwDsm, EngineMode::ThreadPerNode, cost, &kv, None);
            prop_assert_eq!(&legacy, &sharded, "engines diverged at {} nodes", nodes);
            prop_assert_eq!(&legacy, &again, "same seed did not reproduce at {} nodes", nodes);
            prop_assert!(legacy.quantiles.iter().any(|q| q.count > 0));
            prop_assert!(!legacy.rows.is_empty());
        }
    }
}

/// The chaos bench's fault plan (drop + dup + delay + reorder + a
/// crash/heal window on the last node).
fn chaos_plan(nodes: usize) -> FaultPlan {
    let mut plan = FaultPlan::seeded(42);
    plan.default_link = LinkFaults {
        drop_ppm: 30_000,
        dup_ppm: 20_000,
        delay_ppm: 50_000,
        delay_ns: 200_000,
        reorder_ppm: 20_000,
        reorder_window_ns: 100_000,
    };
    plan.crashes.push(CrashWindow { node: nodes - 1, from_ns: 6_000_000, until_ns: 12_000_000 });
    plan
}

/// Faults cost latency, not answers: checksums match the fault-free
/// run bit for bit, and no tenant's p99 improves under chaos.
#[test]
fn chaos_degrades_p99_but_not_answers() {
    let nodes = 4;
    let kv = KvConfig::quick();
    for platform in [PlatformKind::Smp, PlatformKind::HybridDsm, PlatformKind::SwDsm] {
        let base = observe(
            nodes,
            platform,
            EngineMode::default(),
            pinned_cost(),
            &kv,
            None,
        );
        let chaos = observe(
            nodes,
            platform,
            EngineMode::default(),
            pinned_cost(),
            &kv,
            Some(chaos_plan(nodes)),
        );
        assert_eq!(
            base.checksum, chaos.checksum,
            "{platform:?}: faults changed the workload result"
        );
        assert!(chaos.total_ns > base.total_ns, "{platform:?}: faults cost no time");
        for t in 0..kv.tenants {
            let bq = &base.quantiles[t * 3 + 2];
            let cq = &chaos.quantiles[t * 3 + 2];
            assert!(
                cq.p99 >= bq.p99,
                "{platform:?} tenant {t}: chaos p99 {} beat fault-free p99 {}",
                cq.p99,
                bq.p99
            );
        }
    }
}
