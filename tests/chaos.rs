//! Workspace-level chaos tests: the fault-injection + retry layer and
//! the elastic-membership layer, end to end through the software DSM.
//!
//! * Property: under *any* seeded drop/dup/delay/reorder plan (rates up
//!   to the chaos bench's and beyond), a 2-node SOR run converges to
//!   the exact fault-free checksum, and the same seed reproduces the
//!   identical fault schedule, counters, and virtual times.
//! * Property: under *any* seeded leave/recover churn schedule — at 4
//!   and at 64 nodes, under both delivery engines — every node computes
//!   the exact stable-membership result and the same seed reproduces
//!   the identical counters and virtual times.
//! * Integration: a node crashes while it manages a barrier mid-run;
//!   survivors see `NodeDown`, back off, and the retried arrival
//!   completes the barrier after the heal — with memory semantics
//!   intact.
//! * Integration: a node crashes mid-run, rejoins through
//!   `DsmNode::rejoin`, and catches up over the incremental delta path
//!   (small divergence must not trigger a snapshot sync).
//! * Integration: token-queue lock handoff survives drop/dup/delay
//!   chaos — the sequence-numbered tenure replay keeps mutual exclusion
//!   and exactly-once semantics. (Content only: contended lock grant
//!   order is real-arrival order, so virtual times are not compared
//!   across runs — see OBSERVABILITY.md, "Contended locks".)

use cluster::{
    Cluster, EngineMode, FabricConfig, LinkKind, MembershipPlan, RunReport, ViewChange,
};
use interconnect::fault::{CrashWindow, FaultPlan, LinkFaults};
use interconnect::{MembershipEvent, Resilience};
use memwire::Distribution;
use proptest::prelude::*;

fn fabric(nodes: usize, faults: Option<FaultPlan>) -> FabricConfig {
    let mut b = FabricConfig::builder().nodes(nodes).link(LinkKind::Ethernet);
    if let Some(plan) = faults {
        b = b.chaos(plan).resilience(Resilience::default());
    }
    b.build()
}

/// Run SOR on the software DSM and return the run report plus the
/// checksum every node agreed on.
fn sor_run(nodes: usize, faults: Option<FaultPlan>) -> (RunReport, u64) {
    let cluster = Cluster::new(fabric(nodes, faults));
    let dsm = swdsm::SwDsm::install(&cluster, swdsm::DsmConfig::default());
    let (report, rs) = cluster.run(|ctx| {
        let w = apps::world::NativeWorld::new(dsm.node(ctx));
        apps::sor::sor(&w, 48, 4, true).checksum
    });
    assert!(rs.iter().all(|&c| c == rs[0]), "nodes disagree on checksum: {rs:?}");
    (report, rs[0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn seeded_fault_plans_converge_and_reproduce(
        seed in any::<u64>(),
        drop_ppm in 0u32..40_000,
        dup_ppm in 0u32..30_000,
        delay_ppm in 0u32..60_000,
        reorder_ppm in 0u32..30_000,
    ) {
        let plan = || {
            let mut p = FaultPlan::seeded(seed);
            p.default_link = LinkFaults {
                drop_ppm,
                dup_ppm,
                delay_ppm,
                delay_ns: 150_000,
                reorder_ppm,
                reorder_window_ns: 80_000,
            };
            p
        };
        let (_, clean) = sor_run(2, None);
        let (r1, c1) = sor_run(2, Some(plan()));
        let (r2, c2) = sor_run(2, Some(plan()));
        // Exactly-once delivery semantics: faults never change results.
        prop_assert_eq!(c1, clean, "chaos checksum diverged from fault-free");
        prop_assert_eq!(c2, clean);
        // Determinism: same seed, same schedule, same virtual history.
        prop_assert_eq!(r1.net_stats, r2.net_stats, "fault schedule not reproducible");
        prop_assert_eq!(r1.sim_time_ns, r2.sim_time_ns, "virtual time not reproducible");
    }
}

/// Slot-sum workload for the churn property: each node writes its own
/// slot, synchronizes through the churn window, and sums every slot.
/// O(nodes) work, so it stays cheap at 64 nodes in debug builds.
fn slot_run(
    nodes: usize,
    engine: EngineMode,
    membership: Option<MembershipPlan>,
) -> (RunReport, Vec<u64>) {
    // The determinism this property asserts only holds below link- and
    // handler-window saturation: a saturated window's slowdown depends
    // on real registration order (see OBSERVABILITY.md). At 64 nodes
    // that takes all three below-saturation conventions at once —
    // Ethernet pinned at 250 MB/s like the chaos bench, the fanout-4
    // tree barrier (63 same-instant arrivals saturate a centralized
    // manager's handler window), and rank-rotated reads in the workload
    // (63 simultaneous fetches of one home's page saturate its egress
    // window).
    let mut cost = sim::CostModel::default();
    cost.ethernet.bytes_per_sec = 250_000_000;
    let sync = cluster::SyncTopology {
        barrier: cluster::BarrierTopology::Tree { fanout: 4 },
        ..cluster::SyncTopology::centralized()
    };
    let mut b = FabricConfig::builder()
        .nodes(nodes)
        .link(LinkKind::Ethernet)
        .cost(cost)
        .sync(sync)
        .engine(engine);
    if let Some(plan) = membership {
        b = b.membership(plan);
    }
    let cluster = Cluster::new(b.build());
    let dsm = swdsm::SwDsm::install(&cluster, swdsm::DsmConfig::default());
    cluster.run(|ctx| {
        let node = dsm.node(ctx);
        let me = node.rank();
        let a = node.alloc(nodes * 4096, Distribution::Block);
        node.barrier(1);
        node.write_u64(a.add((me * 4096) as u32), me as u64 + 1);
        // March into the churn window before synchronizing, so absence
        // windows overlap the barrier protocol.
        node.ctx().compute(2_000_000);
        node.barrier(2);
        // Rank-rotated read order spreads the fetch load over homes.
        let sum: u64 = (0..nodes)
            .map(|n| node.read_u64(a.add((((me + n) % nodes) * 4096) as u32)))
            .sum();
        node.barrier(3);
        sum
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn membership_churn_preserves_results_and_determinism(
        seed in any::<u64>(),
        cycles in 1usize..4,
    ) {
        for &nodes in &[4usize, 64] {
            let expect = nodes as u64 * (nodes as u64 + 1) / 2;
            for engine in [EngineMode::default(), EngineMode::ThreadPerNode] {
                let plan = || MembershipPlan::churn(seed, nodes, 3_000_000, 12_000_000, cycles);
                let (r1, s1) = slot_run(nodes, engine, Some(plan()));
                let (r2, s2) = slot_run(nodes, engine, Some(plan()));
                // Churn never changes what the program computes.
                prop_assert!(
                    s1.iter().all(|&s| s == expect),
                    "churn changed results at {} nodes under {:?}: {:?}",
                    nodes, engine, &s1[..s1.len().min(8)]
                );
                // Same schedule, same counters, same virtual history.
                prop_assert_eq!(&s1, &s2);
                prop_assert_eq!(
                    r1.net_stats, r2.net_stats,
                    "churn schedule not reproducible at {} nodes under {:?}", nodes, engine
                );
                prop_assert_eq!(
                    r1.sim_time_ns, r2.sim_time_ns,
                    "virtual time not reproducible at {} nodes under {:?}", nodes, engine
                );
            }
        }
    }
}

/// The crash/heal scenario from the issue: a node that manages a
/// barrier crashes before the others arrive; survivors' arrivals fail
/// with `NodeDown`, back off, and succeed after the heal.
#[test]
fn crashed_barrier_manager_heals_and_barrier_completes() {
    const NODES: usize = 3;
    // Node 2 manages barrier 2 (id % nodes). Startup ends at 2 ms; the
    // crash covers [3 ms, 9 ms); the retry schedule (≈35 ms of total
    // backoff) comfortably outlasts it.
    let run = |faults: Option<FaultPlan>| {
        let cluster = Cluster::new(fabric(NODES, faults));
        let dsm = swdsm::SwDsm::install(&cluster, swdsm::DsmConfig::default());
        cluster.run(|ctx| {
            let node = dsm.node(ctx);
            let me = node.rank();
            let a = node.alloc(NODES * 4096, Distribution::Block);
            node.barrier(1);
            node.write_u64(a.add((me * 4096) as u32), (me as u64 + 1) * 100);
            // March every node into the crash window before arriving.
            node.ctx().compute(2_000_000);
            node.barrier(2);
            let sum: u64 = (0..NODES)
                .map(|n| node.read_u64(a.add((n * 4096) as u32)))
                .sum();
            node.barrier(3);
            sum
        })
    };

    let (_, clean) = run(None);
    let mut plan = FaultPlan::seeded(7);
    plan.crashes.push(CrashWindow { node: 2, from_ns: 3_000_000, until_ns: 9_000_000 });
    let (report, rs) = run(Some(plan));

    assert_eq!(rs, clean, "crash/heal changed the computed results");
    assert_eq!(rs, vec![600; NODES]);
    let stat = |k: &str| report.net_stats.get(k).copied().unwrap_or(0);
    assert!(stat("nodedown") > 0, "survivors never observed NodeDown: {:?}", report.net_stats);
    assert!(stat("retries") > 0, "barrier completed without retries: {:?}", report.net_stats);
}

/// A node crashes mid-run, its peers write a *small* amount of state
/// while it is away, and it rejoins through `DsmNode::rejoin`: the
/// adaptive transfer must take the incremental delta path (replayed
/// write notices), not a bulk snapshot, and the rejoined node must read
/// back every missed write.
#[test]
fn crashed_node_rejoins_via_delta_sync_and_completes() {
    const NODES: usize = 3;
    const PAGES: usize = 6; // divergence well below the delta cutoff
    const VICTIM: usize = NODES - 1;
    let plan = MembershipPlan::scripted(
        9,
        vec![
            MembershipEvent {
                node: VICTIM,
                at_ns: 8_000_000,
                change: ViewChange::Leave { graceful: false },
            },
            MembershipEvent { node: VICTIM, at_ns: 14_000_000, change: ViewChange::Recover },
        ],
    );
    let cluster = Cluster::new(
        FabricConfig::builder().nodes(NODES).link(LinkKind::Ethernet).membership(plan).build(),
    );
    let dsm = swdsm::SwDsm::install(
        &cluster,
        swdsm::DsmConfig { delta_max_records: 64, ..Default::default() },
    );
    let (report, rs) = cluster.run(|ctx| {
        let node = dsm.node(ctx);
        let me = node.rank();
        let a = node.alloc(PAGES * 4096, Distribution::Block);
        node.barrier(1);
        for p in 0..PAGES {
            node.read_u64(a.add((p * 4096) as u32)); // warm every cache
        }
        node.barrier(2);
        if me == VICTIM {
            // Absent during [8 ms, 14 ms); rejoin just after recovery.
            let now = node.ctx().clock().now();
            node.ctx().compute(14_500_000u64.saturating_sub(now));
            node.rejoin(3);
        } else {
            // Peers write the victim's missed state inside its absence
            // window, then arrive at the rejoin barrier.
            let now = node.ctx().clock().now();
            node.ctx().compute(8_500_000u64.saturating_sub(now));
            for p in 0..PAGES {
                if p % (NODES - 1) == me {
                    node.write_u64(a.add((p * 4096) as u32), p as u64 + 7);
                }
            }
            node.barrier(3);
        }
        let sum: u64 = (0..PAGES).map(|p| node.read_u64(a.add((p * 4096) as u32))).sum();
        node.barrier(4);
        sum
    });
    let expect: u64 = (0..PAGES).map(|p| p as u64 + 7).sum();
    assert_eq!(rs, vec![expect; NODES], "rejoined node diverged from its peers");
    let vstats = dsm.stats(VICTIM);
    assert_eq!(vstats.get("view_changes"), 1);
    assert!(vstats.get("delta_records") > 0, "rejoin did not take the delta path");
    assert_eq!(vstats.get("snapshot_bytes"), 0, "small divergence must not snapshot-sync");
    let nodedown = report.net_stats.get("nodedown").copied().unwrap_or(0);
    assert!(nodedown > 0, "peer flushes never hit the absence window: {:?}", report.net_stats);
}

/// Token-queue lock handoff under the chaos bench's fault mix: the
/// manager-mediated resilient grant machine (sequence-numbered tenures,
/// replayed grants) must keep a lock-protected counter exact through
/// drops, duplicates, and delays — the combination PR-era installs used
/// to reject outright.
#[test]
fn token_queue_locks_survive_chaos() {
    const NODES: usize = 4;
    const ROUNDS: u64 = 8;
    let run = |faults: Option<FaultPlan>| {
        let mut sync = cluster::SyncTopology::centralized();
        sync.locks = cluster::LockTopology::TokenQueue;
        let mut b = FabricConfig::builder().nodes(NODES).link(LinkKind::Ethernet).sync(sync);
        if let Some(plan) = faults {
            b = b.chaos(plan).resilience(Resilience::default());
        }
        let cluster = Cluster::new(b.build());
        let dsm = swdsm::SwDsm::install(&cluster, swdsm::DsmConfig::default());
        cluster.run(|ctx| {
            let node = dsm.node(ctx);
            let a = node.alloc(4096, Distribution::Block);
            node.barrier(1);
            for _ in 0..ROUNDS {
                node.acquire(5);
                let v = node.read_u64(a);
                node.write_u64(a, v + 1);
                node.release(5);
            }
            node.barrier(2);
            node.read_u64(a)
        })
    };

    let (_, clean) = run(None);
    assert_eq!(clean, vec![ROUNDS * NODES as u64; NODES]);
    let plan = || {
        let mut p = FaultPlan::seeded(11);
        p.default_link = LinkFaults {
            drop_ppm: 30_000,
            dup_ppm: 20_000,
            delay_ppm: 50_000,
            delay_ns: 200_000,
            reorder_ppm: 20_000,
            reorder_window_ns: 100_000,
        };
        p
    };
    let (r1, c1) = run(Some(plan()));
    let (r2, c2) = run(Some(plan()));
    assert_eq!(c1, clean, "chaos broke token-queue mutual exclusion");
    assert_eq!(c2, clean, "chaos broke token-queue mutual exclusion on the rerun");
    // No cross-run timing assertions here: this workload *contends* on
    // the lock, and contended grant order follows real message-arrival
    // order (see OBSERVABILITY.md, "Contended locks") — so virtual
    // times can legitimately differ between runs. The content above is
    // the timing-independent part the convention says to assert.
    for r in [&r1, &r2] {
        let retries = r.net_stats.get("retries").copied().unwrap_or(0);
        assert!(retries > 0, "fault mix never exercised the resilient path: {:?}", r.net_stats);
    }
}
