//! Workspace-level chaos tests: the fault-injection + retry layer,
//! end to end through the software DSM.
//!
//! * Property: under *any* seeded drop/dup/delay/reorder plan (rates up
//!   to the chaos bench's and beyond), a 2-node SOR run converges to
//!   the exact fault-free checksum, and the same seed reproduces the
//!   identical fault schedule, counters, and virtual times.
//! * Integration: a node crashes while it manages a barrier mid-run;
//!   survivors see `NodeDown`, back off, and the retried arrival
//!   completes the barrier after the heal — with memory semantics
//!   intact.

use cluster::{Cluster, FabricConfig, LinkKind, RunReport};
use interconnect::fault::{CrashWindow, FaultPlan, LinkFaults};
use interconnect::Resilience;
use memwire::Distribution;
use proptest::prelude::*;

fn fabric(nodes: usize, faults: Option<FaultPlan>) -> FabricConfig {
    let mut b = FabricConfig::builder().nodes(nodes).link(LinkKind::Ethernet);
    if let Some(plan) = faults {
        b = b.chaos(plan).resilience(Resilience::default());
    }
    b.build()
}

/// Run SOR on the software DSM and return the run report plus the
/// checksum every node agreed on.
fn sor_run(nodes: usize, faults: Option<FaultPlan>) -> (RunReport, u64) {
    let cluster = Cluster::new(fabric(nodes, faults));
    let dsm = swdsm::SwDsm::install(&cluster, swdsm::DsmConfig::default());
    let (report, rs) = cluster.run(|ctx| {
        let w = apps::world::NativeWorld::new(dsm.node(ctx));
        apps::sor::sor(&w, 48, 4, true).checksum
    });
    assert!(rs.iter().all(|&c| c == rs[0]), "nodes disagree on checksum: {rs:?}");
    (report, rs[0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn seeded_fault_plans_converge_and_reproduce(
        seed in any::<u64>(),
        drop_ppm in 0u32..40_000,
        dup_ppm in 0u32..30_000,
        delay_ppm in 0u32..60_000,
        reorder_ppm in 0u32..30_000,
    ) {
        let plan = || {
            let mut p = FaultPlan::seeded(seed);
            p.default_link = LinkFaults {
                drop_ppm,
                dup_ppm,
                delay_ppm,
                delay_ns: 150_000,
                reorder_ppm,
                reorder_window_ns: 80_000,
            };
            p
        };
        let (_, clean) = sor_run(2, None);
        let (r1, c1) = sor_run(2, Some(plan()));
        let (r2, c2) = sor_run(2, Some(plan()));
        // Exactly-once delivery semantics: faults never change results.
        prop_assert_eq!(c1, clean, "chaos checksum diverged from fault-free");
        prop_assert_eq!(c2, clean);
        // Determinism: same seed, same schedule, same virtual history.
        prop_assert_eq!(r1.net_stats, r2.net_stats, "fault schedule not reproducible");
        prop_assert_eq!(r1.sim_time_ns, r2.sim_time_ns, "virtual time not reproducible");
    }
}

/// The crash/heal scenario from the issue: a node that manages a
/// barrier crashes before the others arrive; survivors' arrivals fail
/// with `NodeDown`, back off, and succeed after the heal.
#[test]
fn crashed_barrier_manager_heals_and_barrier_completes() {
    const NODES: usize = 3;
    // Node 2 manages barrier 2 (id % nodes). Startup ends at 2 ms; the
    // crash covers [3 ms, 9 ms); the retry schedule (≈35 ms of total
    // backoff) comfortably outlasts it.
    let run = |faults: Option<FaultPlan>| {
        let cluster = Cluster::new(fabric(NODES, faults));
        let dsm = swdsm::SwDsm::install(&cluster, swdsm::DsmConfig::default());
        cluster.run(|ctx| {
            let node = dsm.node(ctx);
            let me = node.rank();
            let a = node.alloc(NODES * 4096, Distribution::Block);
            node.barrier(1);
            node.write_u64(a.add((me * 4096) as u32), (me as u64 + 1) * 100);
            // March every node into the crash window before arriving.
            node.ctx().compute(2_000_000);
            node.barrier(2);
            let sum: u64 = (0..NODES)
                .map(|n| node.read_u64(a.add((n * 4096) as u32)))
                .sum();
            node.barrier(3);
            sum
        })
    };

    let (_, clean) = run(None);
    let mut plan = FaultPlan::seeded(7);
    plan.crashes.push(CrashWindow { node: 2, from_ns: 3_000_000, until_ns: 9_000_000 });
    let (report, rs) = run(Some(plan));

    assert_eq!(rs, clean, "crash/heal changed the computed results");
    assert_eq!(rs, vec![600; NODES]);
    let stat = |k: &str| report.net_stats.get(k).copied().unwrap_or(0);
    assert!(stat("nodedown") > 0, "survivors never observed NodeDown: {:?}", report.net_stats);
    assert!(stat("retries") > 0, "barrier completed without retries: {:?}", report.net_stats);
}
