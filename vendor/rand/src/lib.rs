//! Offline stand-in for the `rand` crate.
//!
//! The workspace only needs seeded, reproducible pseudo-randomness for
//! stress harnesses and tests, so this shim provides `StdRng` +
//! `SeedableRng` + `Rng::{gen, gen_range}` over a splitmix64 core.
//! Distribution quality is irrelevant here; determinism per seed is the
//! contract (the stress binaries print the seed of every failing run).

use std::ops::Range;

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Produce one value from a raw 64-bit sample.
    fn from_u64(raw: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_u64(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Map a raw sample into `[lo, hi)`.
    fn from_range(raw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn from_range(raw: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (raw as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64-bit sample.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }

    /// A value uniform in the half-open `range`. Panics on empty ranges.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range on an empty range");
        T::from_range(self.next_u64(), range.start, range.end)
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    /// The workspace's standard generator: splitmix64. Deterministic per
    /// seed, `Send`, and fast; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let s = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_covers_types() {
        let mut r = StdRng::seed_from_u64(2);
        let _: bool = r.gen();
        let _: u8 = r.gen();
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
