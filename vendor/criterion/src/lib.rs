//! Offline stand-in for the `criterion` crate.
//!
//! Implements the `criterion_group!`/`criterion_main!`/`bench_function`
//! surface with a plain calibrate-then-measure loop: enough to keep the
//! workspace's micro-benchmarks runnable (`cargo bench`) and compiling
//! (`cargo test`) without a crates.io mirror. No statistics beyond
//! median-of-runs; numbers print as ns/iter.

use std::time::Instant;

/// Benchmark driver passed to each registered function.
pub struct Criterion {
    /// Target wall-clock time per measurement batch.
    measure_ms: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { measure_ms: 200 }
    }
}

/// Timing loop handle passed to `bench_function` closures.
pub struct Bencher {
    ns_per_iter: f64,
    measure_ms: u64,
}

impl Bencher {
    /// Measure `f`, storing its cost per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it runs ≥ ~5 ms.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let el = t0.elapsed();
            if el.as_millis() >= 5 || batch > 1 << 30 {
                break;
            }
            batch *= 2;
        }
        // Measure: repeat batches for the configured window, keep the
        // fastest batch (least-disturbed schedule).
        let deadline = Instant::now() + std::time::Duration::from_millis(self.measure_ms);
        let mut best = f64::INFINITY;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let per = t0.elapsed().as_nanos() as f64 / batch as f64;
            if per < best {
                best = per;
            }
        }
        self.ns_per_iter = best;
    }
}

impl Criterion {
    /// Run `f` as the benchmark `name` and print its cost.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: f64::NAN, measure_ms: self.measure_ms };
        f(&mut b);
        println!("{name:<40} {:>12.1} ns/iter", b.ns_per_iter);
        self
    }
}

/// Re-export for closures that want `criterion::black_box`.
pub use std::hint::black_box;

/// Define a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion { measure_ms: 10 };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
