//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided — the multi-producer multi-consumer
//! queue the interconnect fabric uses for per-node inboxes and reply
//! slots — implemented over `std::sync` primitives.

pub mod channel {
    //! MPMC channels with `crossbeam_channel`'s API shape.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        /// Waiters: receivers blocked on empty, senders blocked on full.
        readable: Condvar,
        writable: Condvar,
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Explicitly closed via [`Receiver::close_and_drain`]. Checked
        /// under the queue mutex so close-then-drain is atomic with
        /// respect to concurrent sends.
        closed: AtomicBool,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message, like `crossbeam_channel::SendError`.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        // Like crossbeam, printable regardless of whether T is Debug.
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a channel. Cloneable (multi-producer).
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half of a channel. Cloneable (multi-consumer).
    pub struct Receiver<T>(Arc<Chan<T>>);

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            readable: Condvar::new(),
            writable: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            closed: AtomicBool::new(false),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    /// A channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// A channel holding at most `cap` in-flight messages; sends block
    /// while the channel is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "rendezvous channels are not supported");
        channel(Some(cap))
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        /// Fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if self.0.receivers.load(Ordering::Acquire) == 0
                    || self.0.closed.load(Ordering::Relaxed)
                {
                    return Err(SendError(value));
                }
                match self.0.cap {
                    Some(cap) if q.len() >= cap => {
                        q = self.0.writable.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            self.0.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake receivers so they observe disconnect.
                self.0.readable.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive a message, blocking while the channel is empty.
        /// Fails once the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.0.writable.notify_one();
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.0.readable.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Take a message only if one is ready.
        pub fn try_recv(&self) -> Option<T> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            let v = q.pop_front();
            if v.is_some() {
                drop(q);
                self.0.writable.notify_one();
            }
            v
        }

        /// A blocking iterator over received messages; ends when all
        /// senders are dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Atomically close the channel and take every queued message.
        ///
        /// After this returns, every `send` fails — including sends that
        /// were racing with the close: the closed flag is set under the
        /// queue mutex, so a message is either in the returned drain or
        /// bounced back to its sender, never silently stranded. Used for
        /// race-free fabric teardown.
        pub fn close_and_drain(&self) -> Vec<T> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.0.closed.store(true, Ordering::Relaxed);
            let drained = q.drain(..).collect();
            drop(q);
            // Senders blocked on a full bounded channel must re-check.
            self.0.writable.notify_all();
            drained
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.0.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver: wake senders so they observe disconnect.
                self.0.writable.notify_all();
            }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, vec![1, 2]);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_one_acts_as_reply_slot() {
            let (tx, rx) = bounded(1);
            let h = std::thread::spawn(move || tx.send(42).unwrap());
            assert_eq!(rx.recv(), Ok(42));
            h.join().unwrap();
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn close_and_drain_bounces_later_sends() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.close_and_drain(), vec![1, 2]);
            assert_eq!(tx.send(3), Err(SendError(3)));
            assert_eq!(rx.try_recv(), None);
        }

        #[test]
        fn mpmc_all_messages_arrive_once() {
            let (tx, rx) = unbounded::<u32>();
            let mut senders = Vec::new();
            for s in 0..4 {
                let tx = tx.clone();
                senders.push(std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(s * 100 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let mut receivers = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                receivers.push(std::thread::spawn(move || rx.iter().collect::<Vec<_>>()));
            }
            drop(rx);
            for s in senders {
                s.join().unwrap();
            }
            let mut all: Vec<u32> =
                receivers.into_iter().flat_map(|h| h.join().unwrap()).collect();
            all.sort();
            assert_eq!(all, (0u32..4).flat_map(|s| (0..100).map(move |i| s * 100 + i)).collect::<Vec<_>>());
        }
    }
}
