//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the tiny subset of `parking_lot`'s API it actually
//! uses, implemented over `std::sync`. Semantics match `parking_lot`
//! where the two differ from `std`:
//!
//! * `lock()`/`read()`/`write()` return guards directly (no poison
//!   `Result`); a poisoned `std` lock is recovered transparently, since
//!   the simulation's panics are already contained per-handler.
//! * `Condvar::wait` takes `&mut MutexGuard` instead of consuming it.

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive (poison-free `lock()` API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

/// A reader-writer lock (poison-free `read()`/`write()` API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable usable with [`MutexGuard`] in place
/// (`parking_lot` style: the guard is re-acquired before returning).
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Atomically release the guard's mutex and block until notified;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
