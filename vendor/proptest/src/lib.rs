//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io mirror, so the workspace
//! vendors the subset of proptest it uses: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`, ranges / tuples / `any` /
//! [`strategy::Just`] / [`prop_oneof!`] / [`collection::vec`]
//! strategies, and `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with its case number; the
//!   generator is deterministic per (test name, case index), so every
//!   failure replays exactly under `cargo test`.
//! * **`prop_assert*` panic** instead of returning `Err`, so a failure
//!   aborts the whole test rather than just the case.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Per-test configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for every sampled case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $( let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Assert a property holds (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert two values are equal (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// A strategy choosing uniformly between the given strategies, which
/// must share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let choices: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($s)),+];
        $crate::strategy::OneOf::new(choices)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_any(pair in (any::<bool>(), 1u64..100)) {
            prop_assert!(pair.1 >= 1 && pair.1 < 100);
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn map_and_oneof(v in prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_is_honoured(_x in 0u8..255) {
            // Body runs 7 times; nothing to assert beyond not crashing.
        }
    }

    #[test]
    fn deterministic_replay() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn inclusive_range_single_point() {
        let mut rng = crate::test_runner::TestRng::deterministic("p", 0);
        let v = Strategy::sample(&(4096usize..=4096), &mut rng);
        assert_eq!(v, 4096);
    }
}
