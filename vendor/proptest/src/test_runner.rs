//! The deterministic generator behind every property test.

/// A splitmix64 generator seeded from (test name, case index), so each
/// case of each property is fully reproducible without a seed file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for `case` of the test named `name`.
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { state: h ^ ((case as u64) << 32 | 0x9E37) }
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}
