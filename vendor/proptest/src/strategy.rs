//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing random values of one type.
///
/// Object-safe for `sample`; combinators require `Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(value)` for every generated `value`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Integer types samplable from ranges and `any`.
pub trait SampleInt: Copy {
    /// Map a raw 64-bit sample into `[lo, hi]` (inclusive).
    fn from_raw_inclusive(raw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleInt for $t {
            fn from_raw_inclusive(raw: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (raw as u128 % span) as i128) as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                SampleInt::from_raw_inclusive(rng.next_u64(), self.start, self.end - 1)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                SampleInt::from_raw_inclusive(rng.next_u64(), *self.start(), *self.end())
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Marker for types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produce a value from a raw 64-bit sample.
    fn arbitrary(raw: u64) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(raw: u64) -> Self {
        raw & 1 == 1
    }
}

/// The full value range of `T`: `any::<u8>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng.next_u64())
    }
}

/// A strategy producing clones of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`crate::prop_oneof!`]: a uniform choice among
/// boxed strategies of one value type.
pub struct OneOf<V> {
    choices: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Build from a non-empty choice list.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one branch");
        Self { choices }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.choices.len() as u64) as usize;
        self.choices[i].sample(rng)
    }
}

/// Length bounds for [`crate::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi_inclusive: n }
    }
}

/// Strategy returned by [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = SampleInt::from_raw_inclusive(
            rng.next_u64(),
            self.size.lo,
            self.size.hi_inclusive,
        );
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}
