#![warn(missing_docs)]
//! # hamster — A Framework for Portable Shared Memory Programming
//!
//! Umbrella crate for the Rust reproduction of the HAMSTER framework
//! (Schulz & McKee, IPPS 2003). It re-exports the workspace crates under
//! stable module names:
//!
//! * [`core`] — the HAMSTER interface: the five orthogonal management
//!   modules (memory, consistency, synchronization, task, cluster control),
//!   per-module performance monitoring, and the consistency API.
//! * [`models`] — thin programming-model adapters (SPMD, ANL macros,
//!   TreadMarks, HLRC, JiaJia, POSIX/Win32-style threads, Cray shmem).
//! * [`swdsm`] — the JiaJia-style home-based scope-consistency software
//!   DSM (also usable natively, which is the paper's Figure 2 baseline).
//! * [`hybriddsm`] — the SCI-VM-style hybrid DSM.
//! * [`cluster`], [`interconnect`], [`memwire`], [`sim`] — the simulated
//!   cluster substrate (see `DESIGN.md` for the substitution rationale).
//! * [`apps`] — the paper's benchmark suite (Table 1).
//! * [`analyzer`] — causal trace analysis: critical-path extraction,
//!   contention and sharing attribution over `sim::trace` event streams
//!   (see `OBSERVABILITY.md`).
//!
//! ## Quickstart
//!
//! ```
//! use hamster::core::{ClusterConfig, PlatformKind};
//!
//! // Run a 2-node SPMD program on the software-DSM platform.
//! let cfg = ClusterConfig::new(2, PlatformKind::SwDsm);
//! let report = hamster::core::run_spmd(&cfg, |ham| {
//!     let region = ham.mem().alloc_default(4096).unwrap();
//!     ham.sync().barrier(0);
//!     if ham.task().rank() == 0 {
//!         ham.mem().write_u64(region.addr(), 42);
//!     }
//!     ham.cons().barrier_sync(0);
//!     assert_eq!(ham.mem().read_u64(region.addr()), 42);
//! });
//! assert_eq!(report.nodes, 2);
//! ```

pub use analyzer;
pub use apps;
pub use cluster;
pub use hamster_core as core;
pub use hybriddsm;
pub use interconnect;
pub use memwire;
pub use models;
pub use sim;
pub use swdsm;
