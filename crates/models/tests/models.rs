//! End-to-end tests: each programming model running a small program on
//! HAMSTER, across platforms where meaningful.

use hamster_core::{ClusterConfig, PlatformKind, Runtime};

const PLATFORMS: [PlatformKind; 3] =
    [PlatformKind::Smp, PlatformKind::HybridDsm, PlatformKind::SwDsm];

#[test]
fn jiajia_counter_and_barrier() {
    for platform in PLATFORMS {
        let rt = Runtime::new(ClusterConfig::new(3, platform));
        let (_, results) = rt.run(|ham| {
            let jia = models::jiajia::jia_init(ham.clone());
            let a = jia.jia_alloc(4096);
            jia.jia_barrier();
            for _ in 0..4 {
                jia.jia_lock(1);
                let v = jia.load_u64(a);
                jia.store_u64(a, v + 1);
                jia.jia_unlock(1);
            }
            jia.jia_barrier();
            let v = jia.load_u64(a);
            jia.jia_exit();
            v
        });
        assert_eq!(results, vec![12; 3], "platform {platform:?}");
    }
}

#[test]
fn treadmarks_single_node_alloc_and_distribute() {
    let rt = Runtime::new(ClusterConfig::new(3, PlatformKind::SwDsm));
    let (_, results) = rt.run(|ham| {
        let tmk = models::treadmarks::tmk_startup(ham.clone());
        let a = if tmk.tmk_proc_id() == 0 {
            let a = tmk.tmk_malloc(4096);
            tmk.store_f64(a, 2.5);
            tmk.tmk_distribute(a, 4096);
            a
        } else {
            tmk.tmk_receive_distribution()
        };
        tmk.tmk_barrier(1);
        let v = tmk.load_f64(a);
        tmk.tmk_exit();
        v
    });
    assert_eq!(results, vec![2.5; 3]);
}

#[test]
fn treadmarks_locks_protect_updates() {
    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::SwDsm));
    let (_, results) = rt.run(|ham| {
        let tmk = models::treadmarks::tmk_startup(ham.clone());
        let a = if tmk.tmk_proc_id() == 0 {
            let a = tmk.tmk_malloc(64);
            tmk.tmk_distribute(a, 64);
            a
        } else {
            tmk.tmk_receive_distribution()
        };
        tmk.tmk_barrier(1);
        for _ in 0..6 {
            tmk.tmk_lock_acquire(2);
            let v = tmk.load_u64(a);
            tmk.store_u64(a, v + 1);
            tmk.tmk_lock_release(2);
        }
        tmk.tmk_barrier(2);
        let v = tmk.load_u64(a);
        tmk.tmk_exit();
        v
    });
    assert_eq!(results, vec![12; 2]);
}

#[test]
fn hlrc_full_surface() {
    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::SwDsm));
    let (_, results) = rt.run(|ham| {
        let h = models::hlrc::hlrc_init(ham.clone());
        let a = h.malloc_home(4096, 1);
        h.barrier(1);
        if h.my_pid() == 0 {
            h.acquire(1);
            h.write_double(a, 1.5);
            h.write_long(a.add(8), 7);
            h.memput(a.add(16), &[1, 2, 3]);
            h.release(1);
        }
        h.barrier(2);
        let mut buf = [0u8; 3];
        h.memget(a.add(16), &mut buf);
        let stats = h.stat_query("mem");
        assert!(stats["reads"] + stats["writes"] > 0);
        assert!(h.time() > 0.0);
        let out = (h.read_double(a), h.read_long(a.add(8)), buf);
        h.exit();
        out
    });
    for r in results {
        assert_eq!(r, (1.5, 7, [1, 2, 3]));
    }
}

#[test]
fn spmd_reductions_and_ranges() {
    for platform in PLATFORMS {
        let rt = Runtime::new(ClusterConfig::new(4, platform));
        let (_, results) = rt.run(|ham| {
            let spmd = models::spmd::spmd_begin(ham.clone());
            let data = spmd.shared_array(64);
            let scratch = spmd.shared_array(16);
            spmd.barrier(1);
            let (lo, hi) = spmd.my_block(64);
            let mine: Vec<f64> = (lo..hi).map(|i| i as f64).collect();
            spmd.put_range(&data, lo, &mine);
            spmd.barrier(2);
            let mut all = vec![0.0; 64];
            spmd.get_range(&data, 0, &mut all);
            let local_sum: f64 = all.iter().sum();
            let reduced = spmd.reduce_sum(&scratch, spmd.my_rank() as f64);
            let bcast = spmd.broadcast(&scratch, 2, 99.0);
            spmd.spmd_end();
            (local_sum, reduced, bcast)
        });
        for r in &results {
            assert_eq!(r.0, (0..64).sum::<usize>() as f64, "platform {platform:?}");
            assert_eq!(r.1, 6.0);
            assert_eq!(r.2, 99.0);
        }
    }
}

#[test]
fn anl_macros_compile_and_run() {
    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::HybridDsm));
    let (_, results) = rt.run(|ham| {
        let env = models::MAIN_INITENV!(ham.clone());
        let a = models::G_MALLOC!(env, 4096);
        let l = env.lock_init();
        let b = env.barrier_init();
        models::BARRIER!(env, b);
        models::LOCK!(env, l);
        let v = env.ham().mem().read_u64(a);
        env.ham().mem().write_u64(a, v + 1);
        models::UNLOCK!(env, l);
        models::BARRIER!(env, b);
        let t = models::CLOCK!(env);
        assert!(t > 0);
        let v = env.ham().mem().read_u64(a);
        models::MAIN_END!(env);
        v
    });
    assert_eq!(results, vec![2, 2]);
}

#[test]
fn pthreads_create_join_and_mutex() {
    for platform in [PlatformKind::Smp, PlatformKind::SwDsm] {
        let rt = Runtime::new(ClusterConfig::new(3, platform));
        let (_, results) = rt.run(|ham| {
            let pt = models::pthreads::Pthreads::init(ham.clone());
            let region = ham.mem().alloc_default(64).unwrap();
            let m = pt.mutex_init(1);
            pt.barrier_wait(1);
            if pt.self_id() == 0 {
                // Two remote threads increment the shared counter.
                let addr = region.addr();
                let mk = |_| {
                    move |remote: hamster_core::Hamster| {
                        let pt2 = models::pthreads::Pthreads::init(remote);
                        let m2 = pt2.mutex_init(1);
                        for _ in 0..5 {
                            pt2.mutex_lock(m2);
                            let v = pt2.ham().mem().read_u64(addr);
                            pt2.ham().mem().write_u64(addr, v + 1);
                            pt2.mutex_unlock(m2);
                        }
                    }
                };
                let t1 = pt.create_on(1, mk(1));
                let t2 = pt.create_on(2, mk(2));
                pt.join(t1);
                pt.join(t2);
            }
            pt.barrier_wait(2);
            pt.mutex_lock(m);
            let v = ham.mem().read_u64(region.addr());
            pt.mutex_unlock(m);
            v
        });
        assert_eq!(results, vec![10; 3], "platform {platform:?}");
    }
}

#[test]
fn pthreads_condvar_producer_consumer() {
    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::Smp));
    let (_, results) = rt.run(|ham| {
        let pt = models::pthreads::Pthreads::init(ham.clone());
        let flag = ham.mem().alloc_default(64).unwrap();
        let m = pt.mutex_init(3);
        let c = pt.cond_init();
        pt.barrier_wait(1);
        if pt.self_id() == 1 {
            // Consumer: wait until the flag is set.
            pt.mutex_lock(m);
            while pt.ham().mem().read_u64(flag.addr()) == 0 {
                pt.cond_wait(c, m);
            }
            let v = pt.ham().mem().read_u64(flag.addr());
            pt.mutex_unlock(m);
            v
        } else {
            // Producer: set after some virtual work.
            ham.compute(2_000_000);
            pt.mutex_lock(m);
            pt.ham().mem().write_u64(flag.addr(), 5);
            pt.cond_signal(c);
            pt.mutex_unlock(m);
            0
        }
    });
    assert_eq!(results[1], 5);
}

#[test]
fn win32_threads_events_and_semaphores() {
    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::Smp));
    let (_, results) = rt.run(|ham| {
        let w = models::win32::Win32::init(ham.clone());
        let counter = ham.mem().alloc_default(64).unwrap();
        let ev = w.create_event(false, 1);
        let sem = w.create_semaphore(0, 1);
        ham.sync().barrier(1);
        if w.current_node() == 0 {
            let addr = counter.addr();
            let t = w.create_thread_on(1, move |remote| {
                let w2 = models::win32::Win32::init(remote);
                w2.interlocked_increment(addr);
                w2.interlocked_increment(addr);
            });
            w.wait_for_single_object(t); // join
            w.set_event(ev);
            w.release_semaphore(sem, 2);
            w.close_handle(t);
            ham.sync().barrier(2);
            ham.mem().read_u64(counter.addr())
        } else {
            w.wait_for_single_object(ev); // event
            w.wait_for_single_object(sem); // semaphore P
            w.wait_for_single_object(sem); // semaphore P
            ham.sync().barrier(2);
            ham.mem().read_u64(counter.addr())
        }
    });
    assert_eq!(results, vec![2, 2]);
}

#[test]
fn win32_mutex_protects() {
    let rt = Runtime::new(ClusterConfig::new(3, PlatformKind::HybridDsm));
    let (_, results) = rt.run(|ham| {
        let w = models::win32::Win32::init(ham.clone());
        let region = ham.mem().alloc_default(64).unwrap();
        let m = w.create_mutex(7);
        ham.sync().barrier(1);
        for _ in 0..5 {
            w.wait_for_single_object(m);
            let v = ham.mem().read_u64(region.addr());
            ham.mem().write_u64(region.addr(), v + 1);
            w.release_mutex(m);
        }
        ham.sync().barrier(2);
        ham.mem().read_u64(region.addr())
    });
    assert_eq!(results, vec![15; 3]);
}

#[test]
fn shmem_put_get_symmetric() {
    for platform in PLATFORMS {
        let rt = Runtime::new(ClusterConfig::new(4, platform));
        let (_, results) = rt.run(|ham| {
            let sh = models::shmem::shmem_init(ham.clone());
            let sym = sh.malloc(256);
            sh.barrier_all();
            // Each PE puts its id into its right neighbour's slot 0.
            let right = (sh.my_pe() + 1) % sh.n_pes();
            sh.long_p(sym, 0, sh.my_pe() as u64, right);
            sh.quiet();
            sh.barrier_all();
            let got = sh.long_g(sym, 0, sh.my_pe());
            sh.finalize();
            (got, sh.my_pe())
        });
        for (got, me) in results {
            let left = (me + 4 - 1) % 4;
            assert_eq!(got, left as u64, "platform {platform:?}");
        }
    }
}

#[test]
fn shmem_reduction_and_broadcast() {
    let rt = Runtime::new(ClusterConfig::new(4, PlatformKind::HybridDsm));
    let (_, results) = rt.run(|ham| {
        let sh = models::shmem::shmem_init(ham.clone());
        let scratch = sh.malloc(512);
        sh.barrier_all();
        let sum = sh.double_sum_to_all(scratch, (sh.my_pe() + 1) as f64);
        let b = sh.broadcast64(scratch, 3, 4242);
        sh.finalize();
        (sum, b)
    });
    for (sum, b) in results {
        assert_eq!(sum, 10.0);
        assert_eq!(b, 4242);
    }
}

#[test]
fn shmem_bulk_transfers() {
    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::SwDsm));
    let (_, results) = rt.run(|ham| {
        let sh = models::shmem::shmem_init(ham.clone());
        let sym = sh.malloc(8192);
        sh.barrier_all();
        if sh.my_pe() == 0 {
            let data: Vec<u8> = (0..4096).map(|i| (i % 200) as u8).collect();
            sh.putmem(sym, 0, &data, 1);
            sh.quiet();
        }
        sh.barrier_all();
        let ok = if sh.my_pe() == 1 {
            let mut out = vec![0u8; 4096];
            sh.getmem(sym, 0, &mut out, 1);
            out.iter().enumerate().all(|(i, &b)| b == (i % 200) as u8)
        } else {
            true
        };
        sh.finalize();
        ok
    });
    assert_eq!(results, vec![true, true]);
}

#[test]
fn smp_spmd_workers_split_work() {
    let rt = Runtime::new(ClusterConfig::new(2, PlatformKind::Smp));
    let (_, results) = rt.run(|ham| {
        let model = models::smp_spmd::smp_spmd_begin(ham.clone());
        let arr = model.shared_array(32);
        model.barrier(1);
        let (lo, hi) = model.spmd().my_block(32);
        let region = arr.region();
        model.parallel_halves(lo, hi, move |h, a, b| {
            for i in a..b {
                h.mem().write_f64(region.addr().add((i * 8) as u32), i as f64);
            }
        });
        model.barrier(2);
        let mut out = vec![0.0; 32];
        model.spmd().get_range(&arr, 0, &mut out);
        model.end();
        out.iter().enumerate().all(|(i, &v)| v == i as f64)
    });
    assert_eq!(results, vec![true, true]);
}

#[test]
fn omp_worksharing_and_reductions() {
    for platform in PLATFORMS {
        let rt = Runtime::new(ClusterConfig::new(3, platform));
        let (_, results) = rt.run(|ham| {
            let omp = models::omp::omp_init(ham.clone());
            let data = ham.mem().alloc_default(64 * 8).unwrap();
            omp.parallel(|omp| {
                // Static loop: each thread writes its chunk.
                omp.for_static(0, 64, |i| {
                    ham.mem().write_u64(data.at(i * 8), (i * 3) as u64);
                });
                // Reduction over each thread's partial sum.
                let mut partial = 0.0;
                omp.for_static(0, 64, |i| {
                    partial += ham.mem().read_u64(data.at(i * 8)) as f64;
                });
                let total = omp.reduction_sum(partial);
                assert_eq!(total, (0..64).map(|i| i * 3).sum::<usize>() as f64);
            });
            // Dynamic loop with critical-section accumulation.
            let acc = ham.mem().alloc_default(64).unwrap();
            omp.parallel(|omp| {
                omp.for_dynamic(0, 40, 4, |_| {
                    omp.critical(1, || {
                        let v = ham.mem().read_u64(acc.addr());
                        ham.mem().write_u64(acc.addr(), v + 1);
                    });
                });
            });
            ham.mem().read_u64(acc.addr())
        });
        assert_eq!(results, vec![40; 3], "platform {platform:?}");
    }
}

#[test]
fn omp_single_and_atomic() {
    let rt = Runtime::new(ClusterConfig::new(4, PlatformKind::SwDsm));
    let (_, results) = rt.run(|ham| {
        let omp = models::omp::omp_init(ham.clone());
        let cell = ham.mem().alloc_default(64).unwrap();
        omp.parallel(|omp| {
            omp.single(|| {
                ham.mem().write_u64(cell.addr(), 100);
            });
            // Everyone sees the single's effect, then adds atomically.
            omp.atomic_add(cell.addr(), 1);
            omp.barrier();
        });
        ham.mem().read_u64(cell.addr())
    });
    assert_eq!(results, vec![104; 4]);
}

#[test]
fn pthreads_rwlock_semantics() {
    let rt = Runtime::new(ClusterConfig::new(3, PlatformKind::HybridDsm));
    let (_, results) = rt.run(|ham| {
        let pt = models::pthreads::Pthreads::init(ham.clone());
        let cell = ham.mem().alloc_default(64).unwrap();
        let rw = pt.rwlock_init(1);
        pt.barrier_wait(1);
        if pt.self_id() == 0 {
            pt.rwlock_wrlock(rw);
            ham.mem().write_u64(cell.addr(), 42);
            pt.rwlock_unlock(rw);
            pt.barrier_wait(2);
            42
        } else {
            pt.barrier_wait(2);
            pt.rwlock_rdlock(rw);
            let v = ham.mem().read_u64(cell.addr());
            pt.rwlock_unlock(rw);
            v
        }
    });
    assert_eq!(results, vec![42; 3]);
}
