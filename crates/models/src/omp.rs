//! An OpenMP-flavoured model, as a HAMSTER programming model.
//!
//! The paper's motivation names OpenMP as shared memory's "most notable
//! effort" at standardization — but one targeting SMPs only. This
//! adapter shows the directive vocabulary (parallel regions, static and
//! dynamic worksharing, `critical`, `single`, `master`, reductions,
//! `atomic`) mapping onto HAMSTER services just like the other nine
//! models, and therefore running on clusters too.
//!
//! HAMSTER's execution model is already SPMD, so a "parallel region" is
//! the natural state; the adapter supplies the worksharing and
//! synchronization directives around it.

use hamster_core::{Distribution, GlobalAddr, Hamster};

const OMP_BARRIER: u32 = 0x6000_0000;
const OMP_CRITICAL_BASE: u32 = 0x0500_0000;

/// A thread's binding to the OpenMP-style model.
pub struct Omp {
    ham: Hamster,
    /// Shared scratch: `[dynamic index][reduction slots…]`.
    scratch: GlobalAddr,
}

/// `omp_init`: attach the model (collective — allocates the shared
/// worksharing state).
pub fn omp_init(ham: Hamster) -> Omp {
    let nodes = ham.task().nodes();
    let scratch = ham
        .mem()
        .alloc(
            (2 + nodes) * 8,
            hamster_core::AllocSpec { dist: Distribution::OnNode(0), ..Default::default() },
        )
        .expect("omp_init")
        .addr();
    Omp { ham, scratch }
}

impl Omp {
    /// `omp_get_thread_num`.
    pub fn thread_num(&self) -> usize {
        self.ham.task().rank()
    }

    /// `omp_get_num_threads`.
    pub fn num_threads(&self) -> usize {
        self.ham.task().nodes()
    }

    /// `#pragma omp parallel`: run `f` in a barrier-delimited region
    /// (all threads execute it; HAMSTER is SPMD so they are already
    /// running — the region adds the entry/exit synchronization).
    pub fn parallel<T>(&self, f: impl FnOnce(&Omp) -> T) -> T {
        self.ham.sync().barrier(OMP_BARRIER);
        let out = f(self);
        self.ham.cons().barrier_sync(OMP_BARRIER);
        out
    }

    /// `#pragma omp for schedule(static)`: each thread gets one
    /// contiguous chunk of `[lo, hi)`. Implicit barrier at the end.
    pub fn for_static(&self, lo: usize, hi: usize, mut f: impl FnMut(usize)) {
        let n = hi.saturating_sub(lo);
        let per = n.div_ceil(self.num_threads());
        let my_lo = lo + (self.thread_num() * per).min(n);
        let my_hi = lo + ((self.thread_num() + 1) * per).min(n);
        for i in my_lo..my_hi {
            f(i);
        }
        self.ham.cons().barrier_sync(OMP_BARRIER);
    }

    /// `#pragma omp for schedule(dynamic, chunk)`: threads grab chunks
    /// from a shared index. Implicit barrier at the end. The caller must
    /// enter with the loop's shared index reset — use inside
    /// [`Omp::parallel`], one worksharing loop at a time.
    pub fn for_dynamic(&self, lo: usize, hi: usize, chunk: usize, mut f: impl FnMut(usize)) {
        assert!(chunk > 0);
        // Reset the shared index once (single + barrier semantics).
        self.single(|| {
            self.ham.mem().write_u64(self.scratch, lo as u64);
        });
        loop {
            let start = self.ham.sync().fetch_add_u64(self.scratch, chunk as u64) as usize;
            if start >= hi {
                break;
            }
            for i in start..(start + chunk).min(hi) {
                f(i);
            }
        }
        self.ham.cons().barrier_sync(OMP_BARRIER);
    }

    /// `#pragma omp critical(name)`.
    pub fn critical<T>(&self, name: u32, f: impl FnOnce() -> T) -> T {
        self.ham.cons().acquire_scope(OMP_CRITICAL_BASE + name);
        let out = f();
        self.ham.cons().release_scope(OMP_CRITICAL_BASE + name);
        out
    }

    /// `#pragma omp single`: exactly one thread runs `f`; implicit
    /// barrier after (so its effects are visible to all).
    pub fn single(&self, f: impl FnOnce()) {
        if self.thread_num() == 0 {
            f();
        }
        self.ham.cons().barrier_sync(OMP_BARRIER);
    }

    /// `#pragma omp master`: the master thread runs `f`, no barrier.
    pub fn master(&self, f: impl FnOnce()) {
        if self.thread_num() == 0 {
            f();
        }
    }

    /// `#pragma omp barrier`.
    pub fn barrier(&self) {
        self.ham.cons().barrier_sync(OMP_BARRIER);
    }

    /// `reduction(+: x)`: every thread contributes `v`; all receive the
    /// sum.
    pub fn reduction_sum(&self, v: f64) -> f64 {
        let slot = self.scratch.add((2 + self.thread_num()) as u32 * 8);
        self.ham.mem().write_f64(slot, v);
        self.ham.cons().barrier_sync(OMP_BARRIER);
        let mut sum = 0.0;
        for t in 0..self.num_threads() {
            sum += self.ham.mem().read_f64(self.scratch.add((2 + t) as u32 * 8));
        }
        self.ham.cons().barrier_sync(OMP_BARRIER);
        sum
    }

    /// `#pragma omp atomic`: fetch-and-add on shared memory.
    pub fn atomic_add(&self, addr: GlobalAddr, v: u64) -> u64 {
        self.ham.sync().fetch_add_u64(addr, v)
    }

    /// `omp_get_wtime`.
    pub fn wtime(&self) -> f64 {
        self.ham.wtime()
    }

    /// The underlying HAMSTER handle.
    pub fn ham(&self) -> &Hamster {
        &self.ham
    }
}
