//! The HLRC (Home-based Lazy Release Consistency) API, as a HAMSTER
//! programming model.
//!
//! Like JiaJia, HLRC uses global synchronous allocation, so every call
//! maps directly onto a HAMSTER service (the paper reports 5.5 lines
//! per call — the thinnest per-call adapter of Table 2).

use hamster_core::{Distribution, GlobalAddr, Hamster};

/// A process's binding to the HLRC model.
pub struct Hlrc {
    ham: Hamster,
}

/// `hlrc_init`: attach the model.
pub fn hlrc_init(ham: Hamster) -> Hlrc {
    Hlrc { ham }
}

impl Hlrc {
    /// `hlrc_my_pid`.
    pub fn my_pid(&self) -> usize {
        self.ham.task().rank()
    }

    /// `hlrc_num_procs`.
    pub fn num_procs(&self) -> usize {
        self.ham.task().nodes()
    }

    /// `hlrc_malloc`: global synchronous allocation, round-robin homes.
    pub fn malloc(&self, bytes: usize) -> GlobalAddr {
        let spec =
            hamster_core::AllocSpec { dist: Distribution::Cyclic, ..Default::default() };
        self.ham.mem().alloc(bytes, spec).expect("hlrc_malloc").addr()
    }

    /// `hlrc_malloc_home`: allocation homed on one process.
    pub fn malloc_home(&self, bytes: usize, home: usize) -> GlobalAddr {
        let spec =
            hamster_core::AllocSpec { dist: Distribution::OnNode(home), ..Default::default() };
        self.ham.mem().alloc(bytes, spec).expect("hlrc_malloc_home").addr()
    }

    /// `hlrc_acquire`.
    pub fn acquire(&self, lock: u32) {
        self.ham.cons().acquire_scope(lock);
    }

    /// `hlrc_release`.
    pub fn release(&self, lock: u32) {
        self.ham.cons().release_scope(lock);
    }

    /// `hlrc_barrier`.
    pub fn barrier(&self, id: u32) {
        self.ham.cons().barrier_sync(id);
    }

    /// `hlrc_flush`.
    pub fn flush(&self) {
        self.ham.cons().flush();
    }

    /// `hlrc_read_double`.
    pub fn read_double(&self, a: GlobalAddr) -> f64 {
        self.ham.mem().read_f64(a)
    }

    /// `hlrc_write_double`.
    pub fn write_double(&self, a: GlobalAddr, v: f64) {
        self.ham.mem().write_f64(a, v);
    }

    /// `hlrc_read_long`.
    pub fn read_long(&self, a: GlobalAddr) -> u64 {
        self.ham.mem().read_u64(a)
    }

    /// `hlrc_write_long`.
    pub fn write_long(&self, a: GlobalAddr, v: u64) {
        self.ham.mem().write_u64(a, v);
    }

    /// `hlrc_memget`.
    pub fn memget(&self, a: GlobalAddr, out: &mut [u8]) {
        self.ham.mem().read_bytes(a, out);
    }

    /// `hlrc_memput`.
    pub fn memput(&self, a: GlobalAddr, data: &[u8]) {
        self.ham.mem().write_bytes(a, data);
    }

    /// `hlrc_stat_query`: one module's counters.
    pub fn stat_query(&self, module: &str) -> std::collections::BTreeMap<&'static str, u64> {
        self.ham.monitor().query(module)
    }

    /// `hlrc_stat_reset`.
    pub fn stat_reset(&self, module: &str) {
        self.ham.monitor().reset(module);
    }

    /// `hlrc_time`: seconds.
    pub fn time(&self) -> f64 {
        self.ham.wtime()
    }

    /// `hlrc_exit`.
    pub fn exit(&self) {
        self.ham.cons().barrier_sync(0);
    }
}
