//! A Win32-thread-style distributed thread API, as a HAMSTER
//! programming model.
//!
//! The largest adapter of the paper's Table 2: Win32 works through
//! generic HANDLEs and a uniform `WaitForSingleObject`, so the adapter
//! carries a handle table and per-object wait semantics (threads,
//! mutexes, auto/manual-reset events, semaphores) — all composed from
//! HAMSTER services plus the shared-memory wait queues of
//! [`crate::waitq`].

use crate::waitq::{WaitQueue, QUEUE_BYTES};
use hamster_core::{GlobalAddr, Hamster, TaskHandle};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

const WIN_MUTEX_BASE: u32 = 0x0200_0000;
const WIN_GUARD_BASE: u32 = 0x0300_0000;
const WIN_EVENT_BASE: u32 = 0x0700_0000;

/// An opaque object handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle(u32);

enum Object {
    Thread(TaskHandle),
    Mutex { lock: u32 },
    /// Event state lives in global memory: `[signalled: u64][queue]`.
    Event { state: GlobalAddr, queue: WaitQueue, manual_reset: bool, guard: u32 },
    /// Semaphore state: `[count: u64][queue]`.
    Semaphore { state: GlobalAddr, queue: WaitQueue, guard: u32 },
}

/// The Win32-model environment of one node.
pub struct Win32 {
    ham: Hamster,
    objects: Mutex<HashMap<Handle, Object>>,
    next_handle: AtomicU32,
    next_local: AtomicU32,
    next_event_id: AtomicU32,
}

impl Win32 {
    /// Bind the model to a node.
    pub fn init(ham: Hamster) -> Win32 {
        Win32 {
            ham,
            objects: Mutex::new(HashMap::new()),
            next_handle: AtomicU32::new(1),
            next_local: AtomicU32::new(0),
            next_event_id: AtomicU32::new(0),
        }
    }

    fn insert(&self, obj: Object) -> Handle {
        let h = Handle(self.next_handle.fetch_add(1, Ordering::Relaxed));
        self.objects.lock().insert(h, obj);
        h
    }

    /// `GetCurrentProcessorNumber`-ish: the node this environment is on.
    pub fn current_node(&self) -> usize {
        self.ham.task().rank()
    }

    /// `CreateThread`, with explicit node placement (forwarded).
    pub fn create_thread_on(
        &self,
        node: usize,
        f: impl FnOnce(Hamster) + Send + 'static,
    ) -> Handle {
        self.insert(Object::Thread(self.ham.task().remote_exec(node, f)))
    }

    /// `CreateThread` with round-robin placement.
    pub fn create_thread(&self, f: impl FnOnce(Hamster) + Send + 'static) -> Handle {
        let n = self.ham.task().nodes();
        let node =
            (self.current_node() + 1 + self.next_local.load(Ordering::Relaxed) as usize) % n;
        self.create_thread_on(node, f)
    }

    /// `CreateMutex`. Must be minted in lockstep across nodes (or the
    /// id shared through global memory); `n` names the mutex.
    pub fn create_mutex(&self, n: u32) -> Handle {
        self.insert(Object::Mutex { lock: WIN_MUTEX_BASE + n })
    }

    /// `CreateEvent`. Allocates shared state collectively; `manual_reset`
    /// selects Win32's manual- vs auto-reset semantics.
    pub fn create_event(&self, manual_reset: bool, n: u32) -> Handle {
        let region = self.ham.mem().alloc_default(8 + QUEUE_BYTES).expect("CreateEvent");
        self.insert(Object::Event {
            state: region.addr(),
            queue: WaitQueue::at(region.addr().add(8)),
            manual_reset,
            guard: WIN_GUARD_BASE + n,
        })
    }

    /// `CreateSemaphore` with an initial count; `n` names it.
    pub fn create_semaphore(&self, initial: u64, n: u32) -> Handle {
        let region = self.ham.mem().alloc_default(8 + QUEUE_BYTES).expect("CreateSemaphore");
        self.ham.mem().write_u64(region.addr(), initial);
        self.insert(Object::Semaphore {
            state: region.addr(),
            queue: WaitQueue::at(region.addr().add(8)),
            guard: WIN_GUARD_BASE + 0x8000 + n,
        })
    }

    /// `WaitForSingleObject` (INFINITE): join a thread, acquire a
    /// mutex, wait for an event, or decrement a semaphore.
    pub fn wait_for_single_object(&self, h: Handle) {
        enum Plan {
            Join(TaskHandle),
            Lock(u32),
            Event { state: GlobalAddr, queue: WaitQueue, manual: bool, guard: u32 },
            Sem { state: GlobalAddr, queue: WaitQueue, guard: u32 },
        }
        let plan = {
            let g = self.objects.lock();
            match g.get(&h).expect("invalid handle") {
                Object::Thread(t) => Plan::Join(*t),
                Object::Mutex { lock } => Plan::Lock(*lock),
                Object::Event { state, queue, manual_reset, guard } => Plan::Event {
                    state: *state,
                    queue: *queue,
                    manual: *manual_reset,
                    guard: *guard,
                },
                Object::Semaphore { state, queue, guard } => {
                    Plan::Sem { state: *state, queue: *queue, guard: *guard }
                }
            }
        };
        match plan {
            Plan::Join(t) => self.ham.task().join(t),
            Plan::Lock(l) => self.ham.cons().acquire_scope(l),
            Plan::Event { state, queue, manual, guard } => {
                self.ham.cons().acquire_scope(guard);
                let signalled = self.ham.mem().read_u64(state) != 0;
                if signalled {
                    if !manual {
                        self.ham.mem().write_u64(state, 0); // auto-reset consumes
                    }
                    self.ham.cons().release_scope(guard);
                } else {
                    let ev = WIN_EVENT_BASE
                        + self.next_event_id.fetch_add(1, Ordering::Relaxed) % 0x0100_0000;
                    queue.push(&self.ham, self.current_node(), ev);
                    self.ham.cons().release_scope(guard);
                    self.ham.sync().wait_event(ev);
                }
            }
            Plan::Sem { state, queue, guard } => loop {
                self.ham.cons().acquire_scope(guard);
                let count = self.ham.mem().read_u64(state);
                if count > 0 {
                    self.ham.mem().write_u64(state, count - 1);
                    self.ham.cons().release_scope(guard);
                    return;
                }
                let ev = WIN_EVENT_BASE
                    + self.next_event_id.fetch_add(1, Ordering::Relaxed) % 0x0100_0000;
                queue.push(&self.ham, self.current_node(), ev);
                self.ham.cons().release_scope(guard);
                self.ham.sync().wait_event(ev);
            },
        }
    }

    /// `WaitForMultipleObjects` with `bWaitAll = TRUE`.
    pub fn wait_for_multiple_objects(&self, hs: &[Handle]) {
        for &h in hs {
            self.wait_for_single_object(h);
        }
    }

    /// `ReleaseMutex`.
    pub fn release_mutex(&self, h: Handle) {
        let lock = match self.objects.lock().get(&h) {
            Some(Object::Mutex { lock }) => *lock,
            _ => panic!("ReleaseMutex on non-mutex handle"),
        };
        self.ham.cons().release_scope(lock);
    }

    /// `SetEvent`: signal; wakes one waiter (auto-reset) or all waiters
    /// and latches (manual-reset).
    pub fn set_event(&self, h: Handle) {
        let (state, queue, manual, guard) = match self.objects.lock().get(&h) {
            Some(Object::Event { state, queue, manual_reset, guard }) => {
                (*state, *queue, *manual_reset, *guard)
            }
            _ => panic!("SetEvent on non-event handle"),
        };
        self.ham.cons().acquire_scope(guard);
        if manual {
            self.ham.mem().write_u64(state, 1);
            queue.wake_all(&self.ham);
        } else if !queue.wake_one(&self.ham) {
            self.ham.mem().write_u64(state, 1);
        }
        self.ham.cons().release_scope(guard);
    }

    /// `ResetEvent` (manual-reset events).
    pub fn reset_event(&self, h: Handle) {
        let (state, guard) = match self.objects.lock().get(&h) {
            Some(Object::Event { state, guard, .. }) => (*state, *guard),
            _ => panic!("ResetEvent on non-event handle"),
        };
        self.ham.cons().acquire_scope(guard);
        self.ham.mem().write_u64(state, 0);
        self.ham.cons().release_scope(guard);
    }

    /// `ReleaseSemaphore`.
    pub fn release_semaphore(&self, h: Handle, n: u64) {
        let (state, queue, guard) = match self.objects.lock().get(&h) {
            Some(Object::Semaphore { state, queue, guard }) => (*state, *queue, *guard),
            _ => panic!("ReleaseSemaphore on non-semaphore handle"),
        };
        self.ham.cons().acquire_scope(guard);
        let count = self.ham.mem().read_u64(state);
        self.ham.mem().write_u64(state, count + n);
        for _ in 0..n {
            if !queue.wake_one(&self.ham) {
                break;
            }
        }
        self.ham.cons().release_scope(guard);
    }

    /// `CloseHandle`.
    pub fn close_handle(&self, h: Handle) {
        self.objects.lock().remove(&h);
    }

    /// `Sleep` (virtual milliseconds).
    pub fn sleep(&self, ms: u64) {
        self.ham.compute(ms * 1_000_000);
    }

    /// `InterlockedIncrement` on a shared u64.
    pub fn interlocked_increment(&self, addr: GlobalAddr) -> u64 {
        self.ham.sync().fetch_add_u64(addr, 1) + 1
    }

    /// The underlying HAMSTER handle.
    pub fn ham(&self) -> &Hamster {
        &self.ham
    }
}
