#![warn(missing_docs)]
//! Programming-model adapters on top of the HAMSTER interface.
//!
//! The paper's central retargetability claim (§4.4, Table 2): a shared
//! memory API is implemented by analyzing its calls and mapping each
//! onto a HAMSTER service — most map directly; the rest decompose into a
//! few services. Every module in this crate is one such *thin* adapter:
//!
//! | module         | models (paper Table 2)                  |
//! |----------------|-----------------------------------------|
//! | [`spmd`]       | the native SPMD model                   |
//! | [`smp_spmd`]   | the SMP/SPMD variant (intra-node tasks) |
//! | [`anl`]        | ANL/PARMACS macros (SPLASH style)       |
//! | [`treadmarks`] | the TreadMarks API                      |
//! | [`hlrc`]       | the HLRC API                            |
//! | [`jiajia`]     | the JiaJia API (subset)                 |
//! | [`pthreads`]   | POSIX-thread-style distributed threads  |
//! | [`win32`]      | Win32-thread-style distributed threads  |
//! | [`shmem`]      | Cray shmem one-sided put/get            |
//! | [`omp`]        | OpenMP-flavoured directives (extension) |
//!
//! The Table 2 experiment (`bench` crate) counts each adapter's lines of
//! code and exported API calls with the paper's comment-stripping
//! methodology.

pub mod adapter;
pub mod anl;
pub mod hlrc;
pub mod jiajia;
pub mod omp;
pub mod pthreads;
pub mod shmem;
pub mod smp_spmd;
pub mod spmd;
pub mod treadmarks;
pub mod waitq;
pub mod win32;
