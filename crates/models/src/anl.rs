//! ANL/PARMACS macros (the SPLASH programming style), as a HAMSTER
//! programming model.
//!
//! The SPLASH benchmarks are written against the Argonne National
//! Laboratory m4 macro package (`MAIN_ENV`, `G_MALLOC`, `LOCK`,
//! `BARRIER`, …). Rust's `macro_rules!` stands in for m4: each macro
//! expands to a call on the [`Anl`] context, which maps 1:1 onto
//! HAMSTER services — the paper's thinnest kind of adapter.

use hamster_core::{GlobalAddr, Hamster};
use std::sync::atomic::{AtomicU32, Ordering};

/// The ANL environment of one process.
pub struct Anl {
    ham: Hamster,
    next_lock: AtomicU32,
    next_barrier: AtomicU32,
}

impl Anl {
    /// `MAIN_INITENV`: set up the environment.
    pub fn init(ham: Hamster) -> Anl {
        Anl { ham, next_lock: AtomicU32::new(1), next_barrier: AtomicU32::new(1) }
    }

    /// `G_MALLOC`: shared allocation.
    pub fn g_malloc(&self, bytes: usize) -> GlobalAddr {
        self.ham.mem().alloc_default(bytes).expect("G_MALLOC").addr()
    }

    /// `LOCKDEC`+`LOCKINIT`: allocate a lock id (identical on all
    /// processes by lockstep).
    pub fn lock_init(&self) -> u32 {
        self.next_lock.fetch_add(1, Ordering::Relaxed)
    }

    /// `BARDEC`+`BARINIT`: allocate a barrier id.
    pub fn barrier_init(&self) -> u32 {
        self.next_barrier.fetch_add(1, Ordering::Relaxed)
    }

    /// `LOCK`.
    pub fn lock(&self, l: u32) {
        self.ham.cons().acquire_scope(l);
    }

    /// `UNLOCK`.
    pub fn unlock(&self, l: u32) {
        self.ham.cons().release_scope(l);
    }

    /// `ALOCK`: element `i` of a lock array (distinct ids per element).
    pub fn alock(&self, base: u32, i: u32) {
        self.lock(base.wrapping_add(i.wrapping_mul(7919)) & 0x3FFF_FFFF);
    }

    /// `AULOCK`.
    pub fn aulock(&self, base: u32, i: u32) {
        self.unlock(base.wrapping_add(i.wrapping_mul(7919)) & 0x3FFF_FFFF);
    }

    /// `BARRIER`.
    pub fn barrier(&self, b: u32) {
        self.ham.cons().barrier_sync(b);
    }

    /// `CLOCK`: microseconds since start.
    pub fn clock_us(&self) -> u64 {
        self.ham.wtime_ns() / 1_000
    }

    /// `MAIN_END`.
    pub fn main_end(&self) {
        self.ham.cons().barrier_sync(0);
    }

    /// The underlying HAMSTER handle.
    pub fn ham(&self) -> &Hamster {
        &self.ham
    }
}

/// `MAIN_ENV` / `MAIN_INITENV`: bind the ANL environment.
#[macro_export]
macro_rules! MAIN_INITENV {
    ($ham:expr) => {
        $crate::anl::Anl::init($ham)
    };
}

/// `G_MALLOC(env, bytes)`.
#[macro_export]
macro_rules! G_MALLOC {
    ($env:expr, $bytes:expr) => {
        $env.g_malloc($bytes)
    };
}

/// `LOCK(env, l)`.
#[macro_export]
macro_rules! LOCK {
    ($env:expr, $l:expr) => {
        $env.lock($l)
    };
}

/// `UNLOCK(env, l)`.
#[macro_export]
macro_rules! UNLOCK {
    ($env:expr, $l:expr) => {
        $env.unlock($l)
    };
}

/// `BARRIER(env, b)`.
#[macro_export]
macro_rules! BARRIER {
    ($env:expr, $b:expr) => {
        $env.barrier($b)
    };
}

/// `CLOCK(env)`.
#[macro_export]
macro_rules! CLOCK {
    ($env:expr) => {
        $env.clock_us()
    };
}

/// `MAIN_END(env)`.
#[macro_export]
macro_rules! MAIN_END {
    ($env:expr) => {
        $env.main_end()
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn alock_ids_stay_in_application_range() {
        // ALOCK must never collide with the reserved atomic-lock range
        // (0x4000_0000 and above).
        for base in [1u32, 1000, 0x3FFF_0000] {
            for i in [0u32, 1, 63, 1024, u32::MAX] {
                let id = base.wrapping_add(i.wrapping_mul(7919)) & 0x3FFF_FFFF;
                assert!(id < 0x4000_0000);
            }
        }
    }
}
