//! A POSIX-thread-style distributed thread API, as a HAMSTER
//! programming model.
//!
//! The paper's thread models are the *thick* end of Table 2: POSIX
//! semantics require a forwarding mechanism so that threading routines
//! execute on the node where the target thread runs (thread creation
//! forwards to the node the new thread should occupy). HAMSTER
//! intentionally omits such a framework from its services; the adapters
//! build it from the Task module's remote execution and the
//! Synchronization module's events — exactly as described in §5.2.
//!
//! Naming follows POSIX loosely (`create`/`join`/`Mutex`/`Cond`), with
//! distributed placement made explicit where POSIX has no equivalent.

use crate::waitq::{WaitQueue, QUEUE_BYTES};
use hamster_core::{Hamster, TaskHandle};
use std::sync::atomic::{AtomicU32, Ordering};

// Ids minted by this model live in dedicated ranges so they cannot
// collide with application lock ids.
const MUTEX_BASE: u32 = 0x0100_0000;
const RWLOCK_BASE: u32 = 0x0180_0000;
const COND_EVENT_BASE: u32 = 0x0600_0000;

/// The POSIX-model environment of one node.
pub struct Pthreads {
    ham: Hamster,
    next_thread_node: AtomicU32,
    next_event: AtomicU32,
}

/// A distributed thread handle.
#[derive(Debug, Clone, Copy)]
pub struct Pthread {
    task: TaskHandle,
}

impl Pthread {
    /// The node the thread runs on.
    pub fn node(&self) -> usize {
        self.task.node()
    }
}

/// A process-shared mutex (global lock id).
#[derive(Debug, Clone, Copy)]
pub struct PthreadMutex {
    id: u32,
}

/// A process-shared reader-writer lock (global lock id).
#[derive(Debug, Clone, Copy)]
pub struct PthreadRwlock {
    id: u32,
}

/// A process-shared condition variable (wait queue in global memory).
#[derive(Debug, Clone, Copy)]
pub struct PthreadCond {
    queue: WaitQueue,
}

impl Pthreads {
    /// Bind the model to a node.
    pub fn init(ham: Hamster) -> Pthreads {
        Pthreads {
            ham,
            next_thread_node: AtomicU32::new(1),
            next_event: AtomicU32::new(0),
        }
    }

    /// `pthread_self`-ish: the node id this environment runs on.
    pub fn self_id(&self) -> usize {
        self.ham.task().rank()
    }

    /// `pthread_create`: start `f` on an explicitly chosen node. The
    /// creation request is forwarded to `node`; the new thread gets its
    /// own HAMSTER handle there.
    pub fn create_on(&self, node: usize, f: impl FnOnce(Hamster) + Send + 'static) -> Pthread {
        Pthread { task: self.ham.task().remote_exec(node, f) }
    }

    /// `pthread_create` with default placement: round-robin across
    /// nodes (the distributed default the paper's model uses).
    pub fn create(&self, f: impl FnOnce(Hamster) + Send + 'static) -> Pthread {
        let n = self.ham.task().nodes();
        let node = (self.self_id()
            + 1
            + self.next_thread_node.fetch_add(1, Ordering::Relaxed) as usize)
            % n;
        self.create_on(node, f)
    }

    /// `pthread_join`.
    pub fn join(&self, t: Pthread) {
        self.ham.task().join(t.task);
    }

    /// `pthread_mutex_init`: mint a process-shared mutex. All nodes
    /// must mint in lockstep (or share handles through global memory).
    pub fn mutex_init(&self, n: u32) -> PthreadMutex {
        PthreadMutex { id: MUTEX_BASE + n }
    }

    /// `pthread_mutex_lock` (an acquire edge of the platform's
    /// consistency model, as pthread semantics demand).
    pub fn mutex_lock(&self, m: PthreadMutex) {
        self.ham.cons().acquire_scope(m.id);
    }

    /// `pthread_mutex_unlock` (a release edge).
    pub fn mutex_unlock(&self, m: PthreadMutex) {
        self.ham.cons().release_scope(m.id);
    }

    /// `pthread_rwlock_init`: mint a process-shared reader-writer lock.
    pub fn rwlock_init(&self, n: u32) -> PthreadRwlock {
        PthreadRwlock { id: RWLOCK_BASE + n }
    }

    /// `pthread_rwlock_rdlock`.
    pub fn rwlock_rdlock(&self, l: PthreadRwlock) {
        self.ham.sync().read_lock(l.id);
    }

    /// `pthread_rwlock_wrlock` (an acquire edge, like a mutex).
    pub fn rwlock_wrlock(&self, l: PthreadRwlock) {
        self.ham.cons().acquire_scope(l.id);
    }

    /// `pthread_rwlock_unlock` (a release edge for writers; readers
    /// publish nothing).
    pub fn rwlock_unlock(&self, l: PthreadRwlock) {
        self.ham.cons().release_scope(l.id);
    }

    /// `pthread_cond_init`: allocate the condition's wait queue in
    /// global memory. Must be called collectively (it allocates).
    pub fn cond_init(&self) -> PthreadCond {
        let region = self.ham.mem().alloc_default(QUEUE_BYTES).expect("cond_init");
        PthreadCond { queue: WaitQueue::at(region.addr()) }
    }

    /// `pthread_cond_wait`: atomically release the mutex and block;
    /// re-acquires the mutex before returning. The caller must hold
    /// `m`.
    pub fn cond_wait(&self, c: PthreadCond, m: PthreadMutex) {
        let event = COND_EVENT_BASE + self.next_event.fetch_add(1, Ordering::Relaxed) % 0x0100_0000;
        c.queue.push(&self.ham, self.self_id(), event);
        self.mutex_unlock(m);
        self.ham.sync().wait_event(event);
        self.mutex_lock(m);
    }

    /// `pthread_cond_signal`: wake one waiter. The caller must hold the
    /// associated mutex.
    pub fn cond_signal(&self, c: PthreadCond) {
        c.queue.wake_one(&self.ham);
    }

    /// `pthread_cond_broadcast`: wake all waiters. The caller must hold
    /// the associated mutex.
    pub fn cond_broadcast(&self, c: PthreadCond) {
        c.queue.wake_all(&self.ham);
    }

    /// `pthread_barrier_wait` over all nodes.
    pub fn barrier_wait(&self, id: u32) {
        self.ham.sync().barrier(id);
    }

    /// `sched_yield`: a small fixed delay.
    pub fn yield_now(&self) {
        self.ham.compute(1_000);
    }

    /// The underlying HAMSTER handle.
    pub fn ham(&self) -> &Hamster {
        &self.ham
    }
}
