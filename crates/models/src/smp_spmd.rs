//! The SMP/SPMD model: the SPMD model extended with intra-node worker
//! tasks.
//!
//! Paper §3.3 integrates multiprocessors two ways; this model is the
//! combination: process-style SPMD across nodes *plus* native-thread
//! workers inside each node (on the dual-CPU testbed, one worker per
//! spare CPU). Workers are spawned through the Task module's remote
//! execution onto the *same* node, which models them as sibling CPUs.

use crate::spmd::{Spmd, SharedArray};
use hamster_core::{Hamster, TaskHandle};

/// A node's binding to the SMP/SPMD model: everything SPMD offers,
/// plus worker management.
pub struct SmpSpmd {
    spmd: Spmd,
    workers: parking_lot::Mutex<Vec<TaskHandle>>,
}

/// Enter the model.
pub fn smp_spmd_begin(ham: Hamster) -> SmpSpmd {
    SmpSpmd { spmd: crate::spmd::spmd_begin(ham), workers: parking_lot::Mutex::new(Vec::new()) }
}

impl SmpSpmd {
    /// The embedded SPMD model (all of its calls apply).
    pub fn spmd(&self) -> &Spmd {
        &self.spmd
    }

    /// Spawn `f` as a worker on this node's spare CPU. The worker gets
    /// its own HAMSTER handle with an independent clock.
    pub fn spawn_worker(&self, f: impl FnOnce(Hamster) + Send + 'static) {
        let me = self.spmd.my_rank();
        let t = self.spmd.ham().task().remote_exec(me, f);
        self.workers.lock().push(t);
    }

    /// Join every outstanding worker.
    pub fn join_workers(&self) {
        let drained: Vec<TaskHandle> = self.workers.lock().drain(..).collect();
        for t in drained {
            self.spmd.ham().task().join(t);
        }
    }

    /// Split `[lo, hi)` between this CPU and one worker, run `f` on
    /// both halves concurrently, and join. `f` must be clonable state
    /// shared via global memory — it receives `(ham, lo, hi)`.
    pub fn parallel_halves(
        &self,
        lo: usize,
        hi: usize,
        f: impl Fn(&Hamster, usize, usize) + Send + Sync + Clone + 'static,
    ) {
        let mid = lo + (hi - lo) / 2;
        let g = f.clone();
        self.spawn_worker(move |ham| g(&ham, mid, hi));
        f(self.spmd.ham(), lo, mid);
        self.join_workers();
    }

    /// Convenience passthroughs for the common SPMD calls.
    pub fn my_rank(&self) -> usize {
        self.spmd.my_rank()
    }

    /// World size (nodes, not CPUs).
    pub fn num_procs(&self) -> usize {
        self.spmd.num_procs()
    }

    /// Shared array allocation.
    pub fn shared_array(&self, len: usize) -> SharedArray {
        self.spmd.shared_array(len)
    }

    /// Global barrier (joins workers first, so barriers always see a
    /// quiesced node).
    pub fn barrier(&self, id: u32) {
        self.join_workers();
        self.spmd.barrier(id);
    }

    /// Leave the model.
    pub fn end(&self) {
        self.join_workers();
        self.spmd.spmd_end();
    }
}
