//! The native SPMD programming model.
//!
//! The first model implemented on HAMSTER (paper §5.2) and the basis
//! for the DSM-API adapters: a user-friendly abstraction over the raw
//! services, with typed shared arrays, reductions, and broadcasts. Its
//! calls have *broader* functionality than the services beneath them,
//! which is why the paper reports it among the larger adapters.

use hamster_core::{AllocSpec, Distribution, GlobalAddr, Hamster, Region};

/// A shared one-dimensional f64 array.
#[derive(Debug, Clone, Copy)]
pub struct SharedArray {
    region: Region,
    len: usize,
}

impl SharedArray {
    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of element `i`.
    pub fn at(&self, i: usize) -> GlobalAddr {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.region.addr().add((i * 8) as u32)
    }

    /// The backing region.
    pub fn region(&self) -> Region {
        self.region
    }
}

/// A node's binding to the SPMD model.
pub struct Spmd {
    ham: Hamster,
    /// Scratch barrier id space for collectives.
    collective_barrier: u32,
}

/// Enter the SPMD model.
pub fn spmd_begin(ham: Hamster) -> Spmd {
    Spmd { ham, collective_barrier: 0x7000_0000 }
}

impl Spmd {
    /// This process's rank.
    pub fn my_rank(&self) -> usize {
        self.ham.task().rank()
    }

    /// World size.
    pub fn num_procs(&self) -> usize {
        self.ham.task().nodes()
    }

    /// Allocate a shared f64 array, block-distributed.
    pub fn shared_array(&self, len: usize) -> SharedArray {
        self.shared_array_dist(len, Distribution::Block)
    }

    /// Allocate a shared f64 array with an explicit distribution.
    pub fn shared_array_dist(&self, len: usize, dist: Distribution) -> SharedArray {
        let spec = AllocSpec { dist, ..Default::default() };
        let region = self.ham.mem().alloc(len * 8, spec).expect("shared_array");
        SharedArray { region, len }
    }

    /// Allocate raw shared bytes.
    pub fn shared_bytes(&self, bytes: usize, dist: Distribution) -> Region {
        let spec = AllocSpec { dist, ..Default::default() };
        self.ham.mem().alloc(bytes, spec).expect("shared_bytes")
    }

    /// Read one element.
    pub fn get(&self, a: &SharedArray, i: usize) -> f64 {
        self.ham.mem().read_f64(a.at(i))
    }

    /// Write one element.
    pub fn put(&self, a: &SharedArray, i: usize, v: f64) {
        self.ham.mem().write_f64(a.at(i), v);
    }

    /// Read a contiguous range of elements into `out`.
    pub fn get_range(&self, a: &SharedArray, start: usize, out: &mut [f64]) {
        assert!(start + out.len() <= a.len());
        let mut buf = vec![0u8; out.len() * 8];
        self.ham.mem().read_bytes(a.at(start), &mut buf);
        for (i, o) in out.iter_mut().enumerate() {
            *o = f64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
        }
    }

    /// Write a contiguous range of elements from `src`.
    pub fn put_range(&self, a: &SharedArray, start: usize, src: &[f64]) {
        assert!(start + src.len() <= a.len());
        let mut buf = Vec::with_capacity(src.len() * 8);
        for v in src {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        self.ham.mem().write_bytes(a.at(start), &buf);
    }

    /// Acquire a global lock.
    pub fn lock(&self, id: u32) {
        self.ham.sync().lock(id);
    }

    /// Release a global lock.
    pub fn unlock(&self, id: u32) {
        self.ham.sync().unlock(id);
    }

    /// Global barrier.
    pub fn barrier(&self, id: u32) {
        self.ham.sync().barrier(id);
    }

    /// The `[lo, hi)` slice of `n` items this rank owns under block
    /// partitioning.
    pub fn my_block(&self, n: usize) -> (usize, usize) {
        let per = n.div_ceil(self.num_procs());
        let lo = (self.my_rank() * per).min(n);
        ((lo), (lo + per).min(n))
    }

    /// Global sum reduction: every rank contributes `v`; all ranks
    /// receive the total.
    pub fn reduce_sum(&self, scratch: &SharedArray, v: f64) -> f64 {
        assert!(scratch.len() > self.num_procs(), "scratch too small");
        self.put(scratch, 1 + self.my_rank(), v);
        self.barrier(self.collective_barrier);
        if self.my_rank() == 0 {
            let mut total = 0.0;
            for r in 0..self.num_procs() {
                total += self.get(scratch, 1 + r);
            }
            self.put(scratch, 0, total);
        }
        self.barrier(self.collective_barrier);
        let total = self.get(scratch, 0);
        // Trailing barrier: nobody may start the next collective (and
        // overwrite slot 0) before everyone has read the result.
        self.barrier(self.collective_barrier);
        total
    }

    /// Broadcast `v` from `root` to all ranks (through shared memory).
    pub fn broadcast(&self, scratch: &SharedArray, root: usize, v: f64) -> f64 {
        if self.my_rank() == root {
            self.put(scratch, 0, v);
        }
        self.barrier(self.collective_barrier);
        let got = self.get(scratch, 0);
        self.barrier(self.collective_barrier);
        got
    }

    /// Seconds of virtual wall-clock time.
    pub fn wtime(&self) -> f64 {
        self.ham.wtime()
    }

    /// Charge application compute time.
    pub fn compute(&self, ns: u64) {
        self.ham.compute(ns);
    }

    /// Leave the model (final barrier).
    pub fn spmd_end(&self) {
        self.ham.sync().barrier(self.collective_barrier);
    }

    /// The underlying HAMSTER handle.
    pub fn ham(&self) -> &Hamster {
        &self.ham
    }
}

#[cfg(test)]
mod tests {
    // Pure-logic tests; cluster behaviour is covered in tests/models.rs.

    #[test]
    fn my_block_partitions_cover_exactly() {
        // Simulate my_block's arithmetic for several world sizes.
        for n in [1usize, 7, 64, 100] {
            for procs in [1usize, 2, 3, 4, 7] {
                let per = n.div_ceil(procs);
                let mut covered = 0;
                let mut last_hi = 0;
                for rank in 0..procs {
                    let lo = (rank * per).min(n);
                    let hi = ((rank + 1) * per).min(n);
                    assert!(lo <= hi);
                    assert_eq!(lo, last_hi, "gap at rank {rank} (n={n}, p={procs})");
                    covered += hi - lo;
                    last_hi = hi;
                }
                assert_eq!(covered, n);
                assert_eq!(last_hi, n);
            }
        }
    }
}
