//! The TreadMarks API, as a HAMSTER programming model.
//!
//! The paper singles TreadMarks out (§5.2): unlike the other DSM APIs it
//! uses *single-node* allocation, so almost all routines map directly
//! onto HAMSTER services and only the allocation-distribution routine
//! must be implemented by hand — here via the Cluster Control module's
//! messaging layer.

use hamster_core::{GlobalAddr, Hamster, Region};

/// User-message channel reserved for `Tmk_distribute`.
const DISTRIBUTE_CHANNEL: u32 = 0x7D15;

/// A process's binding to the TreadMarks model.
pub struct Tmk {
    ham: Hamster,
}

/// `Tmk_startup`: attach the model.
pub fn tmk_startup(ham: Hamster) -> Tmk {
    Tmk { ham }
}

impl Tmk {
    /// `Tmk_proc_id`.
    pub fn tmk_proc_id(&self) -> usize {
        self.ham.task().rank()
    }

    /// `Tmk_nprocs`.
    pub fn tmk_nprocs(&self) -> usize {
        self.ham.task().nodes()
    }

    /// `Tmk_malloc`: single-node allocation — only the caller allocates;
    /// the pointer must be passed to the other processes with
    /// [`Tmk::tmk_distribute`].
    pub fn tmk_malloc(&self, bytes: usize) -> GlobalAddr {
        self.ham.mem().alloc_local(bytes).expect("Tmk_malloc").addr()
    }

    /// `Tmk_distribute`: hand-implemented address distribution (the one
    /// routine without a direct HAMSTER counterpart). The allocator
    /// broadcasts `(addr, size)`; every other process must call
    /// [`Tmk::tmk_receive_distribution`].
    pub fn tmk_distribute(&self, addr: GlobalAddr, bytes: usize) {
        let mut payload = Vec::with_capacity(20);
        payload.extend_from_slice(&addr.0.to_le_bytes());
        payload.extend_from_slice(&(bytes as u64).to_le_bytes());
        payload.extend_from_slice(&(self.tmk_proc_id() as u32).to_le_bytes());
        self.ham.cluster().broadcast(DISTRIBUTE_CHANNEL, &payload);
    }

    /// Receiver side of [`Tmk::tmk_distribute`]: blocks for the next
    /// distributed allocation and registers it locally.
    pub fn tmk_receive_distribution(&self) -> GlobalAddr {
        let msg = self.ham.cluster().recv(DISTRIBUTE_CHANNEL);
        let addr = GlobalAddr(u64::from_le_bytes(msg.bytes[0..8].try_into().unwrap()));
        let bytes = u64::from_le_bytes(msg.bytes[8..16].try_into().unwrap()) as usize;
        let home = u32::from_le_bytes(msg.bytes[16..20].try_into().unwrap()) as usize;
        self.ham.mem().adopt(region_of(addr, bytes), home);
        addr
    }

    /// `Tmk_barrier`.
    pub fn tmk_barrier(&self, id: u32) {
        self.ham.cons().barrier_sync(id);
    }

    /// `Tmk_lock_acquire`.
    pub fn tmk_lock_acquire(&self, lock: u32) {
        self.ham.cons().acquire_scope(lock);
    }

    /// `Tmk_lock_release`.
    pub fn tmk_lock_release(&self, lock: u32) {
        self.ham.cons().release_scope(lock);
    }

    /// `Tmk_exit`.
    pub fn tmk_exit(&self) {
        self.ham.cons().barrier_sync(0);
    }

    /// Typed load (pointer dereference in original TreadMarks).
    pub fn load_f64(&self, a: GlobalAddr) -> f64 {
        self.ham.mem().read_f64(a)
    }

    /// Typed store.
    pub fn store_f64(&self, a: GlobalAddr, v: f64) {
        self.ham.mem().write_f64(a, v);
    }

    /// Typed load of a u64.
    pub fn load_u64(&self, a: GlobalAddr) -> u64 {
        self.ham.mem().read_u64(a)
    }

    /// Typed store of a u64.
    pub fn store_u64(&self, a: GlobalAddr, v: u64) {
        self.ham.mem().write_u64(a, v);
    }

    /// The underlying HAMSTER handle.
    pub fn ham(&self) -> &Hamster {
        &self.ham
    }
}

fn region_of(addr: GlobalAddr, bytes: usize) -> Region {
    // Regions are identified by base address; reconstruct the handle.
    Region::new(addr, bytes)
}
