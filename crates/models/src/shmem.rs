//! A Cray-shmem-style one-sided put/get API, as a HAMSTER programming
//! model.
//!
//! The far end of the paper's model spectrum (§5.2): not a
//! load/store-transparent model at all, but one-sided remote puts and
//! gets over a *symmetric heap* — every PE holds an instance of each
//! symmetric allocation, and `put`/`get` address the instance of an
//! explicit target PE. Maps nearly 1:1 onto HAMSTER's memory services;
//! `fence`/`quiet` map onto consistency flushes.

use hamster_core::{AllocSpec, Distribution, GlobalAddr, Hamster};
use memwire::PAGE_SIZE;

/// A symmetric allocation: one page-aligned instance per PE.
#[derive(Debug, Clone, Copy)]
pub struct Symmetric {
    base: GlobalAddr,
    stride: usize,
    bytes: usize,
}

impl Symmetric {
    /// Address of byte `offset` within PE `pe`'s instance.
    pub fn on_pe(&self, pe: usize, offset: usize) -> GlobalAddr {
        assert!(offset < self.bytes, "offset {offset} outside symmetric object");
        self.base.add((pe * self.stride + offset) as u32)
    }

    /// Usable bytes per instance.
    pub fn len(&self) -> usize {
        self.bytes
    }

    /// True for an empty object (never constructed).
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }
}

/// A PE's binding to the shmem model.
pub struct Shmem {
    ham: Hamster,
}

/// `shmem_init` / `start_pes`.
pub fn shmem_init(ham: Hamster) -> Shmem {
    Shmem { ham }
}

impl Shmem {
    /// `shmem_my_pe`.
    pub fn my_pe(&self) -> usize {
        self.ham.task().rank()
    }

    /// `shmem_n_pes`.
    pub fn n_pes(&self) -> usize {
        self.ham.task().nodes()
    }

    /// `shmem_malloc`: collective symmetric allocation. Each PE's
    /// instance is page-aligned and homed on that PE.
    pub fn malloc(&self, bytes: usize) -> Symmetric {
        let stride = bytes.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let total = stride * self.n_pes();
        let spec = AllocSpec { dist: Distribution::Block, ..Default::default() };
        let region = self.ham.mem().alloc(total, spec).expect("shmem_malloc");
        Symmetric { base: region.addr(), stride, bytes }
    }

    /// `shmem_double_p`: put one f64 into `pe`'s instance.
    pub fn double_p(&self, sym: Symmetric, offset: usize, v: f64, pe: usize) {
        self.ham.mem().write_f64(sym.on_pe(pe, offset), v);
    }

    /// `shmem_double_g`: get one f64 from `pe`'s instance.
    pub fn double_g(&self, sym: Symmetric, offset: usize, pe: usize) -> f64 {
        self.ham.mem().read_f64(sym.on_pe(pe, offset))
    }

    /// `shmem_long_p`.
    pub fn long_p(&self, sym: Symmetric, offset: usize, v: u64, pe: usize) {
        self.ham.mem().write_u64(sym.on_pe(pe, offset), v);
    }

    /// `shmem_long_g`.
    pub fn long_g(&self, sym: Symmetric, offset: usize, pe: usize) -> u64 {
        self.ham.mem().read_u64(sym.on_pe(pe, offset))
    }

    /// `shmem_putmem`: bulk put.
    pub fn putmem(&self, sym: Symmetric, offset: usize, data: &[u8], pe: usize) {
        assert!(offset + data.len() <= sym.bytes);
        self.ham.mem().write_bytes(sym.on_pe(pe, offset), data);
    }

    /// `shmem_getmem`: bulk get.
    pub fn getmem(&self, sym: Symmetric, offset: usize, out: &mut [u8], pe: usize) {
        assert!(offset + out.len() <= sym.bytes);
        self.ham.mem().read_bytes(sym.on_pe(pe, offset), out);
    }

    /// `shmem_fence`: order puts to each PE.
    pub fn fence(&self) {
        self.ham.cons().flush();
    }

    /// `shmem_quiet`: complete all outstanding puts.
    pub fn quiet(&self) {
        self.ham.cons().flush();
    }

    /// `shmem_barrier_all` (includes a quiet, per the standard).
    pub fn barrier_all(&self) {
        self.ham.cons().barrier_sync(0x5111);
    }

    /// `shmem_double_sum_to_all`: all-reduce of one f64 per PE.
    pub fn double_sum_to_all(&self, scratch: Symmetric, v: f64) -> f64 {
        // Every PE puts its contribution into PE 0's instance slots.
        self.double_p(scratch, 8 + self.my_pe() * 8, v, 0);
        self.barrier_all();
        if self.my_pe() == 0 {
            let mut sum = 0.0;
            for pe in 0..self.n_pes() {
                sum += self.double_g(scratch, 8 + pe * 8, 0);
            }
            for pe in 0..self.n_pes() {
                self.double_p(scratch, 0, sum, pe);
            }
        }
        self.barrier_all();
        let sum = self.double_g(scratch, 0, self.my_pe());
        // Trailing barrier so a later collective cannot overwrite the
        // result slot before every PE has read it.
        self.barrier_all();
        sum
    }

    /// `shmem_broadcast64` of one u64 from `root`.
    pub fn broadcast64(&self, scratch: Symmetric, root: usize, v: u64) -> u64 {
        if self.my_pe() == root {
            for pe in 0..self.n_pes() {
                self.long_p(scratch, 0, v, pe);
            }
        }
        self.barrier_all();
        let got = self.long_g(scratch, 0, self.my_pe());
        self.barrier_all();
        got
    }

    /// `shmem_finalize`.
    pub fn finalize(&self) {
        self.barrier_all();
    }

    /// The underlying HAMSTER handle.
    pub fn ham(&self) -> &Hamster {
        &self.ham
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_addressing_is_per_pe() {
        let sym = Symmetric { base: GlobalAddr::new(5, 0), stride: 8192, bytes: 6000 };
        assert_eq!(sym.on_pe(0, 0), GlobalAddr::new(5, 0));
        assert_eq!(sym.on_pe(2, 16), GlobalAddr::new(5, 2 * 8192 + 16));
        assert_eq!(sym.len(), 6000);
        assert!(!sym.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside symmetric object")]
    fn out_of_bounds_offset_panics() {
        let sym = Symmetric { base: GlobalAddr::new(5, 0), stride: 8192, bytes: 6000 };
        let _ = sym.on_pe(1, 6000);
    }
}
