//! The JiaJia API (subset), as a HAMSTER programming model.
//!
//! The smallest adapter of Table 2 (the paper reports 43 lines for 7
//! calls): JiaJia's user-visible surface is tiny — init/exit, a global
//! synchronous allocator, locks, and barriers. Because this
//! reproduction's DSM is access-function based (see DESIGN.md), the
//! adapter additionally exposes typed load/store calls where original
//! JiaJia programs simply dereferenced pointers.

use crate::adapter::AdapterStats;
use hamster_core::{Distribution, GlobalAddr, Hamster};

/// A node's binding to the JiaJia programming model.
pub struct Jia {
    ham: Hamster,
    stats: AdapterStats,
}

/// `jia_init`: attach the model to a HAMSTER node.
pub fn jia_init(ham: Hamster) -> Jia {
    Jia { ham, stats: AdapterStats::new() }
}

impl Jia {
    /// `jiapid`: this process's id.
    pub fn jiapid(&self) -> usize {
        self.stats.count();
        self.ham.task().rank()
    }

    /// `jiahosts`: number of hosts.
    pub fn jiahosts(&self) -> usize {
        self.stats.count();
        self.ham.task().nodes()
    }

    /// `jia_alloc`: global synchronous allocation (all hosts, implicit
    /// barrier), block-distributed.
    pub fn jia_alloc(&self, bytes: usize) -> GlobalAddr {
        self.stats.count();
        self.ham.mem().alloc_default(bytes).expect("jia_alloc").addr()
    }

    /// `jia_alloc3`: allocation with an explicit distribution.
    pub fn jia_alloc3(&self, bytes: usize, dist: Distribution) -> GlobalAddr {
        self.stats.count();
        let spec = hamster_core::AllocSpec { dist, ..Default::default() };
        self.ham.mem().alloc(bytes, spec).expect("jia_alloc3").addr()
    }

    /// `jia_lock`.
    pub fn jia_lock(&self, lock: u32) {
        self.stats.count();
        self.ham.cons().acquire_scope(lock);
    }

    /// `jia_unlock`.
    pub fn jia_unlock(&self, lock: u32) {
        self.stats.count();
        self.ham.cons().release_scope(lock);
    }

    /// `jia_barrier`.
    pub fn jia_barrier(&self) {
        self.stats.count();
        self.ham.cons().barrier_sync(0);
    }

    /// `jia_clock`: seconds since startup.
    pub fn jia_clock(&self) -> f64 {
        self.stats.count();
        self.ham.wtime()
    }

    /// `jia_exit`.
    pub fn jia_exit(&self) {
        self.stats.count();
        self.ham.cons().barrier_sync(0);
    }

    /// Typed load (pointer dereference in original JiaJia).
    pub fn load_f64(&self, a: GlobalAddr) -> f64 {
        self.stats.count();
        self.ham.mem().read_f64(a)
    }

    /// Typed store (pointer dereference in original JiaJia).
    pub fn store_f64(&self, a: GlobalAddr, v: f64) {
        self.stats.count();
        self.ham.mem().write_f64(a, v);
    }

    /// Typed load of a u64.
    pub fn load_u64(&self, a: GlobalAddr) -> u64 {
        self.stats.count();
        self.ham.mem().read_u64(a)
    }

    /// Typed store of a u64.
    pub fn store_u64(&self, a: GlobalAddr, v: u64) {
        self.stats.count();
        self.ham.mem().write_u64(a, v);
    }

    /// Bulk load (memcpy from shared memory).
    pub fn load_bytes(&self, a: GlobalAddr, out: &mut [u8]) {
        self.stats.count();
        self.ham.mem().read_bytes(a, out);
    }

    /// Bulk store (memcpy into shared memory).
    pub fn store_bytes(&self, a: GlobalAddr, data: &[u8]) {
        self.stats.count();
        self.ham.mem().write_bytes(a, data);
    }

    /// The underlying HAMSTER handle (for monitoring access — JiaJia's
    /// `jia_stat` equivalent).
    pub fn ham(&self) -> &Hamster {
        &self.ham
    }

    /// Adapter-level call counters (the dynamic side of Table 2).
    pub fn adapter_stats(&self) -> &AdapterStats {
        &self.stats
    }
}
