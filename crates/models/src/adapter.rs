//! Adapter-level monitoring: runtime call counters for the Table 2
//! experiment.
//!
//! Table 2 counts each programming-model adapter's *implemented* API
//! calls statically; this module adds the dynamic side — how many times
//! a running application actually crossed the adapter, per node. The
//! counter sits in the adapter itself (above the HAMSTER interface), so
//! the figure is comparable across platforms: the same program on SMP,
//! hybrid DSM, and software DSM must report the same `api_calls`.

use sim::StatSet;

/// Per-binding call counters for one programming-model adapter.
///
/// ```
/// let s = models::adapter::AdapterStats::new();
/// s.count();
/// s.count();
/// assert_eq!(s.api_calls(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct AdapterStats {
    set: StatSet,
}

impl Default for AdapterStats {
    fn default() -> Self {
        Self::new()
    }
}

impl AdapterStats {
    /// Fresh counters (all zero).
    pub fn new() -> Self {
        Self { set: StatSet::new(&["api_calls"]) }
    }

    /// Record one crossing of the adapter's API surface.
    #[inline]
    pub fn count(&self) {
        self.set.add("api_calls", 1);
    }

    /// Number of API calls recorded so far.
    pub fn api_calls(&self) -> u64 {
        self.set.get("api_calls")
    }

    /// The underlying counter set (for uniform monitoring queries).
    pub fn set(&self) -> &StatSet {
        &self.set
    }
}
