//! Shared-memory wait queues: the support structure beneath condition
//! variables (POSIX model) and waitable objects (Win32 model).
//!
//! A wait queue lives in global memory and records `(node, event)`
//! pairs. Callers serialize access with the guard lock that the owning
//! construct already holds (the condition's mutex, the object's
//! internal lock), then wake waiters through the Synchronization
//! module's events. This is exactly the paper's observation that thread
//! APIs need a forwarding/wakeup facility *built from* HAMSTER
//! messaging primitives rather than provided by them.

use hamster_core::{GlobalAddr, Hamster};

/// Maximum simultaneous waiters per queue.
pub const CAPACITY: usize = 128;

/// Bytes of shared memory a queue occupies.
pub const QUEUE_BYTES: usize = 8 + CAPACITY * 16;

/// A wait queue in global memory (base address of its storage).
#[derive(Debug, Clone, Copy)]
pub struct WaitQueue {
    base: GlobalAddr,
}

impl WaitQueue {
    /// Bind a queue to storage at `base` (at least [`QUEUE_BYTES`]).
    /// Storage must be zero-initialized (fresh allocations are).
    pub fn at(base: GlobalAddr) -> Self {
        Self { base }
    }

    fn len(&self, ham: &Hamster) -> usize {
        ham.mem().read_u64(self.base) as usize
    }

    fn set_len(&self, ham: &Hamster, n: usize) {
        ham.mem().write_u64(self.base, n as u64);
    }

    fn slot(&self, i: usize) -> GlobalAddr {
        self.base.add(8 + (i * 16) as u32)
    }

    /// Number of registered waiters. Caller must hold the guard lock.
    pub fn waiters(&self, ham: &Hamster) -> usize {
        self.len(ham)
    }

    /// Register `(node, event)`. Caller must hold the guard lock.
    pub fn push(&self, ham: &Hamster, node: usize, event: u32) {
        let n = self.len(ham);
        assert!(n < CAPACITY, "wait queue overflow");
        ham.mem().write_u64(self.slot(n), node as u64);
        ham.mem().write_u64(self.slot(n).add(8), event as u64);
        self.set_len(ham, n + 1);
    }

    /// Remove and return the oldest waiter. Caller must hold the guard
    /// lock.
    pub fn pop(&self, ham: &Hamster) -> Option<(usize, u32)> {
        let n = self.len(ham);
        if n == 0 {
            return None;
        }
        let node = ham.mem().read_u64(self.slot(0)) as usize;
        let event = ham.mem().read_u64(self.slot(0).add(8)) as u32;
        // Shift the queue down (FIFO wakeup order, as in fair mutexes).
        for i in 1..n {
            let a = ham.mem().read_u64(self.slot(i));
            let b = ham.mem().read_u64(self.slot(i).add(8));
            ham.mem().write_u64(self.slot(i - 1), a);
            ham.mem().write_u64(self.slot(i - 1).add(8), b);
        }
        self.set_len(ham, n - 1);
        Some((node, event))
    }

    /// Wake the oldest waiter, if any. Caller must hold the guard lock.
    pub fn wake_one(&self, ham: &Hamster) -> bool {
        match self.pop(ham) {
            Some((node, event)) => {
                ham.sync().set_event(node, event);
                true
            }
            None => false,
        }
    }

    /// Wake every waiter. Caller must hold the guard lock.
    pub fn wake_all(&self, ham: &Hamster) -> usize {
        let mut woken = 0;
        while self.wake_one(ham) {
            woken += 1;
        }
        woken
    }
}
