//! Distributed lock management: the centralized manager and the
//! MCS-style token queue.
//!
//! Locks are distributed across manager nodes (`lock % nodes`). In the
//! centralized scheme ([`LockMgr::acquire_mode`]/[`LockMgr::release`])
//! the manager serializes ownership and, under scope consistency,
//! stores the write notices published by each release so it can hand
//! them to the next acquirer (the "lock grant carries notices" edge of
//! Scope Consistency). Every handover costs a round through the
//! manager, and the manager's notice store grows with every release —
//! both scale with contention, not with the queue.
//!
//! The token queue (`LockTopology::TokenQueue`, the `tok_*` methods)
//! keeps the manager only as a *queue tail registrar*, MCS-style: the
//! first acquirer gets a freshly created token; each later acquirer is
//! linked behind the current tail by a single successor notification to
//! that tail ([`TokMgrStep::SetSucc`]); releases then pass the token —
//! notices riding on it — *directly* to the known successor, one
//! message, no manager round. A holder that releases with no successor
//! known returns the token to the manager, which parks it for the next
//! acquirer. Per-tenure sequence numbers pair each successor
//! notification with the tenure it targets, so notifications that cross
//! releases (or arrive after the holder re-acquired) resolve via
//! [`TokHolderStep`]`::Claim` instead of corrupting a newer tenure.
//!
//! Notice history (manager store, parked tokens, held tokens) is
//! cleared when a barrier makes everything globally visible.

use memwire::Interval;
use std::collections::{HashMap, VecDeque};

/// Lock acquisition mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Many concurrent holders (readers).
    Shared,
    /// One holder (writers; also plain mutexes).
    Excl,
}

/// State of one lock at its manager.
#[derive(Debug, Default)]
pub struct LockState {
    /// Current holders (one if exclusive, any number if shared).
    pub holders: Vec<usize>,
    /// Whether the current holders hold exclusively.
    pub excl: bool,
    /// Waiters with their requested mode and virtual arrival time.
    /// Grants go to the earliest *virtual* arrival, which keeps lock
    /// handover independent of the real-time order in which the
    /// manager's daemon happened to process requests.
    pub queue: VecDeque<(usize, Mode, u64)>,
    /// Notices accumulated from releases under this lock, per writer.
    pub notices: Vec<(usize, Interval)>,
    /// Virtual time the last *exclusive* hold ended (causal floor for
    /// shared grants: readers may overlap each other but never a
    /// writer).
    pub free_excl_ns: u64,
    /// Virtual time the lock last became free of any holder (causal
    /// floor for exclusive grants).
    pub free_any_ns: u64,
}

/// Manager-side state of one lock's token queue.
#[derive(Debug, Default)]
struct TokenLock {
    /// The last acquirer the manager linked into the queue, with the
    /// tenure sequence number it acquired under.
    tail: Option<(usize, u64)>,
    /// The token's notices while it rests at the manager (returned by a
    /// holder with no successor, or crossing a successor notification
    /// and reserved for the coming claim).
    parked: Option<Vec<(usize, Interval)>>,
    /// A claimed successor whose token return is still in flight to the
    /// manager; the return is forwarded to it on arrival.
    pending: Option<usize>,
    /// The token exists (created on first acquire).
    created: bool,
}

/// Holder-side phase of one lock's token tenure.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum TokenHold {
    /// No tenure in progress.
    #[default]
    Idle,
    /// Acquire sent; waiting for the token to arrive.
    Expecting,
    /// Holding the token (inside the critical section).
    Holding,
    /// Tenure ended with the token returned to the manager; a late
    /// successor notification for it turns into a claim.
    AwaitSucc,
}

/// Holder-side state of one lock's token queue at this node.
#[derive(Debug, Default)]
struct TokenSlot {
    /// This node's tenure counter for the lock (bumped per acquire).
    seq: u64,
    state: TokenHold,
    /// The successor named for the current tenure, if any.
    succ: Option<usize>,
    /// The token's accumulated notices while held here.
    token: Vec<(usize, Interval)>,
}

/// What the manager sends after a token-queue event.
#[derive(Debug, PartialEq, Eq)]
pub enum TokMgrStep {
    /// Pass the token (with its notices) to `to`.
    Pass {
        /// The next holder.
        to: usize,
        /// The token's accumulated notices.
        notices: Vec<(usize, Interval)>,
    },
    /// Tell `prev` — for its tenure `for_seq` — that `succ` follows it.
    SetSucc {
        /// The previous queue tail.
        prev: usize,
        /// The tenure of `prev` the notification targets.
        for_seq: u64,
        /// The newly enqueued successor.
        succ: usize,
    },
}

/// What a holder sends after a token-queue event.
#[derive(Debug, PartialEq, Eq)]
pub enum TokHolderStep {
    /// Pass the token directly to the known successor.
    Forward {
        /// The successor.
        to: usize,
        /// The token's accumulated notices.
        notices: Vec<(usize, Interval)>,
    },
    /// No successor known: return the token to the manager.
    Return {
        /// The ending tenure's sequence number.
        seq: u64,
        /// The token's accumulated notices.
        notices: Vec<(usize, Interval)>,
    },
    /// A successor notification arrived for a tenure that already
    /// ended: tell the manager to route the (parked or in-flight
    /// returned) token to `succ`.
    Claim {
        /// The successor the token must reach.
        succ: usize,
    },
}

/// Manager-side state of one lock under the *resilient* token queue
/// (`rtok_*`). Unlike the MCS machine, every token movement is a
/// manager round: the holder is always known here, so a lost grant or
/// release resolves by replaying the manager's record of the tenure
/// instead of corrupting a distributed slot machine.
#[derive(Debug, Default)]
struct RTokenLock {
    /// The current holder and its tenure sequence number.
    holder: Option<(usize, u64)>,
    /// The notices handed to the current holder at grant time, kept so
    /// a retried acquire of the same tenure replays the identical
    /// grant.
    granted: Vec<(usize, Interval)>,
    /// The token's accumulated notices while no one holds it.
    notices: Vec<(usize, Interval)>,
    /// Waiters `(who, seq, arrive_ns)`; grants follow virtual arrival
    /// order (ties by rank), like the centralized queue.
    queue: Vec<(usize, u64, u64)>,
    /// Highest tenure each node has completed (idempotent release).
    done: HashMap<usize, u64>,
}

/// Manager's answer to a resilient token acquire.
#[derive(Debug, PartialEq, Eq)]
pub enum RTokStep {
    /// The token was free: granted, carrying these notices.
    Grant(Vec<(usize, Interval)>),
    /// Held; a grant will be posted on release.
    Queued,
    /// This exact tenure was already granted (the earlier reply or
    /// grant post was lost): the identical grant, re-issued.
    Replay(Vec<(usize, Interval)>),
}

/// All locks managed by one node: centralized state, plus the
/// token-queue manager state (for locks managed here) and holder state
/// (for locks this node acquires). `rtokens`/`rseqs` are the resilient
/// token queue's manager machine and holder-side tenure counters.
#[derive(Debug, Default)]
pub struct LockMgr {
    locks: HashMap<u32, LockState>,
    tokens: HashMap<u32, TokenLock>,
    slots: HashMap<u32, TokenSlot>,
    rtokens: HashMap<u32, RTokenLock>,
    rseqs: HashMap<u32, u64>,
}

/// Outcome of an acquire attempt at the manager.
#[derive(Debug, PartialEq, Eq)]
pub enum Acquire {
    /// Granted immediately; attached notices must be applied by the
    /// acquirer before entering the critical section, and the grant is
    /// not effective before the given virtual instant.
    Granted(Vec<(usize, Interval)>, u64),
    /// Enqueued; a grant will be posted on release.
    Queued,
}

impl LockMgr {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Node `who` asks for `lock` exclusively.
    pub fn acquire(&mut self, lock: u32, who: usize) -> Acquire {
        self.acquire_mode(lock, who, Mode::Excl, 0)
    }

    /// Node `who` asks for `lock` in `mode`, arriving at virtual time
    /// `arrive_ns`. Shared requests join the current holders only while
    /// no writer is queued (writer-preference keeps writers from
    /// starving under a reader stream).
    pub fn acquire_mode(&mut self, lock: u32, who: usize, mode: Mode, arrive_ns: u64) -> Acquire {
        let st = self.locks.entry(lock).or_default();
        if st.holders.contains(&who) {
            // Retried request from the current holder (the grant reply
            // was lost): re-issue the grant with the same causal floor.
            let floor = if st.excl { st.free_any_ns } else { st.free_excl_ns };
            return Acquire::Granted(st.notices.clone(), floor);
        }
        if st.queue.iter().any(|(n, _, _)| *n == who) {
            // Retried request from a node already queued (the Queued
            // reply was lost): keep the original queue entry.
            return Acquire::Queued;
        }
        let grantable = match mode {
            Mode::Excl => st.holders.is_empty(),
            Mode::Shared => {
                st.holders.is_empty() || (!st.excl && st.queue.is_empty())
            }
        };
        if grantable {
            let floor = match mode {
                Mode::Excl => st.free_any_ns,
                Mode::Shared => st.free_excl_ns,
            };
            st.holders.push(who);
            st.excl = mode == Mode::Excl;
            Acquire::Granted(st.notices.clone(), floor)
        } else {
            st.queue.push_back((who, mode, arrive_ns));
            Acquire::Queued
        }
    }

    /// Node `who` releases `lock`, publishing `interval`. Returns the
    /// holders to grant next (one writer, or a batch of readers), each
    /// with the notices they must apply.
    pub fn release(
        &mut self,
        lock: u32,
        who: usize,
        interval: Interval,
        now_ns: u64,
    ) -> Vec<(usize, Vec<(usize, Interval)>)> {
        // A release whose first copy was already processed (the ack was
        // lost, the releaser retried) finds nothing to do: the lock may
        // even have been handed to the next waiter meanwhile. Idempotent
        // no-op, never a panic.
        let Some(st) = self.locks.get_mut(&lock) else {
            return Vec::new();
        };
        let Some(pos) = st.holders.iter().position(|&h| h == who) else {
            return Vec::new();
        };
        let was_excl = st.excl;
        st.holders.swap_remove(pos);
        if st.holders.is_empty() {
            st.free_any_ns = st.free_any_ns.max(now_ns);
            if was_excl {
                st.free_excl_ns = st.free_excl_ns.max(now_ns);
            }
        }
        if !interval.is_empty() {
            match st.notices.iter_mut().find(|(n, _)| *n == who) {
                Some((_, iv)) => iv.merge(&interval),
                None => st.notices.push((who, interval)),
            }
        }
        if !st.holders.is_empty() {
            return Vec::new(); // other readers still inside
        }
        let mut grants = Vec::new();
        // Grant the earliest virtual arrival.
        let Some(first) = st
            .queue
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, _, t))| *t)
            .map(|(i, _)| i)
        else {
            return grants;
        };
        let (next, mode, _) = st.queue.remove(first).unwrap();
        st.holders.push(next);
        st.excl = mode == Mode::Excl;
        grants.push((next, st.notices.clone()));
        if mode == Mode::Shared {
            // Release every queued reader that arrived before the
            // earliest queued writer (writer preference beyond that).
            let writer_cutoff = st
                .queue
                .iter()
                .filter(|(_, m, _)| *m == Mode::Excl)
                .map(|(_, _, t)| *t)
                .min()
                .unwrap_or(u64::MAX);
            let mut i = 0;
            while i < st.queue.len() {
                let (_, m, t) = st.queue[i];
                if m == Mode::Shared && t <= writer_cutoff {
                    let (r, _, _) = st.queue.remove(i).unwrap();
                    st.holders.push(r);
                    grants.push((r, st.notices.clone()));
                } else {
                    i += 1;
                }
            }
        }
        grants
    }

    /// A barrier made all writes globally visible: drop notice history —
    /// the centralized store, parked tokens, and tokens held here. (A
    /// token returned to a manager concurrently with the barrier may
    /// re-park pre-barrier notices after the clear; applying them again
    /// merely re-invalidates up-to-date pages, which is conservative
    /// and deterministic.)
    pub fn clear_notices(&mut self) {
        for st in self.locks.values_mut() {
            st.notices.clear();
        }
        for tok in self.tokens.values_mut() {
            if let Some(parked) = &mut tok.parked {
                parked.clear();
            }
        }
        for slot in self.slots.values_mut() {
            slot.token.clear();
        }
        for tok in self.rtokens.values_mut() {
            tok.notices.clear();
            tok.granted.clear();
        }
    }

    // ---- token queue (`LockTopology::TokenQueue`) ----
    //
    // Manager side (`tok_acquire` / `tok_return` / `tok_claim`) runs at
    // `lock % nodes`; holder side (`tok_begin_acquire` /
    // `tok_pass_received` / `tok_release` / `tok_set_succ`) runs at
    // every node. See the module docs for the protocol.

    /// Manager: node `who` (tenure `seq`) asks for `lock`'s token.
    pub fn tok_acquire(&mut self, lock: u32, who: usize, seq: u64) -> TokMgrStep {
        let tok = self.tokens.entry(lock).or_default();
        if !tok.created {
            tok.created = true;
            tok.tail = Some((who, seq));
            return TokMgrStep::Pass { to: who, notices: Vec::new() };
        }
        if tok.tail.is_none() {
            // The token rests here with nobody queued behind its last
            // holder: hand it over directly.
            let notices = tok.parked.take().expect("tokenless tail-less lock");
            tok.tail = Some((who, seq));
            return TokMgrStep::Pass { to: who, notices };
        }
        let (prev, for_seq) = tok.tail.replace((who, seq)).unwrap();
        TokMgrStep::SetSucc { prev, for_seq, succ: who }
    }

    /// Manager: holder `from` (tenure `seq`) returned the token with no
    /// successor known. Forwards it to a pending claimant, or parks it.
    pub fn tok_return(
        &mut self,
        lock: u32,
        from: usize,
        seq: u64,
        notices: Vec<(usize, Interval)>,
    ) -> Option<TokMgrStep> {
        let tok = self.tokens.get_mut(&lock).expect("return for unknown token");
        if let Some(succ) = tok.pending.take() {
            return Some(TokMgrStep::Pass { to: succ, notices });
        }
        assert!(tok.parked.is_none(), "token returned while already parked");
        if tok.tail == Some((from, seq)) {
            // The returner is still the queue tail: nobody is waiting.
            tok.tail = None;
        }
        // Otherwise a successor notification crossed this return; keep
        // the token parked until the returner's claim routes it.
        tok.parked = Some(notices);
        None
    }

    /// Manager: a holder whose tenure already ended routes the token to
    /// the successor it was just told about.
    pub fn tok_claim(&mut self, lock: u32, succ: usize) -> Option<TokMgrStep> {
        let tok = self.tokens.get_mut(&lock).expect("claim for unknown token");
        if let Some(notices) = tok.parked.take() {
            return Some(TokMgrStep::Pass { to: succ, notices });
        }
        // The return is still in flight; forward on arrival.
        assert!(tok.pending.is_none(), "two claims pending for one token");
        tok.pending = Some(succ);
        None
    }

    /// Holder: start acquiring `lock`'s token. Returns the new tenure
    /// sequence number to send with the manager enqueue.
    pub fn tok_begin_acquire(&mut self, lock: u32) -> u64 {
        let slot = self.slots.entry(lock).or_default();
        assert!(
            matches!(slot.state, TokenHold::Idle | TokenHold::AwaitSucc),
            "token acquire while {:?}",
            slot.state
        );
        slot.seq += 1;
        slot.state = TokenHold::Expecting;
        slot.succ = None;
        slot.seq
    }

    /// Holder: the token arrived. Returns the notices to hand to the
    /// waiting application (the token keeps carrying them onward).
    pub fn tok_pass_received(
        &mut self,
        lock: u32,
        notices: Vec<(usize, Interval)>,
    ) -> Vec<(usize, Interval)> {
        let slot = self.slots.get_mut(&lock).expect("token pass without acquire");
        assert_eq!(slot.state, TokenHold::Expecting, "unexpected token pass");
        slot.state = TokenHold::Holding;
        slot.token = notices.clone();
        notices
    }

    /// Holder: node `who` releases `lock`, merging `interval` into the
    /// token, and forwards it to the known successor or returns it to
    /// the manager.
    pub fn tok_release(&mut self, lock: u32, who: usize, interval: Interval) -> TokHolderStep {
        let slot = self.slots.get_mut(&lock).expect("token release without hold");
        assert_eq!(slot.state, TokenHold::Holding, "token release while not holding");
        if !interval.is_empty() {
            match slot.token.iter_mut().find(|(n, _)| *n == who) {
                Some((_, iv)) => iv.merge(&interval),
                None => slot.token.push((who, interval)),
            }
        }
        let notices = std::mem::take(&mut slot.token);
        if let Some(to) = slot.succ.take() {
            slot.state = TokenHold::Idle;
            TokHolderStep::Forward { to, notices }
        } else {
            slot.state = TokenHold::AwaitSucc;
            TokHolderStep::Return { seq: slot.seq, notices }
        }
    }

    /// Holder: the manager named `succ` the successor of this node's
    /// tenure `for_seq`. Stores it for the live tenure, or — when that
    /// tenure already ended — answers with the claim that routes the
    /// returned token onward.
    pub fn tok_set_succ(&mut self, lock: u32, succ: usize, for_seq: u64) -> Option<TokHolderStep> {
        let slot = self.slots.get_mut(&lock).expect("successor for unknown slot");
        if for_seq < slot.seq {
            // A notification for an earlier tenure, arriving after this
            // node moved on (possibly mid-reacquire): the old token went
            // back to the manager, so route it from there. The current
            // tenure is untouched.
            return Some(TokHolderStep::Claim { succ });
        }
        assert_eq!(for_seq, slot.seq, "successor notification for a future tenure");
        match slot.state {
            TokenHold::Holding | TokenHold::Expecting => {
                assert!(slot.succ.is_none(), "second successor for one tenure");
                slot.succ = Some(succ);
                None
            }
            TokenHold::AwaitSucc => {
                slot.state = TokenHold::Idle;
                Some(TokHolderStep::Claim { succ })
            }
            TokenHold::Idle => panic!("successor notification for a forwarded tenure"),
        }
    }

    // ---- resilient token queue (`rtok_*`) ----
    //
    // Used instead of the MCS `tok_*` machine on faulty fabrics. The
    // manager mediates every handover, so retried requests resolve
    // against its authoritative tenure record: a duplicate acquire of
    // the granted tenure replays the grant, a duplicate release is a
    // no-op. Holder side needs only a per-lock tenure counter.

    /// Holder: start a new tenure for `lock`. Returns its sequence
    /// number; retries of the acquire reuse it.
    pub fn rtok_begin(&mut self, lock: u32) -> u64 {
        let seq = self.rseqs.entry(lock).or_insert(0);
        *seq += 1;
        *seq
    }

    /// Holder: the sequence number of the current (or last) tenure for
    /// `lock` — what the release must carry.
    pub fn rtok_seq(&self, lock: u32) -> u64 {
        self.rseqs.get(&lock).copied().unwrap_or(0)
    }

    /// Manager: node `who` (tenure `seq`, arriving at virtual time
    /// `arrive_ns`) asks for `lock`'s token.
    pub fn rtok_acquire(&mut self, lock: u32, who: usize, seq: u64, arrive_ns: u64) -> RTokStep {
        let tok = self.rtokens.entry(lock).or_default();
        if tok.holder == Some((who, seq)) {
            // The earlier grant (reply or posted pass) was lost and the
            // requester retried: replay it verbatim.
            return RTokStep::Replay(tok.granted.clone());
        }
        if tok.done.get(&who).is_some_and(|&d| d >= seq) {
            // A duplicate of an acquire whose whole tenure already
            // completed (transport-level duplication past the dedup
            // window): nothing to grant, nobody is waiting.
            return RTokStep::Replay(Vec::new());
        }
        if tok.queue.iter().any(|&(n, s, _)| n == who && s == seq) {
            // Retried request from a queued tenure: keep the original
            // queue entry (and its arrival time).
            return RTokStep::Queued;
        }
        if tok.holder.is_none() {
            let notices = std::mem::take(&mut tok.notices);
            tok.granted = notices.clone();
            tok.holder = Some((who, seq));
            return RTokStep::Grant(notices);
        }
        tok.queue.push((who, seq, arrive_ns));
        RTokStep::Queued
    }

    /// Manager: node `who` ends tenure `seq`, publishing `interval`.
    /// Returns the next tenure to grant, with the notices it must
    /// apply, or `None` (nobody queued, or duplicate release).
    pub fn rtok_release(
        &mut self,
        lock: u32,
        who: usize,
        seq: u64,
        interval: Interval,
    ) -> Option<(usize, Vec<(usize, Interval)>)> {
        let tok = self.rtokens.get_mut(&lock)?;
        if tok.holder != Some((who, seq)) {
            // Retried release whose first copy was already applied (the
            // ack was lost) — the token may even be elsewhere by now.
            return None;
        }
        tok.holder = None;
        let d = tok.done.entry(who).or_insert(0);
        *d = (*d).max(seq);
        let mut notices = std::mem::take(&mut tok.granted);
        if !interval.is_empty() {
            match notices.iter_mut().find(|(n, _)| *n == who) {
                Some((_, iv)) => iv.merge(&interval),
                None => notices.push((who, interval)),
            }
        }
        tok.notices = notices;
        // Grant the earliest virtual arrival (ties by rank).
        let next_i = tok
            .queue
            .iter()
            .enumerate()
            .min_by_key(|(_, &(n, _, t))| (t, n))
            .map(|(i, _)| i)?;
        let (next, nseq, _) = tok.queue.remove(next_i);
        let notices = std::mem::take(&mut tok.notices);
        tok.granted = notices.clone();
        tok.holder = Some((next, nseq));
        Some((next, notices))
    }

    /// Introspection for tests: the state of `lock`.
    ///
    /// Note: grants at release time follow *virtual* arrival order, not
    /// queue insertion order (see [`LockState::queue`]).
    pub fn state(&self, lock: u32) -> Option<&LockState> {
        self.locks.get(&lock)
    }
}

#[cfg(test)]
mod rw_tests {
    use super::*;

    #[test]
    fn readers_share_writers_exclude() {
        let mut m = LockMgr::new();
        assert!(matches!(m.acquire_mode(1, 0, Mode::Shared, 10), Acquire::Granted(..)));
        assert!(matches!(m.acquire_mode(1, 1, Mode::Shared, 20), Acquire::Granted(..)));
        assert_eq!(m.acquire_mode(1, 2, Mode::Excl, 30), Acquire::Queued);
        // A reader arriving after a queued writer must wait (writer
        // preference).
        assert_eq!(m.acquire_mode(1, 3, Mode::Shared, 40), Acquire::Queued);
        assert!(m.release(1, 0, Interval::default(), 50).is_empty());
        let grants = m.release(1, 1, Interval::default(), 60);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].0, 2); // the writer goes first
        let grants = m.release(1, 2, Interval::default(), 70);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].0, 3);
    }

    #[test]
    fn reader_batch_released_together() {
        let mut m = LockMgr::new();
        m.acquire_mode(1, 0, Mode::Excl, 5);
        assert_eq!(m.acquire_mode(1, 1, Mode::Shared, 10), Acquire::Queued);
        assert_eq!(m.acquire_mode(1, 2, Mode::Shared, 15), Acquire::Queued);
        let grants = m.release(1, 0, Interval::default(), 20);
        let granted: Vec<usize> = grants.iter().map(|(n, _)| *n).collect();
        assert_eq!(granted, vec![1, 2]);
    }

    #[test]
    fn writer_notices_reach_readers() {
        let mut m = LockMgr::new();
        m.acquire_mode(1, 0, Mode::Excl, 1);
        let iv = Interval::from_pages(&[memwire::PageId { region: 0, index: 4 }]);
        assert!(m.release(1, 0, iv.clone(), 2).is_empty());
        match m.acquire_mode(1, 1, Mode::Shared, 3) {
            Acquire::Granted(n, floor) => {
                assert_eq!(n, vec![(0, iv)]);
                // The previous hold was exclusive, so even a shared
                // grant is floored by its release.
                assert_eq!(floor, 2);
            }
            Acquire::Queued => panic!("lock should be free"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memwire::PageId;

    fn iv(pages: &[u32]) -> Interval {
        Interval::from_pages(
            &pages.iter().map(|&i| PageId { region: 0, index: i }).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn free_lock_granted_immediately() {
        let mut m = LockMgr::new();
        assert_eq!(m.acquire(1, 0), Acquire::Granted(vec![], 0));
    }

    #[test]
    fn held_lock_queues() {
        let mut m = LockMgr::new();
        m.acquire(1, 0);
        assert_eq!(m.acquire(1, 1), Acquire::Queued);
        assert_eq!(m.acquire(1, 2), Acquire::Queued);
        // Release hands over in FIFO order with notices attached.
        let grants = m.release(1, 0, iv(&[4]), 100);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].0, 1);
        assert_eq!(grants[0].1, vec![(0, iv(&[4]))]);
        let grants = m.release(1, 1, Interval::default(), 200);
        assert_eq!(grants[0].0, 2);
        assert!(m.release(1, 2, Interval::default(), 300).is_empty());
        assert!(m.state(1).unwrap().holders.is_empty());
        // A later immediate exclusive grant carries the causal floor.
        assert_eq!(m.acquire(1, 3), Acquire::Granted(vec![(0, iv(&[4]))], 300));
    }

    #[test]
    fn notices_accumulate_across_critical_sections() {
        let mut m = LockMgr::new();
        m.acquire(7, 0);
        m.release(7, 0, iv(&[1]), 1);
        m.acquire(7, 1);
        m.release(7, 1, iv(&[2]), 2);
        match m.acquire(7, 2) {
            Acquire::Granted(n, _) => {
                assert_eq!(n.len(), 2);
                assert_eq!(n[0], (0, iv(&[1])));
                assert_eq!(n[1], (1, iv(&[2])));
            }
            Acquire::Queued => panic!("lock should be free"),
        }
    }

    #[test]
    fn same_writer_notices_merge() {
        let mut m = LockMgr::new();
        m.acquire(7, 0);
        m.release(7, 0, iv(&[1]), 1);
        m.acquire(7, 0);
        m.release(7, 0, iv(&[3]), 2);
        match m.acquire(7, 1) {
            Acquire::Granted(n, _) => assert_eq!(n, vec![(0, iv(&[1, 3]))]),
            Acquire::Queued => panic!(),
        }
    }

    #[test]
    fn barrier_clears_notices() {
        let mut m = LockMgr::new();
        m.acquire(7, 0);
        m.release(7, 0, iv(&[1]), 9);
        m.clear_notices();
        assert_eq!(m.acquire(7, 1), Acquire::Granted(vec![], 9));
    }

    #[test]
    fn foreign_release_is_a_noop() {
        let mut m = LockMgr::new();
        m.acquire(1, 0);
        // A retried release whose first copy was already applied (or a
        // release racing a handover) must not disturb the current holder.
        assert!(m.release(1, 3, Interval::default(), 0).is_empty());
        assert_eq!(m.state(1).unwrap().holders, vec![0]);
        assert!(m.release(9, 0, Interval::default(), 0).is_empty());
    }

    #[test]
    fn duplicate_acquire_regrants_without_double_hold() {
        let mut m = LockMgr::new();
        m.acquire(7, 0);
        m.release(7, 0, iv(&[2]), 50);
        assert_eq!(m.acquire(1, 0), Acquire::Granted(vec![], 0));
        // The grant reply was lost; the retried request re-grants with
        // the same notices and floor, without a second holder entry.
        assert_eq!(m.acquire(1, 0), Acquire::Granted(vec![], 0));
        assert_eq!(m.state(1).unwrap().holders, vec![0]);
        // A queued requester retrying stays queued exactly once.
        assert_eq!(m.acquire(1, 1), Acquire::Queued);
        assert_eq!(m.acquire(1, 1), Acquire::Queued);
        assert_eq!(m.state(1).unwrap().queue.len(), 1);
    }
}

#[cfg(test)]
mod token_tests {
    use super::*;
    use memwire::PageId;

    fn iv(pages: &[u32]) -> Interval {
        Interval::from_pages(
            &pages.iter().map(|&i| PageId { region: 0, index: i }).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn first_acquire_creates_and_passes() {
        let mut mgr = LockMgr::new();
        let mut a = LockMgr::new();
        let seq = a.tok_begin_acquire(5);
        assert_eq!(seq, 1);
        assert_eq!(mgr.tok_acquire(5, 0, seq), TokMgrStep::Pass { to: 0, notices: vec![] });
        assert_eq!(a.tok_pass_received(5, vec![]), vec![]);
    }

    #[test]
    fn chain_forwards_directly_with_merged_notices() {
        let mut mgr = LockMgr::new();
        let mut a = LockMgr::new();
        let mut b = LockMgr::new();
        let sa = a.tok_begin_acquire(5);
        mgr.tok_acquire(5, 0, sa);
        a.tok_pass_received(5, vec![]);
        // B queues behind A: one successor notification, no token move.
        let sb = b.tok_begin_acquire(5);
        assert_eq!(
            mgr.tok_acquire(5, 1, sb),
            TokMgrStep::SetSucc { prev: 0, for_seq: sa, succ: 1 }
        );
        assert_eq!(a.tok_set_succ(5, 1, sa), None);
        // A releases: the token (now carrying A's notices) goes straight
        // to B — no manager round.
        match a.tok_release(5, 0, iv(&[3])) {
            TokHolderStep::Forward { to, notices } => {
                assert_eq!(to, 1);
                assert_eq!(notices, vec![(0, iv(&[3]))]);
                assert_eq!(b.tok_pass_received(5, notices), vec![(0, iv(&[3]))]);
            }
            other => panic!("expected forward, got {other:?}"),
        }
        // B releases with no successor: back to the manager, notices
        // merged per writer.
        match b.tok_release(5, 1, iv(&[8])) {
            TokHolderStep::Return { seq, notices } => {
                assert_eq!(seq, sb);
                assert_eq!(notices, vec![(0, iv(&[3])), (1, iv(&[8]))]);
                assert_eq!(mgr.tok_return(5, 1, seq, notices), None);
            }
            other => panic!("expected return, got {other:?}"),
        }
        // The parked token serves the next acquirer immediately.
        let sa2 = a.tok_begin_acquire(5);
        match mgr.tok_acquire(5, 0, sa2) {
            TokMgrStep::Pass { to: 0, notices } => {
                assert_eq!(notices, vec![(0, iv(&[3])), (1, iv(&[8]))]);
            }
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn crossed_return_resolves_via_claim() {
        let mut mgr = LockMgr::new();
        let mut a = LockMgr::new();
        let sa = a.tok_begin_acquire(5);
        mgr.tok_acquire(5, 0, sa);
        a.tok_pass_received(5, vec![]);
        // A releases (return in flight) while B's enqueue reaches the
        // manager first: the successor notification targets A's ended
        // tenure.
        let step = a.tok_release(5, 0, iv(&[1]));
        let TokHolderStep::Return { seq, notices } = step else { panic!() };
        assert_eq!(mgr.tok_acquire(5, 1, 1), TokMgrStep::SetSucc { prev: 0, for_seq: sa, succ: 1 });
        // Return arrives: the tail moved on, so the token parks reserved.
        assert_eq!(mgr.tok_return(5, 0, seq, notices), None);
        // A's late notification turns into a claim that routes it to B.
        assert_eq!(a.tok_set_succ(5, 1, sa), Some(TokHolderStep::Claim { succ: 1 }));
        assert_eq!(
            mgr.tok_claim(5, 1),
            Some(TokMgrStep::Pass { to: 1, notices: vec![(0, iv(&[1]))] })
        );
    }

    #[test]
    fn claim_before_return_pends_until_arrival() {
        let mut mgr = LockMgr::new();
        let mut a = LockMgr::new();
        let sa = a.tok_begin_acquire(5);
        mgr.tok_acquire(5, 0, sa);
        a.tok_pass_received(5, vec![]);
        let TokHolderStep::Return { seq, notices } = a.tok_release(5, 0, iv(&[1])) else {
            panic!()
        };
        mgr.tok_acquire(5, 1, 1);
        // The claim beats the (slower) token return to the manager.
        assert_eq!(a.tok_set_succ(5, 1, sa), Some(TokHolderStep::Claim { succ: 1 }));
        assert_eq!(mgr.tok_claim(5, 1), None);
        assert_eq!(
            mgr.tok_return(5, 0, seq, notices),
            Some(TokMgrStep::Pass { to: 1, notices: vec![(0, iv(&[1]))] })
        );
    }

    #[test]
    fn stale_notification_after_reacquire_claims_without_corruption() {
        let mut mgr = LockMgr::new();
        let mut a = LockMgr::new();
        let sa = a.tok_begin_acquire(5);
        mgr.tok_acquire(5, 0, sa);
        a.tok_pass_received(5, vec![]);
        let TokHolderStep::Return { seq, notices } = a.tok_release(5, 0, iv(&[1])) else {
            panic!()
        };
        mgr.tok_return(5, 0, seq, notices);
        // A re-acquires; only then does a notification for the *old*
        // tenure arrive. It must claim, not become the new successor.
        let sa2 = a.tok_begin_acquire(5);
        assert!(sa2 > sa);
        assert_eq!(a.tok_set_succ(5, 1, sa), Some(TokHolderStep::Claim { succ: 1 }));
        // The new tenure proceeds untouched.
        a.tok_pass_received(5, vec![]);
        assert!(matches!(a.tok_release(5, 0, iv(&[])), TokHolderStep::Return { .. }));
    }

    #[test]
    fn rtok_grant_queue_and_handover_follow_virtual_arrival() {
        let mut mgr = LockMgr::new();
        let mut a = LockMgr::new();
        let sa = a.rtok_begin(5);
        assert_eq!(sa, 1);
        assert_eq!(mgr.rtok_acquire(5, 0, sa, 10), RTokStep::Grant(vec![]));
        // Two waiters queue; the later-ranked but earlier-arriving node
        // is granted first.
        assert_eq!(mgr.rtok_acquire(5, 2, 1, 30), RTokStep::Queued);
        assert_eq!(mgr.rtok_acquire(5, 1, 1, 20), RTokStep::Queued);
        let (next, notices) = mgr.rtok_release(5, 0, sa, iv(&[3])).expect("handover");
        assert_eq!(next, 1);
        assert_eq!(notices, vec![(0, iv(&[3]))]);
        let (next, notices) = mgr.rtok_release(5, 1, 1, iv(&[7])).expect("handover");
        assert_eq!(next, 2);
        assert_eq!(notices, vec![(0, iv(&[3])), (1, iv(&[7]))]);
        assert_eq!(mgr.rtok_release(5, 2, 1, Interval::default()), None);
    }

    #[test]
    fn rtok_duplicate_acquire_replays_identical_grant() {
        let mut mgr = LockMgr::new();
        mgr.rtok_acquire(5, 0, 1, 0);
        mgr.rtok_release(5, 0, 1, iv(&[2]));
        // Second tenure granted; the grant reply is lost and retried.
        assert_eq!(mgr.rtok_acquire(5, 0, 2, 10), RTokStep::Grant(vec![(0, iv(&[2]))]));
        assert_eq!(mgr.rtok_acquire(5, 0, 2, 15), RTokStep::Replay(vec![(0, iv(&[2]))]));
        // A queued tenure retrying stays queued exactly once.
        assert_eq!(mgr.rtok_acquire(5, 1, 1, 20), RTokStep::Queued);
        assert_eq!(mgr.rtok_acquire(5, 1, 1, 25), RTokStep::Queued);
        let (next, _) = mgr.rtok_release(5, 0, 2, Interval::default()).unwrap();
        assert_eq!(next, 1);
    }

    #[test]
    fn rtok_duplicate_release_is_a_noop() {
        let mut mgr = LockMgr::new();
        mgr.rtok_acquire(5, 0, 1, 0);
        assert!(mgr.rtok_release(5, 0, 1, iv(&[1])).is_none());
        // The retried copy of the release finds the tenure closed.
        assert!(mgr.rtok_release(5, 0, 1, iv(&[1])).is_none());
        // A stray acquire for the completed tenure replays empty rather
        // than re-granting.
        assert_eq!(mgr.rtok_acquire(5, 0, 1, 5), RTokStep::Replay(vec![]));
        // The notices survive for the next real tenure, unduplicated.
        assert_eq!(mgr.rtok_acquire(5, 1, 1, 9), RTokStep::Grant(vec![(0, iv(&[1]))]));
    }

    #[test]
    fn rtok_barrier_clears_notices() {
        let mut mgr = LockMgr::new();
        mgr.rtok_acquire(5, 0, 1, 0);
        mgr.rtok_release(5, 0, 1, iv(&[4]));
        mgr.clear_notices();
        assert_eq!(mgr.rtok_acquire(5, 1, 1, 9), RTokStep::Grant(vec![]));
    }

    #[test]
    fn barrier_clears_token_notices() {
        let mut mgr = LockMgr::new();
        let mut a = LockMgr::new();
        let sa = a.tok_begin_acquire(5);
        mgr.tok_acquire(5, 0, sa);
        a.tok_pass_received(5, vec![]);
        let TokHolderStep::Return { seq, notices } = a.tok_release(5, 0, iv(&[1])) else {
            panic!()
        };
        mgr.tok_return(5, 0, seq, notices);
        mgr.clear_notices();
        let sa2 = a.tok_begin_acquire(5);
        assert_eq!(mgr.tok_acquire(5, 0, sa2), TokMgrStep::Pass { to: 0, notices: vec![] });
    }
}
