//! Distributed lock management.
//!
//! Locks are distributed across manager nodes (`lock % nodes`). The
//! manager serializes ownership and, under scope consistency, stores the
//! write notices published by each release so it can hand them to the
//! next acquirer (the "lock grant carries notices" edge of Scope
//! Consistency). Notice history is cleared when a barrier makes
//! everything globally visible.

use memwire::Interval;
use std::collections::{HashMap, VecDeque};

/// Lock acquisition mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Many concurrent holders (readers).
    Shared,
    /// One holder (writers; also plain mutexes).
    Excl,
}

/// State of one lock at its manager.
#[derive(Debug, Default)]
pub struct LockState {
    /// Current holders (one if exclusive, any number if shared).
    pub holders: Vec<usize>,
    /// Whether the current holders hold exclusively.
    pub excl: bool,
    /// Waiters with their requested mode and virtual arrival time.
    /// Grants go to the earliest *virtual* arrival, which keeps lock
    /// handover independent of the real-time order in which the
    /// manager's daemon happened to process requests.
    pub queue: VecDeque<(usize, Mode, u64)>,
    /// Notices accumulated from releases under this lock, per writer.
    pub notices: Vec<(usize, Interval)>,
    /// Virtual time the last *exclusive* hold ended (causal floor for
    /// shared grants: readers may overlap each other but never a
    /// writer).
    pub free_excl_ns: u64,
    /// Virtual time the lock last became free of any holder (causal
    /// floor for exclusive grants).
    pub free_any_ns: u64,
}

/// All locks managed by one node.
#[derive(Debug, Default)]
pub struct LockMgr {
    locks: HashMap<u32, LockState>,
}

/// Outcome of an acquire attempt at the manager.
#[derive(Debug, PartialEq, Eq)]
pub enum Acquire {
    /// Granted immediately; attached notices must be applied by the
    /// acquirer before entering the critical section, and the grant is
    /// not effective before the given virtual instant.
    Granted(Vec<(usize, Interval)>, u64),
    /// Enqueued; a grant will be posted on release.
    Queued,
}

impl LockMgr {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Node `who` asks for `lock` exclusively.
    pub fn acquire(&mut self, lock: u32, who: usize) -> Acquire {
        self.acquire_mode(lock, who, Mode::Excl, 0)
    }

    /// Node `who` asks for `lock` in `mode`, arriving at virtual time
    /// `arrive_ns`. Shared requests join the current holders only while
    /// no writer is queued (writer-preference keeps writers from
    /// starving under a reader stream).
    pub fn acquire_mode(&mut self, lock: u32, who: usize, mode: Mode, arrive_ns: u64) -> Acquire {
        let st = self.locks.entry(lock).or_default();
        if st.holders.contains(&who) {
            // Retried request from the current holder (the grant reply
            // was lost): re-issue the grant with the same causal floor.
            let floor = if st.excl { st.free_any_ns } else { st.free_excl_ns };
            return Acquire::Granted(st.notices.clone(), floor);
        }
        if st.queue.iter().any(|(n, _, _)| *n == who) {
            // Retried request from a node already queued (the Queued
            // reply was lost): keep the original queue entry.
            return Acquire::Queued;
        }
        let grantable = match mode {
            Mode::Excl => st.holders.is_empty(),
            Mode::Shared => {
                st.holders.is_empty() || (!st.excl && st.queue.is_empty())
            }
        };
        if grantable {
            let floor = match mode {
                Mode::Excl => st.free_any_ns,
                Mode::Shared => st.free_excl_ns,
            };
            st.holders.push(who);
            st.excl = mode == Mode::Excl;
            Acquire::Granted(st.notices.clone(), floor)
        } else {
            st.queue.push_back((who, mode, arrive_ns));
            Acquire::Queued
        }
    }

    /// Node `who` releases `lock`, publishing `interval`. Returns the
    /// holders to grant next (one writer, or a batch of readers), each
    /// with the notices they must apply.
    pub fn release(
        &mut self,
        lock: u32,
        who: usize,
        interval: Interval,
        now_ns: u64,
    ) -> Vec<(usize, Vec<(usize, Interval)>)> {
        // A release whose first copy was already processed (the ack was
        // lost, the releaser retried) finds nothing to do: the lock may
        // even have been handed to the next waiter meanwhile. Idempotent
        // no-op, never a panic.
        let Some(st) = self.locks.get_mut(&lock) else {
            return Vec::new();
        };
        let Some(pos) = st.holders.iter().position(|&h| h == who) else {
            return Vec::new();
        };
        let was_excl = st.excl;
        st.holders.swap_remove(pos);
        if st.holders.is_empty() {
            st.free_any_ns = st.free_any_ns.max(now_ns);
            if was_excl {
                st.free_excl_ns = st.free_excl_ns.max(now_ns);
            }
        }
        if !interval.is_empty() {
            match st.notices.iter_mut().find(|(n, _)| *n == who) {
                Some((_, iv)) => iv.merge(&interval),
                None => st.notices.push((who, interval)),
            }
        }
        if !st.holders.is_empty() {
            return Vec::new(); // other readers still inside
        }
        let mut grants = Vec::new();
        // Grant the earliest virtual arrival.
        let Some(first) = st
            .queue
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, _, t))| *t)
            .map(|(i, _)| i)
        else {
            return grants;
        };
        let (next, mode, _) = st.queue.remove(first).unwrap();
        st.holders.push(next);
        st.excl = mode == Mode::Excl;
        grants.push((next, st.notices.clone()));
        if mode == Mode::Shared {
            // Release every queued reader that arrived before the
            // earliest queued writer (writer preference beyond that).
            let writer_cutoff = st
                .queue
                .iter()
                .filter(|(_, m, _)| *m == Mode::Excl)
                .map(|(_, _, t)| *t)
                .min()
                .unwrap_or(u64::MAX);
            let mut i = 0;
            while i < st.queue.len() {
                let (_, m, t) = st.queue[i];
                if m == Mode::Shared && t <= writer_cutoff {
                    let (r, _, _) = st.queue.remove(i).unwrap();
                    st.holders.push(r);
                    grants.push((r, st.notices.clone()));
                } else {
                    i += 1;
                }
            }
        }
        grants
    }

    /// A barrier made all writes globally visible: drop notice history.
    pub fn clear_notices(&mut self) {
        for st in self.locks.values_mut() {
            st.notices.clear();
        }
    }

    /// Introspection for tests: the state of `lock`.
    ///
    /// Note: grants at release time follow *virtual* arrival order, not
    /// queue insertion order (see [`LockState::queue`]).
    pub fn state(&self, lock: u32) -> Option<&LockState> {
        self.locks.get(&lock)
    }
}

#[cfg(test)]
mod rw_tests {
    use super::*;

    #[test]
    fn readers_share_writers_exclude() {
        let mut m = LockMgr::new();
        assert!(matches!(m.acquire_mode(1, 0, Mode::Shared, 10), Acquire::Granted(..)));
        assert!(matches!(m.acquire_mode(1, 1, Mode::Shared, 20), Acquire::Granted(..)));
        assert_eq!(m.acquire_mode(1, 2, Mode::Excl, 30), Acquire::Queued);
        // A reader arriving after a queued writer must wait (writer
        // preference).
        assert_eq!(m.acquire_mode(1, 3, Mode::Shared, 40), Acquire::Queued);
        assert!(m.release(1, 0, Interval::default(), 50).is_empty());
        let grants = m.release(1, 1, Interval::default(), 60);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].0, 2); // the writer goes first
        let grants = m.release(1, 2, Interval::default(), 70);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].0, 3);
    }

    #[test]
    fn reader_batch_released_together() {
        let mut m = LockMgr::new();
        m.acquire_mode(1, 0, Mode::Excl, 5);
        assert_eq!(m.acquire_mode(1, 1, Mode::Shared, 10), Acquire::Queued);
        assert_eq!(m.acquire_mode(1, 2, Mode::Shared, 15), Acquire::Queued);
        let grants = m.release(1, 0, Interval::default(), 20);
        let granted: Vec<usize> = grants.iter().map(|(n, _)| *n).collect();
        assert_eq!(granted, vec![1, 2]);
    }

    #[test]
    fn writer_notices_reach_readers() {
        let mut m = LockMgr::new();
        m.acquire_mode(1, 0, Mode::Excl, 1);
        let iv = Interval::from_pages(&[memwire::PageId { region: 0, index: 4 }]);
        assert!(m.release(1, 0, iv.clone(), 2).is_empty());
        match m.acquire_mode(1, 1, Mode::Shared, 3) {
            Acquire::Granted(n, floor) => {
                assert_eq!(n, vec![(0, iv)]);
                // The previous hold was exclusive, so even a shared
                // grant is floored by its release.
                assert_eq!(floor, 2);
            }
            Acquire::Queued => panic!("lock should be free"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memwire::PageId;

    fn iv(pages: &[u32]) -> Interval {
        Interval::from_pages(
            &pages.iter().map(|&i| PageId { region: 0, index: i }).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn free_lock_granted_immediately() {
        let mut m = LockMgr::new();
        assert_eq!(m.acquire(1, 0), Acquire::Granted(vec![], 0));
    }

    #[test]
    fn held_lock_queues() {
        let mut m = LockMgr::new();
        m.acquire(1, 0);
        assert_eq!(m.acquire(1, 1), Acquire::Queued);
        assert_eq!(m.acquire(1, 2), Acquire::Queued);
        // Release hands over in FIFO order with notices attached.
        let grants = m.release(1, 0, iv(&[4]), 100);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].0, 1);
        assert_eq!(grants[0].1, vec![(0, iv(&[4]))]);
        let grants = m.release(1, 1, Interval::default(), 200);
        assert_eq!(grants[0].0, 2);
        assert!(m.release(1, 2, Interval::default(), 300).is_empty());
        assert!(m.state(1).unwrap().holders.is_empty());
        // A later immediate exclusive grant carries the causal floor.
        assert_eq!(m.acquire(1, 3), Acquire::Granted(vec![(0, iv(&[4]))], 300));
    }

    #[test]
    fn notices_accumulate_across_critical_sections() {
        let mut m = LockMgr::new();
        m.acquire(7, 0);
        m.release(7, 0, iv(&[1]), 1);
        m.acquire(7, 1);
        m.release(7, 1, iv(&[2]), 2);
        match m.acquire(7, 2) {
            Acquire::Granted(n, _) => {
                assert_eq!(n.len(), 2);
                assert_eq!(n[0], (0, iv(&[1])));
                assert_eq!(n[1], (1, iv(&[2])));
            }
            Acquire::Queued => panic!("lock should be free"),
        }
    }

    #[test]
    fn same_writer_notices_merge() {
        let mut m = LockMgr::new();
        m.acquire(7, 0);
        m.release(7, 0, iv(&[1]), 1);
        m.acquire(7, 0);
        m.release(7, 0, iv(&[3]), 2);
        match m.acquire(7, 1) {
            Acquire::Granted(n, _) => assert_eq!(n, vec![(0, iv(&[1, 3]))]),
            Acquire::Queued => panic!(),
        }
    }

    #[test]
    fn barrier_clears_notices() {
        let mut m = LockMgr::new();
        m.acquire(7, 0);
        m.release(7, 0, iv(&[1]), 9);
        m.clear_notices();
        assert_eq!(m.acquire(7, 1), Acquire::Granted(vec![], 9));
    }

    #[test]
    fn foreign_release_is_a_noop() {
        let mut m = LockMgr::new();
        m.acquire(1, 0);
        // A retried release whose first copy was already applied (or a
        // release racing a handover) must not disturb the current holder.
        assert!(m.release(1, 3, Interval::default(), 0).is_empty());
        assert_eq!(m.state(1).unwrap().holders, vec![0]);
        assert!(m.release(9, 0, Interval::default(), 0).is_empty());
    }

    #[test]
    fn duplicate_acquire_regrants_without_double_hold() {
        let mut m = LockMgr::new();
        m.acquire(7, 0);
        m.release(7, 0, iv(&[2]), 50);
        assert_eq!(m.acquire(1, 0), Acquire::Granted(vec![], 0));
        // The grant reply was lost; the retried request re-grants with
        // the same notices and floor, without a second holder entry.
        assert_eq!(m.acquire(1, 0), Acquire::Granted(vec![], 0));
        assert_eq!(m.state(1).unwrap().holders, vec![0]);
        // A queued requester retrying stays queued exactly once.
        assert_eq!(m.acquire(1, 1), Acquire::Queued);
        assert_eq!(m.acquire(1, 1), Acquire::Queued);
        assert_eq!(m.state(1).unwrap().queue.len(), 1);
    }
}
