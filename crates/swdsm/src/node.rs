//! The per-node DSM engine: access functions, interval flushing,
//! synchronization, and the cluster-shared protocol state.

use crate::barriermgr::{BarrierMgr, BarrierStep};

use crate::home::HomeStore;
use crate::kinds;
use crate::lockmgr::{Acquire, LockMgr};
use crate::proto::*;
use cluster::{Cluster, NodeCtx};
use interconnect::{downcast, try_downcast, Outcome, Page, RequestError};
use memwire::{
    CachedPage, Diff, Distribution, GlobalAddr, Interval, PageId, PageTable, RegionDir,
    RegionMeta, PAGE_SIZE,
};
use parking_lot::Mutex;
use sim::{Histogram, MachineCost, StatSet};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Barrier ids with the top bit set are reserved for internal use
/// (collective allocation).
const ALLOC_BARRIER: u32 = 0x8000_0000;

/// Upper bound on protocol-level retry rounds (re-arrivals, grant
/// re-requests) before the node gives up on a synchronization op.
const MAX_SYNC_ROUNDS: u32 = 64;

/// A synchronization operation failed unrecoverably on a faulty fabric:
/// either a fatal [`RequestError`] or transient faults outlasting every
/// retry. Returned by the `try_*` synchronization entry points; the
/// infallible wrappers turn it into a structured panic (the node's
/// orderly shutdown report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsmError {
    /// The failing operation ("lock_acquire", "lock_release", "barrier").
    pub op: &'static str,
    /// The lock or barrier id involved.
    pub id: u32,
    /// The underlying fabric error.
    pub err: RequestError,
}

impl std::fmt::Display for DsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} of {} failed: {}", self.op, self.id, self.err)
    }
}

impl std::error::Error for DsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.err)
    }
}

/// Region ids at or above this belong to single-node (TreadMarks-style)
/// allocations and encode the allocating rank.
const LOCAL_REGION_BASE: u32 = 1 << 24;

/// Protocol tunables of the software DSM.
#[derive(Debug, Clone, Copy)]
pub struct DsmConfig {
    /// Ship whole pages home at release points instead of diffs
    /// (ablation baseline; much more wire traffic).
    pub whole_page_writeback: bool,
    /// Scope consistency on lock edges: grants carry write notices and
    /// acquirers invalidate exactly those pages. When false, acquirers
    /// conservatively invalidate their whole cache (the pre-scope
    /// "barrier-wide invalidation" baseline).
    pub notices_on_locks: bool,
    /// Cost of one page-fault trap (SIGSEGV + kernel + handler entry).
    pub fault_trap_ns: u64,
    /// Cost of snapshotting a twin (one page copy).
    pub twin_ns: u64,
    /// Cost of scanning a page against its twin to encode a diff.
    pub diff_scan_ns: u64,
    /// Fixed cost of applying one diff at the home...
    pub diff_apply_base_ns: u64,
    /// ...plus this much per changed byte.
    pub diff_apply_per_byte_ns: u64,
    /// Cost for the home to copy a page into a fetch reply.
    pub page_copy_ns: u64,
    /// Maximum cached (remotely homed) pages per node; 0 = unbounded.
    /// Real JiaJia bounds its page cache by available memory; evictions
    /// write dirty pages home and drop clean ones FIFO.
    pub cache_pages: usize,
    /// Adaptive home migration (JiaJia's optimization): a page diffed by
    /// the same single remote writer `migration_threshold` times in a row
    /// migrates its home to that writer at the next barrier, turning its
    /// future diffs into local writes.
    pub home_migration: bool,
    /// Consecutive same-writer diffs before a page migrates.
    pub migration_threshold: u32,
    /// Barrier algorithm: the centralized manager (default, JiaJia's
    /// scheme) or a dissemination barrier (log2(n) pairwise rounds —
    /// no manager hotspot, but no quiescent point for home migration,
    /// so migration stays off under dissemination).
    pub barrier_algo: BarrierAlgo,
}

/// Selectable barrier algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierAlgo {
    /// Arrivals gather at `id % nodes`; the manager broadcasts releases.
    #[default]
    Central,
    /// log2(n) rounds of pairwise exchanges, each carrying the senders'
    /// accumulated write notices.
    Dissemination,
}

impl Default for DsmConfig {
    fn default() -> Self {
        Self {
            whole_page_writeback: false,
            notices_on_locks: true,
            fault_trap_ns: 20_000,
            twin_ns: 3_000,
            diff_scan_ns: 4_000,
            diff_apply_base_ns: 1_000,
            diff_apply_per_byte_ns: 1,
            page_copy_ns: 2_000,
            cache_pages: 0,
            home_migration: false,
            migration_threshold: 2,
            barrier_algo: BarrierAlgo::default(),
        }
    }
}

/// Cluster-shared state of the software DSM: home stores, lock and
/// barrier managers, the region directory, and per-node statistics.
pub struct SwDsm {
    cfg: DsmConfig,
    nodes: usize,
    machine: MachineCost,
    dir: RegionDir,
    homes: Vec<Mutex<HomeStore>>,
    lockmgrs: Vec<Arc<Mutex<LockMgr>>>,
    barriermgrs: Vec<Mutex<BarrierMgr>>,
    stats: Vec<StatSet>,
    /// Pages whose home moved away from their distribution-derived node
    /// (the migration directory; real JiaJia piggybacks it on barriers).
    home_override: parking_lot::RwLock<HashMap<PageId, usize>>,
    /// Per-home tracking of consecutive same-writer diffs, and the
    /// migration candidates gathered for the next barrier.
    migration: Vec<Mutex<MigrationTrack>>,
    /// Per-node: barrier id → highest release epoch whose notice-clear
    /// already ran, so a replayed release does not wipe notices that
    /// accumulated after the original broadcast.
    release_seen: Vec<Mutex<HashMap<u32, u64>>>,
    /// Lock-acquire latency (virtual ns from request to grant-in-hand),
    /// pooled across nodes; feeds the monitoring quantiles.
    lock_hist: Histogram,
}

#[derive(Default)]
struct MigrationTrack {
    last_writer: HashMap<PageId, (usize, u32)>,
    candidates: Vec<(PageId, usize)>,
}

/// The per-node statistics exposed by the DSM (JiaJia-style counters).
pub const STAT_NAMES: &[&str] = &[
    "getpages",
    "diffs",
    "diff_bytes",
    "lock_acquires",
    "lock_queued",
    "barriers",
    "invalidations",
    "twins",
    "traps",
    "evictions",
    "migrations",
    "reads",
    "writes",
    "retries",
];

impl SwDsm {
    /// Create the DSM over `cluster` and register its protocol handlers
    /// on every node. Call once, before [`Cluster::run`].
    pub fn install(cluster: &Cluster, cfg: DsmConfig) -> Arc<SwDsm> {
        let nodes = cluster.config().nodes;
        assert!(
            cluster.config().resilience.is_none()
                || cfg.barrier_algo == BarrierAlgo::Central,
            "dissemination barriers have no retry protocol: \
             use BarrierAlgo::Central on a fabric with a resilience policy"
        );
        let dsm = Arc::new(SwDsm {
            cfg,
            nodes,
            machine: cluster.config().cost.machine,
            dir: RegionDir::new(),
            homes: (0..nodes).map(|_| Mutex::new(HomeStore::new())).collect(),
            lockmgrs: (0..nodes).map(|_| Arc::new(Mutex::new(LockMgr::new()))).collect(),
            barriermgrs: (0..nodes).map(|_| Mutex::new(BarrierMgr::new())).collect(),
            stats: (0..nodes).map(|_| StatSet::new(STAT_NAMES)).collect(),
            home_override: parking_lot::RwLock::new(HashMap::new()),
            migration: (0..nodes).map(|_| Mutex::new(MigrationTrack::default())).collect(),
            release_seen: (0..nodes).map(|_| Mutex::new(HashMap::new())).collect(),
            lock_hist: Histogram::new(),
        });
        dsm.register_handlers(cluster);
        dsm
    }

    /// Per-node statistics.
    pub fn stats(&self, node: usize) -> &StatSet {
        &self.stats[node]
    }

    /// The protocol configuration.
    pub fn config(&self) -> &DsmConfig {
        &self.cfg
    }

    /// Lock-acquire latency histogram (shared storage: the returned
    /// clone observes later acquisitions too).
    pub fn lock_histogram(&self) -> Histogram {
        self.lock_hist.clone()
    }

    /// Home node of `page` (migration directory first, then the
    /// allocation's distribution).
    pub fn home_of(&self, page: PageId) -> usize {
        if self.cfg.home_migration {
            if let Some(&home) = self.home_override.read().get(&page) {
                return home;
            }
        }
        if page.region >= LOCAL_REGION_BASE {
            // Single-node allocations are homed on the allocating rank.
            ((page.region >> 24) - 1) as usize
        } else {
            self.dir.meta(page.region).home_of(page.index, self.nodes)
        }
    }

    /// Record a remote diff for migration tracking (at the home `node`).
    fn track_diff_writer(&self, node: usize, page: PageId, writer: usize) {
        if !self.cfg.home_migration || writer == node {
            return;
        }
        let mut t = self.migration[node].lock();
        let entry = t.last_writer.entry(page).or_insert((writer, 0));
        if entry.0 == writer {
            entry.1 += 1;
        } else {
            *entry = (writer, 1);
        }
        if entry.1 >= self.cfg.migration_threshold
            && !t.candidates.iter().any(|(p, _)| *p == page)
        {
            t.candidates.push((page, writer));
        }
    }

    /// Apply pending migrations (called by the barrier manager while
    /// every node is blocked — the quiescent point the real protocol
    /// piggybacks on). Returns how many pages moved (their contents ride
    /// the barrier traffic).
    fn apply_migrations(&self) -> u64 {
        if !self.cfg.home_migration {
            return 0;
        }
        let mut moved = 0;
        for node in 0..self.nodes {
            let candidates = {
                let mut t = self.migration[node].lock();
                let candidates = std::mem::take(&mut t.candidates);
                // Migrated pages start tracking afresh at the new home.
                for (page, _) in &candidates {
                    t.last_writer.remove(page);
                }
                candidates
            };
            for (page, new_home) in candidates {
                let old_home = self.home_of(page);
                if old_home == new_home {
                    continue;
                }
                let bytes = self.homes[old_home].lock().snapshot(page);
                self.homes[new_home].lock().replace(page, bytes);
                self.home_override.write().insert(page, new_home);
                self.stats[new_home].add("migrations", 1);
                moved += 1;
            }
        }
        moved
    }

    fn register_handlers(self: &Arc<Self>, cluster: &Cluster) {
        let net = cluster.network();

        // Page-path handlers register through the fallible API: a
        // malformed payload NACKs the requester with a typed
        // DispatchError instead of panicking the delivery engine.

        // Page fetch: reply with a snapshot of the master copy — a
        // shared Page handle, so no byte copy happens here.
        let dsm = self.clone();
        net.register_all_try(kinds::GET_PAGE, move |node| {
            let dsm = dsm.clone();
            move |_ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let req = try_downcast::<GetPage>(p)?;
                debug_assert_eq!(dsm.home_of(req.page), node, "fetch sent to non-home");
                let bytes = dsm.homes[node].lock().snapshot(req.page);
                Ok(Outcome::reply_costing(
                    PageData { bytes },
                    PAGE_SIZE as u64 + 16,
                    dsm.cfg.page_copy_ns,
                ))
            }
        });

        // Diff application at the home.
        let dsm = self.clone();
        net.register_all_try(kinds::APPLY_DIFFS, move |node| {
            let dsm = dsm.clone();
            move |_ctx: &interconnect::HandlerCtx<'_>, src, p| {
                let msg = try_downcast::<ApplyDiffs>(p)?;
                let mut extra = 0;
                {
                    let mut home = dsm.homes[node].lock();
                    for (page, diff) in &msg.diffs {
                        debug_assert_eq!(dsm.home_of(*page), node, "diff sent to non-home");
                        extra += dsm.cfg.diff_apply_base_ns
                            + dsm.cfg.diff_apply_per_byte_ns * diff.changed_bytes() as u64;
                        home.apply_diff(*page, diff);
                    }
                }
                for (page, _) in &msg.diffs {
                    dsm.track_diff_writer(node, *page, src);
                }
                Ok(Outcome::reply_costing((), 8, extra))
            }
        });

        // Whole-page write-back (ablation mode). Installing the shipped
        // Page is a reference-count move, not a copy.
        let dsm = self.clone();
        net.register_all_try(kinds::PUT_PAGE, move |node| {
            let dsm = dsm.clone();
            move |_ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let msg = try_downcast::<PutPages>(p)?;
                let extra = msg.pages.len() as u64 * dsm.cfg.page_copy_ns;
                let mut home = dsm.homes[node].lock();
                for (page, bytes) in msg.pages {
                    home.replace(page, bytes);
                }
                Ok(Outcome::reply_costing((), 8, extra))
            }
        });

        // Lock acquire at the manager.
        let dsm = self.clone();
        net.register_all(kinds::LOCK_REQ, move |node| {
            let mgr = dsm.lockmgrs[node].clone();
            move |ctx: &interconnect::HandlerCtx<'_>, src, p| {
                let req = downcast::<LockReq>(p);
                match mgr.lock().acquire_mode(req.lock, src, req.mode, ctx.now) {
                    Acquire::Granted(notices, not_before) => {
                        // The grant carries its validity floor: the
                        // requester may not proceed before `not_before`
                        // (the current holder's release time). corr packs
                        // (grantee, lock) so the analyzer can chain
                        // grants into per-lock handoff sequences.
                        let corr = ((src as u64 + 1) << 32) | (req.lock as u64 + 1);
                        sim::trace::instant_corr(
                            ctx.now.max(not_before),
                            node,
                            "swdsm",
                            "lock_grant",
                            req.lock as u64,
                            corr,
                        );
                        let bytes = notices_wire_bytes(&notices);
                        Outcome::reply_not_before(
                            LockReply::Granted(notices),
                            bytes,
                            not_before,
                        )
                    }
                    Acquire::Queued => Outcome::reply(LockReply::Queued, 8),
                }
            }
        });

        // Lock release at the manager: may hand over to a queued waiter.
        let dsm = self.clone();
        net.register_all(kinds::LOCK_REL, move |node| {
            let mgr = dsm.lockmgrs[node].clone();
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let rel = downcast::<LockRel>(p);
                for (next, notices) in
                    mgr.lock().release(rel.lock, rel.releaser, rel.interval.clone(), ctx.now)
                {
                    let corr = ((next as u64 + 1) << 32) | (rel.lock as u64 + 1);
                    sim::trace::instant_corr(ctx.now, node, "swdsm", "lock_grant", rel.lock as u64, corr);
                    let bytes = notices_wire_bytes(&notices);
                    // Tagged so a lost grant leaves a loss tombstone
                    // under the waiter's mailbox tag instead of hanging
                    // it forever.
                    ctx.post_tagged(
                        next,
                        kinds::LOCK_GRANT,
                        LockGrant { lock: rel.lock, notices },
                        bytes,
                        interconnect::mailbox::tag(kinds::LOCK_GRANT, rel.lock),
                    );
                }
                Outcome::done()
            }
        });

        // Deferred lock grant arriving at a queued requester.
        net.register_all(kinds::LOCK_GRANT, |node| {
            let mailbox = net.mailbox(node);
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let grant = downcast::<LockGrant>(p);
                let tag = interconnect::mailbox::tag(kinds::LOCK_GRANT, grant.lock);
                mailbox.deposit(tag, Box::new(grant), ctx.now);
                Outcome::done()
            }
        });

        // Barrier arrival at the manager.
        let dsm = self.clone();
        net.register_all(kinds::BARRIER_ARRIVE, move |node| {
            let dsm = dsm.clone();
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let arr = downcast::<BarrierArrive>(p);
                let step = dsm.barriermgrs[node].lock().arrive(
                    arr.id,
                    arr.epoch,
                    arr.who,
                    arr.interval,
                    ctx.now,
                    dsm.nodes,
                );
                let tag = interconnect::mailbox::tag(kinds::BARRIER_RELEASE, arr.id);
                match step {
                    BarrierStep::Release { epoch, release_ns, intervals } => {
                        // Quiescent point: every node is blocked in this
                        // barrier, so pending home migrations apply now. No
                        // page content moves: the new home is the page's
                        // last writer, whose copy is already current — only
                        // the directory entries ride the release broadcast.
                        let moved = dsm.apply_migrations();
                        // The release is stamped with its `not_before`
                        // floor: no participant resumes before release_ns.
                        // corr = epoch ties the release to the matching
                        // client-side barrier spans.
                        sim::trace::instant_corr(release_ns, node, "swdsm", "barrier_release", arr.id as u64, epoch);
                        let rel = BarrierRelease { id: arr.id, epoch, intervals };
                        let bytes = rel.wire_bytes() + moved * 16;
                        if ctx.resilient() {
                            // Pure request/reply rendezvous: every earlier
                            // arrival parked its reply channel; the release
                            // discharges them all, and the final arriver
                            // takes the release as its own reply. No
                            // broadcast exists for a retried arrival to
                            // race, so the schedule is reproducible.
                            for &(who, _) in &rel.intervals {
                                if who != arr.who {
                                    ctx.complete_deferred(tag, who, rel.clone(), bytes, release_ns);
                                }
                            }
                            return Outcome::reply_not_before(rel, bytes, release_ns);
                        }
                        for dst in 0..dsm.nodes {
                            ctx.post_tagged_at(
                                dst,
                                kinds::BARRIER_RELEASE,
                                rel.clone(),
                                bytes,
                                tag,
                                release_ns,
                            );
                        }
                    }
                    BarrierStep::Replay { epoch, release_ns, intervals } => {
                        // A retried arrival for an epoch that already
                        // released: the arriver's release reply was lost.
                        // Answer with the cached release.
                        let rel = BarrierRelease { id: arr.id, epoch, intervals };
                        let bytes = rel.wire_bytes();
                        return Outcome::reply_not_before(rel, bytes, release_ns);
                    }
                    BarrierStep::Waiting => {
                        if ctx.resilient() {
                            // Park the reply; it is answered with the
                            // release when the last participant arrives.
                            return Outcome::defer(tag);
                        }
                    }
                }
                Outcome::done()
            }
        });

        // Dissemination-barrier rounds: deposit into the receiver's
        // mailbox under (round, id).
        for round in 0..(kinds::DISS_END - kinds::DISS_BASE) {
            let kind = kinds::DISS_BASE + round;
            net.register_all(kind, |node| {
                let mb = net.mailbox(node);
                move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                    let msg = downcast::<DissMsg>(p);
                    mb.deposit(interconnect::mailbox::tag(kind, msg.id), Box::new(msg), ctx.now);
                    Outcome::done()
                }
            });
        }

        // Barrier release at each participant.
        let dsm = self.clone();
        net.register_all(kinds::BARRIER_RELEASE, |node| {
            let dsm = dsm.clone();
            let mailbox = net.mailbox(node);
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let rel = downcast::<BarrierRelease>(p);
                // A barrier makes all prior writes visible everywhere;
                // notice history on locks managed here is now redundant.
                // Replayed releases (same epoch again) must not clear
                // notices that accumulated after the original broadcast.
                let fresh = {
                    let mut seen = dsm.release_seen[node].lock();
                    let e = seen.entry(rel.id).or_insert(0);
                    if rel.epoch > *e {
                        *e = rel.epoch;
                        true
                    } else {
                        false
                    }
                };
                if fresh {
                    dsm.lockmgrs[node].lock().clear_notices();
                }
                let tag = interconnect::mailbox::tag(kinds::BARRIER_RELEASE, rel.id);
                mailbox.deposit(tag, Box::new(rel), ctx.now);
                Outcome::done()
            }
        });
    }

    /// Bind a per-node engine. One per node thread.
    pub fn node(self: &Arc<Self>, ctx: NodeCtx) -> DsmNode {
        DsmNode {
            dsm: self.clone(),
            rank: ctx.rank(),
            ctx,
            table: Mutex::new(PageTable::new()),
            local_mods: Mutex::new(BTreeSet::new()),
            epoch_mods: Mutex::new(Interval::default()),
            next_region: Mutex::new(NextRegions { collective: 1, local: 0 }),
            epochs: Mutex::new(HashMap::new()),
        }
    }
}

#[derive(Debug)]
struct NextRegions {
    /// Next collective region id (identical on all nodes by lockstep).
    collective: u32,
    /// Next single-node region counter (combined with the rank).
    local: u32,
}

/// The per-node software-DSM engine.
///
/// All shared accesses go through the access functions below (the
/// Shasta-style software-check scheme standing in for mmap/SIGSEGV; see
/// DESIGN.md). The engine is `Send` so thread programming models can
/// hand it between threads, but it represents *one* node CPU's view.
pub struct DsmNode {
    dsm: Arc<SwDsm>,
    rank: usize,
    ctx: NodeCtx,
    table: Mutex<PageTable>,
    /// Home-local pages written in the current interval.
    local_mods: Mutex<BTreeSet<PageId>>,
    /// Union of this node's intervals since the last barrier. A barrier
    /// must re-announce writes already published through lock releases,
    /// otherwise peers keep cached copies that predate those critical
    /// sections.
    epoch_mods: Mutex<Interval>,
    next_region: Mutex<NextRegions>,
    /// Barrier id → next epoch.
    epochs: Mutex<HashMap<u32, u64>>,
}

impl DsmNode {
    /// This node's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.dsm.nodes
    }

    /// The underlying node context (clock, compute charging).
    pub fn ctx(&self) -> &NodeCtx {
        &self.ctx
    }

    /// The cluster-wide DSM instance.
    pub fn dsm(&self) -> &Arc<SwDsm> {
        &self.dsm
    }

    fn stat(&self, name: &str, n: u64) {
        self.dsm.stats[self.rank].add(name, n);
    }

    /// Emit a protocol span `[t0, now]` into the global trace session.
    #[inline]
    fn trace_span(&self, t0: u64, op: &'static str, arg: u64) {
        self.trace_span_corr(t0, op, arg, 0);
    }

    /// [`DsmNode::trace_span`] with a correlation id (see
    /// `sim::trace::TraceEvent::corr`): lock spans carry `lock + 1`,
    /// barrier spans carry the epoch.
    #[inline]
    fn trace_span_corr(&self, t0: u64, op: &'static str, arg: u64, corr: u64) {
        if sim::trace::enabled() {
            let now = self.ctx.clock().now();
            sim::trace::span_corr(t0, now.saturating_sub(t0), self.rank, "swdsm", op, arg, corr);
        }
    }

    fn machine(&self) -> &MachineCost {
        &self.dsm.machine
    }

    // ---- allocation ----------------------------------------------------

    /// Collective allocation: every node must call `alloc` in the same
    /// order with the same arguments (JiaJia/HLRC semantics, implicit
    /// barrier included). Returns the region's base address.
    pub fn alloc(&self, bytes: usize, dist: Distribution) -> GlobalAddr {
        let region = {
            let mut g = self.next_region.lock();
            let id = g.collective;
            assert!(id < LOCAL_REGION_BASE, "collective region ids exhausted");
            g.collective += 1;
            id
        };
        self.dsm.dir.register(region, RegionMeta::new(bytes, dist));
        self.barrier(ALLOC_BARRIER);
        GlobalAddr::new(region, 0)
    }

    /// Single-node allocation (TreadMarks `Tmk_malloc` semantics): only
    /// the caller allocates; all pages are homed here; no barrier. The
    /// address must be delivered to other nodes explicitly (the model
    /// layer's distribute routine).
    pub fn alloc_local(&self, bytes: usize) -> GlobalAddr {
        let region = {
            let mut g = self.next_region.lock();
            let id = LOCAL_REGION_BASE * (self.rank as u32 + 1) + g.local;
            g.local += 1;
            id
        };
        self.dsm
            .dir
            .register(region, RegionMeta::new(bytes, Distribution::OnNode(self.rank)));
        GlobalAddr::new(region, 0)
    }

    /// Adopt a region allocated elsewhere (receiver side of an address
    /// distribution). Registers the same metadata locally; idempotent.
    pub fn adopt(&self, addr: GlobalAddr, bytes: usize, home: usize) {
        self.dsm
            .dir
            .register(addr.region(), RegionMeta::new(bytes, Distribution::OnNode(home)));
    }

    // ---- access functions ----------------------------------------------

    /// Read `out.len()` bytes from global memory at `addr`.
    pub fn read_bytes(&self, addr: GlobalAddr, out: &mut [u8]) {
        self.stat("reads", 1);
        self.ctx.compute(self.machine().dsm_check_ns);
        self.charge_local_access(out.len());
        let mut done = 0;
        while done < out.len() {
            let a = addr.add(done as u32);
            let page = a.page();
            let off = a.page_offset();
            let chunk = (PAGE_SIZE - off).min(out.len() - done);
            self.ensure_readable(page);
            self.copy_from_page(page, off, &mut out[done..done + chunk]);
            done += chunk;
        }
    }

    /// Write `data` to global memory at `addr`.
    pub fn write_bytes(&self, addr: GlobalAddr, data: &[u8]) {
        self.stat("writes", 1);
        self.ctx.compute(self.machine().dsm_check_ns);
        self.charge_local_access(data.len());
        let mut done = 0;
        while done < data.len() {
            let a = addr.add(done as u32);
            let page = a.page();
            let off = a.page_offset();
            let chunk = (PAGE_SIZE - off).min(data.len() - done);
            self.ensure_writable(page, off);
            self.copy_to_page(page, off, &data[done..done + chunk]);
            done += chunk;
        }
    }

    /// Read a u64.
    pub fn read_u64(&self, addr: GlobalAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a u64.
    pub fn write_u64(&self, addr: GlobalAddr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Read an f64.
    pub fn read_f64(&self, addr: GlobalAddr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write an f64.
    pub fn write_f64(&self, addr: GlobalAddr, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    fn charge_local_access(&self, bytes: usize) {
        if bytes <= 64 {
            // Word access: a cached load/store.
            self.ctx.compute(self.machine().local_access_ns);
        } else {
            // Bulk access streams through the node's memory bus (the
            // same accounting every platform uses, so memory-bound
            // kernels compare fairly across SMP and the DSMs).
            self.ctx.bus_transfer(bytes as u64);
        }
    }

    fn is_home(&self, page: PageId) -> bool {
        self.dsm.home_of(page) == self.rank
    }

    fn copy_from_page(&self, page: PageId, off: usize, out: &mut [u8]) {
        if self.is_home(page) {
            self.dsm.homes[self.rank].lock().read(page, off, out);
        } else {
            let table = self.table.lock();
            let p = table.get(page).expect("readable page vanished");
            out.copy_from_slice(&p.data[off..off + out.len()]);
        }
    }

    fn copy_to_page(&self, page: PageId, off: usize, data: &[u8]) {
        if self.is_home(page) {
            self.dsm.homes[self.rank].lock().write(page, off, data);
        } else {
            let mut table = self.table.lock();
            let p = table.get_mut(page).expect("writable page vanished");
            p.data[off..off + data.len()].copy_from_slice(data);
        }
    }

    /// Make `page` locally readable, fetching from its home on a miss.
    fn ensure_readable(&self, page: PageId) {
        if self.is_home(page) {
            return;
        }
        if self.table.lock().get(page).is_some() {
            return;
        }
        self.fetch_page(page);
    }

    /// Make `page` locally writable (twinning on the first write).
    /// `off` is the in-page byte offset of the triggering write; the
    /// first write per interval is traced with `corr = off + 1` so the
    /// sharing analyzer can tell true sharing (same offset from several
    /// nodes) from false sharing (distinct offsets on one page).
    fn ensure_writable(&self, page: PageId, off: usize) {
        if self.is_home(page) {
            if self.local_mods.lock().insert(page) {
                sim::trace::instant_corr(
                    self.ctx.clock().now(),
                    self.rank,
                    "swdsm",
                    "write_local",
                    page.pack(),
                    off as u64 + 1,
                );
            }
            return;
        }
        let mut table = self.table.lock();
        match table.get_mut(page) {
            Some(p) if p.state == memwire::PageState::Writable => {}
            Some(p) => {
                // Write fault on a read-only copy: trap + twin.
                self.stat("traps", 1);
                self.stat("twins", 1);
                sim::trace::instant_corr(
                    self.ctx.clock().now(),
                    self.rank,
                    "swdsm",
                    "write_fault",
                    page.pack(),
                    off as u64 + 1,
                );
                self.ctx.compute(self.dsm.cfg.fault_trap_ns + self.dsm.cfg.twin_ns);
                p.make_writable();
            }
            None => {
                drop(table);
                self.fetch_page(page);
                let mut table = self.table.lock();
                let p = table.get_mut(page).expect("fetched page vanished");
                self.stat("twins", 1);
                sim::trace::instant_corr(
                    self.ctx.clock().now(),
                    self.rank,
                    "swdsm",
                    "write_fault",
                    page.pack(),
                    off as u64 + 1,
                );
                self.ctx.compute(self.dsm.cfg.twin_ns);
                p.make_writable();
            }
        }
    }

    /// Whether the fabric was built with a timeout/retry policy (fault
    /// injection active): protocol requests then retry transient faults
    /// instead of panicking on the first loss.
    fn resilient(&self) -> bool {
        self.ctx.port().resilience().is_some()
    }

    fn fetch_page(&self, page: PageId) {
        let t0 = self.ctx.clock().now();
        self.stat("traps", 1);
        self.stat("getpages", 1);
        self.ctx.compute(self.dsm.cfg.fault_trap_ns);
        self.make_room();
        let home = self.dsm.home_of(page);
        let reply = if self.resilient() {
            self.ctx
                .port()
                .request_retrying(home, kinds::GET_PAGE, GetPage { page }, 24)
                .unwrap_or_else(|e| {
                    panic!(
                        "swdsm node {}: unrecoverable fault fetching page {page:?}: {e}",
                        self.rank
                    )
                })
        } else {
            self.ctx.port().request(home, kinds::GET_PAGE, GetPage { page }, 24)
        };
        let data = downcast::<PageData>(reply);
        // The one copy of the fetch path: the cached copy must be
        // privately mutable (twinning), so it leaves the shared Page.
        self.table.lock().install(page, CachedPage::read_only(data.bytes.to_vec()));
        self.trace_span(t0, "page_fault", page.pack());
    }

    /// Ship a batch of home-bound messages, retrying transient faults
    /// when the fabric is resilient. Fatal faults end the node with a
    /// structured report — a half-flushed interval is unrecoverable.
    fn send_batch<T: std::any::Any + Send + Clone>(&self, msgs: Vec<(usize, u32, T, u64)>) {
        if msgs.is_empty() {
            return;
        }
        if self.resilient() {
            if let Err(e) = self.ctx.port().request_batch_retrying(msgs) {
                panic!("swdsm node {}: unrecoverable fault flushing interval: {e}", self.rank);
            }
        } else {
            let _acks = self.ctx.port().request_batch(msgs);
        }
    }

    /// Enforce the page-cache bound before installing a new page: drop
    /// a clean victim, or diff a dirty one home first (JiaJia's
    /// memory-pressure write-back).
    fn make_room(&self) {
        let cap = self.dsm.cfg.cache_pages;
        if cap == 0 {
            return;
        }
        loop {
            let victim = {
                let mut table = self.table.lock();
                if table.len() < cap {
                    return;
                }
                table.victim()
            };
            let Some((page, state)) = victim else { return };
            if state == memwire::PageState::Writable {
                self.flush_dirty_subset(&[page]);
            }
            if self.table.lock().invalidate(page) {
                self.stat("evictions", 1);
            }
        }
    }

    // ---- interval flushing (release) -------------------------------------

    /// Push this interval's modifications home and return the interval's
    /// write notices. Called at every release point (unlock, barrier).
    fn flush_interval(&self) -> Interval {
        let t0 = self.ctx.clock().now();
        let dirty = {
            let table = self.table.lock();
            table.writable_pages()
        };
        let local: Vec<PageId> = std::mem::take(&mut *self.local_mods.lock()).into_iter().collect();

        let mut all_pages = dirty.clone();
        all_pages.extend_from_slice(&local);
        let interval = Interval::from_pages(&all_pages);
        if dirty.is_empty() {
            return interval;
        }

        // The per-home batches are ordered maps: each message in the
        // batch pays send overhead sequentially on this node's clock,
        // so the departure order must not depend on hash iteration.
        if self.dsm.cfg.whole_page_writeback {
            let mut by_home: BTreeMap<usize, Vec<(PageId, Page)>> = BTreeMap::new();
            {
                let mut table = self.table.lock();
                for page in &dirty {
                    let (_twin, cur) = table.downgrade(*page);
                    self.ctx.compute(self.dsm.cfg.page_copy_ns);
                    by_home
                        .entry(self.dsm.home_of(*page))
                        .or_default()
                        .push((*page, Page::from(cur)));
                }
            }
            self.stat("diffs", dirty.len() as u64);
            let msgs: Vec<_> = by_home
                .into_iter()
                .map(|(home, pages)| {
                    let msg = PutPages { pages };
                    let bytes = msg.wire_bytes();
                    self.stat("diff_bytes", bytes);
                    (home, kinds::PUT_PAGE, msg, bytes)
                })
                .collect();
            self.send_batch(msgs);
        } else {
            let mut by_home: BTreeMap<usize, Vec<(PageId, Diff)>> = BTreeMap::new();
            {
                let mut table = self.table.lock();
                for page in &dirty {
                    let (twin, cur) = table.downgrade(*page);
                    self.ctx.compute(self.dsm.cfg.diff_scan_ns);
                    let diff = Diff::between(&twin, &cur);
                    if !diff.is_empty() {
                        by_home.entry(self.dsm.home_of(*page)).or_default().push((*page, diff));
                    }
                }
            }
            let msgs: Vec<_> = by_home
                .into_iter()
                .map(|(home, diffs)| {
                    self.stat("diffs", diffs.len() as u64);
                    let msg = ApplyDiffs { diffs };
                    let bytes = msg.wire_bytes();
                    self.stat("diff_bytes", bytes);
                    (home, kinds::APPLY_DIFFS, msg, bytes)
                })
                .collect();
            self.send_batch(msgs);
        }
        self.trace_span(t0, "diff_flush", dirty.len() as u64);
        interval
    }

    /// Invalidate cached copies of pages that `notices` says other nodes
    /// wrote. A page that is locally dirty (written outside the incoming
    /// synchronization's scope, e.g. under false sharing) has its diff
    /// flushed home first so no writes are lost.
    fn apply_notices(&self, notices: &[(usize, Interval)]) {
        let mut stale: Vec<PageId> = Vec::new();
        {
            let table = self.table.lock();
            for (writer, interval) in notices {
                if *writer == self.rank {
                    continue;
                }
                for page in interval.pages() {
                    // Home copies already hold the writers' diffs.
                    if !self.is_home(page) && table.get(page).is_some() {
                        stale.push(page);
                    }
                }
            }
        }
        if stale.is_empty() {
            return;
        }
        stale.sort();
        stale.dedup();
        self.flush_dirty_subset(&stale);
        let mut table = self.table.lock();
        let mut dropped = 0u64;
        for page in stale {
            if table.invalidate(page) {
                self.stat("invalidations", 1);
                dropped += 1;
            }
        }
        if dropped > 0 {
            sim::trace::instant(self.ctx.clock().now(), self.rank, "swdsm", "write_notice", dropped);
        }
    }

    /// Diff-and-ship any dirty pages among `pages` (pre-invalidation
    /// rescue path; rare under proper synchronization discipline).
    fn flush_dirty_subset(&self, pages: &[PageId]) {
        let mut by_home: BTreeMap<usize, Vec<(PageId, Diff)>> = BTreeMap::new();
        {
            let mut table = self.table.lock();
            for &page in pages {
                let dirty = matches!(
                    table.get(page),
                    Some(p) if p.state == memwire::PageState::Writable
                );
                if dirty {
                    let (twin, cur) = table.downgrade(page);
                    self.ctx.compute(self.dsm.cfg.diff_scan_ns);
                    let diff = Diff::between(&twin, &cur);
                    if !diff.is_empty() {
                        by_home.entry(self.dsm.home_of(page)).or_default().push((page, diff));
                    }
                }
            }
        }
        let msgs: Vec<_> = by_home
            .into_iter()
            .map(|(home, diffs)| {
                self.stat("diffs", diffs.len() as u64);
                let msg = ApplyDiffs { diffs };
                let bytes = msg.wire_bytes();
                self.stat("diff_bytes", bytes);
                (home, kinds::APPLY_DIFFS, msg, bytes)
            })
            .collect();
        self.send_batch(msgs);
    }

    /// Drop every cached copy (conservative acquire in the
    /// no-lock-notices ablation mode). Dirty pages are flushed home
    /// first.
    fn invalidate_all_cached(&self) {
        let _ = self.flush_interval();
        let mut table = self.table.lock();
        let n = table.len() as u64;
        table.clear();
        self.stat("invalidations", n);
    }

    // ---- synchronization -------------------------------------------------

    /// Acquire global lock `lock` exclusively.
    pub fn acquire(&self, lock: u32) {
        self.try_acquire(lock).unwrap_or_else(|e| self.fatal(&e));
    }

    /// Acquire global lock `lock` in shared (reader) mode: concurrent
    /// readers hold it together; writers exclude everyone.
    pub fn acquire_shared(&self, lock: u32) {
        self.try_acquire_shared(lock).unwrap_or_else(|e| self.fatal(&e));
    }

    /// [`DsmNode::acquire`] with unrecoverable fabric faults surfaced as
    /// a [`DsmError`] instead of a panic.
    pub fn try_acquire(&self, lock: u32) -> Result<(), DsmError> {
        self.try_acquire_mode(lock, crate::lockmgr::Mode::Excl)
    }

    /// [`DsmNode::acquire_shared`] with unrecoverable fabric faults
    /// surfaced as a [`DsmError`] instead of a panic.
    pub fn try_acquire_shared(&self, lock: u32) -> Result<(), DsmError> {
        self.try_acquire_mode(lock, crate::lockmgr::Mode::Shared)
    }

    /// Structured shutdown on an unrecoverable fault: every `DsmError`
    /// escape hatch funnels through here so the panic payload always
    /// names the node, the operation, and the fabric error.
    fn fatal(&self, e: &DsmError) -> ! {
        panic!("swdsm node {}: unrecoverable fault: {e}", self.rank)
    }

    fn try_acquire_mode(&self, lock: u32, mode: crate::lockmgr::Mode) -> Result<(), DsmError> {
        let t0 = self.ctx.clock().now();
        self.stat("lock_acquires", 1);
        let mgr = lock as usize % self.dsm.nodes;
        let notices = if self.resilient() {
            self.acquire_notices_resilient(lock, mode, mgr)?
        } else {
            let reply = self.ctx.port().request(mgr, kinds::LOCK_REQ, LockReq { lock, mode }, 16);
            match downcast::<LockReply>(reply) {
                LockReply::Granted(notices) => notices,
                LockReply::Queued => {
                    self.stat("lock_queued", 1);
                    let tag = interconnect::mailbox::tag(kinds::LOCK_GRANT, lock);
                    let grant = downcast::<LockGrant>(self.ctx.port().wait_mailbox(tag));
                    assert_eq!(grant.lock, lock);
                    grant.notices
                }
            }
        };
        if self.dsm.cfg.notices_on_locks {
            self.apply_notices(&notices);
        } else {
            self.invalidate_all_cached();
        }
        self.dsm.lock_hist.record(self.ctx.clock().now().saturating_sub(t0));
        self.trace_span_corr(t0, "lock_acquire", lock as u64, lock as u64 + 1);
        Ok(())
    }

    /// The resilient acquire protocol: request with retries; if queued,
    /// wait for the deferred grant. A loss tombstone under the grant tag
    /// means the grant was destroyed in flight — re-request, which the
    /// (idempotent) manager answers with a fresh copy of the same grant.
    fn acquire_notices_resilient(
        &self,
        lock: u32,
        mode: crate::lockmgr::Mode,
        mgr: usize,
    ) -> Result<Vec<(usize, Interval)>, DsmError> {
        let wrap = |err| DsmError { op: "lock_acquire", id: lock, err };
        let mut rounds = 0u32;
        'req: loop {
            rounds += 1;
            assert!(
                rounds <= MAX_SYNC_ROUNDS,
                "swdsm node {}: lock {lock} acquire still failing after {MAX_SYNC_ROUNDS} rounds",
                self.rank
            );
            if rounds > 1 {
                self.stat("retries", 1);
            }
            let reply = self
                .ctx
                .port()
                .request_retrying(mgr, kinds::LOCK_REQ, LockReq { lock, mode }, 16)
                .map_err(wrap)?;
            match downcast::<LockReply>(reply) {
                LockReply::Granted(notices) => return Ok(notices),
                LockReply::Queued => {
                    if rounds == 1 {
                        self.stat("lock_queued", 1);
                    }
                    let tag = interconnect::mailbox::tag(kinds::LOCK_GRANT, lock);
                    match self.ctx.port().wait_mailbox_checked(tag) {
                        Ok(p) => {
                            let grant = downcast::<LockGrant>(p);
                            assert_eq!(grant.lock, lock);
                            return Ok(grant.notices);
                        }
                        Err(e) if e.is_transient() => continue 'req,
                        Err(e) => return Err(wrap(e)),
                    }
                }
            }
        }
    }

    /// Release global lock `lock`, publishing this interval's writes.
    pub fn release(&self, lock: u32) {
        self.try_release(lock).unwrap_or_else(|e| self.fatal(&e));
    }

    /// [`DsmNode::release`] with unrecoverable fabric faults surfaced as
    /// a [`DsmError`] instead of a panic. On a resilient fabric the
    /// release is acknowledged (and retried) so a lost release cannot
    /// strand the lock's waiters.
    pub fn try_release(&self, lock: u32) -> Result<(), DsmError> {
        let interval = self.flush_interval();
        self.epoch_mods.lock().merge(&interval);
        let mgr = lock as usize % self.dsm.nodes;
        let rel = LockRel { lock, releaser: self.rank, interval };
        let bytes = 16 + rel.interval.wire_bytes();
        if self.resilient() {
            self.ctx
                .port()
                .request_retrying(mgr, kinds::LOCK_REL, rel, bytes)
                .map_err(|err| DsmError { op: "lock_release", id: lock, err })?;
        } else {
            self.ctx.port().post(mgr, kinds::LOCK_REL, rel, bytes);
        }
        // corr packs (releaser, lock) — the same encoding the manager's
        // grant instants use, so release → next grant chains join up.
        let corr = ((self.rank as u64 + 1) << 32) | (lock as u64 + 1);
        sim::trace::instant_corr(self.ctx.clock().now(), self.rank, "swdsm", "lock_release", lock as u64, corr);
        Ok(())
    }

    /// Global barrier `id`: flushes the interval, exchanges write
    /// notices, and invalidates what others wrote.
    pub fn barrier(&self, id: u32) {
        self.try_barrier(id).unwrap_or_else(|e| self.fatal(&e));
    }

    /// [`DsmNode::barrier`] with unrecoverable fabric faults surfaced as
    /// a [`DsmError`] instead of a panic. The barrier epoch commits only
    /// after the release is in hand, so a retried barrier re-arrives
    /// under the same epoch (which the manager deduplicates or replays).
    pub fn try_barrier(&self, id: u32) -> Result<(), DsmError> {
        let t0 = self.ctx.clock().now();
        self.stat("barriers", 1);
        let mut interval = std::mem::take(&mut *self.epoch_mods.lock());
        interval.merge(&self.flush_interval());
        let epoch = self.epochs.lock().get(&id).copied().unwrap_or(0) + 1;
        match self.dsm.cfg.barrier_algo {
            BarrierAlgo::Central => {
                let intervals = self.central_barrier_intervals(id, epoch, interval)?;
                self.apply_notices(&intervals);
            }
            BarrierAlgo::Dissemination => {
                let notices = self.barrier_dissemination(id, epoch, interval);
                self.apply_notices(&notices);
            }
        }
        self.epochs.lock().insert(id, epoch);
        self.trace_span_corr(t0, "barrier", id as u64, epoch);
        Ok(())
    }

    /// Run the centralized barrier protocol and return the released
    /// intervals. On a resilient fabric the barrier is a single
    /// request/reply exchange: the manager parks every arrival's reply
    /// channel and answers all of them with the release, so a retried
    /// arrival (its reply was lost) is always causally behind the event
    /// that answers it — dedup'd while the epoch is pending, replayed
    /// from the release cache afterwards.
    fn central_barrier_intervals(
        &self,
        id: u32,
        epoch: u64,
        interval: Interval,
    ) -> Result<Vec<(usize, Interval)>, DsmError> {
        let mgr = id as usize % self.dsm.nodes;
        let arr = BarrierArrive { id, epoch, who: self.rank, interval };
        let bytes = 24 + arr.interval.wire_bytes();
        if !self.resilient() {
            let tag = interconnect::mailbox::tag(kinds::BARRIER_RELEASE, id);
            self.ctx.port().post(mgr, kinds::BARRIER_ARRIVE, arr, bytes);
            let rel = downcast::<BarrierRelease>(self.ctx.port().wait_mailbox(tag));
            assert_eq!(rel.epoch, epoch, "barrier {id}: epoch mismatch");
            return Ok(rel.intervals);
        }
        let rel = self
            .ctx
            .port()
            .request_retrying(mgr, kinds::BARRIER_ARRIVE, arr, bytes)
            .map_err(|err| DsmError { op: "barrier", id, err })?;
        let rel = downcast::<BarrierRelease>(rel);
        assert_eq!(rel.epoch, epoch, "barrier {id}: epoch mismatch");
        Ok(rel.intervals)
    }

    /// Dissemination barrier: after round r every node knows the
    /// intervals of 2^(r+1) nodes; after ceil(log2(n)) rounds, of all.
    fn barrier_dissemination(
        &self,
        id: u32,
        epoch: u64,
        interval: Interval,
    ) -> Vec<(usize, Interval)> {
        let n = self.dsm.nodes;
        let mut knowledge: Vec<(usize, Interval)> = vec![(self.rank, interval)];
        let mut dist = 1usize;
        let mut round = 0u32;
        while dist < n {
            let kind = kinds::DISS_BASE + round;
            assert!(kind < kinds::DISS_END, "too many dissemination rounds");
            let to = (self.rank + dist) % n;
            let msg =
                DissMsg { id, epoch, round, knowledge: knowledge.clone() };
            let bytes = msg.wire_bytes();
            // Dissemination rounds are not retried (no manager to make
            // them idempotent); the tagged post at least converts a lost
            // round into a structured panic instead of a hang.
            self.ctx.port().post_tagged(to, kind, msg, bytes, interconnect::mailbox::tag(kind, id));
            let got = downcast::<DissMsg>(
                self.ctx.port().wait_mailbox(interconnect::mailbox::tag(kind, id)),
            );
            assert_eq!(got.epoch, epoch, "dissemination barrier {id}: epoch skew");
            for (node, iv) in got.knowledge {
                match knowledge.iter_mut().find(|(k, _)| *k == node) {
                    Some((_, mine)) => mine.merge(&iv),
                    None => knowledge.push((node, iv)),
                }
            }
            dist *= 2;
            round += 1;
        }
        // Local lock managers may drop their notice history now.
        self.dsm.lockmgrs[self.rank].lock().clear_notices();
        knowledge
    }

    /// Orderly exit: one final barrier so all writes are home.
    pub fn exit(&self) {
        self.barrier(ALLOC_BARRIER);
    }
}

