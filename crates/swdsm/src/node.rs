//! The per-node DSM engine: access functions, interval flushing,
//! synchronization, and the cluster-shared protocol state.

use crate::barriermgr::{BarrierMgr, BarrierStep, TreeBarrier, TreeStep};

use crate::home::HomeStore;
use crate::kinds;
use crate::lockmgr::{Acquire, LockMgr, RTokStep, TokHolderStep, TokMgrStep};
use crate::proto::*;
use cluster::{BarrierTopology, Cluster, LockTopology, NodeCtx, NoticeWire, SyncTopology};
use interconnect::{downcast, try_downcast, Outcome, Page, RequestError};
use memwire::{
    CachedPage, Diff, Distribution, GlobalAddr, Interval, PageId, PageTable, RegionDir,
    RegionMeta, PAGE_SIZE,
};
use parking_lot::Mutex;
use sim::{Histogram, MachineCost, StatSet};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Barrier ids with the top bit set are reserved for internal use
/// (collective allocation).
const ALLOC_BARRIER: u32 = 0x8000_0000;

/// Upper bound on protocol-level retry rounds (re-arrivals, grant
/// re-requests) before the node gives up on a synchronization op.
const MAX_SYNC_ROUNDS: u32 = 64;

/// A synchronization operation failed unrecoverably on a faulty fabric:
/// either a fatal [`RequestError`] or transient faults outlasting every
/// retry. Returned by the `try_*` synchronization entry points; the
/// infallible wrappers turn it into a structured panic (the node's
/// orderly shutdown report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsmError {
    /// The failing operation ("lock_acquire", "lock_release", "barrier").
    pub op: &'static str,
    /// The lock or barrier id involved.
    pub id: u32,
    /// The underlying fabric error.
    pub err: RequestError,
}

impl std::fmt::Display for DsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} of {} failed: {}", self.op, self.id, self.err)
    }
}

impl std::error::Error for DsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.err)
    }
}

/// An explicit placement request (tuner action) was rejected. Rejections
/// are counted under `plan_rejected`; the caller keeps the default
/// placement and loses only the optimization, never correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceError {
    /// The requested target rank does not exist on this cluster.
    NoSuchNode {
        /// The requested (out-of-range) rank.
        to: usize,
        /// Number of nodes in the cluster.
        nodes: usize,
    },
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::NoSuchNode { to, nodes } => {
                write!(f, "placement target {to} out of range (cluster has {nodes} nodes)")
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// Region ids at or above this belong to single-node (TreadMarks-style)
/// allocations and encode the allocating rank.
/// First region id of the single-node (non-collective) allocation
/// space; collective region ids are below this. Pages in local regions
/// are homed on the allocating rank and are never re-homing candidates.
pub const LOCAL_REGION_BASE: u32 = 1 << 24;

/// Protocol tunables of the software DSM.
#[derive(Debug, Clone, Copy)]
pub struct DsmConfig {
    /// Ship whole pages home at release points instead of diffs
    /// (ablation baseline; much more wire traffic).
    pub whole_page_writeback: bool,
    /// Scope consistency on lock edges: grants carry write notices and
    /// acquirers invalidate exactly those pages. When false, acquirers
    /// conservatively invalidate their whole cache (the pre-scope
    /// "barrier-wide invalidation" baseline).
    pub notices_on_locks: bool,
    /// Cost of one page-fault trap (SIGSEGV + kernel + handler entry).
    pub fault_trap_ns: u64,
    /// Cost of snapshotting a twin (one page copy).
    pub twin_ns: u64,
    /// Cost of scanning a page against its twin to encode a diff.
    pub diff_scan_ns: u64,
    /// Fixed cost of applying one diff at the home...
    pub diff_apply_base_ns: u64,
    /// ...plus this much per changed byte.
    pub diff_apply_per_byte_ns: u64,
    /// Cost for the home to copy a page into a fetch reply.
    pub page_copy_ns: u64,
    /// Maximum cached (remotely homed) pages per node; 0 = unbounded.
    /// Real JiaJia bounds its page cache by available memory; evictions
    /// write dirty pages home and drop clean ones FIFO.
    pub cache_pages: usize,
    /// Adaptive home migration (JiaJia's optimization): a page diffed by
    /// the same single remote writer `migration_threshold` times in a row
    /// migrates its home to that writer at the next barrier, turning its
    /// future diffs into local writes.
    pub home_migration: bool,
    /// Consecutive same-writer diffs before a page migrates.
    pub migration_threshold: u32,
    /// Adaptive state transfer cutoff: a barrier release carrying more
    /// than this many notice records is applied as a bulk *snapshot
    /// sync* (drop every cached copy and eagerly refetch, counted under
    /// `snapshot_bytes`) instead of incremental delta replay (counted
    /// under `delta_records`). The choice is a pure function of the
    /// release contents, hence deterministic. 0 disables the snapshot
    /// path — every release replays incrementally (the default).
    pub delta_max_records: u64,
}

impl Default for DsmConfig {
    fn default() -> Self {
        Self {
            whole_page_writeback: false,
            notices_on_locks: true,
            fault_trap_ns: 20_000,
            twin_ns: 3_000,
            diff_scan_ns: 4_000,
            diff_apply_base_ns: 1_000,
            diff_apply_per_byte_ns: 1,
            page_copy_ns: 2_000,
            cache_pages: 0,
            home_migration: false,
            migration_threshold: 2,
            delta_max_records: 0,
        }
    }
}

/// Cluster-shared state of the software DSM: home stores, lock and
/// barrier state for whichever [`SyncTopology`] the fabric selected
/// (central managers, token-queue holders, tree-barrier slots), the
/// region directory, and per-node statistics.
pub struct SwDsm {
    cfg: DsmConfig,
    /// Synchronization topology, taken from the fabric config at
    /// install time (see `FabricConfig::builder().sync(..)`).
    sync: SyncTopology,
    nodes: usize,
    machine: MachineCost,
    dir: RegionDir,
    homes: Vec<Mutex<HomeStore>>,
    lockmgrs: Vec<Arc<Mutex<LockMgr>>>,
    barriermgrs: Vec<Mutex<BarrierMgr>>,
    treebarriers: Vec<Mutex<TreeBarrier>>,
    stats: Vec<StatSet>,
    /// Pages whose home moved away from their distribution-derived node
    /// (the migration directory; real JiaJia piggybacks it on barriers).
    /// Fed by adaptive migration and by explicit [`SwDsm::place_home`]
    /// tuner actions.
    home_override: parking_lot::RwLock<HashMap<PageId, usize>>,
    /// Fast-path flag: true once `home_override` has any entry, so the
    /// hot `home_of` lookup skips the read lock on untuned runs.
    home_overridden: AtomicBool,
    /// Locks whose manager moved away from `lock % nodes` (explicit
    /// [`SwDsm::place_lock`] tuner actions; applied before the run so
    /// no queue state ever lives at the displaced manager).
    lock_override: parking_lot::RwLock<HashMap<u32, usize>>,
    /// Fast-path flag mirroring `home_overridden` for `lock_override`.
    lock_overridden: AtomicBool,
    /// Per-home tracking of consecutive same-writer diffs, and the
    /// migration candidates gathered for the next barrier.
    migration: Vec<Mutex<MigrationTrack>>,
    /// Bumped once per home-migration round (adaptive or explicit).
    /// Rides `PageReply::Moved` redirects so traces can correlate a
    /// stale-directory fetch with the re-homing that outdated it.
    migration_epoch: AtomicU64,
    /// Per-node: barrier id → highest release epoch whose notice-clear
    /// already ran, so a replayed release does not wipe notices that
    /// accumulated after the original broadcast.
    release_seen: Vec<Mutex<HashMap<u32, u64>>>,
    /// Lock-acquire latency (virtual ns from request to grant-in-hand),
    /// pooled across nodes; feeds the monitoring quantiles.
    lock_hist: Histogram,
}

#[derive(Default)]
struct MigrationTrack {
    last_writer: HashMap<PageId, (usize, u32)>,
    candidates: Vec<(PageId, usize)>,
}

/// The per-node statistics exposed by the DSM (JiaJia-style counters).
pub const STAT_NAMES: &[&str] = &[
    "getpages",
    "diffs",
    "diff_bytes",
    "lock_acquires",
    "lock_queued",
    "barriers",
    "invalidations",
    "twins",
    "traps",
    "evictions",
    "migrations",
    "reads",
    "writes",
    "retries",
    "sync_msgs",
    "sync_records",
    "digest_hits",
    "digest_misses",
    "token_forwards",
    "tree_waves",
    "tuner_actions",
    "pages_rehomed",
    "plan_rejected",
    "view_changes",
    "pages_migrated",
    "snapshot_bytes",
    "delta_records",
    "token_replays",
];

impl SwDsm {
    /// Create the DSM over `cluster` and register its protocol handlers
    /// on every node. Call once, before [`Cluster::run`].
    pub fn install(cluster: &Cluster, cfg: DsmConfig) -> Arc<SwDsm> {
        let nodes = cluster.config().nodes;
        let sync = cluster.config().sync;
        let resilient = cluster.config().resilience.is_some();
        assert!(
            !resilient || sync.barrier != BarrierTopology::Dissemination,
            "dissemination barriers have no retry protocol: \
             use a Central or Tree barrier on a fabric with a resilience policy"
        );
        // Token-queue locks on a resilient fabric switch to the
        // manager-mediated `rtok_*` machine (every handover a retryable
        // manager round with tenure-sequence replay); the MCS
        // direct-forward machine keeps serving fault-free fabrics.
        let digest = !matches!(sync.notices, NoticeWire::Explicit);
        assert!(
            !digest || sync.barrier != BarrierTopology::Dissemination,
            "write-notice digests do not ride dissemination rounds: \
             use a Central or Tree barrier with NoticeWire::Digest"
        );
        // Home migration composes with digests: migrations carry the
        // page's modification counter to the new home (export/adopt
        // merges by maximum), so digest validation never sees a counter
        // move backwards across a re-homing.
        let fanout = match sync.barrier {
            BarrierTopology::Tree { fanout } => fanout,
            _ => 2,
        };
        let digest_runs = match sync.notices {
            NoticeWire::Explicit => None,
            NoticeWire::Digest { max_runs } => Some(max_runs),
        };
        let dsm = Arc::new(SwDsm {
            cfg,
            sync,
            nodes,
            machine: cluster.config().cost.machine,
            dir: RegionDir::new(),
            homes: (0..nodes).map(|_| Mutex::new(HomeStore::new())).collect(),
            lockmgrs: (0..nodes).map(|_| Arc::new(Mutex::new(LockMgr::new()))).collect(),
            barriermgrs: (0..nodes).map(|_| Mutex::new(BarrierMgr::new())).collect(),
            treebarriers: (0..nodes)
                .map(|me| Mutex::new(TreeBarrier::new(me, nodes, fanout, digest_runs)))
                .collect(),
            stats: (0..nodes).map(|_| StatSet::new(STAT_NAMES)).collect(),
            home_override: parking_lot::RwLock::new(HashMap::new()),
            home_overridden: AtomicBool::new(false),
            lock_override: parking_lot::RwLock::new(HashMap::new()),
            lock_overridden: AtomicBool::new(false),
            migration: (0..nodes).map(|_| Mutex::new(MigrationTrack::default())).collect(),
            migration_epoch: AtomicU64::new(0),
            release_seen: (0..nodes).map(|_| Mutex::new(HashMap::new())).collect(),
            lock_hist: Histogram::new(),
        });
        dsm.register_handlers(cluster);
        dsm
    }

    /// Per-node statistics.
    pub fn stats(&self, node: usize) -> &StatSet {
        &self.stats[node]
    }

    /// The protocol configuration.
    pub fn config(&self) -> &DsmConfig {
        &self.cfg
    }

    /// The synchronization topology the DSM was installed with.
    pub fn sync(&self) -> SyncTopology {
        self.sync
    }

    /// The digest run cutoff, when write notices travel as digests.
    fn digest_runs(&self) -> Option<usize> {
        match self.sync.notices {
            NoticeWire::Explicit => None,
            NoticeWire::Digest { max_runs } => Some(max_runs),
        }
    }

    /// Count one cross-node synchronization-protocol message carrying
    /// `records` notice records (self-sends are free and not counted).
    fn count_sync(&self, node: usize, dst: usize, records: u64) {
        if node != dst {
            self.stats[node].add("sync_msgs", 1);
            self.stats[node].add("sync_records", records);
        }
    }

    /// Record that barrier `id` released `epoch` at `node` and, the
    /// first time that epoch is seen, clear the redundant lock-notice
    /// history (a barrier makes all prior writes visible everywhere).
    /// Replayed releases (same epoch again) must not clear notices that
    /// accumulated after the original release. Returns whether the
    /// release was fresh.
    fn note_release(&self, node: usize, id: u32, epoch: u64) -> bool {
        let fresh = {
            let mut seen = self.release_seen[node].lock();
            let e = seen.entry(id).or_insert(0);
            if epoch > *e {
                *e = epoch;
                true
            } else {
                false
            }
        };
        if fresh {
            self.lockmgrs[node].lock().clear_notices();
        }
        fresh
    }

    /// The notice set a central-barrier release carries to `receiver`:
    /// the full per-writer directory under explicit notices (receivers
    /// skip their own entry), or the digest of everyone *else's*
    /// intervals — digests drop writer identity, so the manager must
    /// exclude the receiver's own writes before encoding.
    fn release_for(&self, intervals: &[(usize, Interval)], receiver: usize) -> NoticeSet {
        match self.digest_runs() {
            None => NoticeSet::Explicit(intervals.to_vec()),
            Some(runs) => NoticeSet::encode(
                intervals.iter().filter(|(w, _)| *w != receiver).cloned().collect(),
                Some(runs),
            ),
        }
    }

    /// Emit the token-pass for `lock` from `from` to `to` (direct
    /// holder→successor forward, or a manager grant). The grant instant
    /// uses the same `(grantee, lock)` correlation id as the central
    /// manager's, so the analyzer chains token handoffs identically.
    fn send_token_pass(
        &self,
        ctx: &interconnect::HandlerCtx<'_>,
        from: usize,
        lock: u32,
        to: usize,
        notices: Vec<(usize, Interval)>,
    ) {
        let corr = ((to as u64 + 1) << 32) | (lock as u64 + 1);
        sim::trace::instant_corr(ctx.now, from, "swdsm", "lock_grant", lock as u64, corr);
        let records = notices.iter().map(|(_, iv)| iv.notices.len() as u64).sum();
        let msg = TokPass { lock, notices };
        let bytes = msg.wire_bytes();
        self.count_sync(from, to, records);
        ctx.post_tagged(
            to,
            kinds::TOK_PASS,
            msg,
            bytes,
            interconnect::mailbox::tag(kinds::LOCK_GRANT, lock),
        );
    }

    /// Lock-acquire latency histogram (shared storage: the returned
    /// clone observes later acquisitions too).
    pub fn lock_histogram(&self) -> Histogram {
        self.lock_hist.clone()
    }

    /// Home node of `page` (override directory first — adaptive
    /// migrations and explicit placements — then the allocation's
    /// distribution).
    pub fn home_of(&self, page: PageId) -> usize {
        if self.home_overridden.load(Ordering::Acquire) {
            if let Some(&home) = self.home_override.read().get(&page) {
                return home;
            }
        }
        if page.region >= LOCAL_REGION_BASE {
            // Single-node allocations are homed on the allocating rank.
            ((page.region >> 24) - 1) as usize
        } else {
            self.dir.meta(page.region).home_of(page.index, self.nodes)
        }
    }

    /// Manager node of `lock` (override directory first — explicit
    /// [`SwDsm::place_lock`] tuner actions — then the default
    /// round-robin `lock % nodes` mapping).
    pub fn lock_mgr_of(&self, lock: u32) -> usize {
        if self.lock_overridden.load(Ordering::Acquire) {
            if let Some(&mgr) = self.lock_override.read().get(&lock) {
                return mgr;
            }
        }
        lock as usize % self.nodes
    }

    /// Explicitly place the home of `page` on node `to` (the tuner's
    /// re-homing action). Call *before* [`Cluster::run`]: placement is
    /// part of run configuration, like the sync topology — moving a
    /// home mid-run outside the barrier quiescent point would race the
    /// page's own diff traffic.
    ///
    /// The master copy (if any) moves to `to` as a version-carrying
    /// migration record — the page's modification counter travels with
    /// the bytes and merges by maximum at the new home, so write-notice
    /// digests stay valid across the move. `pages_rehomed` +
    /// `tuner_actions` are counted at `to`.
    pub fn place_home(&self, page: PageId, to: usize) -> Result<(), PlaceError> {
        if to >= self.nodes {
            return Err(PlaceError::NoSuchNode { to, nodes: self.nodes });
        }
        // Placement usually precedes the run that allocates the region
        // (ids are deterministic under collective allocation), so there
        // is nothing to move yet — the new home zero-fills lazily. Only
        // an already-allocated region can hold a master copy to carry.
        if page.region < LOCAL_REGION_BASE && self.dir.exists(page.region) {
            let old = self.home_of(page);
            if old != to {
                let (bytes, version) = self.homes[old].lock().export(page);
                self.homes[to].lock().adopt(page, bytes, version);
                self.stats[to].add("pages_migrated", 1);
                self.migration_epoch.fetch_add(1, Ordering::AcqRel);
            }
        }
        self.home_override.write().insert(page, to);
        self.home_overridden.store(true, Ordering::Release);
        self.stats[to].add("pages_rehomed", 1);
        self.stats[to].add("tuner_actions", 1);
        Ok(())
    }

    /// Explicitly place the manager of `lock` on node `to` (the tuner's
    /// lock-placement action, e.g. toward the dominant acquirer). Call
    /// *before* [`Cluster::run`]: every node must agree on the manager
    /// before the first acquire, or queue state would strand at the
    /// displaced manager. Counted under `tuner_actions` at `to`.
    pub fn place_lock(&self, lock: u32, to: usize) -> Result<(), PlaceError> {
        if to >= self.nodes {
            return Err(PlaceError::NoSuchNode { to, nodes: self.nodes });
        }
        self.lock_override.write().insert(lock, to);
        self.lock_overridden.store(true, Ordering::Release);
        self.stats[to].add("tuner_actions", 1);
        Ok(())
    }

    /// Record a remote diff for migration tracking (at the home `node`).
    fn track_diff_writer(&self, node: usize, page: PageId, writer: usize) {
        if !self.cfg.home_migration || writer == node {
            return;
        }
        let mut t = self.migration[node].lock();
        let entry = t.last_writer.entry(page).or_insert((writer, 0));
        if entry.0 == writer {
            entry.1 += 1;
        } else {
            *entry = (writer, 1);
        }
        if entry.1 >= self.cfg.migration_threshold
            && !t.candidates.iter().any(|(p, _)| *p == page)
        {
            t.candidates.push((page, writer));
        }
    }

    /// Apply pending migrations (called by the barrier manager while
    /// every node is blocked — the quiescent point the real protocol
    /// piggybacks on). Returns how many pages moved (their contents ride
    /// the barrier traffic).
    fn apply_migrations(&self) -> u64 {
        if !self.cfg.home_migration {
            return 0;
        }
        let mut moved = 0;
        for node in 0..self.nodes {
            let candidates = {
                let mut t = self.migration[node].lock();
                let candidates = std::mem::take(&mut t.candidates);
                // Migrated pages start tracking afresh at the new home.
                for (page, _) in &candidates {
                    t.last_writer.remove(page);
                }
                candidates
            };
            for (page, new_home) in candidates {
                let old_home = self.home_of(page);
                if old_home == new_home {
                    continue;
                }
                // Version-carrying migration record: the modification
                // counter rides along and merges by maximum, keeping
                // digest validation sound across the move.
                let (bytes, version) = self.homes[old_home].lock().export(page);
                self.homes[new_home].lock().adopt(page, bytes, version);
                self.home_override.write().insert(page, new_home);
                self.home_overridden.store(true, Ordering::Release);
                self.stats[new_home].add("migrations", 1);
                self.stats[new_home].add("pages_migrated", 1);
                moved += 1;
            }
        }
        if moved > 0 {
            self.migration_epoch.fetch_add(1, Ordering::AcqRel);
        }
        moved
    }

    fn register_handlers(self: &Arc<Self>, cluster: &Cluster) {
        let net = cluster.network();

        // Page-path handlers register through the fallible API: a
        // malformed payload NACKs the requester with a typed
        // DispatchError instead of panicking the delivery engine.

        // Page fetch: reply with a snapshot of the master copy — a
        // shared Page handle, so no byte copy happens here.
        let dsm = self.clone();
        net.register_all_try(kinds::GET_PAGE, move |node| {
            let dsm = dsm.clone();
            move |_ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let req = try_downcast::<GetPage>(p)?;
                let home = dsm.home_of(req.page);
                if home != node {
                    // The fetch crossed a re-homing round (the request
                    // departed under the old directory, or a delayed
                    // duplicate outlived the migration): redirect to
                    // the current home instead of serving a non-master
                    // copy.
                    let epoch = dsm.migration_epoch.load(Ordering::Acquire);
                    return Ok(Outcome::reply(PageReply::Moved { to: home, epoch }, 24));
                }
                let (bytes, version) = {
                    let mut home = dsm.homes[node].lock();
                    (home.snapshot(req.page), home.version(req.page))
                };
                Ok(Outcome::reply_costing(
                    PageReply::Data(PageData { bytes, version }),
                    PAGE_SIZE as u64 + 24,
                    dsm.cfg.page_copy_ns,
                ))
            }
        });

        // Diff application at the home.
        let dsm = self.clone();
        net.register_all_try(kinds::APPLY_DIFFS, move |node| {
            let dsm = dsm.clone();
            move |_ctx: &interconnect::HandlerCtx<'_>, src, p| {
                let msg = try_downcast::<ApplyDiffs>(p)?;
                let mut extra = 0;
                {
                    let mut home = dsm.homes[node].lock();
                    for (page, diff) in &msg.diffs {
                        debug_assert_eq!(dsm.home_of(*page), node, "diff sent to non-home");
                        extra += dsm.cfg.diff_apply_base_ns
                            + dsm.cfg.diff_apply_per_byte_ns * diff.changed_bytes() as u64;
                        home.apply_diff(*page, diff);
                    }
                }
                for (page, _) in &msg.diffs {
                    dsm.track_diff_writer(node, *page, src);
                }
                Ok(Outcome::reply_costing((), 8, extra))
            }
        });

        // Whole-page write-back (ablation mode). Installing the shipped
        // Page is a reference-count move, not a copy.
        let dsm = self.clone();
        net.register_all_try(kinds::PUT_PAGE, move |node| {
            let dsm = dsm.clone();
            move |_ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let msg = try_downcast::<PutPages>(p)?;
                let extra = msg.pages.len() as u64 * dsm.cfg.page_copy_ns;
                let mut home = dsm.homes[node].lock();
                for (page, bytes) in msg.pages {
                    home.replace(page, bytes);
                }
                Ok(Outcome::reply_costing((), 8, extra))
            }
        });

        // Lock acquire at the manager.
        let dsm = self.clone();
        net.register_all(kinds::LOCK_REQ, move |node| {
            let mgr = dsm.lockmgrs[node].clone();
            move |ctx: &interconnect::HandlerCtx<'_>, src, p| {
                let req = downcast::<LockReq>(p);
                match mgr.lock().acquire_mode(req.lock, src, req.mode, ctx.now) {
                    Acquire::Granted(notices, not_before) => {
                        // The grant carries its validity floor: the
                        // requester may not proceed before `not_before`
                        // (the current holder's release time). corr packs
                        // (grantee, lock) so the analyzer can chain
                        // grants into per-lock handoff sequences.
                        let corr = ((src as u64 + 1) << 32) | (req.lock as u64 + 1);
                        sim::trace::instant_corr(
                            ctx.now.max(not_before),
                            node,
                            "swdsm",
                            "lock_grant",
                            req.lock as u64,
                            corr,
                        );
                        let bytes = notices_wire_bytes(&notices);
                        Outcome::reply_not_before(
                            LockReply::Granted(notices),
                            bytes,
                            not_before,
                        )
                    }
                    Acquire::Queued => Outcome::reply(LockReply::Queued, 8),
                }
            }
        });

        // Lock release at the manager: may hand over to a queued waiter.
        let dsm = self.clone();
        net.register_all(kinds::LOCK_REL, move |node| {
            let mgr = dsm.lockmgrs[node].clone();
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let rel = downcast::<LockRel>(p);
                for (next, notices) in
                    mgr.lock().release(rel.lock, rel.releaser, rel.interval.clone(), ctx.now)
                {
                    let corr = ((next as u64 + 1) << 32) | (rel.lock as u64 + 1);
                    sim::trace::instant_corr(ctx.now, node, "swdsm", "lock_grant", rel.lock as u64, corr);
                    let bytes = notices_wire_bytes(&notices);
                    // Tagged so a lost grant leaves a loss tombstone
                    // under the waiter's mailbox tag instead of hanging
                    // it forever.
                    ctx.post_tagged(
                        next,
                        kinds::LOCK_GRANT,
                        LockGrant { lock: rel.lock, notices },
                        bytes,
                        interconnect::mailbox::tag(kinds::LOCK_GRANT, rel.lock),
                    );
                }
                Outcome::done()
            }
        });

        // Deferred lock grant arriving at a queued requester.
        net.register_all(kinds::LOCK_GRANT, |node| {
            let mailbox = net.mailbox(node);
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let grant = downcast::<LockGrant>(p);
                let tag = interconnect::mailbox::tag(kinds::LOCK_GRANT, grant.lock);
                mailbox.deposit(tag, Box::new(grant), ctx.now);
                Outcome::done()
            }
        });

        // Barrier arrival at the manager.
        let dsm = self.clone();
        net.register_all(kinds::BARRIER_ARRIVE, move |node| {
            let dsm = dsm.clone();
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let arr = downcast::<BarrierArrive>(p);
                let step = dsm.barriermgrs[node].lock().arrive(
                    arr.id,
                    arr.epoch,
                    arr.who,
                    arr.interval,
                    ctx.now,
                    dsm.nodes,
                );
                let tag = interconnect::mailbox::tag(kinds::BARRIER_RELEASE, arr.id);
                match step {
                    BarrierStep::Release { epoch, release_ns, intervals } => {
                        // Quiescent point: every node is blocked in this
                        // barrier, so pending home migrations apply now. No
                        // page content moves: the new home is the page's
                        // last writer, whose copy is already current — only
                        // the directory entries ride the release broadcast.
                        let moved = dsm.apply_migrations();
                        // The release is stamped with its `not_before`
                        // floor: no participant resumes before release_ns.
                        // corr = epoch ties the release to the matching
                        // client-side barrier spans.
                        sim::trace::instant_corr(release_ns, node, "swdsm", "barrier_release", arr.id as u64, epoch);
                        if ctx.resilient() {
                            // Pure request/reply rendezvous: every earlier
                            // arrival parked its reply channel; the release
                            // discharges them all, and the final arriver
                            // takes the release as its own reply. No
                            // broadcast exists for a retried arrival to
                            // race, so the schedule is reproducible.
                            for &(who, _) in &intervals {
                                if who != arr.who {
                                    let notices = dsm.release_for(&intervals, who);
                                    dsm.count_sync(node, who, notices.records());
                                    let rel = BarrierRelease { id: arr.id, epoch, notices };
                                    let bytes = rel.wire_bytes() + moved * 16;
                                    ctx.complete_deferred(tag, who, rel, bytes, release_ns);
                                }
                            }
                            let notices = dsm.release_for(&intervals, arr.who);
                            dsm.count_sync(node, arr.who, notices.records());
                            let rel = BarrierRelease { id: arr.id, epoch, notices };
                            let bytes = rel.wire_bytes() + moved * 16;
                            return Outcome::reply_not_before(rel, bytes, release_ns);
                        }
                        for dst in 0..dsm.nodes {
                            let notices = dsm.release_for(&intervals, dst);
                            dsm.count_sync(node, dst, notices.records());
                            let rel = BarrierRelease { id: arr.id, epoch, notices };
                            let bytes = rel.wire_bytes() + moved * 16;
                            ctx.post_tagged_at(
                                dst,
                                kinds::BARRIER_RELEASE,
                                rel,
                                bytes,
                                tag,
                                release_ns,
                            );
                        }
                    }
                    BarrierStep::Replay { epoch, release_ns, intervals } => {
                        // A retried arrival for an epoch that already
                        // released: the arriver's release reply was lost.
                        // Answer with the cached release.
                        let notices = dsm.release_for(&intervals, arr.who);
                        dsm.count_sync(node, arr.who, notices.records());
                        let rel = BarrierRelease { id: arr.id, epoch, notices };
                        let bytes = rel.wire_bytes();
                        return Outcome::reply_not_before(rel, bytes, release_ns);
                    }
                    BarrierStep::Waiting => {
                        if ctx.resilient() {
                            // Park the reply; it is answered with the
                            // release when the last participant arrives.
                            return Outcome::defer(tag);
                        }
                    }
                }
                Outcome::done()
            }
        });

        // Dissemination-barrier rounds: deposit into the receiver's
        // mailbox under (round, id).
        for round in 0..(kinds::DISS_END - kinds::DISS_BASE) {
            let kind = kinds::DISS_BASE + round;
            net.register_all(kind, |node| {
                let mb = net.mailbox(node);
                move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                    let msg = downcast::<DissMsg>(p);
                    mb.deposit(interconnect::mailbox::tag(kind, msg.id), Box::new(msg), ctx.now);
                    Outcome::done()
                }
            });
        }

        // Barrier release at each participant.
        let dsm = self.clone();
        net.register_all(kinds::BARRIER_RELEASE, |node| {
            let dsm = dsm.clone();
            let mailbox = net.mailbox(node);
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let rel = downcast::<BarrierRelease>(p);
                dsm.note_release(node, rel.id, rel.epoch);
                let tag = interconnect::mailbox::tag(kinds::BARRIER_RELEASE, rel.id);
                mailbox.deposit(tag, Box::new(rel), ctx.now);
                Outcome::done()
            }
        });

        // ---- tree barrier ------------------------------------------------
        //
        // All three kinds drive the same per-node TreeBarrier state
        // machine. On a plain fabric the application's own arrival
        // travels as a TREE_UP message to the node itself, aggregates
        // and waves are one-way posts, and the release lands in the
        // mailbox. On a resilient fabric only TREE_AGG is used, as a
        // retried *request* from the child's application thread whose
        // (deferred) reply is that child's release wave — fire-and-
        // forget tree edges cannot heal, because a parked reply has no
        // client-side deadline (see [`DsmNode::tree_barrier`]).

        // A node's own arrival (plain fabrics only).
        let dsm = self.clone();
        net.register_all(kinds::TREE_UP, move |node| {
            let dsm = dsm.clone();
            let mailbox = net.mailbox(node);
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                debug_assert!(!ctx.resilient(), "resilient tree arrivals stay on the app thread");
                let arr = downcast::<BarrierArrive>(p);
                let step = dsm.treebarriers[node].lock().self_arrive(
                    arr.id,
                    arr.epoch,
                    arr.interval,
                    ctx.now,
                );
                let tag = interconnect::mailbox::tag(kinds::BARRIER_RELEASE, arr.id);
                match step {
                    TreeStep::Waiting => {}
                    TreeStep::Up { parent, latest_ns, agg } => {
                        dsm.send_tree_agg(ctx, node, arr.id, arr.epoch, parent, latest_ns, agg);
                    }
                    TreeStep::Deliver { release_ns, own, child_waves } => {
                        // Only the root completes from its own arrival
                        // without an incoming wave. The deposit is
                        // stamped with the release instant, not
                        // ctx.now: which input completes the slot is a
                        // real-time race that must not leak into
                        // virtual time.
                        let rel = dsm.tree_release(
                            ctx, node, arr.id, arr.epoch, release_ns, own, child_waves, true,
                        );
                        mailbox.deposit(tag, Box::new(rel), release_ns);
                    }
                    TreeStep::Redeliver { release_ns, own } => {
                        let _ = release_ns;
                        let rel = BarrierRelease { id: arr.id, epoch: arr.epoch, notices: own };
                        mailbox.deposit(tag, Box::new(rel), ctx.now);
                    }
                    TreeStep::ResendWave { .. } => {
                        unreachable!("self-arrival never resends a child wave")
                    }
                }
                Outcome::done()
            }
        });

        // A child's subtree aggregate.
        let dsm = self.clone();
        net.register_all(kinds::TREE_AGG, move |node| {
            let dsm = dsm.clone();
            let mailbox = net.mailbox(node);
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let msg = downcast::<TreeAgg>(p);
                let (id, epoch, child) = (msg.id, msg.epoch, msg.child);
                let step = dsm.treebarriers[node].lock().child_arrive(
                    msg.id,
                    msg.epoch,
                    msg.child,
                    msg.latest_ns,
                    msg.agg,
                );
                if ctx.resilient() {
                    // Pull model: the reply to this request is the
                    // child's release wave, parked until this node's
                    // release point (driven by the application thread
                    // in tree_barrier).
                    let wkey = interconnect::mailbox::tag(kinds::TREE_WAVE, id);
                    return match step {
                        TreeStep::Waiting => Outcome::defer(wkey),
                        step @ (TreeStep::Up { .. } | TreeStep::Deliver { .. }) => {
                            // This aggregate completed the local
                            // subtree: hand the step to the blocked
                            // application thread over the local
                            // mailbox (no wire, cannot be lost). The
                            // deposit is stamped with the join instant
                            // (max arrival stamp), not ctx.now — which
                            // aggregate the engine processes last is a
                            // real-time race, and its service end must
                            // not leak into virtual time.
                            let when = match &step {
                                TreeStep::Up { latest_ns, .. } => *latest_ns,
                                TreeStep::Deliver { release_ns, .. } => *release_ns,
                                _ => unreachable!(),
                            };
                            let skey = interconnect::mailbox::tag(kinds::TREE_AGG, id);
                            mailbox.deposit(skey, Box::new(step), when);
                            Outcome::defer(wkey)
                        }
                        TreeStep::ResendWave { child: c, release_ns, wave } => {
                            // Retried aggregate for a released epoch:
                            // the original wave reply was lost.
                            debug_assert_eq!(c, child);
                            dsm.stats[node].add("tree_waves", 1);
                            dsm.count_sync(node, child, wave.records());
                            let rep = TreeWave { id, epoch, release_ns, wave };
                            let bytes = rep.wire_bytes();
                            Outcome::reply_not_before(rep, bytes, release_ns)
                        }
                        TreeStep::Redeliver { .. } => {
                            unreachable!("child aggregates never redeliver locally")
                        }
                    };
                }
                match step {
                    TreeStep::Waiting => {}
                    TreeStep::Up { parent, latest_ns, agg } => {
                        dsm.send_tree_agg(ctx, node, msg.id, msg.epoch, parent, latest_ns, agg);
                    }
                    TreeStep::Deliver { release_ns, own, child_waves } => {
                        // Root completion off the final child aggregate:
                        // release, then wake the root's own application
                        // thread (awaiting the mailbox) at the release
                        // instant — not ctx.now, which depends on the
                        // real-time order the engine drained arrivals.
                        let rel = dsm.tree_release(
                            ctx, node, msg.id, msg.epoch, release_ns, own, child_waves, true,
                        );
                        let tag = interconnect::mailbox::tag(kinds::BARRIER_RELEASE, msg.id);
                        mailbox.deposit(tag, Box::new(rel), release_ns);
                    }
                    TreeStep::Redeliver { .. } => {
                        unreachable!("child aggregates never redeliver locally")
                    }
                    TreeStep::ResendWave { child, release_ns, wave } => {
                        dsm.send_tree_wave(ctx, node, msg.id, msg.epoch, release_ns, child, wave, 0);
                    }
                }
                Outcome::done()
            }
        });

        // The parent's release wave (plain fabrics only; resilient
        // waves ride TREE_AGG replies).
        let dsm = self.clone();
        net.register_all(kinds::TREE_WAVE, move |node| {
            let dsm = dsm.clone();
            let mailbox = net.mailbox(node);
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                debug_assert!(!ctx.resilient(), "resilient waves ride TREE_AGG replies");
                let msg = downcast::<TreeWave>(p);
                let step = dsm.treebarriers[node].lock().wave(
                    msg.id,
                    msg.epoch,
                    msg.release_ns,
                    msg.wave,
                );
                match step {
                    TreeStep::Waiting => {} // duplicate wave, already released
                    TreeStep::Deliver { release_ns, own, child_waves } => {
                        let rel = dsm.tree_release(
                            ctx, node, msg.id, msg.epoch, release_ns, own, child_waves, false,
                        );
                        let tag = interconnect::mailbox::tag(kinds::BARRIER_RELEASE, msg.id);
                        mailbox.deposit(tag, Box::new(rel), ctx.now);
                    }
                    other => unreachable!("wave produced {other:?}"),
                }
                Outcome::done()
            }
        });

        // ---- lock-token queue --------------------------------------------

        // The application's acquire, bounced off its own handler so the
        // holder slot is only ever touched handler-side.
        let dsm = self.clone();
        net.register_all(kinds::TOK_ACQ_LOCAL, move |node| {
            let dsm = dsm.clone();
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let req = downcast::<TokAcquireLocal>(p);
                let seq = dsm.lockmgrs[node].lock().tok_begin_acquire(req.lock);
                let mgr = dsm.lock_mgr_of(req.lock);
                dsm.count_sync(node, mgr, 0);
                ctx.post(mgr, kinds::TOK_ACQ, TokAcquire { lock: req.lock, who: node, seq }, 24);
                Outcome::done()
            }
        });

        // Enqueue at the manager: pass the parked token, or chain the
        // new tail behind the previous one.
        let dsm = self.clone();
        net.register_all(kinds::TOK_ACQ, move |node| {
            let dsm = dsm.clone();
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let req = downcast::<TokAcquire>(p);
                match dsm.lockmgrs[node].lock().tok_acquire(req.lock, req.who, req.seq) {
                    TokMgrStep::Pass { to, notices } => {
                        dsm.send_token_pass(ctx, node, req.lock, to, notices);
                    }
                    TokMgrStep::SetSucc { prev, for_seq, succ } => {
                        dsm.stats[succ].add("lock_queued", 1);
                        dsm.count_sync(node, prev, 0);
                        ctx.post(
                            prev,
                            kinds::TOK_SET_SUCC,
                            TokSetSucc { lock: req.lock, succ, for_seq },
                            24,
                        );
                    }
                }
                Outcome::done()
            }
        });

        // The token arrives: hand its notices to the waiting
        // application through the same mailbox tag central grants use.
        let dsm = self.clone();
        net.register_all(kinds::TOK_PASS, move |node| {
            let dsm = dsm.clone();
            let mailbox = net.mailbox(node);
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let msg = downcast::<TokPass>(p);
                let notices = dsm.lockmgrs[node].lock().tok_pass_received(msg.lock, msg.notices);
                let tag = interconnect::mailbox::tag(kinds::LOCK_GRANT, msg.lock);
                mailbox.deposit(tag, Box::new(LockGrant { lock: msg.lock, notices }), ctx.now);
                Outcome::done()
            }
        });

        // The manager names a successor; a tenure that already ended
        // claims the (returned or in-flight) token back from the manager.
        let dsm = self.clone();
        net.register_all(kinds::TOK_SET_SUCC, move |node| {
            let dsm = dsm.clone();
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let msg = downcast::<TokSetSucc>(p);
                if let Some(step) =
                    dsm.lockmgrs[node].lock().tok_set_succ(msg.lock, msg.succ, msg.for_seq)
                {
                    match step {
                        TokHolderStep::Claim { succ } => {
                            let mgr = dsm.lock_mgr_of(msg.lock);
                            dsm.count_sync(node, mgr, 0);
                            ctx.post(mgr, kinds::TOK_CLAIM, TokClaim { lock: msg.lock, succ }, 16);
                        }
                        other => unreachable!("set_succ produced {other:?}"),
                    }
                }
                Outcome::done()
            }
        });

        // The application's release, bounced off its own handler:
        // forward the token straight to the successor, or return it.
        let dsm = self.clone();
        net.register_all(kinds::TOK_REL, move |node| {
            let dsm = dsm.clone();
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let msg = downcast::<TokRelease>(p);
                match dsm.lockmgrs[node].lock().tok_release(msg.lock, node, msg.interval.clone()) {
                    TokHolderStep::Forward { to, notices } => {
                        dsm.stats[node].add("token_forwards", 1);
                        dsm.send_token_pass(ctx, node, msg.lock, to, notices);
                    }
                    TokHolderStep::Return { seq, notices } => {
                        let mgr = dsm.lock_mgr_of(msg.lock);
                        let records = notices.iter().map(|(_, iv)| iv.notices.len() as u64).sum();
                        let ret = TokReturn { lock: msg.lock, who: node, seq, notices };
                        let bytes = ret.wire_bytes();
                        dsm.count_sync(node, mgr, records);
                        ctx.post(mgr, kinds::TOK_RETURN, ret, bytes);
                    }
                    other => unreachable!("release produced {other:?}"),
                }
                Outcome::done()
            }
        });

        // A token comes back to the manager with no successor known.
        let dsm = self.clone();
        net.register_all(kinds::TOK_RETURN, move |node| {
            let dsm = dsm.clone();
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let msg = downcast::<TokReturn>(p);
                if let Some(step) =
                    dsm.lockmgrs[node].lock().tok_return(msg.lock, msg.who, msg.seq, msg.notices)
                {
                    match step {
                        TokMgrStep::Pass { to, notices } => {
                            dsm.send_token_pass(ctx, node, msg.lock, to, notices);
                        }
                        other => unreachable!("return produced {other:?}"),
                    }
                }
                Outcome::done()
            }
        });

        // A stale-notified node routes the token onward via the manager.
        let dsm = self.clone();
        net.register_all(kinds::TOK_CLAIM, move |node| {
            let dsm = dsm.clone();
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let msg = downcast::<TokClaim>(p);
                if let Some(step) = dsm.lockmgrs[node].lock().tok_claim(msg.lock, msg.succ) {
                    match step {
                        TokMgrStep::Pass { to, notices } => {
                            dsm.send_token_pass(ctx, node, msg.lock, to, notices);
                        }
                        other => unreachable!("claim produced {other:?}"),
                    }
                }
                Outcome::done()
            }
        });

        // Digest fallback: report home page versions so Bloom positives
        // can be told apart from genuinely stale copies.
        let dsm = self.clone();
        net.register_all_try(kinds::VALIDATE, move |node| {
            let dsm = dsm.clone();
            move |_ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let req = try_downcast::<ValidateReq>(p)?;
                let home = dsm.homes[node].lock();
                let versions = req.pages.iter().map(|&pg| home.version(pg)).collect::<Vec<_>>();
                let bytes = 8 + 8 * versions.len() as u64;
                Ok(Outcome::reply(ValidateRep { versions }, bytes))
            }
        });

        // Resilient token queue: manager-mediated acquire. Every reply
        // derives from the manager's tenure record, so a retried
        // request replays the identical answer (counted under
        // `token_replays`) instead of corrupting holder state.
        let dsm = self.clone();
        net.register_all(kinds::RTOK_ACQ, move |node| {
            let dsm = dsm.clone();
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let req = downcast::<RTokAcquire>(p);
                let step =
                    dsm.lockmgrs[node].lock().rtok_acquire(req.lock, req.who, req.seq, ctx.now);
                match step {
                    RTokStep::Grant(notices) => {
                        let corr = ((req.who as u64 + 1) << 32) | (req.lock as u64 + 1);
                        sim::trace::instant_corr(
                            ctx.now,
                            node,
                            "swdsm",
                            "lock_grant",
                            req.lock as u64,
                            corr,
                        );
                        let bytes = notices_wire_bytes(&notices);
                        Outcome::reply(RTokReply::Grant(notices), bytes)
                    }
                    RTokStep::Queued => Outcome::reply(RTokReply::Queued, 8),
                    RTokStep::Replay(notices) => {
                        dsm.stats[node].add("token_replays", 1);
                        let bytes = notices_wire_bytes(&notices);
                        Outcome::reply(RTokReply::Replay(notices), bytes)
                    }
                }
            }
        });

        // Resilient token queue: manager-mediated release (idempotent —
        // a retried copy finds the tenure closed and acks again). A
        // handover posts the grant as a tagged deposit, so a grant lost
        // in flight tombstones the waiter's mailbox and its re-request
        // resolves as a replay.
        let dsm = self.clone();
        net.register_all(kinds::RTOK_REL, move |node| {
            let dsm = dsm.clone();
            move |ctx: &interconnect::HandlerCtx<'_>, _src, p| {
                let rel = downcast::<RTokRelease>(p);
                if let Some((next, notices)) = dsm.lockmgrs[node].lock().rtok_release(
                    rel.lock,
                    rel.who,
                    rel.seq,
                    rel.interval.clone(),
                ) {
                    let corr = ((next as u64 + 1) << 32) | (rel.lock as u64 + 1);
                    sim::trace::instant_corr(
                        ctx.now,
                        node,
                        "swdsm",
                        "lock_grant",
                        rel.lock as u64,
                        corr,
                    );
                    let bytes = notices_wire_bytes(&notices);
                    ctx.post_tagged(
                        next,
                        kinds::LOCK_GRANT,
                        LockGrant { lock: rel.lock, notices },
                        bytes,
                        interconnect::mailbox::tag(kinds::LOCK_GRANT, rel.lock),
                    );
                }
                Outcome::reply((), 8)
            }
        });
    }

    /// Post one subtree aggregate up the barrier tree.
    #[allow(clippy::too_many_arguments)]
    fn send_tree_agg(
        &self,
        ctx: &interconnect::HandlerCtx<'_>,
        node: usize,
        id: u32,
        epoch: u64,
        parent: usize,
        latest_ns: u64,
        agg: Vec<(usize, Interval)>,
    ) {
        let records = agg.iter().map(|(_, iv)| iv.notices.len() as u64).sum();
        let msg = TreeAgg { id, epoch, child: node, latest_ns, agg };
        let bytes = msg.wire_bytes();
        self.count_sync(node, parent, records);
        ctx.post(parent, kinds::TREE_AGG, msg, bytes);
    }

    /// Post one release wave down to `child`, departing at `release_ns`
    /// (plus `extra_bytes` of piggybacked migration directory).
    #[allow(clippy::too_many_arguments)]
    fn send_tree_wave(
        &self,
        ctx: &interconnect::HandlerCtx<'_>,
        node: usize,
        id: u32,
        epoch: u64,
        release_ns: u64,
        child: usize,
        wave: NoticeSet,
        extra_bytes: u64,
    ) {
        self.stats[node].add("tree_waves", 1);
        self.count_sync(node, child, wave.records());
        let msg = TreeWave { id, epoch, release_ns, wave };
        let bytes = msg.wire_bytes() + extra_bytes;
        ctx.post_at(child, kinds::TREE_WAVE, msg, bytes, release_ns);
    }

    /// A release reached `node`'s position in the barrier tree: run the
    /// root's quiescent-point work (`root` is true only there), clear
    /// redundant lock notices, send every child its wave, and build the
    /// release the local application applies.
    #[allow(clippy::too_many_arguments)]
    fn tree_release(
        &self,
        ctx: &interconnect::HandlerCtx<'_>,
        node: usize,
        id: u32,
        epoch: u64,
        release_ns: u64,
        own: NoticeSet,
        child_waves: Vec<(usize, NoticeSet)>,
        root: bool,
    ) -> BarrierRelease {
        let mut extra_bytes = 0;
        if root {
            // Quiescent point: every node is blocked in this barrier
            // (the root completes only after all subtrees aggregated),
            // so pending home migrations apply now; the directory
            // entries ride the waves.
            let moved = self.apply_migrations();
            extra_bytes = moved * 16;
            sim::trace::instant_corr(release_ns, node, "swdsm", "barrier_release", id as u64, epoch);
        }
        self.note_release(node, id, epoch);
        for (child, wave) in child_waves {
            self.send_tree_wave(ctx, node, id, epoch, release_ns, child, wave, extra_bytes);
        }
        BarrierRelease { id, epoch, notices: own }
    }

    /// Bind a per-node engine. One per node thread.
    pub fn node(self: &Arc<Self>, ctx: NodeCtx) -> DsmNode {
        DsmNode {
            dsm: self.clone(),
            rank: ctx.rank(),
            ctx,
            table: Mutex::new(PageTable::new()),
            cache_versions: Mutex::new(HashMap::new()),
            local_mods: Mutex::new(BTreeSet::new()),
            epoch_mods: Mutex::new(Interval::default()),
            next_region: Mutex::new(NextRegions { collective: 1, local: 0 }),
            epochs: Mutex::new(HashMap::new()),
            last_transfer_ns: AtomicU64::new(0),
            last_transfer_snapshot: AtomicBool::new(false),
        }
    }
}

#[derive(Debug)]
struct NextRegions {
    /// Next collective region id (identical on all nodes by lockstep).
    collective: u32,
    /// Next single-node region counter (combined with the rank).
    local: u32,
}

/// The per-node software-DSM engine.
///
/// All shared accesses go through the access functions below (the
/// Shasta-style software-check scheme standing in for mmap/SIGSEGV; see
/// DESIGN.md). The engine is `Send` so thread programming models can
/// hand it between threads, but it represents *one* node CPU's view.
pub struct DsmNode {
    dsm: Arc<SwDsm>,
    rank: usize,
    ctx: NodeCtx,
    table: Mutex<PageTable>,
    /// Home modification counter of each cached page at fetch time; the
    /// digest-validation round compares these against the homes'
    /// current counters.
    cache_versions: Mutex<HashMap<PageId, u64>>,
    /// Home-local pages written in the current interval.
    local_mods: Mutex<BTreeSet<PageId>>,
    /// Union of this node's intervals since the last barrier. A barrier
    /// must re-announce writes already published through lock releases,
    /// otherwise peers keep cached copies that predate those critical
    /// sections.
    epoch_mods: Mutex<Interval>,
    next_region: Mutex<NextRegions>,
    /// Barrier id → next epoch.
    epochs: Mutex<HashMap<u32, u64>>,
    /// Virtual duration of the last release application (delta replay
    /// or snapshot sync) — the membership bench's per-node probe.
    last_transfer_ns: AtomicU64,
    /// Whether the last release application took the bulk-snapshot
    /// path.
    last_transfer_snapshot: AtomicBool,
}

impl DsmNode {
    /// This node's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.dsm.nodes
    }

    /// The underlying node context (clock, compute charging).
    pub fn ctx(&self) -> &NodeCtx {
        &self.ctx
    }

    /// The cluster-wide DSM instance.
    pub fn dsm(&self) -> &Arc<SwDsm> {
        &self.dsm
    }

    /// How the last release application went: `(virtual ns it took,
    /// whether it was a bulk snapshot sync)`. Probed by the membership
    /// bench right after [`DsmNode::rejoin`].
    pub fn last_transfer(&self) -> (u64, bool) {
        (
            self.last_transfer_ns.load(Ordering::Relaxed),
            self.last_transfer_snapshot.load(Ordering::Relaxed),
        )
    }

    /// Resynchronize after an absence (crash recovery or a membership
    /// rejoin): counts the view change, then runs barrier `id`. Because
    /// barriers block on every node, the release this node receives
    /// carries exactly the writes it missed — the adaptive policy
    /// ([`DsmConfig::delta_max_records`]) replays them incrementally or
    /// falls back to a bulk snapshot sync. Returns the virtual time the
    /// resynchronization took (rejoin-to-caught-up).
    pub fn rejoin(&self, id: u32) -> u64 {
        let t0 = self.ctx.clock().now();
        self.stat("view_changes", 1);
        self.barrier(id);
        self.ctx.clock().now().saturating_sub(t0)
    }

    fn stat(&self, name: &str, n: u64) {
        self.dsm.stats[self.rank].add(name, n);
    }

    /// Emit a protocol span `[t0, now]` into the global trace session.
    #[inline]
    fn trace_span(&self, t0: u64, op: &'static str, arg: u64) {
        self.trace_span_corr(t0, op, arg, 0);
    }

    /// [`DsmNode::trace_span`] with a correlation id (see
    /// `sim::trace::TraceEvent::corr`): lock spans carry `lock + 1`,
    /// barrier spans carry the epoch.
    #[inline]
    fn trace_span_corr(&self, t0: u64, op: &'static str, arg: u64, corr: u64) {
        if sim::trace::enabled() {
            let now = self.ctx.clock().now();
            sim::trace::span_corr(t0, now.saturating_sub(t0), self.rank, "swdsm", op, arg, corr);
        }
    }

    fn machine(&self) -> &MachineCost {
        &self.dsm.machine
    }

    // ---- allocation ----------------------------------------------------

    /// Collective allocation: every node must call `alloc` in the same
    /// order with the same arguments (JiaJia/HLRC semantics, implicit
    /// barrier included). Returns the region's base address.
    pub fn alloc(&self, bytes: usize, dist: Distribution) -> GlobalAddr {
        let region = {
            let mut g = self.next_region.lock();
            let id = g.collective;
            assert!(id < LOCAL_REGION_BASE, "collective region ids exhausted");
            g.collective += 1;
            id
        };
        self.dsm.dir.register(region, RegionMeta::new(bytes, dist));
        self.barrier(ALLOC_BARRIER);
        GlobalAddr::new(region, 0)
    }

    /// Single-node allocation (TreadMarks `Tmk_malloc` semantics): only
    /// the caller allocates; all pages are homed here; no barrier. The
    /// address must be delivered to other nodes explicitly (the model
    /// layer's distribute routine).
    pub fn alloc_local(&self, bytes: usize) -> GlobalAddr {
        let region = {
            let mut g = self.next_region.lock();
            let id = LOCAL_REGION_BASE * (self.rank as u32 + 1) + g.local;
            g.local += 1;
            id
        };
        self.dsm
            .dir
            .register(region, RegionMeta::new(bytes, Distribution::OnNode(self.rank)));
        GlobalAddr::new(region, 0)
    }

    /// Adopt a region allocated elsewhere (receiver side of an address
    /// distribution). Registers the same metadata locally; idempotent.
    pub fn adopt(&self, addr: GlobalAddr, bytes: usize, home: usize) {
        self.dsm
            .dir
            .register(addr.region(), RegionMeta::new(bytes, Distribution::OnNode(home)));
    }

    // ---- access functions ----------------------------------------------

    /// Read `out.len()` bytes from global memory at `addr`.
    pub fn read_bytes(&self, addr: GlobalAddr, out: &mut [u8]) {
        self.stat("reads", 1);
        self.ctx.compute(self.machine().dsm_check_ns);
        self.charge_local_access(out.len());
        let mut done = 0;
        while done < out.len() {
            let a = addr.add(done as u32);
            let page = a.page();
            let off = a.page_offset();
            let chunk = (PAGE_SIZE - off).min(out.len() - done);
            self.ensure_readable(page);
            self.copy_from_page(page, off, &mut out[done..done + chunk]);
            done += chunk;
        }
    }

    /// Write `data` to global memory at `addr`.
    pub fn write_bytes(&self, addr: GlobalAddr, data: &[u8]) {
        self.stat("writes", 1);
        self.ctx.compute(self.machine().dsm_check_ns);
        self.charge_local_access(data.len());
        let mut done = 0;
        while done < data.len() {
            let a = addr.add(done as u32);
            let page = a.page();
            let off = a.page_offset();
            let chunk = (PAGE_SIZE - off).min(data.len() - done);
            self.ensure_writable(page, off);
            self.copy_to_page(page, off, &data[done..done + chunk]);
            done += chunk;
        }
    }

    /// Read a u64.
    pub fn read_u64(&self, addr: GlobalAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a u64.
    pub fn write_u64(&self, addr: GlobalAddr, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Read an f64.
    pub fn read_f64(&self, addr: GlobalAddr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write an f64.
    pub fn write_f64(&self, addr: GlobalAddr, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    fn charge_local_access(&self, bytes: usize) {
        if bytes <= 64 {
            // Word access: a cached load/store.
            self.ctx.compute(self.machine().local_access_ns);
        } else {
            // Bulk access streams through the node's memory bus (the
            // same accounting every platform uses, so memory-bound
            // kernels compare fairly across SMP and the DSMs).
            self.ctx.bus_transfer(bytes as u64);
        }
    }

    fn is_home(&self, page: PageId) -> bool {
        self.dsm.home_of(page) == self.rank
    }

    fn copy_from_page(&self, page: PageId, off: usize, out: &mut [u8]) {
        if self.is_home(page) {
            self.dsm.homes[self.rank].lock().read(page, off, out);
        } else {
            let table = self.table.lock();
            let p = table.get(page).expect("readable page vanished");
            out.copy_from_slice(&p.data[off..off + out.len()]);
        }
    }

    fn copy_to_page(&self, page: PageId, off: usize, data: &[u8]) {
        if self.is_home(page) {
            self.dsm.homes[self.rank].lock().write(page, off, data);
        } else {
            let mut table = self.table.lock();
            let p = table.get_mut(page).expect("writable page vanished");
            p.data[off..off + data.len()].copy_from_slice(data);
        }
    }

    /// Make `page` locally readable, fetching from its home on a miss.
    fn ensure_readable(&self, page: PageId) {
        if self.is_home(page) {
            return;
        }
        if self.table.lock().get(page).is_some() {
            return;
        }
        self.fetch_page(page);
    }

    /// Make `page` locally writable (twinning on the first write).
    /// `off` is the in-page byte offset of the triggering write; the
    /// first write per interval is traced with `corr = off + 1` so the
    /// sharing analyzer can tell true sharing (same offset from several
    /// nodes) from false sharing (distinct offsets on one page).
    fn ensure_writable(&self, page: PageId, off: usize) {
        if self.is_home(page) {
            if self.local_mods.lock().insert(page) {
                sim::trace::instant_corr(
                    self.ctx.clock().now(),
                    self.rank,
                    "swdsm",
                    "write_local",
                    page.pack(),
                    off as u64 + 1,
                );
            }
            return;
        }
        let mut table = self.table.lock();
        match table.get_mut(page) {
            Some(p) if p.state == memwire::PageState::Writable => {}
            Some(p) => {
                // Write fault on a read-only copy: trap + twin.
                self.stat("traps", 1);
                self.stat("twins", 1);
                sim::trace::instant_corr(
                    self.ctx.clock().now(),
                    self.rank,
                    "swdsm",
                    "write_fault",
                    page.pack(),
                    off as u64 + 1,
                );
                self.ctx.compute(self.dsm.cfg.fault_trap_ns + self.dsm.cfg.twin_ns);
                p.make_writable();
            }
            None => {
                drop(table);
                self.fetch_page(page);
                let mut table = self.table.lock();
                let p = table.get_mut(page).expect("fetched page vanished");
                self.stat("twins", 1);
                sim::trace::instant_corr(
                    self.ctx.clock().now(),
                    self.rank,
                    "swdsm",
                    "write_fault",
                    page.pack(),
                    off as u64 + 1,
                );
                self.ctx.compute(self.dsm.cfg.twin_ns);
                p.make_writable();
            }
        }
    }

    /// Whether the fabric was built with a timeout/retry policy (fault
    /// injection active): protocol requests then retry transient faults
    /// instead of panicking on the first loss.
    fn resilient(&self) -> bool {
        self.ctx.port().resilience().is_some()
    }

    fn fetch_page(&self, page: PageId) {
        let t0 = self.ctx.clock().now();
        self.stat("traps", 1);
        self.stat("getpages", 1);
        self.ctx.compute(self.dsm.cfg.fault_trap_ns);
        self.make_room();
        let mut home = self.dsm.home_of(page);
        let mut hops = 0u32;
        let data = loop {
            let reply = if self.resilient() {
                self.ctx
                    .port()
                    .request_retrying(home, kinds::GET_PAGE, GetPage { page }, 24)
                    .unwrap_or_else(|e| {
                        panic!(
                            "swdsm node {}: unrecoverable fault fetching page {page:?}: {e}",
                            self.rank
                        )
                    })
            } else {
                self.ctx.port().request(home, kinds::GET_PAGE, GetPage { page }, 24)
            };
            match downcast::<PageReply>(reply) {
                PageReply::Data(data) => break data,
                PageReply::Moved { to, .. } => {
                    // Stale directory across a re-homing round: follow
                    // the redirect (bounded — each hop lands on the
                    // strictly fresher directory entry).
                    hops += 1;
                    assert!(
                        hops <= MAX_SYNC_ROUNDS,
                        "swdsm node {}: page {page:?} fetch still redirected after \
                         {MAX_SYNC_ROUNDS} hops",
                        self.rank
                    );
                    self.stat("retries", 1);
                    home = to;
                }
            }
        };
        // The one copy of the fetch path: the cached copy must be
        // privately mutable (twinning), so it leaves the shared Page.
        self.table.lock().install(page, CachedPage::read_only(data.bytes.to_vec()));
        self.cache_versions.lock().insert(page, data.version);
        self.trace_span(t0, "page_fault", page.pack());
    }

    /// Ship a batch of home-bound messages, retrying transient faults
    /// when the fabric is resilient. Fatal faults end the node with a
    /// structured report — a half-flushed interval is unrecoverable.
    fn send_batch<T: std::any::Any + Send + Clone>(&self, msgs: Vec<(usize, u32, T, u64)>) {
        if msgs.is_empty() {
            return;
        }
        if self.resilient() {
            if let Err(e) = self.ctx.port().request_batch_retrying(msgs) {
                panic!("swdsm node {}: unrecoverable fault flushing interval: {e}", self.rank);
            }
        } else {
            let _acks = self.ctx.port().request_batch(msgs);
        }
    }

    /// Enforce the page-cache bound before installing a new page: drop
    /// a clean victim, or diff a dirty one home first (JiaJia's
    /// memory-pressure write-back).
    fn make_room(&self) {
        let cap = self.dsm.cfg.cache_pages;
        if cap == 0 {
            return;
        }
        loop {
            let victim = {
                let mut table = self.table.lock();
                if table.len() < cap {
                    return;
                }
                table.victim()
            };
            let Some((page, state)) = victim else { return };
            if state == memwire::PageState::Writable {
                self.flush_dirty_subset(&[page]);
            }
            if self.table.lock().invalidate(page) {
                self.stat("evictions", 1);
            }
        }
    }

    // ---- interval flushing (release) -------------------------------------

    /// Push this interval's modifications home and return the interval's
    /// write notices. Called at every release point (unlock, barrier).
    fn flush_interval(&self) -> Interval {
        let t0 = self.ctx.clock().now();
        let dirty = {
            let table = self.table.lock();
            table.writable_pages()
        };
        let local: Vec<PageId> = std::mem::take(&mut *self.local_mods.lock()).into_iter().collect();

        let mut all_pages = dirty.clone();
        all_pages.extend_from_slice(&local);
        let interval = Interval::from_pages(&all_pages);
        if dirty.is_empty() {
            return interval;
        }

        // The per-home batches are ordered maps: each message in the
        // batch pays send overhead sequentially on this node's clock,
        // so the departure order must not depend on hash iteration.
        if self.dsm.cfg.whole_page_writeback {
            let mut by_home: BTreeMap<usize, Vec<(PageId, Page)>> = BTreeMap::new();
            {
                let mut table = self.table.lock();
                for page in &dirty {
                    let (_twin, cur) = table.downgrade(*page);
                    self.ctx.compute(self.dsm.cfg.page_copy_ns);
                    by_home
                        .entry(self.dsm.home_of(*page))
                        .or_default()
                        .push((*page, Page::from(cur)));
                }
            }
            self.stat("diffs", dirty.len() as u64);
            let msgs: Vec<_> = by_home
                .into_iter()
                .map(|(home, pages)| {
                    let msg = PutPages { pages };
                    let bytes = msg.wire_bytes();
                    self.stat("diff_bytes", bytes);
                    (home, kinds::PUT_PAGE, msg, bytes)
                })
                .collect();
            self.send_batch(msgs);
        } else {
            let mut by_home: BTreeMap<usize, Vec<(PageId, Diff)>> = BTreeMap::new();
            {
                let mut table = self.table.lock();
                for page in &dirty {
                    let (twin, cur) = table.downgrade(*page);
                    self.ctx.compute(self.dsm.cfg.diff_scan_ns);
                    let diff = Diff::between(&twin, &cur);
                    if !diff.is_empty() {
                        by_home.entry(self.dsm.home_of(*page)).or_default().push((*page, diff));
                    }
                }
            }
            let msgs: Vec<_> = by_home
                .into_iter()
                .map(|(home, diffs)| {
                    self.stat("diffs", diffs.len() as u64);
                    let msg = ApplyDiffs { diffs };
                    let bytes = msg.wire_bytes();
                    self.stat("diff_bytes", bytes);
                    (home, kinds::APPLY_DIFFS, msg, bytes)
                })
                .collect();
            self.send_batch(msgs);
        }
        self.trace_span(t0, "diff_flush", dirty.len() as u64);
        interval
    }

    /// Invalidate cached copies of pages that `notices` says other nodes
    /// wrote. A page that is locally dirty (written outside the incoming
    /// synchronization's scope, e.g. under false sharing) has its diff
    /// flushed home first so no writes are lost.
    fn apply_notices(&self, notices: &[(usize, Interval)]) {
        let mut stale: Vec<PageId> = Vec::new();
        {
            let table = self.table.lock();
            for (writer, interval) in notices {
                if *writer == self.rank {
                    continue;
                }
                for page in interval.pages() {
                    // Home copies already hold the writers' diffs.
                    if !self.is_home(page) && table.get(page).is_some() {
                        stale.push(page);
                    }
                }
            }
        }
        if stale.is_empty() {
            return;
        }
        stale.sort();
        stale.dedup();
        self.flush_dirty_subset(&stale);
        let mut table = self.table.lock();
        let mut dropped = 0u64;
        for page in stale {
            if table.invalidate(page) {
                self.stat("invalidations", 1);
                dropped += 1;
            }
        }
        if dropped > 0 {
            sim::trace::instant(self.ctx.clock().now(), self.rank, "swdsm", "write_notice", dropped);
        }
    }

    /// Apply a released notice set in whichever encoding it arrived.
    ///
    /// This is the adaptive state-transfer choke point: when the
    /// release carries more records than `DsmConfig::delta_max_records`
    /// (and the cutoff is enabled), the node is far enough behind that
    /// incremental replay would invalidate nearly everything anyway —
    /// it switches to a bulk snapshot sync instead. The branch is a
    /// pure function of the release contents, so every node (and every
    /// rerun) decides identically.
    fn apply_release(&self, notices: NoticeSet) {
        let t0 = self.ctx.clock().now();
        let cutoff = self.dsm.cfg.delta_max_records;
        let records = notices.records();
        if cutoff > 0 && records > cutoff {
            self.snapshot_sync();
            self.last_transfer_snapshot.store(true, Ordering::Relaxed);
        } else {
            match notices {
                NoticeSet::Explicit(v) => self.apply_notices(&v),
                NoticeSet::Digest(ds) => self.apply_digests(&ds),
            }
            if cutoff > 0 {
                self.stat("delta_records", records);
            }
            self.last_transfer_snapshot.store(false, Ordering::Relaxed);
        }
        self.last_transfer_ns
            .store(self.ctx.clock().now().saturating_sub(t0), Ordering::Relaxed);
    }

    /// Bulk snapshot sync: drop every cached copy and eagerly refetch
    /// the same set from the homes, so the cache is warm and current in
    /// one sweep of whole-page transfers (counted under
    /// `snapshot_bytes`). Dirty copies flush home first — their diffs
    /// land before the refetch reads the master back.
    fn snapshot_sync(&self) {
        let t0 = self.ctx.clock().now();
        let mut pages = self.table.lock().cached_pages();
        // A page whose home migrated *to* this node needs no copy.
        pages.retain(|p| !self.is_home(*p));
        self.flush_dirty_subset(&pages);
        {
            let mut table = self.table.lock();
            let n = table.len() as u64;
            table.clear();
            self.stat("invalidations", n);
        }
        self.cache_versions.lock().clear();
        for &page in &pages {
            self.fetch_page(page);
            self.stat("snapshot_bytes", PAGE_SIZE as u64);
        }
        self.trace_span(t0, "snapshot_sync", pages.len() as u64);
    }

    /// Apply digest-encoded notices: run-length digests invalidate their
    /// exact page sets directly; Bloom digests gather every cached page
    /// the filter may contain and validate them against the homes'
    /// modification counters (`kinds::VALIDATE`) — copies whose home
    /// moved on are stale and invalidated (`digest_hits`), false
    /// positives are kept (`digest_misses`). Digests never carry this
    /// node's own writes (self-exclusion is structural in both the tree
    /// waves and the central complements), so every confirmed hit is
    /// another node's write.
    fn apply_digests(&self, digests: &[NoticeDigest]) {
        let mut exact: Vec<PageId> = Vec::new();
        let mut candidates: Vec<PageId> = Vec::new();
        {
            let table = self.table.lock();
            for d in digests {
                match d.pages() {
                    Some(pages) => {
                        for page in pages {
                            if table.get(page).is_some() {
                                exact.push(page);
                            }
                        }
                    }
                    None => {
                        for page in table.cached_pages() {
                            if d.may_contain(page) {
                                candidates.push(page);
                            }
                        }
                    }
                }
            }
        }
        exact.sort();
        exact.dedup();
        candidates.sort();
        candidates.dedup();
        candidates.retain(|p| !exact.contains(p));

        // Validate Bloom candidates home-by-home. The cached version was
        // recorded at fetch time; any later mutation at the home (another
        // writer's diff, or even this node's own flushed diff) bumps the
        // counter, so version equality proves the cached bytes are still
        // the master bytes.
        let mut stale: Vec<PageId> = Vec::new();
        let mut clean = 0u64;
        if !candidates.is_empty() {
            let cached: HashMap<PageId, u64> = {
                let v = self.cache_versions.lock();
                candidates.iter().map(|p| (*p, v.get(p).copied().unwrap_or(0))).collect()
            };
            let mut by_home: BTreeMap<usize, Vec<PageId>> = BTreeMap::new();
            for &page in &candidates {
                by_home.entry(self.dsm.home_of(page)).or_default().push(page);
            }
            for (home, pages) in by_home {
                let req = ValidateReq { pages: pages.clone() };
                let bytes = 8 + 8 * pages.len() as u64;
                self.dsm.count_sync(self.rank, home, pages.len() as u64);
                let reply = if self.resilient() {
                    self.ctx
                        .port()
                        .request_retrying(home, kinds::VALIDATE, req, bytes)
                        .unwrap_or_else(|e| {
                            panic!(
                                "swdsm node {}: unrecoverable fault validating digests: {e}",
                                self.rank
                            )
                        })
                } else {
                    self.ctx.port().request(home, kinds::VALIDATE, req, bytes)
                };
                let rep = downcast::<ValidateRep>(reply);
                for (page, version) in pages.into_iter().zip(rep.versions) {
                    if version > cached[&page] {
                        stale.push(page);
                    } else {
                        clean += 1;
                    }
                }
            }
        }
        self.stat("digest_hits", (exact.len() + stale.len()) as u64);
        self.stat("digest_misses", clean);

        let mut doomed = exact;
        doomed.extend(stale);
        if doomed.is_empty() {
            return;
        }
        doomed.sort();
        self.flush_dirty_subset(&doomed);
        let mut table = self.table.lock();
        let mut dropped = 0u64;
        for page in doomed {
            if table.invalidate(page) {
                self.stat("invalidations", 1);
                dropped += 1;
            }
        }
        if dropped > 0 {
            sim::trace::instant(self.ctx.clock().now(), self.rank, "swdsm", "write_notice", dropped);
        }
    }

    /// Diff-and-ship any dirty pages among `pages` (pre-invalidation
    /// rescue path; rare under proper synchronization discipline).
    fn flush_dirty_subset(&self, pages: &[PageId]) {
        let mut by_home: BTreeMap<usize, Vec<(PageId, Diff)>> = BTreeMap::new();
        {
            let mut table = self.table.lock();
            for &page in pages {
                let dirty = matches!(
                    table.get(page),
                    Some(p) if p.state == memwire::PageState::Writable
                );
                if dirty {
                    let (twin, cur) = table.downgrade(page);
                    self.ctx.compute(self.dsm.cfg.diff_scan_ns);
                    let diff = Diff::between(&twin, &cur);
                    if !diff.is_empty() {
                        by_home.entry(self.dsm.home_of(page)).or_default().push((page, diff));
                    }
                }
            }
        }
        let msgs: Vec<_> = by_home
            .into_iter()
            .map(|(home, diffs)| {
                self.stat("diffs", diffs.len() as u64);
                let msg = ApplyDiffs { diffs };
                let bytes = msg.wire_bytes();
                self.stat("diff_bytes", bytes);
                (home, kinds::APPLY_DIFFS, msg, bytes)
            })
            .collect();
        self.send_batch(msgs);
    }

    /// Drop every cached copy (conservative acquire in the
    /// no-lock-notices ablation mode). Dirty pages are flushed home
    /// first.
    fn invalidate_all_cached(&self) {
        let _ = self.flush_interval();
        let mut table = self.table.lock();
        let n = table.len() as u64;
        table.clear();
        self.stat("invalidations", n);
    }

    // ---- synchronization -------------------------------------------------

    /// Acquire global lock `lock` exclusively.
    pub fn acquire(&self, lock: u32) {
        self.try_acquire(lock).unwrap_or_else(|e| self.fatal(&e));
    }

    /// Acquire global lock `lock` in shared (reader) mode: concurrent
    /// readers hold it together; writers exclude everyone.
    pub fn acquire_shared(&self, lock: u32) {
        self.try_acquire_shared(lock).unwrap_or_else(|e| self.fatal(&e));
    }

    /// [`DsmNode::acquire`] with unrecoverable fabric faults surfaced as
    /// a [`DsmError`] instead of a panic.
    pub fn try_acquire(&self, lock: u32) -> Result<(), DsmError> {
        self.try_acquire_mode(lock, crate::lockmgr::Mode::Excl)
    }

    /// [`DsmNode::acquire_shared`] with unrecoverable fabric faults
    /// surfaced as a [`DsmError`] instead of a panic.
    pub fn try_acquire_shared(&self, lock: u32) -> Result<(), DsmError> {
        self.try_acquire_mode(lock, crate::lockmgr::Mode::Shared)
    }

    /// Structured shutdown on an unrecoverable fault: every `DsmError`
    /// escape hatch funnels through here so the panic payload always
    /// names the node, the operation, and the fabric error.
    fn fatal(&self, e: &DsmError) -> ! {
        panic!("swdsm node {}: unrecoverable fault: {e}", self.rank)
    }

    fn try_acquire_mode(&self, lock: u32, mode: crate::lockmgr::Mode) -> Result<(), DsmError> {
        let t0 = self.ctx.clock().now();
        self.stat("lock_acquires", 1);
        let mgr = self.dsm.lock_mgr_of(lock);
        let notices = if self.dsm.sync.locks == LockTopology::TokenQueue {
            if self.resilient() {
                // Faulty fabric: the manager-mediated tenure machine
                // (`rtok_*`) — every step a retryable manager round.
                self.rtok_acquire_resilient(lock, mgr)?
            } else {
                // MCS-style token queue (shared mode serializes as
                // exclusive): kick the local handler, which enqueues at
                // the manager; the token arrives as a LOCK_GRANT
                // deposit.
                let tag = interconnect::mailbox::tag(kinds::LOCK_GRANT, lock);
                self.ctx.port().post(
                    self.rank,
                    kinds::TOK_ACQ_LOCAL,
                    TokAcquireLocal { lock },
                    8,
                );
                let grant = downcast::<LockGrant>(self.ctx.port().wait_mailbox(tag));
                assert_eq!(grant.lock, lock);
                grant.notices
            }
        } else if self.resilient() {
            self.acquire_notices_resilient(lock, mode, mgr)?
        } else {
            let reply = self.ctx.port().request(mgr, kinds::LOCK_REQ, LockReq { lock, mode }, 16);
            match downcast::<LockReply>(reply) {
                LockReply::Granted(notices) => notices,
                LockReply::Queued => {
                    self.stat("lock_queued", 1);
                    let tag = interconnect::mailbox::tag(kinds::LOCK_GRANT, lock);
                    let grant = downcast::<LockGrant>(self.ctx.port().wait_mailbox(tag));
                    assert_eq!(grant.lock, lock);
                    grant.notices
                }
            }
        };
        if self.dsm.cfg.notices_on_locks {
            self.apply_notices(&notices);
        } else {
            self.invalidate_all_cached();
        }
        self.dsm.lock_hist.record(self.ctx.clock().now().saturating_sub(t0));
        self.trace_span_corr(t0, "lock_acquire", lock as u64, lock as u64 + 1);
        Ok(())
    }

    /// The resilient acquire protocol: request with retries; if queued,
    /// wait for the deferred grant. A loss tombstone under the grant tag
    /// means the grant was destroyed in flight — re-request, which the
    /// (idempotent) manager answers with a fresh copy of the same grant.
    fn acquire_notices_resilient(
        &self,
        lock: u32,
        mode: crate::lockmgr::Mode,
        mgr: usize,
    ) -> Result<Vec<(usize, Interval)>, DsmError> {
        let wrap = |err| DsmError { op: "lock_acquire", id: lock, err };
        let mut rounds = 0u32;
        'req: loop {
            rounds += 1;
            assert!(
                rounds <= MAX_SYNC_ROUNDS,
                "swdsm node {}: lock {lock} acquire still failing after {MAX_SYNC_ROUNDS} rounds",
                self.rank
            );
            if rounds > 1 {
                self.stat("retries", 1);
            }
            let reply = self
                .ctx
                .port()
                .request_retrying(mgr, kinds::LOCK_REQ, LockReq { lock, mode }, 16)
                .map_err(wrap)?;
            match downcast::<LockReply>(reply) {
                LockReply::Granted(notices) => return Ok(notices),
                LockReply::Queued => {
                    if rounds == 1 {
                        self.stat("lock_queued", 1);
                    }
                    let tag = interconnect::mailbox::tag(kinds::LOCK_GRANT, lock);
                    match self.ctx.port().wait_mailbox_checked(tag) {
                        Ok(p) => {
                            let grant = downcast::<LockGrant>(p);
                            assert_eq!(grant.lock, lock);
                            return Ok(grant.notices);
                        }
                        Err(e) if e.is_transient() => continue 'req,
                        Err(e) => return Err(wrap(e)),
                    }
                }
            }
        }
    }

    /// The resilient token-queue acquire: one new tenure sequence
    /// number for the whole attempt, then the same request/park/retry
    /// loop as [`DsmNode::acquire_notices_resilient`] against the
    /// `rtok_*` manager machine. A duplicate request of the granted
    /// tenure comes back as a replay carrying the identical notices.
    fn rtok_acquire_resilient(
        &self,
        lock: u32,
        mgr: usize,
    ) -> Result<Vec<(usize, Interval)>, DsmError> {
        let wrap = |err| DsmError { op: "lock_acquire", id: lock, err };
        let seq = self.dsm.lockmgrs[self.rank].lock().rtok_begin(lock);
        let mut rounds = 0u32;
        'req: loop {
            rounds += 1;
            assert!(
                rounds <= MAX_SYNC_ROUNDS,
                "swdsm node {}: token lock {lock} acquire still failing after \
                 {MAX_SYNC_ROUNDS} rounds",
                self.rank
            );
            if rounds > 1 {
                self.stat("retries", 1);
            }
            let reply = self
                .ctx
                .port()
                .request_retrying(
                    mgr,
                    kinds::RTOK_ACQ,
                    RTokAcquire { lock, who: self.rank, seq },
                    24,
                )
                .map_err(wrap)?;
            match downcast::<RTokReply>(reply) {
                RTokReply::Grant(notices) | RTokReply::Replay(notices) => return Ok(notices),
                RTokReply::Queued => {
                    if rounds == 1 {
                        self.stat("lock_queued", 1);
                    }
                    let tag = interconnect::mailbox::tag(kinds::LOCK_GRANT, lock);
                    match self.ctx.port().wait_mailbox_checked(tag) {
                        Ok(p) => {
                            let grant = downcast::<LockGrant>(p);
                            assert_eq!(grant.lock, lock);
                            return Ok(grant.notices);
                        }
                        Err(e) if e.is_transient() => continue 'req,
                        Err(e) => return Err(wrap(e)),
                    }
                }
            }
        }
    }

    /// Release global lock `lock`, publishing this interval's writes.
    pub fn release(&self, lock: u32) {
        self.try_release(lock).unwrap_or_else(|e| self.fatal(&e));
    }

    /// [`DsmNode::release`] with unrecoverable fabric faults surfaced as
    /// a [`DsmError`] instead of a panic. On a resilient fabric the
    /// release is acknowledged (and retried) so a lost release cannot
    /// strand the lock's waiters.
    pub fn try_release(&self, lock: u32) -> Result<(), DsmError> {
        let interval = self.flush_interval();
        self.epoch_mods.lock().merge(&interval);
        if self.dsm.sync.locks == LockTopology::TokenQueue {
            if self.resilient() {
                // Faulty fabric: an acknowledged (and retried) manager
                // round; the manager's tenure record makes a duplicate
                // release a no-op, so a lost ack cannot double-apply.
                let seq = self.dsm.lockmgrs[self.rank].lock().rtok_seq(lock);
                let mgr = self.dsm.lock_mgr_of(lock);
                let msg = RTokRelease { lock, who: self.rank, seq, interval };
                let bytes = 32 + msg.interval.wire_bytes();
                self.ctx
                    .port()
                    .request_retrying(mgr, kinds::RTOK_REL, msg, bytes)
                    .map_err(|err| DsmError { op: "lock_release", id: lock, err })?;
            } else {
                // Merge this interval into the token and forward or
                // return it — all handler-side, so the release is
                // asynchronous like the central manager's one-way post.
                let msg = TokRelease { lock, interval };
                let bytes = 16 + msg.interval.wire_bytes();
                self.ctx.port().post(self.rank, kinds::TOK_REL, msg, bytes);
            }
            let corr = ((self.rank as u64 + 1) << 32) | (lock as u64 + 1);
            sim::trace::instant_corr(self.ctx.clock().now(), self.rank, "swdsm", "lock_release", lock as u64, corr);
            return Ok(());
        }
        let mgr = self.dsm.lock_mgr_of(lock);
        let rel = LockRel { lock, releaser: self.rank, interval };
        let bytes = 16 + rel.interval.wire_bytes();
        if self.resilient() {
            self.ctx
                .port()
                .request_retrying(mgr, kinds::LOCK_REL, rel, bytes)
                .map_err(|err| DsmError { op: "lock_release", id: lock, err })?;
        } else {
            self.ctx.port().post(mgr, kinds::LOCK_REL, rel, bytes);
        }
        // corr packs (releaser, lock) — the same encoding the manager's
        // grant instants use, so release → next grant chains join up.
        let corr = ((self.rank as u64 + 1) << 32) | (lock as u64 + 1);
        sim::trace::instant_corr(self.ctx.clock().now(), self.rank, "swdsm", "lock_release", lock as u64, corr);
        Ok(())
    }

    /// Global barrier `id`: flushes the interval, exchanges write
    /// notices, and invalidates what others wrote.
    pub fn barrier(&self, id: u32) {
        self.try_barrier(id).unwrap_or_else(|e| self.fatal(&e));
    }

    /// [`DsmNode::barrier`] with unrecoverable fabric faults surfaced as
    /// a [`DsmError`] instead of a panic. Dispatches on the configured
    /// [`BarrierTopology`]. The barrier epoch commits only after the
    /// release is in hand, so a retried arrival re-arrives under the
    /// same epoch — deduplicated or replayed by the central manager or
    /// by the tree parent, whichever the topology routes it to.
    pub fn try_barrier(&self, id: u32) -> Result<(), DsmError> {
        let t0 = self.ctx.clock().now();
        self.stat("barriers", 1);
        let mut interval = std::mem::take(&mut *self.epoch_mods.lock());
        interval.merge(&self.flush_interval());
        let epoch = self.epochs.lock().get(&id).copied().unwrap_or(0) + 1;
        let notices = match self.dsm.sync.barrier {
            BarrierTopology::Central => self.central_barrier(id, epoch, interval)?,
            BarrierTopology::Tree { .. } => self.tree_barrier(id, epoch, interval)?,
            BarrierTopology::Dissemination => {
                NoticeSet::Explicit(self.barrier_dissemination(id, epoch, interval))
            }
        };
        self.apply_release(notices);
        self.epochs.lock().insert(id, epoch);
        self.trace_span_corr(t0, "barrier", id as u64, epoch);
        Ok(())
    }

    /// Run the centralized barrier protocol and return the released
    /// notice set. On a resilient fabric the barrier is a single
    /// request/reply exchange: the manager parks every arrival's reply
    /// channel and answers all of them with the release, so a retried
    /// arrival (its reply was lost) is always causally behind the event
    /// that answers it — dedup'd while the epoch is pending, replayed
    /// from the release cache afterwards.
    fn central_barrier(
        &self,
        id: u32,
        epoch: u64,
        interval: Interval,
    ) -> Result<NoticeSet, DsmError> {
        let mgr = id as usize % self.dsm.nodes;
        let arr = BarrierArrive { id, epoch, who: self.rank, interval };
        let bytes = 24 + arr.interval.wire_bytes();
        self.dsm.count_sync(self.rank, mgr, arr.interval.notices.len() as u64);
        if !self.resilient() {
            let tag = interconnect::mailbox::tag(kinds::BARRIER_RELEASE, id);
            self.ctx.port().post(mgr, kinds::BARRIER_ARRIVE, arr, bytes);
            let rel = downcast::<BarrierRelease>(self.ctx.port().wait_mailbox(tag));
            assert_eq!(rel.epoch, epoch, "barrier {id}: epoch mismatch");
            return Ok(rel.notices);
        }
        let rel = self
            .ctx
            .port()
            .request_retrying(mgr, kinds::BARRIER_ARRIVE, arr, bytes)
            .map_err(|err| DsmError { op: "barrier", id, err })?;
        let rel = downcast::<BarrierRelease>(rel);
        assert_eq!(rel.epoch, epoch, "barrier {id}: epoch mismatch");
        Ok(rel.notices)
    }

    /// Run the tree barrier and return the released notice set.
    ///
    /// On a plain fabric the node's own arrival travels as a `TREE_UP`
    /// message to its own handler, which serializes it against child
    /// aggregates and waves; aggregates and release waves are one-way
    /// posts and the release lands in the mailbox.
    ///
    /// A resilient fabric uses a pull model instead: the fabric can
    /// only heal losses on request/reply edges (a reply parked by a
    /// handler has no client-side deadline, so a fire-and-forget wave
    /// that is dropped would strand its whole subtree). Every
    /// loss-exposed tree edge is therefore a retried request from an
    /// application thread: once the local subtree is complete, the
    /// thread pushes the aggregate to the parent with a retried
    /// `TREE_AGG` request and receives its release wave as the
    /// (deferred) reply, then answers every parked child with its
    /// complement wave. Completion is always a local action at a node
    /// whose own wave is already in hand, so by induction from the
    /// root every parked reply is eventually discharged; lost requests
    /// and lost replies time out at the sender, and the retry finds
    /// the released epoch replayed from the parent's cache.
    fn tree_barrier(&self, id: u32, epoch: u64, interval: Interval) -> Result<NoticeSet, DsmError> {
        if !self.resilient() {
            let arr = BarrierArrive { id, epoch, who: self.rank, interval };
            let bytes = 24 + arr.interval.wire_bytes();
            let tag = interconnect::mailbox::tag(kinds::BARRIER_RELEASE, id);
            self.ctx.port().post(self.rank, kinds::TREE_UP, arr, bytes);
            let rel = downcast::<BarrierRelease>(self.ctx.port().wait_mailbox(tag));
            assert_eq!(rel.epoch, epoch, "tree barrier {id}: epoch mismatch");
            return Ok(rel.notices);
        }
        let me = self.rank;
        let now = self.ctx.clock().now();
        let step = self.dsm.treebarriers[me].lock().self_arrive(id, epoch, interval, now);
        // The completing step always travels through the local mailbox,
        // even when this thread's own arrival completed the subtree: if
        // the two completion orders (own-last vs aggregate-last, a
        // real-time race) took different paths here, only one of them
        // would pay the mailbox wake-up and virtual time would stop
        // being reproducible.
        let skey = interconnect::mailbox::tag(kinds::TREE_AGG, id);
        match step {
            TreeStep::Waiting => {
                // Children outstanding: the TREE_AGG handler deposits
                // the completion step when the last one lands.
            }
            step @ (TreeStep::Up { .. } | TreeStep::Deliver { .. }) => {
                let when = match &step {
                    TreeStep::Up { latest_ns, .. } => *latest_ns,
                    TreeStep::Deliver { release_ns, .. } => *release_ns,
                    _ => unreachable!(),
                };
                self.ctx.port().mailbox().deposit(skey, Box::new(step), when);
            }
            other => unreachable!("own tree arrival produced {other:?}"),
        }
        let step = downcast::<TreeStep>(self.ctx.port().wait_mailbox(skey));
        let deliver = match step {
            TreeStep::Up { parent, latest_ns, agg } => {
                let records = agg.iter().map(|(_, iv)| iv.notices.len() as u64).sum();
                let msg = TreeAgg { id, epoch, child: me, latest_ns, agg };
                let bytes = msg.wire_bytes();
                self.dsm.count_sync(me, parent, records);
                let rep = self
                    .ctx
                    .port()
                    .request_retrying(parent, kinds::TREE_AGG, msg, bytes)
                    .map_err(|err| DsmError { op: "barrier", id, err })?;
                let wave = downcast::<TreeWave>(rep);
                assert_eq!(wave.epoch, epoch, "tree barrier {id}: epoch mismatch");
                self.dsm.treebarriers[me].lock().wave(id, epoch, wave.release_ns, wave.wave)
            }
            step @ TreeStep::Deliver { .. } => step,
            other => unreachable!("own tree arrival produced {other:?}"),
        };
        let TreeStep::Deliver { release_ns, own, child_waves } = deliver else {
            unreachable!("tree barrier {id}: epoch {epoch} wave did not deliver")
        };
        // The release instant is the deterministic join of arrival
        // stamps; pin the clock there so the root (whose release is
        // computed locally, not received off the wire) leaves the
        // barrier at the same virtual time on every run.
        self.ctx.clock().advance_to(release_ns);
        // Release point: root quiescent work, then answer every parked
        // child with its complement wave.
        let mut extra_bytes = 0;
        if me == id as usize % self.dsm.nodes {
            let moved = self.dsm.apply_migrations();
            extra_bytes = moved * 16;
            sim::trace::instant_corr(release_ns, me, "swdsm", "barrier_release", id as u64, epoch);
        }
        self.dsm.note_release(me, id, epoch);
        let wkey = interconnect::mailbox::tag(kinds::TREE_WAVE, id);
        for (child, wave) in child_waves {
            self.stat("tree_waves", 1);
            self.dsm.count_sync(me, child, wave.records());
            let rep = TreeWave { id, epoch, release_ns, wave };
            let bytes = rep.wire_bytes() + extra_bytes;
            self.ctx.port().complete_deferred(wkey, child, rep, bytes, release_ns);
        }
        Ok(own)
    }

    /// Dissemination barrier: after round r every node knows the
    /// intervals of 2^(r+1) nodes; after ceil(log2(n)) rounds, of all.
    fn barrier_dissemination(
        &self,
        id: u32,
        epoch: u64,
        interval: Interval,
    ) -> Vec<(usize, Interval)> {
        let n = self.dsm.nodes;
        let mut knowledge: Vec<(usize, Interval)> = vec![(self.rank, interval)];
        let mut dist = 1usize;
        let mut round = 0u32;
        while dist < n {
            let kind = kinds::DISS_BASE + round;
            assert!(kind < kinds::DISS_END, "too many dissemination rounds");
            let to = (self.rank + dist) % n;
            let msg =
                DissMsg { id, epoch, round, knowledge: knowledge.clone() };
            let bytes = msg.wire_bytes();
            let records = msg.knowledge.iter().map(|(_, iv)| iv.notices.len() as u64).sum();
            self.dsm.count_sync(self.rank, to, records);
            // Dissemination rounds are not retried (no manager to make
            // them idempotent); the tagged post at least converts a lost
            // round into a structured panic instead of a hang.
            self.ctx.port().post_tagged(to, kind, msg, bytes, interconnect::mailbox::tag(kind, id));
            let got = downcast::<DissMsg>(
                self.ctx.port().wait_mailbox(interconnect::mailbox::tag(kind, id)),
            );
            assert_eq!(got.epoch, epoch, "dissemination barrier {id}: epoch skew");
            for (node, iv) in got.knowledge {
                match knowledge.iter_mut().find(|(k, _)| *k == node) {
                    Some((_, mine)) => mine.merge(&iv),
                    None => knowledge.push((node, iv)),
                }
            }
            dist *= 2;
            round += 1;
        }
        // Local lock managers may drop their notice history now.
        self.dsm.lockmgrs[self.rank].lock().clear_notices();
        knowledge
    }

    /// Orderly exit: one final barrier so all writes are home.
    pub fn exit(&self) {
        self.barrier(ALLOC_BARRIER);
    }
}

