//! The home store: master copies of the pages homed on one node.

use interconnect::Page;
use memwire::{Diff, PageId, PAGE_SIZE};
use std::collections::HashMap;

/// Master copies of all pages homed on one node.
///
/// Pages materialize lazily as zero-filled on first touch (allocation is
/// a distributed agreement on region metadata; homes need no setup
/// traffic). The store is accessed both by the owning node's application
/// thread (local reads/writes) and by its communication daemon (remote
/// fetches and diff application), hence lives behind a mutex in
/// [`crate::SwDsm`].
///
/// Master copies are [`Page`]s — shared, immutable byte blocks.
/// Serving a remote fetch ([`HomeStore::snapshot`]) is a reference-count
/// bump, not a page copy; local mutation copies-on-write only while a
/// snapshot is actually in flight.
/// Each page also carries a *modification counter* ([`HomeStore::version`]),
/// bumped on every mutating operation. Fetch replies cache the counter
/// alongside the copy; the digest-validation round compares cached
/// counters against current ones to distinguish genuinely stale copies
/// from Bloom false positives.
#[derive(Debug, Default)]
pub struct HomeStore {
    pages: HashMap<PageId, Page>,
    versions: HashMap<PageId, u64>,
}

impl HomeStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writable view of the master copy of `page`, created zero-filled
    /// on first touch. Copies on write only if a snapshot of the page is
    /// still outstanding. Bumps the page's modification counter (every
    /// caller mutates).
    pub fn page_mut(&mut self, page: PageId) -> &mut [u8] {
        *self.versions.entry(page).or_insert(0) += 1;
        self.pages.entry(page).or_insert_with(|| Page::zeroed(PAGE_SIZE)).make_mut()
    }

    /// Snapshot of the master page (for remote fetch replies). A shared
    /// handle to the current bytes — zero-copy.
    pub fn snapshot(&mut self, page: PageId) -> Page {
        self.pages.entry(page).or_insert_with(|| Page::zeroed(PAGE_SIZE)).clone()
    }

    /// Apply a diff to the master copy.
    pub fn apply_diff(&mut self, page: PageId, diff: &Diff) {
        diff.apply(self.page_mut(page));
    }

    /// Replace the master copy wholesale (whole-page write-back mode).
    pub fn replace(&mut self, page: PageId, bytes: Page) {
        assert_eq!(bytes.len(), PAGE_SIZE);
        *self.versions.entry(page).or_insert(0) += 1;
        self.pages.insert(page, bytes);
    }

    /// The page's modification counter (0 if never written).
    pub fn version(&self, page: PageId) -> u64 {
        self.versions.get(&page).copied().unwrap_or(0)
    }

    /// Export the master copy together with its modification counter,
    /// for home migration. Unlike [`HomeStore::replace`], exporting does
    /// not bump the counter: the page is moving, not changing.
    pub fn export(&mut self, page: PageId) -> (Page, u64) {
        let bytes = self.snapshot(page);
        (bytes, self.version(page))
    }

    /// Adopt a migrated master copy at its new home. The incoming
    /// modification counter is merged by maximum with any counter the
    /// page already has here (a page can migrate away and back), so
    /// cached copies elsewhere never observe the counter move backwards
    /// across a migration — the invariant the digest validation round
    /// depends on.
    pub fn adopt(&mut self, page: PageId, bytes: Page, version: u64) {
        assert_eq!(bytes.len(), PAGE_SIZE);
        let v = self.versions.entry(page).or_insert(0);
        *v = (*v).max(version);
        self.pages.insert(page, bytes);
    }

    /// Read `out.len()` bytes at `offset` within `page`.
    pub fn read(&mut self, page: PageId, offset: usize, out: &mut [u8]) {
        let p = self.pages.entry(page).or_insert_with(|| Page::zeroed(PAGE_SIZE));
        out.copy_from_slice(&p[offset..offset + out.len()]);
    }

    /// Write `data` at `offset` within `page`.
    pub fn write(&mut self, page: PageId, offset: usize, data: &[u8]) {
        let p = self.page_mut(page);
        p[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Number of materialized pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True before any page is touched.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> PageId {
        PageId { region: 1, index: i }
    }

    #[test]
    fn lazy_zero_fill() {
        let mut h = HomeStore::new();
        assert!(h.is_empty());
        let mut out = [9u8; 4];
        h.read(pid(0), 100, &mut out);
        assert_eq!(out, [0; 4]);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn write_then_read() {
        let mut h = HomeStore::new();
        h.write(pid(2), 8, &[1, 2, 3]);
        let mut out = [0u8; 3];
        h.read(pid(2), 8, &mut out);
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn apply_diff_merges_into_master() {
        let mut h = HomeStore::new();
        h.write(pid(3), 0, &[7; 16]);
        let twin = vec![0u8; PAGE_SIZE];
        let mut cur = twin.clone();
        cur[100..104].fill(5);
        let d = Diff::between(&twin, &cur);
        h.apply_diff(pid(3), &d);
        let mut out = [0u8; 4];
        h.read(pid(3), 100, &mut out);
        assert_eq!(out, [5; 4]);
        // Earlier writes outside the diff survive.
        let mut keep = [0u8; 1];
        h.read(pid(3), 0, &mut keep);
        assert_eq!(keep, [7]);
    }

    #[test]
    fn snapshot_is_independent_copy() {
        let mut h = HomeStore::new();
        h.write(pid(4), 0, &[1]);
        let snap = h.snapshot(pid(4));
        h.write(pid(4), 0, &[2]);
        assert_eq!(snap[0], 1, "copy-on-write must preserve the snapshot");
        let mut now = [0u8; 1];
        h.read(pid(4), 0, &mut now);
        assert_eq!(now, [2]);
    }

    #[test]
    fn versions_bump_on_writes_not_reads() {
        let mut h = HomeStore::new();
        assert_eq!(h.version(pid(6)), 0);
        let mut out = [0u8; 1];
        h.read(pid(6), 0, &mut out);
        let _ = h.snapshot(pid(6));
        assert_eq!(h.version(pid(6)), 0, "reads and snapshots must not bump");
        h.write(pid(6), 0, &[1]);
        assert_eq!(h.version(pid(6)), 1);
        let twin = vec![0u8; PAGE_SIZE];
        let mut cur = twin.clone();
        cur[0] = 2;
        h.apply_diff(pid(6), &Diff::between(&twin, &cur));
        assert_eq!(h.version(pid(6)), 2);
        h.replace(pid(6), Page::zeroed(PAGE_SIZE));
        assert_eq!(h.version(pid(6)), 3);
    }

    #[test]
    fn export_adopt_round_trip_keeps_version_monotonic() {
        let mut old_home = HomeStore::new();
        old_home.write(pid(7), 0, &[9]);
        old_home.write(pid(7), 1, &[8]);
        assert_eq!(old_home.version(pid(7)), 2);
        let (bytes, v) = old_home.export(pid(7));
        assert_eq!(v, 2, "export must not bump the counter");
        // The new home saw an older incarnation of the page (version 5
        // from a previous residence): adopt keeps the larger counter.
        let mut new_home = HomeStore::new();
        new_home.versions.insert(pid(7), 5);
        new_home.adopt(pid(7), bytes, v);
        assert_eq!(new_home.version(pid(7)), 5);
        let mut out = [0u8; 2];
        new_home.read(pid(7), 0, &mut out);
        assert_eq!(out, [9, 8]);
        // A fresh home adopts the incoming counter as-is.
        let (bytes, v) = new_home.export(pid(7));
        let mut fresh = HomeStore::new();
        fresh.adopt(pid(7), bytes, v);
        assert_eq!(fresh.version(pid(7)), 5);
    }

    #[test]
    fn snapshot_without_writes_shares_storage() {
        let mut h = HomeStore::new();
        h.write(pid(5), 0, &[3]);
        let a = h.snapshot(pid(5));
        let b = h.snapshot(pid(5));
        assert_eq!(a, b);
        assert!(
            std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()),
            "snapshots of an unmodified page must share bytes"
        );
    }
}
