//! Message-kind constants of the software-DSM protocol.
//!
//! Kind spaces are statically partitioned across the workspace:
//! `0x1xx` software DSM, `0x2xx` hybrid DSM, `0x3xx` HAMSTER modules,
//! `0x4xx` programming models.

/// Fetch a page from its home (request → page data).
pub const GET_PAGE: u32 = 0x100;
/// Apply a batch of diffs at the home (request → ack).
pub const APPLY_DIFFS: u32 = 0x101;
/// Acquire a lock (request → grant or queued).
pub const LOCK_REQ: u32 = 0x102;
/// Release a lock (one-way to the manager).
pub const LOCK_REL: u32 = 0x103;
/// Lock grant delivered to a queued requester (one-way).
pub const LOCK_GRANT: u32 = 0x104;
/// Barrier arrival (one-way to the manager).
pub const BARRIER_ARRIVE: u32 = 0x105;
/// Barrier release (one-way to every participant).
pub const BARRIER_RELEASE: u32 = 0x106;
/// Whole-page write-back (ablation mode; request → ack).
pub const PUT_PAGE: u32 = 0x107;
/// Dissemination-barrier round `r` messages use kind `DISS_BASE + r`
/// (one-way; rounds are bounded by log2 of the node count).
pub const DISS_BASE: u32 = 0x140;
/// Exclusive upper bound of the dissemination kind range (32 rounds).
pub const DISS_END: u32 = 0x160;
/// Tree barrier: a node's own arrival, sent to its *own* handler so all
/// tree state transitions are handler-serialized (request on resilient
/// fabrics, one-way post otherwise).
pub const TREE_UP: u32 = 0x161;
/// Tree barrier: a child posts its subtree's aggregated intervals to
/// its parent (one-way).
pub const TREE_AGG: u32 = 0x162;
/// Tree barrier: a parent posts the release wave (the complement of the
/// receiving subtree's intervals) down to a child (one-way).
pub const TREE_WAVE: u32 = 0x163;
/// Lock-token queue: the application starts an acquire by messaging its
/// *own* handler (serializes the holder slot against in-flight
/// successor notifications).
pub const TOK_ACQ_LOCAL: u32 = 0x164;
/// Lock-token queue: enqueue at the lock's manager (one-way).
pub const TOK_ACQ: u32 = 0x165;
/// Lock-token queue: the token (with its notices) passes to the next
/// holder — from the previous holder directly, or from the manager.
pub const TOK_PASS: u32 = 0x166;
/// Lock-token queue: the manager names the new queue tail's predecessor
/// its successor (one-way to the predecessor).
pub const TOK_SET_SUCC: u32 = 0x167;
/// Lock-token queue: the application releases by messaging its own
/// handler, which forwards or returns the token.
pub const TOK_REL: u32 = 0x168;
/// Lock-token queue: a holder with no known successor returns the token
/// to the manager (one-way).
pub const TOK_RETURN: u32 = 0x169;
/// Lock-token queue: a node that received a successor notification for
/// a tenure it already ended tells the manager to forward the (parked
/// or in-flight) token to that successor.
pub const TOK_CLAIM: u32 = 0x16A;
/// Digest fallback round: check cached page versions against the home
/// (request → version vector).
pub const VALIDATE: u32 = 0x16B;
/// Resilient lock-token queue: acquire at the lock's manager (request →
/// grant, queued, or tenure replay). Used instead of the `TOK_*`
/// direct-forward machine when the fabric is faulty: every token
/// movement is a retryable request through the manager, and duplicate
/// tenure sequence numbers resolve as replays instead of panics.
pub const RTOK_ACQ: u32 = 0x16C;
/// Resilient lock-token queue: release at the manager (request → ack;
/// idempotent, so a retried release whose first copy was applied is a
/// no-op).
pub const RTOK_REL: u32 = 0x16D;
