//! Message-kind constants of the software-DSM protocol.
//!
//! Kind spaces are statically partitioned across the workspace:
//! `0x1xx` software DSM, `0x2xx` hybrid DSM, `0x3xx` HAMSTER modules,
//! `0x4xx` programming models.

/// Fetch a page from its home (request → page data).
pub const GET_PAGE: u32 = 0x100;
/// Apply a batch of diffs at the home (request → ack).
pub const APPLY_DIFFS: u32 = 0x101;
/// Acquire a lock (request → grant or queued).
pub const LOCK_REQ: u32 = 0x102;
/// Release a lock (one-way to the manager).
pub const LOCK_REL: u32 = 0x103;
/// Lock grant delivered to a queued requester (one-way).
pub const LOCK_GRANT: u32 = 0x104;
/// Barrier arrival (one-way to the manager).
pub const BARRIER_ARRIVE: u32 = 0x105;
/// Barrier release (one-way to every participant).
pub const BARRIER_RELEASE: u32 = 0x106;
/// Whole-page write-back (ablation mode; request → ack).
pub const PUT_PAGE: u32 = 0x107;
/// Dissemination-barrier round `r` messages use kind `DISS_BASE + r`
/// (one-way; rounds are bounded by log2 of the node count).
pub const DISS_BASE: u32 = 0x140;
/// Exclusive upper bound of the dissemination kind range (32 rounds).
pub const DISS_END: u32 = 0x160;
