#![warn(missing_docs)]
//! A home-based, scope-consistent software DSM in the style of JiaJia.
//!
//! The paper integrates JiaJia (Hu, Shi & Tang, HPCN'99) as its
//! software-DSM substrate for Beowulf clusters (§3.2) because it was the
//! only freely available implementation of Scope Consistency. This crate
//! is a from-scratch reimplementation of that protocol family over the
//! simulated fabric:
//!
//! * **Home-based**: every page has a home node holding the master copy;
//!   remote readers fetch whole pages from the home; writers ship
//!   run-length diffs back to the home at release points.
//! * **Multiple-writer**: concurrent writers to one page each diff
//!   against a pristine twin; disjoint diffs merge at the home.
//! * **Scope consistency**: write notices travel along synchronization
//!   edges — a lock grant carries the notices accumulated under that
//!   lock, a barrier broadcasts the union of everyone's interval — and
//!   receivers invalidate the noticed pages.
//!
//! The crate is usable *natively* (apps call [`DsmNode`] directly), which
//! is exactly the "standard distribution of JiaJia without modifications"
//! baseline of the paper's Figure 2. The HAMSTER platform layer wraps the
//! same implementation, adding its service dispatch and the unified
//! messaging layer; the overhead comparison between the two paths is the
//! Figure 2 experiment.
//!
//! Protocol tunables live in [`DsmConfig`]; the defaults match the
//! behaviour described above, and the ablation benches flip
//! [`DsmConfig::whole_page_writeback`] and
//! [`DsmConfig::notices_on_locks`].
//!
//! ```
//! use cluster::{Cluster, FabricConfig, LinkKind};
//! use memwire::Distribution;
//! use swdsm::{DsmConfig, SwDsm};
//!
//! let cluster = Cluster::new(FabricConfig::builder().nodes(2).link(LinkKind::Ethernet).build());
//! let dsm = SwDsm::install(&cluster, DsmConfig::default());
//! let (_, results) = cluster.run(|ctx| {
//!     let node = dsm.node(ctx);
//!     let a = node.alloc(4096, Distribution::Block);
//!     if node.rank() == 0 {
//!         node.write_u64(a, 7);
//!     }
//!     node.barrier(1);
//!     node.read_u64(a)
//! });
//! assert_eq!(results, vec![7, 7]);
//! ```

pub mod barriermgr;
pub mod home;
pub mod kinds;
pub mod lockmgr;
pub mod node;
pub mod proto;

pub use interconnect::Page;
pub use memwire::{RegionDir, RegionMeta};
pub use home::HomeStore;
pub use node::{DsmConfig, DsmError, DsmNode, PlaceError, SwDsm, LOCAL_REGION_BASE};
