//! Centralized barrier management with interval exchange.
//!
//! Each barrier id is managed by one node (`id % nodes`). Arrivals carry
//! the arriving node's interval (its write notices since the last
//! synchronization); the release broadcast carries everyone's intervals,
//! letting each node invalidate exactly the pages *others* wrote.

use memwire::Interval;
use std::collections::HashMap;

/// Pending state of one barrier at its manager.
#[derive(Debug, Default)]
struct BarrierState {
    epoch: u64,
    arrived: Vec<(usize, Interval)>,
    /// Latest virtual arrival time seen this epoch.
    latest_ns: u64,
}

/// All barriers managed by one node.
#[derive(Debug, Default)]
pub struct BarrierMgr {
    barriers: HashMap<u32, BarrierState>,
}

/// What the manager does after an arrival.
#[derive(Debug, PartialEq)]
pub enum BarrierStep {
    /// Still waiting for more arrivals.
    Waiting,
    /// Everyone arrived: release at `release_ns` with these intervals.
    Release {
        /// The epoch being released.
        epoch: u64,
        /// Virtual time of the release (latest arrival).
        release_ns: u64,
        /// Every participant's interval, sorted by rank.
        intervals: Vec<(usize, Interval)>,
    },
}

impl BarrierMgr {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Node `who` arrived at barrier `id` in `epoch` at virtual time
    /// `arrive_ns`, publishing `interval`. `expected` is the number of
    /// participants (the whole cluster).
    pub fn arrive(
        &mut self,
        id: u32,
        epoch: u64,
        who: usize,
        interval: Interval,
        arrive_ns: u64,
        expected: usize,
    ) -> BarrierStep {
        let st = self.barriers.entry(id).or_default();
        if st.arrived.is_empty() {
            st.epoch = epoch;
        }
        assert_eq!(
            st.epoch, epoch,
            "barrier {id}: node {who} arrived for epoch {epoch}, manager in {}",
            st.epoch
        );
        assert!(
            !st.arrived.iter().any(|(n, _)| *n == who),
            "barrier {id}: node {who} arrived twice in epoch {epoch}"
        );
        st.arrived.push((who, interval));
        st.latest_ns = st.latest_ns.max(arrive_ns);
        if st.arrived.len() == expected {
            let mut intervals = std::mem::take(&mut st.arrived);
            intervals.sort_by_key(|(n, _)| *n);
            let release_ns = st.latest_ns;
            st.latest_ns = 0;
            BarrierStep::Release { epoch, release_ns, intervals }
        } else {
            BarrierStep::Waiting
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memwire::PageId;

    fn iv(pages: &[u32]) -> Interval {
        Interval::from_pages(
            &pages.iter().map(|&i| PageId { region: 0, index: i }).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn waits_until_all_arrive() {
        let mut m = BarrierMgr::new();
        assert_eq!(m.arrive(0, 1, 0, iv(&[1]), 100, 3), BarrierStep::Waiting);
        assert_eq!(m.arrive(0, 1, 1, iv(&[]), 300, 3), BarrierStep::Waiting);
        match m.arrive(0, 1, 2, iv(&[2]), 200, 3) {
            BarrierStep::Release { epoch, release_ns, intervals } => {
                assert_eq!(epoch, 1);
                assert_eq!(release_ns, 300); // max of arrivals
                assert_eq!(intervals.len(), 3);
                assert_eq!(intervals[0].0, 0);
                assert_eq!(intervals[0].1, iv(&[1]));
            }
            BarrierStep::Waiting => panic!("should release"),
        }
    }

    #[test]
    fn next_epoch_starts_clean() {
        let mut m = BarrierMgr::new();
        m.arrive(0, 1, 0, iv(&[]), 10, 2);
        m.arrive(0, 1, 1, iv(&[]), 20, 2);
        // Epoch 2 reuses the state slot.
        assert_eq!(m.arrive(0, 2, 1, iv(&[]), 30, 2), BarrierStep::Waiting);
        match m.arrive(0, 2, 0, iv(&[]), 25, 2) {
            BarrierStep::Release { epoch, release_ns, .. } => {
                assert_eq!(epoch, 2);
                assert_eq!(release_ns, 30);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn independent_barrier_ids() {
        let mut m = BarrierMgr::new();
        assert_eq!(m.arrive(1, 1, 0, iv(&[]), 10, 2), BarrierStep::Waiting);
        assert_eq!(m.arrive(2, 1, 0, iv(&[]), 10, 2), BarrierStep::Waiting);
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_panics() {
        let mut m = BarrierMgr::new();
        m.arrive(0, 1, 0, iv(&[]), 10, 3);
        m.arrive(0, 1, 0, iv(&[]), 11, 3);
    }

    #[test]
    #[should_panic(expected = "epoch")]
    fn epoch_mismatch_panics() {
        let mut m = BarrierMgr::new();
        m.arrive(0, 1, 0, iv(&[]), 10, 3);
        m.arrive(0, 2, 1, iv(&[]), 11, 3);
    }
}
