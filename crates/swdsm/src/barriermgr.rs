//! Barrier management with interval exchange: the centralized manager
//! and the scalable tree barrier.
//!
//! [`BarrierMgr`] is the centralized scheme: barrier `id` is managed by
//! node `id % nodes`, every arrival flows to it, and the release
//! broadcast carries everyone's intervals — `O(n)` messages but
//! `O(n²)` notice records per barrier, which is what caps the cluster
//! around 64 nodes.
//!
//! [`TreeBarrier`] is the scalable scheme (`BarrierTopology::Tree`):
//! node `id % nodes` is the *root* of a fanout-`k` tree over all nodes.
//! Arrivals aggregate up the tree (each parent combines its own interval
//! with its children's subtree aggregates); the release flows back down
//! as per-child *waves*, each carrying exactly the complement of the
//! receiving subtree's own aggregate — no notice is ever sent back into
//! the subtree that produced it. `2(n−1)` cross-node messages and
//! `O(n·depth)` notice records per barrier.
//!
//! Both machines are pure state — all messaging is driven by
//! [`crate::node`]'s handlers — so they unit-test without a fabric.

use crate::proto::NoticeSet;
use memwire::Interval;
use std::collections::HashMap;

/// A cached release: `(epoch, release_ns, intervals sorted by rank)`.
type ReleasedEpoch = (u64, u64, Vec<(usize, Interval)>);

/// Pending state of one barrier at its manager.
#[derive(Debug, Default)]
struct BarrierState {
    epoch: u64,
    arrived: Vec<(usize, Interval)>,
    /// Latest virtual arrival time seen this epoch.
    latest_ns: u64,
}

/// All barriers managed by one node.
#[derive(Debug, Default)]
pub struct BarrierMgr {
    barriers: HashMap<u32, BarrierState>,
    /// Last released epoch per barrier, with its release time and
    /// intervals, kept so a retried arrival (the arriver never saw the
    /// release) can be answered with a targeted replay instead of
    /// corrupting the next epoch's state.
    released: HashMap<u32, ReleasedEpoch>,
}

/// What the manager does after an arrival.
#[derive(Debug, PartialEq)]
pub enum BarrierStep {
    /// Still waiting for more arrivals.
    Waiting,
    /// Everyone arrived: release at `release_ns` with these intervals.
    Release {
        /// The epoch being released.
        epoch: u64,
        /// Virtual time of the release (latest arrival).
        release_ns: u64,
        /// Every participant's interval, sorted by rank.
        intervals: Vec<(usize, Interval)>,
    },
    /// The arrival is a retry for an epoch that already released (the
    /// release broadcast to that node was lost): answer the arriver
    /// directly with the cached release.
    Replay {
        /// The already-released epoch.
        epoch: u64,
        /// Virtual time of the original release.
        release_ns: u64,
        /// The released intervals, sorted by rank.
        intervals: Vec<(usize, Interval)>,
    },
}

impl BarrierMgr {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Node `who` arrived at barrier `id` in `epoch` at virtual time
    /// `arrive_ns`, publishing `interval`. `expected` is the number of
    /// participants (the whole cluster).
    pub fn arrive(
        &mut self,
        id: u32,
        epoch: u64,
        who: usize,
        interval: Interval,
        arrive_ns: u64,
        expected: usize,
    ) -> BarrierStep {
        if let Some((rel_epoch, release_ns, intervals)) = self.released.get(&id) {
            if epoch == *rel_epoch {
                // Retried arrival for an epoch this manager already
                // released: the arriver never saw the release.
                return BarrierStep::Replay {
                    epoch,
                    release_ns: *release_ns,
                    intervals: intervals.clone(),
                };
            }
            assert!(
                epoch > *rel_epoch,
                "barrier {id}: node {who} arrived for stale epoch {epoch} (last released {rel_epoch})"
            );
        }
        let st = self.barriers.entry(id).or_default();
        if st.arrived.is_empty() {
            st.epoch = epoch;
        }
        assert_eq!(
            st.epoch, epoch,
            "barrier {id}: node {who} arrived for epoch {epoch}, manager in {}",
            st.epoch
        );
        if st.arrived.iter().any(|(n, _)| *n == who) {
            // Duplicate (retried) arrival within the pending epoch; the
            // interval is identical, so it contributes nothing new.
            return BarrierStep::Waiting;
        }
        st.arrived.push((who, interval));
        st.latest_ns = st.latest_ns.max(arrive_ns);
        if st.arrived.len() == expected {
            let mut intervals = std::mem::take(&mut st.arrived);
            intervals.sort_by_key(|(n, _)| *n);
            let release_ns = st.latest_ns;
            st.latest_ns = 0;
            self.released.insert(id, (epoch, release_ns, intervals.clone()));
            BarrierStep::Release { epoch, release_ns, intervals }
        } else {
            BarrierStep::Waiting
        }
    }
}

/// The fixed shape of one barrier's release tree.
///
/// The root is `id % nodes` (the same node that would manage the
/// barrier centrally); every other node's position is its rank rotated
/// so the root sits at position 0, giving a complete `fanout`-ary tree
/// laid out heap-style over positions `0..nodes`.
#[derive(Debug, Clone, Copy)]
pub struct TreeTopo {
    root: usize,
    nodes: usize,
    fanout: usize,
}

impl TreeTopo {
    /// The tree for barrier `id` over `nodes` nodes with the given
    /// fanout.
    pub fn new(id: u32, nodes: usize, fanout: usize) -> Self {
        assert!(fanout >= 2, "tree fanout must be at least 2");
        Self { root: id as usize % nodes, nodes, fanout }
    }

    fn pos(&self, v: usize) -> usize {
        (v + self.nodes - self.root) % self.nodes
    }

    fn node_at(&self, pos: usize) -> usize {
        (pos + self.root) % self.nodes
    }

    /// The root node of this barrier's tree.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The parent of `v`, or `None` at the root.
    pub fn parent(&self, v: usize) -> Option<usize> {
        let p = self.pos(v);
        if p == 0 {
            None
        } else {
            Some(self.node_at((p - 1) / self.fanout))
        }
    }

    /// The children of `v`, in position order.
    pub fn children(&self, v: usize) -> Vec<usize> {
        let p = self.pos(v);
        (self.fanout * p + 1..=self.fanout * p + self.fanout)
            .take_while(|&c| c < self.nodes)
            .map(|c| self.node_at(c))
            .collect()
    }
}

/// What a tree-barrier transition asks the caller (a protocol handler)
/// to do next.
#[derive(Debug, PartialEq)]
pub enum TreeStep {
    /// Nothing to send yet.
    Waiting,
    /// The local subtree is complete: post its aggregate to `parent`.
    /// Also returned for duplicate (retried) arrivals while the wave is
    /// still outstanding — re-sending the aggregate is how a lost
    /// upward edge heals.
    Up {
        /// The parent to post to.
        parent: usize,
        /// Latest virtual arrival time within the subtree.
        latest_ns: u64,
        /// Every subtree member's interval, sorted by rank.
        agg: Vec<(usize, Interval)>,
    },
    /// The release reached this node (root completion, or a wave from
    /// the parent): apply `own` locally and post each child its wave.
    Deliver {
        /// Virtual release time established at the root.
        release_ns: u64,
        /// The notices this node must apply (everything outside its
        /// own interval).
        own: NoticeSet,
        /// Per-child complement waves, in child order.
        child_waves: Vec<(usize, NoticeSet)>,
    },
    /// A retried self-arrival for an epoch already released here:
    /// re-deliver the local notices (the local wake-up was lost).
    Redeliver {
        /// Virtual release time of the original release.
        release_ns: u64,
        /// The notices for this node, as originally computed.
        own: NoticeSet,
    },
    /// A retried child aggregate for an epoch already released here:
    /// re-post that child's wave (the original wave down was lost).
    ResendWave {
        /// The child to re-post to.
        child: usize,
        /// Virtual release time of the original release.
        release_ns: u64,
        /// The child's wave, as originally computed.
        wave: NoticeSet,
    },
}

/// Everything a node computed when a release reached it, cached for
/// replay until the *next* epoch has also released here.
#[derive(Debug, Clone)]
struct WaveOut {
    release_ns: u64,
    own: NoticeSet,
    child_waves: Vec<(usize, NoticeSet)>,
}

/// One barrier's pending epoch at one tree node.
#[derive(Debug)]
struct TreeSlot {
    epoch: u64,
    own: Option<Interval>,
    latest_ns: u64,
    children: Vec<(usize, Vec<(usize, Interval)>)>,
    up_sent: bool,
    out: Option<WaveOut>,
}

impl TreeSlot {
    fn new(epoch: u64) -> Self {
        Self { epoch, own: None, latest_ns: 0, children: Vec::new(), up_sent: false, out: None }
    }
}

/// Per-node state of every tree barrier this node participates in.
///
/// Handler-driven: [`crate::node`] feeds arrivals and waves in and acts
/// on the returned [`TreeStep`]s. Duplicate inputs (resilient-mode
/// retries, duplicated messages) are answered with targeted re-sends,
/// so a lost edge anywhere heals as retries propagate up to the nearest
/// released ancestor and its waves flow back down the failed path.
#[derive(Debug)]
pub struct TreeBarrier {
    me: usize,
    nodes: usize,
    fanout: usize,
    /// `Some(max_runs)` when waves travel as digests
    /// (`NoticeWire::Digest`); upward aggregates stay explicit either
    /// way (parents need exact complements).
    digest_runs: Option<usize>,
    slots: HashMap<u32, TreeSlot>,
    /// One-epoch-back replay cache per barrier id; anything older than
    /// that re-arriving is a protocol bug.
    prev: HashMap<u32, (u64, WaveOut)>,
}

/// Where an input for `(id, epoch)` lands.
enum Loc {
    /// The pending epoch (possibly just created or advanced to).
    Cur,
    /// The immediately preceding, already-released epoch.
    Replay,
}

impl TreeBarrier {
    /// State for node `me` of a `nodes`-node cluster with the given
    /// tree fanout; `digest_runs` enables digest waves.
    pub fn new(me: usize, nodes: usize, fanout: usize, digest_runs: Option<usize>) -> Self {
        assert!(fanout >= 2, "tree fanout must be at least 2");
        Self { me, nodes, fanout, digest_runs, slots: HashMap::new(), prev: HashMap::new() }
    }

    /// The tree shape for barrier `id`.
    pub fn topo(&self, id: u32) -> TreeTopo {
        TreeTopo::new(id, self.nodes, self.fanout)
    }

    /// Resolve `(id, epoch)` to the pending slot (creating or advancing
    /// it) or the replay cache.
    fn locate(&mut self, id: u32, epoch: u64, who: &str) -> Loc {
        if let Some((prev_epoch, _)) = self.prev.get(&id) {
            if epoch == *prev_epoch {
                return Loc::Replay;
            }
            assert!(
                epoch > *prev_epoch,
                "tree barrier {id} at node {}: {who} for stale epoch {epoch} (released {prev_epoch})",
                self.me
            );
        }
        if self.slots.get(&id).is_some_and(|s| s.epoch + 1 == epoch) {
            let s = self.slots.remove(&id).unwrap();
            let out = s
                .out
                .unwrap_or_else(|| panic!("tree barrier {id}: epoch {} advanced before release", s.epoch));
            self.prev.insert(id, (s.epoch, out));
        }
        let me = self.me;
        let slot = self.slots.entry(id).or_insert_with(|| TreeSlot::new(epoch));
        assert_eq!(
            slot.epoch, epoch,
            "tree barrier {id} at node {me}: {who} for epoch {epoch}, node in {}",
            slot.epoch
        );
        Loc::Cur
    }

    /// This node's own application arrived at barrier `id`.
    pub fn self_arrive(&mut self, id: u32, epoch: u64, interval: Interval, arrive_ns: u64) -> TreeStep {
        if let Loc::Replay = self.locate(id, epoch, "self-arrival") {
            let (_, out) = &self.prev[&id];
            return TreeStep::Redeliver { release_ns: out.release_ns, own: out.own.clone() };
        }
        let slot = self.slots.get_mut(&id).unwrap();
        if slot.own.is_some() {
            // Retried arrival: the interval is identical; answer with
            // whatever re-send heals the stalled edge.
            if let Some(out) = &slot.out {
                return TreeStep::Redeliver { release_ns: out.release_ns, own: out.own.clone() };
            }
            if slot.up_sent {
                return self.make_up(id);
            }
            return TreeStep::Waiting;
        }
        slot.own = Some(interval);
        slot.latest_ns = slot.latest_ns.max(arrive_ns);
        self.try_complete(id)
    }

    /// A child posted its subtree aggregate for barrier `id`.
    pub fn child_arrive(
        &mut self,
        id: u32,
        epoch: u64,
        child: usize,
        latest_ns: u64,
        agg: Vec<(usize, Interval)>,
    ) -> TreeStep {
        if let Loc::Replay = self.locate(id, epoch, "child aggregate") {
            let (_, out) = &self.prev[&id];
            return Self::resend_wave(out, child);
        }
        let slot = self.slots.get_mut(&id).unwrap();
        if slot.children.iter().any(|(c, _)| *c == child) {
            // Retried aggregate. If the wave already came through,
            // replay the child's share; otherwise there is nothing to
            // resend — the upward edge is client-retried by this
            // node's own application thread, and the retry's reply
            // obligation simply replaces the child's stale park.
            if let Some(out) = &slot.out {
                return Self::resend_wave(out, child);
            }
            return TreeStep::Waiting;
        }
        slot.children.push((child, agg));
        slot.latest_ns = slot.latest_ns.max(latest_ns);
        self.try_complete(id)
    }

    /// The parent's release wave for barrier `id` arrived.
    pub fn wave(&mut self, id: u32, epoch: u64, release_ns: u64, wave: NoticeSet) -> TreeStep {
        if let Loc::Replay = self.locate(id, epoch, "wave") {
            // A duplicated wave for an epoch that fully released here.
            return TreeStep::Waiting;
        }
        let slot = self.slots.get(&id).unwrap();
        if slot.out.is_some() {
            return TreeStep::Waiting;
        }
        assert!(
            slot.own.is_some() && slot.up_sent,
            "tree barrier {id} at node {}: wave before subtree completion",
            self.me
        );
        let out = self.build_out(id, release_ns, wave);
        self.slots.get_mut(&id).unwrap().out = Some(out.clone());
        TreeStep::Deliver { release_ns: out.release_ns, own: out.own, child_waves: out.child_waves }
    }

    /// Completion check: once the own arrival and every child aggregate
    /// are in, send up (non-root) or release (root).
    fn try_complete(&mut self, id: u32) -> TreeStep {
        let topo = self.topo(id);
        let expected = topo.children(self.me).len();
        let slot = self.slots.get_mut(&id).unwrap();
        if slot.own.is_none() || slot.children.len() < expected {
            return TreeStep::Waiting;
        }
        slot.children.sort_by_key(|(c, _)| *c);
        if self.me != topo.root() {
            self.slots.get_mut(&id).unwrap().up_sent = true;
            return self.make_up(id);
        }
        // Root completion: release at the latest arrival, processing an
        // empty incoming wave.
        let release_ns = slot.latest_ns;
        let empty = NoticeSet::encode(Vec::new(), self.digest_runs);
        let out = self.build_out(id, release_ns, empty);
        self.slots.get_mut(&id).unwrap().out = Some(out.clone());
        TreeStep::Deliver { release_ns: out.release_ns, own: out.own, child_waves: out.child_waves }
    }

    /// The upward aggregate for the completed local subtree.
    fn make_up(&self, id: u32) -> TreeStep {
        let topo = self.topo(id);
        let slot = &self.slots[&id];
        let mut agg: Vec<(usize, Interval)> = vec![(self.me, slot.own.clone().unwrap())];
        for (_, ca) in &slot.children {
            agg.extend(ca.iter().cloned());
        }
        agg.sort_by_key(|(n, _)| *n);
        TreeStep::Up { parent: topo.parent(self.me).unwrap(), latest_ns: slot.latest_ns, agg }
    }

    /// Combine the incoming wave with local knowledge: the local
    /// notices are the wave plus every child aggregate; each child's
    /// wave is the incoming wave plus the own interval plus every
    /// *other* child's aggregate (exactly the complement of that
    /// child's subtree).
    fn build_out(&self, id: u32, release_ns: u64, incoming: NoticeSet) -> WaveOut {
        let slot = &self.slots[&id];
        let own_iv = slot.own.clone().unwrap();
        let mut own = incoming.clone();
        let mut from_children: Vec<(usize, Interval)> =
            slot.children.iter().flat_map(|(_, a)| a.iter().cloned()).collect();
        from_children.sort_by_key(|(n, _)| *n);
        from_children.retain(|(_, iv)| !iv.is_empty());
        own.extend(NoticeSet::encode(from_children, self.digest_runs));
        let mut child_waves = Vec::new();
        for (c, _) in &slot.children {
            let mut wave = incoming.clone();
            let mut extra: Vec<(usize, Interval)> = vec![(self.me, own_iv.clone())];
            for (oc, oa) in &slot.children {
                if oc != c {
                    extra.extend(oa.iter().cloned());
                }
            }
            extra.sort_by_key(|(n, _)| *n);
            extra.retain(|(_, iv)| !iv.is_empty());
            wave.extend(NoticeSet::encode(extra, self.digest_runs));
            child_waves.push((*c, wave));
        }
        WaveOut { release_ns, own, child_waves }
    }

    /// Re-send a released child wave (from the slot or replay cache).
    fn resend_wave(out: &WaveOut, child: usize) -> TreeStep {
        let wave = out
            .child_waves
            .iter()
            .find(|(c, _)| *c == child)
            .unwrap_or_else(|| panic!("node {child} is not a child in this tree"))
            .1
            .clone();
        TreeStep::ResendWave { child, release_ns: out.release_ns, wave }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memwire::PageId;

    fn iv(pages: &[u32]) -> Interval {
        Interval::from_pages(
            &pages.iter().map(|&i| PageId { region: 0, index: i }).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn waits_until_all_arrive() {
        let mut m = BarrierMgr::new();
        assert_eq!(m.arrive(0, 1, 0, iv(&[1]), 100, 3), BarrierStep::Waiting);
        assert_eq!(m.arrive(0, 1, 1, iv(&[]), 300, 3), BarrierStep::Waiting);
        match m.arrive(0, 1, 2, iv(&[2]), 200, 3) {
            BarrierStep::Release { epoch, release_ns, intervals } => {
                assert_eq!(epoch, 1);
                assert_eq!(release_ns, 300); // max of arrivals
                assert_eq!(intervals.len(), 3);
                assert_eq!(intervals[0].0, 0);
                assert_eq!(intervals[0].1, iv(&[1]));
            }
            other => panic!("should release, got {other:?}"),
        }
    }

    #[test]
    fn next_epoch_starts_clean() {
        let mut m = BarrierMgr::new();
        m.arrive(0, 1, 0, iv(&[]), 10, 2);
        m.arrive(0, 1, 1, iv(&[]), 20, 2);
        // Epoch 2 reuses the state slot.
        assert_eq!(m.arrive(0, 2, 1, iv(&[]), 30, 2), BarrierStep::Waiting);
        match m.arrive(0, 2, 0, iv(&[]), 25, 2) {
            BarrierStep::Release { epoch, release_ns, .. } => {
                assert_eq!(epoch, 2);
                assert_eq!(release_ns, 30);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn independent_barrier_ids() {
        let mut m = BarrierMgr::new();
        assert_eq!(m.arrive(1, 1, 0, iv(&[]), 10, 2), BarrierStep::Waiting);
        assert_eq!(m.arrive(2, 1, 0, iv(&[]), 10, 2), BarrierStep::Waiting);
    }

    #[test]
    fn duplicate_arrival_is_idempotent() {
        let mut m = BarrierMgr::new();
        assert_eq!(m.arrive(0, 1, 0, iv(&[]), 10, 2), BarrierStep::Waiting);
        // A retried arrival (its ack was lost) must not count twice.
        assert_eq!(m.arrive(0, 1, 0, iv(&[]), 11, 2), BarrierStep::Waiting);
        match m.arrive(0, 1, 1, iv(&[]), 12, 2) {
            BarrierStep::Release { epoch, intervals, .. } => {
                assert_eq!(epoch, 1);
                assert_eq!(intervals.len(), 2);
            }
            other => panic!("expected release, got {other:?}"),
        }
    }

    #[test]
    fn rearrival_after_release_replays() {
        let mut m = BarrierMgr::new();
        m.arrive(0, 1, 0, iv(&[7]), 10, 2);
        m.arrive(0, 1, 1, iv(&[]), 30, 2);
        // Node 1's release broadcast was lost; it re-arrives for the
        // same epoch and must get the original release replayed.
        match m.arrive(0, 1, 1, iv(&[]), 500, 2) {
            BarrierStep::Replay { epoch, release_ns, intervals } => {
                assert_eq!(epoch, 1);
                assert_eq!(release_ns, 30);
                assert_eq!(intervals[0], (0, iv(&[7])));
            }
            other => panic!("expected replay, got {other:?}"),
        }
        // The next epoch starts clean despite the replay.
        assert_eq!(m.arrive(0, 2, 0, iv(&[]), 600, 2), BarrierStep::Waiting);
    }

    #[test]
    #[should_panic(expected = "epoch")]
    fn epoch_mismatch_panics() {
        let mut m = BarrierMgr::new();
        m.arrive(0, 1, 0, iv(&[]), 10, 3);
        m.arrive(0, 2, 1, iv(&[]), 11, 3);
    }

    fn ex(entries: &[(usize, &[u32])]) -> NoticeSet {
        NoticeSet::Explicit(entries.iter().map(|(n, ps)| (*n, iv(ps))).collect())
    }

    #[test]
    fn tree_topo_shape() {
        let t = TreeTopo::new(0, 7, 2);
        assert_eq!(t.root(), 0);
        assert_eq!(t.children(0), vec![1, 2]);
        assert_eq!(t.children(1), vec![3, 4]);
        assert_eq!(t.children(2), vec![5, 6]);
        assert_eq!(t.children(3), Vec::<usize>::new());
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(4), Some(1));
        assert_eq!(t.parent(6), Some(2));
        // Rotated root: barrier 3 on 4 nodes roots at node 3.
        let t = TreeTopo::new(3, 4, 2);
        assert_eq!(t.root(), 3);
        assert_eq!(t.children(3), vec![0, 1]);
        assert_eq!(t.children(0), vec![2]);
        assert_eq!(t.parent(2), Some(0));
        assert_eq!(t.parent(1), Some(3));
    }

    #[test]
    fn tree_leaf_sends_up() {
        let mut b = TreeBarrier::new(3, 7, 2, None);
        match b.self_arrive(0, 1, iv(&[3]), 50) {
            TreeStep::Up { parent, latest_ns, agg } => {
                assert_eq!(parent, 1);
                assert_eq!(latest_ns, 50);
                assert_eq!(agg, vec![(3, iv(&[3]))]);
            }
            other => panic!("expected up, got {other:?}"),
        }
    }

    #[test]
    fn tree_internal_aggregates_and_splits_waves() {
        let mut b = TreeBarrier::new(1, 7, 2, None);
        assert_eq!(b.self_arrive(0, 1, iv(&[1]), 10), TreeStep::Waiting);
        assert_eq!(b.child_arrive(0, 1, 4, 40, vec![(4, iv(&[4]))]), TreeStep::Waiting);
        match b.child_arrive(0, 1, 3, 30, vec![(3, iv(&[3]))]) {
            TreeStep::Up { parent, latest_ns, agg } => {
                assert_eq!(parent, 0);
                assert_eq!(latest_ns, 40);
                assert_eq!(agg, vec![(1, iv(&[1])), (3, iv(&[3])), (4, iv(&[4]))]);
            }
            other => panic!("expected up, got {other:?}"),
        }
        // The wave from the root is the complement of this subtree; the
        // local notices add the children, each child wave adds what that
        // child's subtree is missing — never its own writes.
        match b.wave(0, 1, 100, ex(&[(0, &[0]), (2, &[2])])) {
            TreeStep::Deliver { release_ns, own, child_waves } => {
                assert_eq!(release_ns, 100);
                assert_eq!(own, ex(&[(0, &[0]), (2, &[2]), (3, &[3]), (4, &[4])]));
                assert_eq!(
                    child_waves,
                    vec![
                        (3, ex(&[(0, &[0]), (2, &[2]), (1, &[1]), (4, &[4])])),
                        (4, ex(&[(0, &[0]), (2, &[2]), (1, &[1]), (3, &[3])])),
                    ]
                );
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn tree_root_releases_with_complements() {
        let mut b = TreeBarrier::new(0, 3, 2, None);
        assert_eq!(b.self_arrive(0, 1, iv(&[0]), 5), TreeStep::Waiting);
        assert_eq!(b.child_arrive(0, 1, 2, 20, vec![(2, iv(&[2]))]), TreeStep::Waiting);
        match b.child_arrive(0, 1, 1, 10, vec![(1, iv(&[1]))]) {
            TreeStep::Deliver { release_ns, own, child_waves } => {
                assert_eq!(release_ns, 20);
                assert_eq!(own, ex(&[(1, &[1]), (2, &[2])]));
                assert_eq!(
                    child_waves,
                    vec![(1, ex(&[(0, &[0]), (2, &[2])])), (2, ex(&[(0, &[0]), (1, &[1])]))]
                );
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn tree_retries_heal_lost_edges() {
        // 2-node tree: node 0 is the root, node 1 the only leaf.
        let mut root = TreeBarrier::new(0, 2, 2, None);
        let mut leaf = TreeBarrier::new(1, 2, 2, None);
        assert!(matches!(leaf.self_arrive(0, 1, iv(&[1]), 10), TreeStep::Up { .. }));
        // Duplicate self-arrival while the wave is outstanding re-sends
        // the aggregate (heals a lost upward edge).
        assert!(matches!(leaf.self_arrive(0, 1, iv(&[1]), 11), TreeStep::Up { parent: 0, .. }));
        assert_eq!(root.self_arrive(0, 1, iv(&[0]), 5), TreeStep::Waiting);
        assert!(matches!(
            root.child_arrive(0, 1, 1, 10, vec![(1, iv(&[1]))]),
            TreeStep::Deliver { .. }
        ));
        // The wave to the leaf was lost: a retried aggregate replays it.
        match root.child_arrive(0, 1, 1, 10, vec![(1, iv(&[1]))]) {
            TreeStep::ResendWave { child: 1, release_ns: 10, wave } => {
                assert_eq!(wave, ex(&[(0, &[0])]));
            }
            other => panic!("expected wave replay, got {other:?}"),
        }
        // The leaf releases; a retried self-arrival re-delivers locally.
        assert!(matches!(leaf.wave(0, 1, 10, ex(&[(0, &[0])])), TreeStep::Deliver { .. }));
        match leaf.self_arrive(0, 1, iv(&[1]), 12) {
            TreeStep::Redeliver { release_ns: 10, own } => assert_eq!(own, ex(&[(0, &[0])])),
            other => panic!("expected redelivery, got {other:?}"),
        }
        // The root advances to epoch 2; a straggling epoch-1 aggregate
        // replays from the one-epoch-back cache.
        assert_eq!(root.self_arrive(0, 2, iv(&[]), 30), TreeStep::Waiting);
        assert!(matches!(
            root.child_arrive(0, 1, 1, 10, vec![(1, iv(&[1]))]),
            TreeStep::ResendWave { child: 1, .. }
        ));
    }

    #[test]
    fn tree_digest_waves() {
        let mut b = TreeBarrier::new(0, 2, 2, Some(64));
        assert_eq!(b.self_arrive(0, 1, iv(&[0, 1, 2]), 5), TreeStep::Waiting);
        match b.child_arrive(0, 1, 1, 9, vec![(1, iv(&[7]))]) {
            TreeStep::Deliver { own, child_waves, .. } => {
                match own {
                    NoticeSet::Digest(d) => {
                        assert_eq!(d.len(), 1, "one merged union digest");
                        assert_eq!(
                            d[0].pages().unwrap(),
                            iv(&[7]).pages().collect::<Vec<_>>()
                        );
                    }
                    other => panic!("expected digest notices, got {other:?}"),
                }
                match &child_waves[0].1 {
                    NoticeSet::Digest(d) => {
                        assert_eq!(d.len(), 1, "one merged union digest");
                        assert_eq!(d[0].records(), 1, "one run of three pages");
                        assert_eq!(
                            d[0].pages().unwrap(),
                            iv(&[0, 1, 2]).pages().collect::<Vec<_>>()
                        );
                    }
                    other => panic!("expected digest wave, got {other:?}"),
                }
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "stale epoch")]
    fn tree_stale_epoch_panics() {
        let mut b = TreeBarrier::new(0, 2, 2, None);
        b.self_arrive(0, 1, iv(&[]), 1);
        b.child_arrive(0, 1, 1, 2, vec![(1, iv(&[]))]);
        b.self_arrive(0, 2, iv(&[]), 3);
        b.child_arrive(0, 2, 1, 4, vec![(1, iv(&[]))]);
        b.self_arrive(0, 3, iv(&[]), 5);
        // Epoch 1 is now two releases back: beyond the replay cache.
        b.child_arrive(0, 1, 1, 6, vec![(1, iv(&[]))]);
    }
}
