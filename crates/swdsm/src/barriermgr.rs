//! Centralized barrier management with interval exchange.
//!
//! Each barrier id is managed by one node (`id % nodes`). Arrivals carry
//! the arriving node's interval (its write notices since the last
//! synchronization); the release broadcast carries everyone's intervals,
//! letting each node invalidate exactly the pages *others* wrote.

use memwire::Interval;
use std::collections::HashMap;

/// A cached release: `(epoch, release_ns, intervals sorted by rank)`.
type ReleasedEpoch = (u64, u64, Vec<(usize, Interval)>);

/// Pending state of one barrier at its manager.
#[derive(Debug, Default)]
struct BarrierState {
    epoch: u64,
    arrived: Vec<(usize, Interval)>,
    /// Latest virtual arrival time seen this epoch.
    latest_ns: u64,
}

/// All barriers managed by one node.
#[derive(Debug, Default)]
pub struct BarrierMgr {
    barriers: HashMap<u32, BarrierState>,
    /// Last released epoch per barrier, with its release time and
    /// intervals, kept so a retried arrival (the arriver never saw the
    /// release) can be answered with a targeted replay instead of
    /// corrupting the next epoch's state.
    released: HashMap<u32, ReleasedEpoch>,
}

/// What the manager does after an arrival.
#[derive(Debug, PartialEq)]
pub enum BarrierStep {
    /// Still waiting for more arrivals.
    Waiting,
    /// Everyone arrived: release at `release_ns` with these intervals.
    Release {
        /// The epoch being released.
        epoch: u64,
        /// Virtual time of the release (latest arrival).
        release_ns: u64,
        /// Every participant's interval, sorted by rank.
        intervals: Vec<(usize, Interval)>,
    },
    /// The arrival is a retry for an epoch that already released (the
    /// release broadcast to that node was lost): answer the arriver
    /// directly with the cached release.
    Replay {
        /// The already-released epoch.
        epoch: u64,
        /// Virtual time of the original release.
        release_ns: u64,
        /// The released intervals, sorted by rank.
        intervals: Vec<(usize, Interval)>,
    },
}

impl BarrierMgr {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Node `who` arrived at barrier `id` in `epoch` at virtual time
    /// `arrive_ns`, publishing `interval`. `expected` is the number of
    /// participants (the whole cluster).
    pub fn arrive(
        &mut self,
        id: u32,
        epoch: u64,
        who: usize,
        interval: Interval,
        arrive_ns: u64,
        expected: usize,
    ) -> BarrierStep {
        if let Some((rel_epoch, release_ns, intervals)) = self.released.get(&id) {
            if epoch == *rel_epoch {
                // Retried arrival for an epoch this manager already
                // released: the arriver never saw the release.
                return BarrierStep::Replay {
                    epoch,
                    release_ns: *release_ns,
                    intervals: intervals.clone(),
                };
            }
            assert!(
                epoch > *rel_epoch,
                "barrier {id}: node {who} arrived for stale epoch {epoch} (last released {rel_epoch})"
            );
        }
        let st = self.barriers.entry(id).or_default();
        if st.arrived.is_empty() {
            st.epoch = epoch;
        }
        assert_eq!(
            st.epoch, epoch,
            "barrier {id}: node {who} arrived for epoch {epoch}, manager in {}",
            st.epoch
        );
        if st.arrived.iter().any(|(n, _)| *n == who) {
            // Duplicate (retried) arrival within the pending epoch; the
            // interval is identical, so it contributes nothing new.
            return BarrierStep::Waiting;
        }
        st.arrived.push((who, interval));
        st.latest_ns = st.latest_ns.max(arrive_ns);
        if st.arrived.len() == expected {
            let mut intervals = std::mem::take(&mut st.arrived);
            intervals.sort_by_key(|(n, _)| *n);
            let release_ns = st.latest_ns;
            st.latest_ns = 0;
            self.released.insert(id, (epoch, release_ns, intervals.clone()));
            BarrierStep::Release { epoch, release_ns, intervals }
        } else {
            BarrierStep::Waiting
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memwire::PageId;

    fn iv(pages: &[u32]) -> Interval {
        Interval::from_pages(
            &pages.iter().map(|&i| PageId { region: 0, index: i }).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn waits_until_all_arrive() {
        let mut m = BarrierMgr::new();
        assert_eq!(m.arrive(0, 1, 0, iv(&[1]), 100, 3), BarrierStep::Waiting);
        assert_eq!(m.arrive(0, 1, 1, iv(&[]), 300, 3), BarrierStep::Waiting);
        match m.arrive(0, 1, 2, iv(&[2]), 200, 3) {
            BarrierStep::Release { epoch, release_ns, intervals } => {
                assert_eq!(epoch, 1);
                assert_eq!(release_ns, 300); // max of arrivals
                assert_eq!(intervals.len(), 3);
                assert_eq!(intervals[0].0, 0);
                assert_eq!(intervals[0].1, iv(&[1]));
            }
            other => panic!("should release, got {other:?}"),
        }
    }

    #[test]
    fn next_epoch_starts_clean() {
        let mut m = BarrierMgr::new();
        m.arrive(0, 1, 0, iv(&[]), 10, 2);
        m.arrive(0, 1, 1, iv(&[]), 20, 2);
        // Epoch 2 reuses the state slot.
        assert_eq!(m.arrive(0, 2, 1, iv(&[]), 30, 2), BarrierStep::Waiting);
        match m.arrive(0, 2, 0, iv(&[]), 25, 2) {
            BarrierStep::Release { epoch, release_ns, .. } => {
                assert_eq!(epoch, 2);
                assert_eq!(release_ns, 30);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn independent_barrier_ids() {
        let mut m = BarrierMgr::new();
        assert_eq!(m.arrive(1, 1, 0, iv(&[]), 10, 2), BarrierStep::Waiting);
        assert_eq!(m.arrive(2, 1, 0, iv(&[]), 10, 2), BarrierStep::Waiting);
    }

    #[test]
    fn duplicate_arrival_is_idempotent() {
        let mut m = BarrierMgr::new();
        assert_eq!(m.arrive(0, 1, 0, iv(&[]), 10, 2), BarrierStep::Waiting);
        // A retried arrival (its ack was lost) must not count twice.
        assert_eq!(m.arrive(0, 1, 0, iv(&[]), 11, 2), BarrierStep::Waiting);
        match m.arrive(0, 1, 1, iv(&[]), 12, 2) {
            BarrierStep::Release { epoch, intervals, .. } => {
                assert_eq!(epoch, 1);
                assert_eq!(intervals.len(), 2);
            }
            other => panic!("expected release, got {other:?}"),
        }
    }

    #[test]
    fn rearrival_after_release_replays() {
        let mut m = BarrierMgr::new();
        m.arrive(0, 1, 0, iv(&[7]), 10, 2);
        m.arrive(0, 1, 1, iv(&[]), 30, 2);
        // Node 1's release broadcast was lost; it re-arrives for the
        // same epoch and must get the original release replayed.
        match m.arrive(0, 1, 1, iv(&[]), 500, 2) {
            BarrierStep::Replay { epoch, release_ns, intervals } => {
                assert_eq!(epoch, 1);
                assert_eq!(release_ns, 30);
                assert_eq!(intervals[0], (0, iv(&[7])));
            }
            other => panic!("expected replay, got {other:?}"),
        }
        // The next epoch starts clean despite the replay.
        assert_eq!(m.arrive(0, 2, 0, iv(&[]), 600, 2), BarrierStep::Waiting);
    }

    #[test]
    #[should_panic(expected = "epoch")]
    fn epoch_mismatch_panics() {
        let mut m = BarrierMgr::new();
        m.arrive(0, 1, 0, iv(&[]), 10, 3);
        m.arrive(0, 2, 1, iv(&[]), 11, 3);
    }
}
