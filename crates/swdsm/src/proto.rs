//! Wire messages of the software-DSM protocol.

use interconnect::Page;
use memwire::{Diff, Interval, PageId};

/// Request a copy of `page` from its home.
#[derive(Debug, Clone, Copy)]
pub struct GetPage {
    /// The page to fetch (must be homed at the destination).
    pub page: PageId,
}

/// Reply to [`GetPage`]: the page contents.
///
/// Carries a [`Page`] — a shared handle to the home's master bytes, so
/// building (and fault-injected resending) of the reply never copies
/// the page body.
pub struct PageData {
    /// A snapshot of the master copy.
    pub bytes: Page,
    /// The home's modification counter for the page at snapshot time.
    /// Cached alongside the copy; the digest fallback round compares it
    /// against the home's current counter to tell a genuinely stale
    /// copy from a Bloom false positive.
    pub version: u64,
}

/// Reply to [`GetPage`]: the page, or a redirect to its current home.
///
/// Under home migration a fetch can race a re-homing round: the request
/// was addressed per the requester's (stale) directory, and by arrival
/// the master copy lives elsewhere. The old home answers with the new
/// address instead of asserting, and the requester re-issues the fetch
/// there.
pub enum PageReply {
    /// The destination is the page's home: here are the bytes.
    Data(PageData),
    /// The page migrated away; retry at `to`.
    Moved {
        /// The page's current home (per the replier's directory).
        to: usize,
        /// The replier's migration epoch — diagnostic, lets traces
        /// correlate a redirect with the re-homing round that caused it.
        epoch: u64,
    },
}

/// Ship diffs (all homed at the destination) for application.
#[derive(Clone)]
pub struct ApplyDiffs {
    /// The diffs, all homed at the destination.
    pub diffs: Vec<(PageId, Diff)>,
}

impl ApplyDiffs {
    /// Wire size of the batch.
    pub fn wire_bytes(&self) -> u64 {
        self.diffs.iter().map(|(_, d)| 8 + d.wire_bytes()).sum::<u64>() + 8
    }
}

/// Whole pages shipped home (ablation mode). Cloning the message for a
/// resilient retry bumps reference counts instead of copying page
/// bodies.
#[derive(Clone)]
pub struct PutPages {
    /// Full replacement contents, all homed at the destination.
    pub pages: Vec<(PageId, Page)>,
}

impl PutPages {
    /// Wire size of the batch.
    pub fn wire_bytes(&self) -> u64 {
        self.pages.iter().map(|(_, p)| 8 + p.len() as u64).sum::<u64>() + 8
    }
}

/// Acquire `lock`.
#[derive(Debug, Clone, Copy)]
pub struct LockReq {
    /// The lock to acquire.
    pub lock: u32,
    /// Shared (reader) or exclusive acquisition.
    pub mode: crate::lockmgr::Mode,
}

/// Reply to [`LockReq`].
pub enum LockReply {
    /// The lock was free; notices accumulated under it ride along.
    Granted(Vec<(usize, Interval)>),
    /// The lock is held; a [`LockGrant`] will be posted later.
    Queued,
}

/// Deferred grant posted to a queued requester.
pub struct LockGrant {
    /// The granted lock.
    pub lock: u32,
    /// Write notices accumulated under the lock, per writer.
    pub notices: Vec<(usize, Interval)>,
}

/// Release `lock`, publishing the releasing interval's notices.
#[derive(Clone)]
pub struct LockRel {
    /// The lock being released.
    pub lock: u32,
    /// The releasing node.
    pub releaser: usize,
    /// The releaser's interval (its writes in the critical section).
    pub interval: Interval,
}

/// Node `who` reached barrier `id` with its interval.
#[derive(Clone)]
pub struct BarrierArrive {
    /// Barrier identifier.
    pub id: u32,
    /// The arriving node's epoch for this barrier.
    pub epoch: u64,
    /// The arriving node.
    pub who: usize,
    /// Its write notices since the last synchronization.
    pub interval: Interval,
}

/// Barrier `id` released, with the write notices the receiver must
/// apply (explicit intervals, or compact digests under
/// `NoticeWire::Digest`).
#[derive(Clone)]
pub struct BarrierRelease {
    /// Barrier identifier.
    pub id: u32,
    /// The released epoch.
    pub epoch: u64,
    /// The write notices for the receiver.
    pub notices: NoticeSet,
}

impl BarrierRelease {
    /// Wire size of the release message.
    pub fn wire_bytes(&self) -> u64 {
        self.notices.wire_bytes() + 16
    }
}

/// Write notices on the wire: the full per-writer page lists, or
/// compact writer-less digests (see `NoticeWire`).
///
/// Digest sets deliberately drop writer identity: each `encode` call
/// merges every interval it is given into one union and digests that,
/// so an entry means "someone wrote these pages", nothing more. That is
/// sound wherever digests are used, because self-exclusion is
/// structural there — the central manager digests each receiver's
/// complement separately, and a tree release wave never carries the
/// receiving subtree's own notices. Dropping the writer is what keeps a
/// tree wave's entry count proportional to its depth (one merged entry
/// per concatenation level) instead of to the number of writers above
/// it.
#[derive(Clone, Debug, PartialEq)]
pub enum NoticeSet {
    /// Full per-writer page lists.
    Explicit(Vec<(usize, Interval)>),
    /// Union digests, writer identity dropped; Bloom entries need the
    /// fallback validation round before invalidating.
    Digest(Vec<NoticeDigest>),
}

impl NoticeSet {
    /// Encode explicit per-writer intervals for the wire: pass-through,
    /// or a single union digest with the given run cutoff (empty
    /// intervals produce an empty digest set).
    pub fn encode(intervals: Vec<(usize, Interval)>, digest_runs: Option<usize>) -> Self {
        match digest_runs {
            None => NoticeSet::Explicit(intervals),
            Some(max_runs) => {
                let mut union = Interval::default();
                for (_, iv) in &intervals {
                    union.merge(iv);
                }
                NoticeSet::Digest(if union.is_empty() {
                    Vec::new()
                } else {
                    vec![NoticeDigest::from_interval(&union, max_runs)]
                })
            }
        }
    }

    /// Wire size of the notice set.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            NoticeSet::Explicit(v) => notices_wire_bytes(v),
            NoticeSet::Digest(v) => v.iter().map(|d| d.wire_bytes()).sum::<u64>() + 8,
        }
    }

    /// Number of notice records carried (interval entries, digest runs,
    /// or whole Bloom filters) — the volume metric the scale bench
    /// sums per protocol.
    pub fn records(&self) -> u64 {
        match self {
            NoticeSet::Explicit(v) => v.iter().map(|(_, iv)| iv.notices.len() as u64).sum(),
            NoticeSet::Digest(v) => v.iter().map(|d| d.records()).sum(),
        }
    }

    /// Append `other`'s entries (same variant; mixing is a protocol bug).
    pub fn extend(&mut self, other: NoticeSet) {
        match (self, other) {
            (NoticeSet::Explicit(a), NoticeSet::Explicit(b)) => a.extend(b),
            (NoticeSet::Digest(a), NoticeSet::Digest(b)) => a.extend(b),
            _ => panic!("mixed explicit/digest notice sets"),
        }
    }
}

/// Number of 64-bit words in a Bloom digest (2048 bits).
pub const BLOOM_WORDS: usize = 32;

/// Bits set per page in a Bloom digest.
const BLOOM_HASHES: u64 = 3;

/// A compact encoding of one writer's interval.
///
/// Run-length encoding is lossless and compact while the written pages
/// cluster (the common case for block-distributed arrays); past the
/// configured run cutoff the encoding falls back to a fixed-size Bloom
/// filter, trading false positives (resolved by the validation round)
/// for a hard wire-size cap.
#[derive(Clone, Debug, PartialEq)]
pub enum NoticeDigest {
    /// `(first page, length)` runs of consecutively-indexed pages,
    /// sorted; lossless.
    Runs(Vec<(PageId, u32)>),
    /// Fixed-geometry Bloom filter over page ids; lossy (false
    /// positives only).
    Bloom {
        /// The filter bits.
        bits: Box<[u64; BLOOM_WORDS]>,
        /// How many pages were inserted (diagnostic only).
        pages: u32,
    },
}

/// One round of splitmix64: the deterministic page-id hash behind the
/// Bloom digests.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl NoticeDigest {
    /// Digest an interval: run-length while at most `max_runs` runs,
    /// Bloom beyond.
    pub fn from_interval(iv: &Interval, max_runs: usize) -> Self {
        let mut runs: Vec<(PageId, u32)> = Vec::new();
        for page in iv.pages() {
            match runs.last_mut() {
                Some((start, len))
                    if start.region == page.region && start.index + *len == page.index =>
                {
                    *len += 1;
                }
                _ => runs.push((page, 1)),
            }
        }
        if runs.len() <= max_runs.max(1) {
            return NoticeDigest::Runs(runs);
        }
        let mut bits = Box::new([0u64; BLOOM_WORDS]);
        let mut pages = 0u32;
        for page in iv.pages() {
            for k in 0..BLOOM_HASHES {
                let h = splitmix64(page.pack() ^ (k << 56));
                let bit = (h % (BLOOM_WORDS as u64 * 64)) as usize;
                bits[bit / 64] |= 1 << (bit % 64);
            }
            pages += 1;
        }
        NoticeDigest::Bloom { bits, pages }
    }

    /// The exact page set, when the encoding is lossless.
    pub fn pages(&self) -> Option<Vec<PageId>> {
        match self {
            NoticeDigest::Runs(runs) => Some(
                runs.iter()
                    .flat_map(|&(start, len)| {
                        (0..len).map(move |i| PageId {
                            region: start.region,
                            index: start.index + i,
                        })
                    })
                    .collect(),
            ),
            NoticeDigest::Bloom { .. } => None,
        }
    }

    /// Membership test; exact for runs, no-false-negative for Bloom.
    pub fn may_contain(&self, page: PageId) -> bool {
        match self {
            NoticeDigest::Runs(runs) => runs.iter().any(|&(start, len)| {
                start.region == page.region
                    && page.index >= start.index
                    && page.index < start.index + len
            }),
            NoticeDigest::Bloom { bits, .. } => (0..BLOOM_HASHES).all(|k| {
                let h = splitmix64(page.pack() ^ (k << 56));
                let bit = (h % (BLOOM_WORDS as u64 * 64)) as usize;
                bits[bit / 64] & (1 << (bit % 64)) != 0
            }),
        }
    }

    /// Notice records carried (runs, or one record per Bloom filter).
    pub fn records(&self) -> u64 {
        match self {
            NoticeDigest::Runs(runs) => runs.len() as u64,
            NoticeDigest::Bloom { .. } => 1,
        }
    }

    /// Wire size: 12 bytes per run, or the fixed filter size.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            NoticeDigest::Runs(runs) => 8 + 12 * runs.len() as u64,
            NoticeDigest::Bloom { .. } => 8 + (BLOOM_WORDS as u64) * 8,
        }
    }
}

/// Tree barrier: a child's subtree aggregate, posted to the parent.
#[derive(Clone)]
pub struct TreeAgg {
    /// Barrier identifier.
    pub id: u32,
    /// The subtree's epoch for this barrier.
    pub epoch: u64,
    /// The child node (the subtree's root).
    pub child: usize,
    /// Latest virtual arrival time within the subtree.
    pub latest_ns: u64,
    /// Every subtree member's interval, sorted by rank.
    pub agg: Vec<(usize, Interval)>,
}

impl TreeAgg {
    /// Wire size of the aggregate.
    pub fn wire_bytes(&self) -> u64 {
        notices_wire_bytes(&self.agg) + 28
    }
}

/// Tree barrier: the release wave flowing down to one child — exactly
/// the notices the receiving subtree has *not* seen (the complement of
/// its own aggregate), so no notice is ever re-sent into the subtree
/// that produced it.
#[derive(Clone)]
pub struct TreeWave {
    /// Barrier identifier.
    pub id: u32,
    /// The released epoch.
    pub epoch: u64,
    /// Virtual release time established at the root.
    pub release_ns: u64,
    /// The complement notices for the receiving subtree.
    pub wave: NoticeSet,
}

impl TreeWave {
    /// Wire size of the wave.
    pub fn wire_bytes(&self) -> u64 {
        self.wave.wire_bytes() + 24
    }
}

/// Token queue: the application asks its own handler to start an
/// acquisition (kind `TOK_ACQ_LOCAL`).
#[derive(Debug, Clone, Copy)]
pub struct TokAcquireLocal {
    /// The lock to acquire.
    pub lock: u32,
}

/// Token queue: enqueue `who` at the lock's manager.
#[derive(Debug, Clone, Copy)]
pub struct TokAcquire {
    /// The lock to acquire.
    pub lock: u32,
    /// The acquiring node.
    pub who: usize,
    /// The acquirer's tenure sequence number (matches successor
    /// notifications to the tenure they target).
    pub seq: u64,
}

/// Token queue: the token, with its accumulated notices, passes to the
/// next holder.
#[derive(Clone)]
pub struct TokPass {
    /// The lock whose token this is.
    pub lock: u32,
    /// Notices accumulated under the lock, per writer.
    pub notices: Vec<(usize, Interval)>,
}

impl TokPass {
    /// Wire size of the pass.
    pub fn wire_bytes(&self) -> u64 {
        notices_wire_bytes(&self.notices) + 8
    }
}

/// Token queue: the manager names `succ` the next holder after the
/// tenure `for_seq` of the receiving node.
#[derive(Debug, Clone, Copy)]
pub struct TokSetSucc {
    /// The lock.
    pub lock: u32,
    /// The successor node.
    pub succ: usize,
    /// The receiver tenure this notification targets.
    pub for_seq: u64,
}

/// Token queue: the application releases via its own handler.
#[derive(Clone)]
pub struct TokRelease {
    /// The lock being released.
    pub lock: u32,
    /// The releasing interval's notices.
    pub interval: Interval,
}

/// Token queue: a holder with no known successor returns the token to
/// the manager.
#[derive(Clone)]
pub struct TokReturn {
    /// The lock.
    pub lock: u32,
    /// The returning node.
    pub who: usize,
    /// The returning node's tenure sequence number.
    pub seq: u64,
    /// The token's accumulated notices.
    pub notices: Vec<(usize, Interval)>,
}

impl TokReturn {
    /// Wire size of the return.
    pub fn wire_bytes(&self) -> u64 {
        notices_wire_bytes(&self.notices) + 24
    }
}

/// Token queue: forward the manager-held (or inbound) token to `succ`,
/// claimed by a node whose tenure had already ended when the successor
/// notification reached it.
#[derive(Debug, Clone, Copy)]
pub struct TokClaim {
    /// The lock.
    pub lock: u32,
    /// The successor the token must go to.
    pub succ: usize,
}

/// Resilient token queue: node `who` (tenure `seq`) asks the manager
/// for the lock. A request, not a one-way post — the reply (or its
/// loss) drives the retry loop.
#[derive(Debug, Clone, Copy)]
pub struct RTokAcquire {
    /// The lock to acquire.
    pub lock: u32,
    /// The acquiring node.
    pub who: usize,
    /// The acquirer's tenure sequence number. Retries of one tenure
    /// reuse the number, so the manager can tell a lost-reply retry
    /// from a new acquisition.
    pub seq: u64,
}

/// Reply to [`RTokAcquire`].
pub enum RTokReply {
    /// The token is free: granted, with the notices it carries.
    Grant(Vec<(usize, Interval)>),
    /// The token is held; a `TOK_PASS` will be posted on release.
    Queued,
    /// The manager already granted this exact tenure (the earlier grant
    /// or pass was lost): re-issued with the same notices.
    Replay(Vec<(usize, Interval)>),
}

/// Resilient token queue: node `who` ends tenure `seq`, publishing its
/// interval. Idempotent at the manager.
#[derive(Clone)]
pub struct RTokRelease {
    /// The lock being released.
    pub lock: u32,
    /// The releasing node.
    pub who: usize,
    /// The ending tenure's sequence number.
    pub seq: u64,
    /// The releaser's interval (its writes in the critical section).
    pub interval: Interval,
}

/// Digest fallback: ask a home for the current versions of `pages`
/// (all homed at the destination).
#[derive(Debug, Clone)]
pub struct ValidateReq {
    /// The pages to check.
    pub pages: Vec<PageId>,
}

/// Reply to [`ValidateReq`]: the home's modification counters, in
/// request order.
#[derive(Debug, Clone)]
pub struct ValidateRep {
    /// Version of each requested page.
    pub versions: Vec<u64>,
}

/// One round of the dissemination barrier: the sender's accumulated
/// knowledge of everyone's intervals so far.
#[derive(Clone)]
pub struct DissMsg {
    /// Barrier identifier.
    pub id: u32,
    /// The sender's epoch for this barrier.
    pub epoch: u64,
    /// Dissemination round number.
    pub round: u32,
    /// Intervals of every node the sender has heard from so far.
    pub knowledge: Vec<(usize, Interval)>,
}

impl DissMsg {
    /// Wire size of this round's exchange.
    pub fn wire_bytes(&self) -> u64 {
        notices_wire_bytes(&self.knowledge) + 24
    }
}

/// Wire size of a notice list.
pub fn notices_wire_bytes(notices: &[(usize, Interval)]) -> u64 {
    notices.iter().map(|(_, iv)| 8 + iv.wire_bytes()).sum::<u64>() + 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use memwire::PAGE_SIZE;

    #[test]
    fn apply_diffs_wire_size() {
        let twin = vec![0u8; PAGE_SIZE];
        let mut cur = twin.clone();
        cur[..16].fill(1);
        let d = Diff::between(&twin, &cur);
        let msg = ApplyDiffs { diffs: vec![(PageId { region: 0, index: 0 }, d)] };
        // 8 header + (8 page id + diff wire bytes)
        assert_eq!(msg.wire_bytes(), 8 + 8 + (8 + 4 + 16));
    }

    #[test]
    fn put_pages_wire_size_counts_full_pages() {
        let msg = PutPages {
            pages: vec![(PageId { region: 0, index: 0 }, Page::zeroed(PAGE_SIZE))],
        };
        assert_eq!(msg.wire_bytes(), 8 + 8 + PAGE_SIZE as u64);
    }

    #[test]
    fn barrier_release_wire_size() {
        let rel = BarrierRelease {
            id: 0,
            epoch: 1,
            notices: NoticeSet::Explicit(vec![(
                0,
                Interval::from_pages(&[PageId { region: 0, index: 3 }]),
            )]),
        };
        // 16 header + 8 list header + (8 writer id + 16 interval).
        assert_eq!(rel.wire_bytes(), 16 + 8 + 8 + 16);
    }

    fn pid(i: u32) -> PageId {
        PageId { region: 0, index: i }
    }

    #[test]
    fn digest_runs_are_lossless_and_compact() {
        // 64 consecutive pages plus one straggler: 2 runs.
        let mut pages: Vec<PageId> = (0..64).map(pid).collect();
        pages.push(pid(100));
        let iv = Interval::from_pages(&pages);
        let d = NoticeDigest::from_interval(&iv, 64);
        assert_eq!(d.records(), 2);
        assert_eq!(d.wire_bytes(), 8 + 24, "2 runs at 12 bytes each");
        assert!(d.wire_bytes() < iv.wire_bytes(), "digest beats the explicit list");
        let decoded = d.pages().expect("runs are lossless");
        assert_eq!(decoded, iv.pages().collect::<Vec<_>>());
        assert!(d.may_contain(pid(63)));
        assert!(!d.may_contain(pid(64)));
    }

    #[test]
    fn digest_falls_back_to_bloom_past_run_cutoff() {
        // Every other page: each is its own run.
        let pages: Vec<PageId> = (0..200).map(|i| pid(2 * i)).collect();
        let iv = Interval::from_pages(&pages);
        let d = NoticeDigest::from_interval(&iv, 64);
        match &d {
            NoticeDigest::Bloom { pages: n, .. } => assert_eq!(*n, 200),
            other => panic!("expected bloom, got {other:?}"),
        }
        assert_eq!(d.wire_bytes(), 8 + BLOOM_WORDS as u64 * 8);
        assert!(d.pages().is_none(), "bloom is lossy");
        // No false negatives, ever.
        for p in &pages {
            assert!(d.may_contain(*p));
        }
    }

    #[test]
    fn notice_set_encode_and_records() {
        let iv = Interval::from_pages(&[pid(1), pid(2), pid(9)]);
        let explicit = NoticeSet::encode(vec![(0, iv.clone()), (1, Interval::default())], None);
        assert_eq!(explicit.records(), 3);
        let digest = NoticeSet::encode(vec![(0, iv), (1, Interval::default())], Some(64));
        // Empty intervals are dropped from digest sets; 2 runs remain.
        assert_eq!(digest.records(), 2);
        assert!(digest.wire_bytes() < explicit.wire_bytes() + 16);
    }
}
