//! Wire messages of the software-DSM protocol.

use interconnect::Page;
use memwire::{Diff, Interval, PageId};

/// Request a copy of `page` from its home.
#[derive(Debug, Clone, Copy)]
pub struct GetPage {
    /// The page to fetch (must be homed at the destination).
    pub page: PageId,
}

/// Reply to [`GetPage`]: the page contents.
///
/// Carries a [`Page`] — a shared handle to the home's master bytes, so
/// building (and fault-injected resending) of the reply never copies
/// the page body.
pub struct PageData {
    /// A snapshot of the master copy.
    pub bytes: Page,
}

/// Ship diffs (all homed at the destination) for application.
#[derive(Clone)]
pub struct ApplyDiffs {
    /// The diffs, all homed at the destination.
    pub diffs: Vec<(PageId, Diff)>,
}

impl ApplyDiffs {
    /// Wire size of the batch.
    pub fn wire_bytes(&self) -> u64 {
        self.diffs.iter().map(|(_, d)| 8 + d.wire_bytes()).sum::<u64>() + 8
    }
}

/// Whole pages shipped home (ablation mode). Cloning the message for a
/// resilient retry bumps reference counts instead of copying page
/// bodies.
#[derive(Clone)]
pub struct PutPages {
    /// Full replacement contents, all homed at the destination.
    pub pages: Vec<(PageId, Page)>,
}

impl PutPages {
    /// Wire size of the batch.
    pub fn wire_bytes(&self) -> u64 {
        self.pages.iter().map(|(_, p)| 8 + p.len() as u64).sum::<u64>() + 8
    }
}

/// Acquire `lock`.
#[derive(Debug, Clone, Copy)]
pub struct LockReq {
    /// The lock to acquire.
    pub lock: u32,
    /// Shared (reader) or exclusive acquisition.
    pub mode: crate::lockmgr::Mode,
}

/// Reply to [`LockReq`].
pub enum LockReply {
    /// The lock was free; notices accumulated under it ride along.
    Granted(Vec<(usize, Interval)>),
    /// The lock is held; a [`LockGrant`] will be posted later.
    Queued,
}

/// Deferred grant posted to a queued requester.
pub struct LockGrant {
    /// The granted lock.
    pub lock: u32,
    /// Write notices accumulated under the lock, per writer.
    pub notices: Vec<(usize, Interval)>,
}

/// Release `lock`, publishing the releasing interval's notices.
#[derive(Clone)]
pub struct LockRel {
    /// The lock being released.
    pub lock: u32,
    /// The releasing node.
    pub releaser: usize,
    /// The releaser's interval (its writes in the critical section).
    pub interval: Interval,
}

/// Node `who` reached barrier `id` with its interval.
#[derive(Clone)]
pub struct BarrierArrive {
    /// Barrier identifier.
    pub id: u32,
    /// The arriving node's epoch for this barrier.
    pub epoch: u64,
    /// The arriving node.
    pub who: usize,
    /// Its write notices since the last synchronization.
    pub interval: Interval,
}

/// Barrier `id` released; everyone's intervals attached.
#[derive(Clone)]
pub struct BarrierRelease {
    /// Barrier identifier.
    pub id: u32,
    /// The released epoch.
    pub epoch: u64,
    /// Every participant's interval.
    pub intervals: Vec<(usize, Interval)>,
}

impl BarrierRelease {
    /// Wire size of the release broadcast.
    pub fn wire_bytes(&self) -> u64 {
        self.intervals.iter().map(|(_, iv)| 8 + iv.wire_bytes()).sum::<u64>() + 16
    }
}

/// One round of the dissemination barrier: the sender's accumulated
/// knowledge of everyone's intervals so far.
#[derive(Clone)]
pub struct DissMsg {
    /// Barrier identifier.
    pub id: u32,
    /// The sender's epoch for this barrier.
    pub epoch: u64,
    /// Dissemination round number.
    pub round: u32,
    /// Intervals of every node the sender has heard from so far.
    pub knowledge: Vec<(usize, Interval)>,
}

impl DissMsg {
    /// Wire size of this round's exchange.
    pub fn wire_bytes(&self) -> u64 {
        notices_wire_bytes(&self.knowledge) + 24
    }
}

/// Wire size of a notice list.
pub fn notices_wire_bytes(notices: &[(usize, Interval)]) -> u64 {
    notices.iter().map(|(_, iv)| 8 + iv.wire_bytes()).sum::<u64>() + 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use memwire::PAGE_SIZE;

    #[test]
    fn apply_diffs_wire_size() {
        let twin = vec![0u8; PAGE_SIZE];
        let mut cur = twin.clone();
        cur[..16].fill(1);
        let d = Diff::between(&twin, &cur);
        let msg = ApplyDiffs { diffs: vec![(PageId { region: 0, index: 0 }, d)] };
        // 8 header + (8 page id + diff wire bytes)
        assert_eq!(msg.wire_bytes(), 8 + 8 + (8 + 4 + 16));
    }

    #[test]
    fn put_pages_wire_size_counts_full_pages() {
        let msg = PutPages {
            pages: vec![(PageId { region: 0, index: 0 }, Page::zeroed(PAGE_SIZE))],
        };
        assert_eq!(msg.wire_bytes(), 8 + 8 + PAGE_SIZE as u64);
    }

    #[test]
    fn barrier_release_wire_size() {
        let rel = BarrierRelease {
            id: 0,
            epoch: 1,
            intervals: vec![(0, Interval::from_pages(&[PageId { region: 0, index: 3 }]))],
        };
        assert_eq!(rel.wire_bytes(), 16 + 8 + 16);
    }
}
