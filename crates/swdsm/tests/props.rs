//! Property-based protocol tests: random workloads against a
//! sequential reference memory.

use cluster::{Cluster, FabricConfig, LinkKind};
use memwire::Distribution;
use proptest::prelude::*;
use swdsm::{DsmConfig, SwDsm};

/// A random single-writer plan: each node owns a byte range of one
/// shared region and performs writes there across several barrier
/// epochs; afterwards every node must read back the exact reference
/// image.
#[derive(Debug, Clone)]
struct Plan {
    /// (epoch, node, offset-within-slice, value)
    writes: Vec<(u8, u8, u16, u8)>,
    epochs: u8,
    dist: Distribution,
}

const NODES: usize = 3;
const SLICE: usize = 3 * 4096; // bytes per node, page-misaligned on purpose

fn plan_strategy() -> impl Strategy<Value = Plan> {
    (
        proptest::collection::vec(
            (0u8..4, 0u8..NODES as u8, any::<u16>(), any::<u8>()),
            1..120,
        ),
        prop_oneof![
            Just(Distribution::Block),
            Just(Distribution::Cyclic),
            Just(Distribution::OnNode(1)),
        ],
    )
        .prop_map(|(writes, dist)| Plan { writes, epochs: 4, dist })
}

fn reference_image(plan: &Plan) -> Vec<u8> {
    let mut mem = vec![0u8; NODES * SLICE];
    let mut writes = plan.writes.clone();
    // Writes apply in epoch order; within an epoch, writers touch
    // disjoint slices so any order works.
    writes.sort_by_key(|w| w.0);
    for (_, node, off, val) in writes {
        let o = node as usize * SLICE + off as usize % SLICE;
        mem[o] = val;
    }
    mem
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_single_writer_programs_converge(plan in plan_strategy()) {
        let cluster = Cluster::new(FabricConfig::builder().nodes(NODES).link(LinkKind::Ethernet).build());
        let dsm = SwDsm::install(&cluster, DsmConfig::default());
        let expected = reference_image(&plan);
        let plan = std::sync::Arc::new(plan);
        let (_, results) = cluster.run(|ctx| {
            let node = dsm.node(ctx);
            let me = node.rank() as u8;
            let a = node.alloc(NODES * SLICE, plan.dist);
            node.barrier(1);
            for epoch in 0..plan.epochs {
                for &(e, writer, off, val) in &plan.writes {
                    if e == epoch && writer == me {
                        let o = writer as usize * SLICE + off as usize % SLICE;
                        node.write_bytes(a.add(o as u32), &[val]);
                    }
                }
                node.barrier(2);
            }
            let mut image = vec![0u8; NODES * SLICE];
            node.read_bytes(a, &mut image);
            node.barrier(3);
            image
        });
        for (rank, image) in results.iter().enumerate() {
            prop_assert_eq!(image.as_slice(), expected.as_slice(), "node {} diverged", rank);
        }
    }

    #[test]
    fn lock_counter_exact_under_random_schedules(
        increments in proptest::collection::vec(1u64..5, NODES..=NODES),
        think_ns in proptest::collection::vec(0u64..50_000, NODES..=NODES),
    ) {
        let cluster = Cluster::new(FabricConfig::builder().nodes(NODES).link(LinkKind::Ethernet).build());
        let dsm = SwDsm::install(&cluster, DsmConfig::default());
        let incs = increments.clone();
        let thinks = think_ns.clone();
        let (_, finals) = cluster.run(|ctx| {
            let node = dsm.node(ctx);
            let a = node.alloc(4096, Distribution::Block);
            node.barrier(1);
            for _ in 0..incs[node.rank()] {
                node.acquire(1);
                let v = node.read_u64(a);
                node.ctx().compute(thinks[node.rank()]);
                node.write_u64(a, v + 1);
                node.release(1);
            }
            node.barrier(2);
            node.read_u64(a)
        });
        let expect: u64 = increments.iter().sum();
        prop_assert!(finals.iter().all(|&v| v == expect), "lost updates: {finals:?}");
    }

    #[test]
    fn whole_page_mode_matches_diff_mode(plan in plan_strategy()) {
        let run = |cfg: DsmConfig| {
            let cluster = Cluster::new(FabricConfig::builder().nodes(NODES).link(LinkKind::Ethernet).build());
            let dsm = SwDsm::install(&cluster, cfg);
            let plan = plan.clone();
            let (_, results) = cluster.run(move |ctx| {
                let node = dsm.node(ctx);
                let me = node.rank() as u8;
                let a = node.alloc(NODES * SLICE, plan.dist);
                node.barrier(1);
                for epoch in 0..plan.epochs {
                    for &(e, writer, off, val) in &plan.writes {
                        if e == epoch && writer == me {
                            let o = writer as usize * SLICE + off as usize % SLICE;
                            node.write_bytes(a.add(o as u32), &[val]);
                        }
                    }
                    node.barrier(2);
                }
                let mut image = vec![0u8; NODES * SLICE];
                node.read_bytes(a, &mut image);
                node.barrier(3);
                image
            });
            results
        };
        let with_diffs = run(DsmConfig::default());
        let with_pages = run(DsmConfig { whole_page_writeback: true, ..Default::default() });
        prop_assert_eq!(with_diffs, with_pages);
    }
}

/// Run `plan` on a `nodes`-node cluster under `sync`, returning every
/// rank's final image and the ending value of a lock-guarded counter.
/// Ranks beyond the plan's writer set still participate in every
/// barrier and the lock ring, so tree interior nodes and token-queue
/// hops get exercised even when they own no data.
fn run_plan_sync(
    nodes: usize,
    sync: cluster::SyncTopology,
    plan: std::sync::Arc<Plan>,
) -> (Vec<Vec<u8>>, u64) {
    let cluster = Cluster::new(
        FabricConfig::builder().nodes(nodes).link(LinkKind::Ethernet).sync(sync).build(),
    );
    let dsm = SwDsm::install(&cluster, DsmConfig::default());
    let (_, results) = cluster.run(|ctx| {
        let node = dsm.node(ctx);
        let me = node.rank() as u8;
        let a = node.alloc(NODES * SLICE + 4096, plan.dist);
        let counter = a.add((NODES * SLICE) as u32);
        node.barrier(1);
        for epoch in 0..plan.epochs {
            for &(e, writer, off, val) in &plan.writes {
                if e == epoch && writer == me {
                    let o = writer as usize * SLICE + off as usize % SLICE;
                    node.write_bytes(a.add(o as u32), &[val]);
                }
            }
            node.barrier(2);
        }
        for _ in 0..node.rank() % 3 + 1 {
            node.acquire(9);
            let v = node.read_u64(counter);
            node.write_u64(counter, v + 1);
            node.release(9);
        }
        node.barrier(3);
        let mut image = vec![0u8; NODES * SLICE];
        node.read_bytes(a, &mut image);
        let count = node.read_u64(counter);
        node.barrier(4);
        (image, count)
    });
    let count = results[0].1;
    assert!(results.iter().all(|(_, c)| *c == count), "counter diverged across ranks");
    (results.into_iter().map(|(image, _)| image).collect(), count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sync topology must be invisible to the program: the same
    /// random schedule run under the centralized protocols and under
    /// the full scalable preset (tree barrier + token-queue locks +
    /// digest waves) must produce bit-identical images on every rank
    /// and the same lock-counter total.
    #[test]
    fn topologies_agree_on_random_schedules(plan in plan_strategy()) {
        let plan = std::sync::Arc::new(plan);
        let central = run_plan_sync(4, cluster::SyncTopology::centralized(), plan.clone());
        let tree = run_plan_sync(4, "tree:2".parse().unwrap(), plan);
        prop_assert_eq!(central.1, tree.1, "lock counters diverged");
        for (rank, (c, t)) in central.0.iter().zip(&tree.0).enumerate() {
            prop_assert_eq!(c.as_slice(), t.as_slice(), "rank {} diverged across topologies", rank);
        }
    }
}

/// Topology equivalence at cluster scale: 256 nodes, every rank writing
/// a deterministic pseudo-random pattern into its own slice across
/// three epochs. Too big for per-byte proptest shrinking, so this is a
/// plain test on one mixed schedule, comparing per-rank image
/// checksums between the centralized and scalable presets.
#[test]
fn topologies_agree_at_256_nodes() {
    const N: usize = 256;
    const SLICE2: usize = 128;
    fn mix(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    }
    let run = |sync: cluster::SyncTopology| -> Vec<u64> {
        let cluster = Cluster::new(
            FabricConfig::builder().nodes(N).link(LinkKind::Ethernet).sync(sync).build(),
        );
        let dsm = SwDsm::install(&cluster, DsmConfig::default());
        let (_, sums) = cluster.run(|ctx| {
            let node = dsm.node(ctx);
            let me = node.rank();
            let a = node.alloc(N * SLICE2, Distribution::Block);
            node.barrier(1);
            for epoch in 0..3u64 {
                let bytes: Vec<u8> = (0..SLICE2)
                    .map(|i| mix(epoch << 32 ^ (me * SLICE2 + i) as u64) as u8)
                    .collect();
                node.write_bytes(a.add((me * SLICE2) as u32), &bytes);
                node.barrier(2);
            }
            let mut image = vec![0u8; N * SLICE2];
            node.read_bytes(a, &mut image);
            node.barrier(3);
            // FNV-1a over the full image: cheap, order-sensitive.
            image.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
                (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
            })
        });
        sums
    };
    let central = run(cluster::SyncTopology::centralized());
    let scalable = run(cluster::SyncTopology::scalable());
    assert!(central.iter().all(|&s| s == central[0]), "ranks diverged under centralized");
    assert_eq!(central, scalable, "checksums diverged across topologies");
}
