//! Explicit placement (`place_home` / `place_lock`): the tuner's levers.
//!
//! Placement is *run configuration* — it is applied before `Cluster::run`
//! and must compose with the synchronization topology. Re-homing
//! composes with write-notice digests because a migrating master copy
//! carries its modification counter along (version-carrying migration
//! records), so digest validation never sees a counter reset.

use cluster::{Cluster, FabricConfig, LinkKind, SyncTopology};
use memwire::{Distribution, GlobalAddr, PageId};
use swdsm::{DsmConfig, PlaceError, SwDsm};

fn fabric(nodes: usize, sync: SyncTopology) -> Cluster {
    Cluster::new(FabricConfig::builder().nodes(nodes).link(LinkKind::Ethernet).sync(sync).build())
}

#[test]
fn place_home_applies_under_digest_topology() {
    let cluster = fabric(2, SyncTopology::scalable());
    let dsm = SwDsm::install(&cluster, DsmConfig::default());
    let page = PageId { region: 0, index: 0 };
    dsm.place_home(page, 1).unwrap();
    assert_eq!(dsm.home_of(page), 1);
    assert_eq!(dsm.stats(1).get("plan_rejected"), 0);
    assert_eq!(dsm.stats(1).get("pages_rehomed"), 1);
    assert_eq!(dsm.stats(1).get("tuner_actions"), 1);

    // The placed home must stay correct under the digest notice wire:
    // writes by node 0 to a page now homed on node 1 still invalidate
    // node 0's peers through digest validation.
    let d = dsm.clone();
    let (_, results) = cluster.run(move |ctx| {
        let node = d.node(ctx);
        let a = node.alloc(2 * 4096, Distribution::Block);
        if node.rank() == 0 {
            node.write_u64(a, 11);
            node.write_u64(a.add(4096), 22);
        }
        node.barrier(1);
        node.read_u64(a) + node.read_u64(a.add(4096))
    });
    assert_eq!(results, vec![33, 33]);
}

#[test]
fn place_home_rejects_unknown_node() {
    let cluster = fabric(2, SyncTopology::centralized());
    let dsm = SwDsm::install(&cluster, DsmConfig::default());
    let err = dsm.place_home(PageId { region: 0, index: 0 }, 5).unwrap_err();
    assert!(matches!(err, PlaceError::NoSuchNode { to: 5, nodes: 2 }));
    assert!(err.to_string().contains("out of range"));
    let err = dsm.place_lock(3, 9).unwrap_err();
    assert!(matches!(err, PlaceError::NoSuchNode { to: 9, nodes: 2 }));
}

#[test]
fn place_home_moves_master_copy_before_a_run() {
    let cluster = fabric(2, SyncTopology::centralized());
    let dsm = SwDsm::install(&cluster, DsmConfig::default());
    // The first collective alloc below is region 0; page 0 of a Block
    // region over two nodes would be homed on node 0 by distribution.
    let page = PageId { region: 0, index: 0 };
    dsm.place_home(page, 1).unwrap();
    assert_eq!(dsm.home_of(page), 1);
    assert_eq!(dsm.stats(1).get("pages_rehomed"), 1);
    assert_eq!(dsm.stats(1).get("tuner_actions"), 1);

    let d = dsm.clone();
    let (_, results) = cluster.run(move |ctx| {
        let node = d.node(ctx);
        let a = node.alloc(2 * 4096, Distribution::Block);
        if node.rank() == 0 {
            node.write_u64(a, 11);
            node.write_u64(a.add(4096), 22);
        }
        node.barrier(1);
        node.read_u64(a) + node.read_u64(a.add(4096))
    });
    assert_eq!(results, vec![33, 33]);
}

#[test]
fn place_home_to_current_home_is_a_noop_move() {
    let cluster = fabric(2, SyncTopology::centralized());
    let dsm = SwDsm::install(&cluster, DsmConfig::default());
    let page = PageId { region: 0, index: 0 };
    dsm.place_home(page, 0).unwrap();
    assert_eq!(dsm.home_of(page), 0);
    // Counted as an applied action even when the home already matches.
    assert_eq!(dsm.stats(0).get("pages_rehomed"), 1);
}

#[test]
fn place_lock_redirects_the_manager() {
    let cluster = fabric(2, SyncTopology::centralized());
    let dsm = SwDsm::install(&cluster, DsmConfig::default());
    assert_eq!(dsm.lock_mgr_of(7), 1, "default mapping is lock % nodes");
    dsm.place_lock(7, 0).unwrap();
    assert_eq!(dsm.lock_mgr_of(7), 0);
    assert_eq!(dsm.lock_mgr_of(8), 0, "unplaced locks keep the modulo mapping");
    assert_eq!(dsm.stats(0).get("tuner_actions"), 1);

    let d = dsm.clone();
    let (_, results) = cluster.run(move |ctx| {
        let node = d.node(ctx);
        let a = node.alloc(4096, Distribution::Block);
        node.barrier(1);
        for _ in 0..4 {
            node.acquire(7);
            let v = node.read_u64(a);
            node.write_u64(a, v + 1);
            node.release(7);
        }
        node.barrier(2);
        node.read_u64(a)
    });
    assert_eq!(results, vec![8, 8]);
}

#[test]
fn placed_lock_works_under_token_queue() {
    let mut sync = SyncTopology::centralized();
    sync.locks = cluster::LockTopology::TokenQueue;
    let cluster = fabric(4, sync);
    let dsm = SwDsm::install(&cluster, DsmConfig::default());
    dsm.place_lock(1, 3).unwrap();
    assert_eq!(dsm.lock_mgr_of(1), 3);

    let d = dsm.clone();
    let (_, results) = cluster.run(move |ctx| {
        let node = d.node(ctx);
        let a = node.alloc(4096, Distribution::Block);
        node.barrier(1);
        for _ in 0..2 {
            node.acquire(1);
            let v = node.read_u64(a);
            node.write_u64(a, v + 1);
            node.release(1);
        }
        node.barrier(2);
        node.read_u64(a)
    });
    assert_eq!(results, vec![8, 8, 8, 8]);
}

#[test]
fn home_override_survives_alongside_distribution() {
    // GlobalAddr sanity for the packed form the tuner plan carries.
    let a = GlobalAddr::new(3, 2 * 4096);
    assert_eq!(PageId::unpack(a.page().pack()), a.page());
}
