//! End-to-end protocol tests for the software DSM: real node threads,
//! real messages, virtual time.

use cluster::{Cluster, FabricConfig, LinkKind};
use memwire::Distribution;
use swdsm::{DsmConfig, SwDsm};

fn cluster(nodes: usize) -> (Cluster, std::sync::Arc<SwDsm>) {
    let c = Cluster::new(FabricConfig::builder().nodes(nodes).link(LinkKind::Ethernet).build());
    let dsm = SwDsm::install(&c, DsmConfig::default());
    (c, dsm)
}

fn cluster_with(nodes: usize, cfg: DsmConfig) -> (Cluster, std::sync::Arc<SwDsm>) {
    let c = Cluster::new(FabricConfig::builder().nodes(nodes).link(LinkKind::Ethernet).build());
    let dsm = SwDsm::install(&c, cfg);
    (c, dsm)
}

fn cluster_sync(nodes: usize, sync: cluster::SyncTopology) -> (Cluster, std::sync::Arc<SwDsm>) {
    let c = Cluster::new(
        FabricConfig::builder().nodes(nodes).link(LinkKind::Ethernet).sync(sync).build(),
    );
    let dsm = SwDsm::install(&c, DsmConfig::default());
    (c, dsm)
}

#[test]
fn barrier_makes_writes_visible() {
    let (c, dsm) = cluster(4);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(4096, Distribution::Block);
        if node.rank() == 0 {
            node.write_u64(a, 0xCAFE);
        }
        node.barrier(1);
        node.read_u64(a)
    });
    assert_eq!(results, vec![0xCAFE; 4]);
}

#[test]
fn written_value_stays_zero_before_any_writer() {
    let (c, dsm) = cluster(2);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(8192, Distribution::Cyclic);
        node.barrier(1);
        node.read_u64(a.add(4096))
    });
    assert_eq!(results, vec![0, 0]);
}

#[test]
fn lock_protected_counter_is_exact() {
    const PER_NODE: u64 = 10;
    let (c, dsm) = cluster(4);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(4096, Distribution::Block);
        node.barrier(1);
        for _ in 0..PER_NODE {
            node.acquire(9);
            let v = node.read_u64(a);
            node.write_u64(a, v + 1);
            node.release(9);
        }
        node.barrier(2);
        node.read_u64(a)
    });
    assert_eq!(results, vec![4 * PER_NODE; 4]);
}

#[test]
fn lock_grant_carries_notices_without_barrier() {
    // Producer/consumer through a lock only: scope consistency must make
    // the producer's write visible to the consumer at acquire time.
    let (c, dsm) = cluster(2);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(4096, Distribution::OnNode(0));
        node.barrier(1);
        if node.rank() == 1 {
            node.acquire(3);
            node.write_u64(a.add(8), 77);
            node.release(3);
            node.barrier(2);
            0
        } else {
            node.barrier(2);
            node.acquire(3);
            let v = node.read_u64(a.add(8));
            node.release(3);
            v
        }
    });
    assert_eq!(results[0], 77);
}

#[test]
fn multiple_writers_on_one_page_merge() {
    // Classic false-sharing scenario: all four nodes write disjoint
    // quarters of the same page between two barriers.
    let (c, dsm) = cluster(4);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(4096, Distribution::OnNode(0));
        node.barrier(1);
        let mine = a.add(node.rank() as u32 * 1024);
        node.write_bytes(mine, &[node.rank() as u8 + 1; 1024]);
        node.barrier(2);
        let mut all = vec![0u8; 4096];
        node.read_bytes(a, &mut all);
        all
    });
    for r in &results {
        for q in 0..4 {
            assert!(
                r[q * 1024..(q + 1) * 1024].iter().all(|&b| b == q as u8 + 1),
                "quarter {q} lost"
            );
        }
    }
}

#[test]
fn stale_copies_are_invalidated_and_refetched() {
    let (c, dsm) = cluster(2);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(4096, Distribution::OnNode(0));
        node.barrier(1);
        if node.rank() == 1 {
            let first = node.read_u64(a); // caches the page
            node.barrier(2);
            node.barrier(3);
            let second = node.read_u64(a); // must be refetched
            (first, second)
        } else {
            node.barrier(2);
            node.write_u64(a, 5);
            node.barrier(3);
            (0, 0)
        }
    });
    assert_eq!(results[1], (0, 5));
    assert!(dsm.stats(1).get("invalidations") >= 1);
    assert!(dsm.stats(1).get("getpages") >= 2);
}

#[test]
fn treadmarks_style_local_alloc_and_adopt() {
    let (c, dsm) = cluster(3);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        // Rank 0 allocates locally, writes, then everyone learns the
        // address out of band (the model layer's distribute routine).
        let a = if node.rank() == 0 {
            let a = node.alloc_local(4096);
            node.write_u64(a, 123);
            a
        } else {
            memwire::GlobalAddr::new(1 << 24, 0)
        };
        node.adopt(a, 4096, 0);
        node.barrier(1);
        node.read_u64(a)
    });
    assert_eq!(results, vec![123; 3]);
}

#[test]
fn whole_page_writeback_mode_is_correct_but_heavier() {
    let run = |cfg: DsmConfig| {
        let (c, dsm) = cluster_with(2, cfg);
        let (_, results) = c.run(|ctx| {
            let node = dsm.node(ctx);
            let a = node.alloc(4096, Distribution::OnNode(1));
            node.barrier(1);
            if node.rank() == 0 {
                node.write_u64(a, 42);
            }
            node.barrier(2);
            node.read_u64(a)
        });
        let bytes = dsm.stats(0).get("diff_bytes");
        (results, bytes)
    };
    let (vals_diff, bytes_diff) = run(DsmConfig::default());
    let (vals_page, bytes_page) =
        run(DsmConfig { whole_page_writeback: true, ..DsmConfig::default() });
    assert_eq!(vals_diff, vec![42, 42]);
    assert_eq!(vals_page, vec![42, 42]);
    assert!(
        bytes_page > 10 * bytes_diff.max(1),
        "whole-page write-back should ship far more bytes ({bytes_page} vs {bytes_diff})"
    );
}

#[test]
fn conservative_lock_mode_still_correct() {
    let cfg = DsmConfig { notices_on_locks: false, ..DsmConfig::default() };
    let (c, dsm) = cluster_with(3, cfg);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(4096, Distribution::Block);
        node.barrier(1);
        for _ in 0..5 {
            node.acquire(1);
            let v = node.read_u64(a);
            node.write_u64(a, v + 1);
            node.release(1);
        }
        node.barrier(2);
        node.read_u64(a)
    });
    assert_eq!(results, vec![15; 3]);
}

#[test]
fn remote_fetch_costs_ethernet_scale_time() {
    let (c, dsm) = cluster(2);
    let (report, _) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(4096, Distribution::OnNode(0));
        node.barrier(1);
        if node.rank() == 1 {
            node.read_u64(a); // one remote page fetch
        }
        node.barrier(2);
    });
    // A page fetch over Fast Ethernet is several hundred µs; with two
    // barriers the run must exceed 1 ms of virtual time.
    assert!(report.sim_time_ns > 1_000_000, "got {}", report.sim_time_ns);
}

#[test]
fn block_vs_cyclic_homes_differ() {
    let (c, dsm) = cluster(4);
    let (_, _) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a_block = node.alloc(16 * 4096, Distribution::Block);
        let a_cyc = node.alloc(16 * 4096, Distribution::Cyclic);
        node.barrier(1);
        if node.rank() == 0 {
            let db = node.dsm();
            assert_eq!(db.home_of(a_block.page()), 0);
            assert_eq!(db.home_of(a_block.add(15 * 4096).page()), 3);
            assert_eq!(db.home_of(a_cyc.add(4096).page()), 1);
            assert_eq!(db.home_of(a_cyc.add(5 * 4096).page()), 1);
        }
    });
}

#[test]
fn stats_reflect_protocol_activity() {
    let (c, dsm) = cluster(2);
    let (_, _) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(4096, Distribution::OnNode(0));
        node.barrier(1);
        if node.rank() == 1 {
            node.write_u64(a, 1); // fetch + twin
        }
        node.barrier(2);
    });
    let s1 = dsm.stats(1).snapshot();
    assert_eq!(s1["getpages"], 1);
    assert_eq!(s1["twins"], 1);
    assert!(s1["diffs"] >= 1);
    assert!(s1["barriers"] >= 2);
    assert!(s1["traps"] >= 1);
}

#[test]
fn queued_locks_serialize_in_virtual_time() {
    let (c, dsm) = cluster(4);
    let (_, times) = c.run(|ctx| {
        let node = dsm.node(ctx);
        node.barrier(1);
        node.acquire(5);
        let t_in = node.ctx().clock().now();
        node.ctx().compute(1_000_000); // 1 ms critical section
        node.release(5);
        node.barrier(2);
        t_in
    });
    let mut sorted = times.clone();
    sorted.sort();
    // Entry times must be spread by at least the critical-section length.
    for w in sorted.windows(2) {
        assert!(w[1] >= w[0] + 1_000_000, "critical sections overlap: {times:?}");
    }
}

#[test]
fn bulk_write_spanning_pages() {
    let (c, dsm) = cluster(2);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(3 * 4096, Distribution::OnNode(0));
        node.barrier(1);
        if node.rank() == 1 {
            // Write 10 KiB straddling three pages, remote home.
            let data: Vec<u8> = (0..10_240).map(|i| (i % 251) as u8).collect();
            node.write_bytes(a.add(100), &data);
        }
        node.barrier(2);
        let mut out = vec![0u8; 10_240];
        node.read_bytes(a.add(100), &mut out);
        out.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8)
    });
    assert_eq!(results, vec![true, true]);
}

#[test]
fn bounded_cache_evicts_and_stays_correct() {
    // A 4-page cache forced to walk a 16-page remote region: every page
    // still reads back correctly, and evictions actually happen.
    let cfg = DsmConfig { cache_pages: 4, ..DsmConfig::default() };
    let (c, dsm) = cluster_with(2, cfg);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(16 * 4096, Distribution::OnNode(0));
        node.barrier(1);
        if node.rank() == 1 {
            // Write a marker into every page (dirty evictions), then
            // read them all back (clean evictions + refetches).
            for p in 0..16u32 {
                node.write_u64(a.add(p * 4096), p as u64 + 100);
            }
            let mut sum = 0;
            for p in 0..16u32 {
                sum += node.read_u64(a.add(p * 4096));
            }
            node.barrier(2);
            sum
        } else {
            node.barrier(2);
            (0..16u32).map(|p| node.read_u64(a.add(p * 4096))).sum()
        }
    });
    let expect: u64 = (0..16).map(|p| p + 100).sum();
    assert_eq!(results, vec![expect, expect]);
    assert!(dsm.stats(1).get("evictions") >= 12, "cache bound not enforced");
}

#[test]
fn dirty_eviction_preserves_writes() {
    // Evicting a dirty page must push its diff home first.
    let cfg = DsmConfig { cache_pages: 2, ..DsmConfig::default() };
    let (c, dsm) = cluster_with(2, cfg);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(8 * 4096, Distribution::OnNode(0));
        node.barrier(1);
        if node.rank() == 1 {
            for p in 0..8u32 {
                node.write_u64(a.add(p * 4096), p as u64 + 1);
            }
        }
        // No explicit flush beyond the barrier: evicted dirty pages must
        // already have shipped their diffs; the barrier ships the rest.
        node.barrier(2);
        (0..8u32).map(|p| node.read_u64(a.add(p * 4096))).sum::<u64>()
    });
    assert_eq!(results, vec![36, 36]);
}

#[test]
fn home_migration_moves_pages_to_their_writer() {
    let cfg = DsmConfig { home_migration: true, migration_threshold: 2, ..Default::default() };
    let (c, dsm) = cluster_with(2, cfg);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        // Page homed on node 0, but node 1 writes it every epoch.
        let a = node.alloc(4096, Distribution::OnNode(0));
        node.barrier(1);
        for round in 0..5u64 {
            if node.rank() == 1 {
                node.write_u64(a, round + 1);
            }
            node.barrier(2);
        }
        node.read_u64(a)
    });
    assert_eq!(results, vec![5, 5]);
    // After two same-writer diffs, the page's home moved to node 1.
    assert_eq!(dsm.home_of(memwire::GlobalAddr::new(1, 0).page().base().page()), 1);
    assert!(dsm.stats(1).get("migrations") >= 1);
}

#[test]
fn migration_reduces_diff_traffic_for_misplaced_pages() {
    let run = |migrate: bool| {
        let cfg = DsmConfig { home_migration: migrate, ..Default::default() };
        let (c, dsm) = cluster_with(2, cfg);
        let (report, _) = c.run(|ctx| {
            let node = dsm.node(ctx);
            let a = node.alloc(8 * 4096, Distribution::OnNode(0));
            node.barrier(1);
            for round in 0..12u64 {
                if node.rank() == 1 {
                    // Node 1 rewrites all 8 remotely homed pages.
                    for p in 0..8u32 {
                        node.write_bytes(
                            a.add(p * 4096),
                            &[round as u8 + 1; 2048],
                        );
                    }
                }
                node.barrier(2);
            }
        });
        (report.sim_time_ns, dsm.stats(1).get("diff_bytes"))
    };
    let (t_static, bytes_static) = run(false);
    let (t_migrate, bytes_migrate) = run(true);
    assert!(
        bytes_migrate * 2 < bytes_static,
        "migration should slash diff traffic: {bytes_migrate} vs {bytes_static}"
    );
    assert!(t_migrate < t_static, "migration should pay off in time");
}

#[test]
fn migration_keeps_results_correct_under_alternating_writers() {
    // Writers alternate, so migration may bounce a page around; the data
    // must stay exact regardless.
    let cfg = DsmConfig { home_migration: true, migration_threshold: 2, ..Default::default() };
    let (c, dsm) = cluster_with(3, cfg);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(4096, Distribution::OnNode(0));
        node.barrier(1);
        for round in 0..9u64 {
            if node.rank() == (round % 3) as usize {
                let v = node.read_u64(a);
                node.write_u64(a, v + round);
            }
            node.barrier(2);
        }
        node.read_u64(a)
    });
    let expect: u64 = (0..9).sum();
    assert_eq!(results, vec![expect; 3]);
}

#[test]
fn dissemination_barrier_is_correct() {
    let sync: cluster::SyncTopology = "dissemination".parse().unwrap();
    for nodes in [2usize, 3, 4, 5] {
        let (c, dsm) = cluster_sync(nodes, sync);
        let (_, results) = c.run(|ctx| {
            let node = dsm.node(ctx);
            let a = node.alloc(nodes * 4096, Distribution::Cyclic);
            node.barrier(1);
            for round in 0..4u64 {
                node.write_u64(a.add(node.rank() as u32 * 4096), round + 1);
                node.barrier(2);
                // Everyone must see everyone's latest write.
                let sum: u64 =
                    (0..nodes).map(|n| node.read_u64(a.add(n as u32 * 4096))).sum();
                assert_eq!(sum, (round + 1) * nodes as u64, "round {round}");
                node.barrier(3);
            }
            node.read_u64(a)
        });
        assert_eq!(results, vec![4; nodes], "{nodes} nodes");
    }
}

#[test]
fn dissemination_barrier_carries_lock_notices_too() {
    let (c, dsm) = cluster_sync(3, "dissemination".parse().unwrap());
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(4096, Distribution::OnNode(0));
        node.barrier(1);
        for _ in 0..4 {
            node.acquire(5);
            let v = node.read_u64(a);
            node.write_u64(a, v + 1);
            node.release(5);
        }
        node.barrier(2);
        node.read_u64(a)
    });
    assert_eq!(results, vec![12; 3]);
}

#[test]
fn staggered_lock_requests_serialize_completely() {
    // With requests staggered in virtual time and a long hold, every
    // critical section must be disjoint. (Grant *order* is not a
    // simulator invariant: the manager decides eagerly, so a release
    // that reaches it before a virtually-earlier request was even sent
    // grants whoever is present — inherent to virtual-time simulation
    // without conservative lookahead.)
    let (c, dsm) = cluster(4);
    let (_, entries) = c.run(|ctx| {
        let node = dsm.node(ctx);
        node.barrier(1);
        node.ctx().compute(node.rank() as u64 * 5_000_000);
        node.acquire(7);
        let t = node.ctx().clock().now();
        node.ctx().compute(20_000_000); // hold long enough to queue everyone
        node.release(7);
        node.barrier(2);
        t
    });
    // Which waiter wins a race between a release and a not-yet-sent
    // (but virtually earlier) request depends on eager manager
    // decisions — only full serialization is an invariant.
    let mut sorted = entries.clone();
    sorted.sort();
    for w in sorted.windows(2) {
        assert!(w[1] >= w[0] + 20_000_000, "critical sections overlap: {entries:?}");
    }
}

#[test]
fn barriers_distribute_across_manager_nodes() {
    // Different barrier ids are managed by different nodes (id % n);
    // exercise several concurrently and check they stay independent.
    let (c, dsm) = cluster(3);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(3 * 4096, Distribution::Cyclic);
        node.barrier(1);
        for round in 0..3u64 {
            node.write_u64(a.add(node.rank() as u32 * 4096), round + 1);
            // Rotate through barrier ids 10, 11, 12 (managers 1, 2, 0).
            node.barrier(10 + round as u32);
        }
        (0..3).map(|n| node.read_u64(a.add(n * 4096))).sum::<u64>()
    });
    assert_eq!(results, vec![9, 9, 9]);
}

#[test]
fn eviction_and_migration_compose() {
    // A tiny cache plus home migration: pages bounce and evict without
    // losing data.
    let cfg = DsmConfig {
        cache_pages: 2,
        home_migration: true,
        migration_threshold: 2,
        ..Default::default()
    };
    let (c, dsm) = cluster_with(2, cfg);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(6 * 4096, Distribution::OnNode(0));
        node.barrier(1);
        for round in 0..6u64 {
            if node.rank() == 1 {
                for p in 0..6u32 {
                    let addr = a.add(p * 4096);
                    let v = node.read_u64(addr);
                    node.write_u64(addr, v + round + p as u64);
                }
            }
            node.barrier(2);
        }
        (0..6u32).map(|p| node.read_u64(a.add(p * 4096))).sum::<u64>()
    });
    // Each page accumulates sum(round) + 6*p = 15 + 6p.
    let expect: u64 = (0..6).map(|p| 15 + 6 * p).sum();
    assert_eq!(results, vec![expect, expect]);
}

#[test]
fn adopt_is_idempotent_across_nodes() {
    let (c, dsm) = cluster(3);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = if node.rank() == 1 {
            let a = node.alloc_local(4096);
            node.write_u64(a, 9);
            a
        } else {
            memwire::GlobalAddr::new((1 << 24) * 2, 0)
        };
        // Everyone adopts, including the allocator itself, twice.
        node.adopt(a, 4096, 1);
        node.adopt(a, 4096, 1);
        node.barrier(1);
        node.read_u64(a)
    });
    assert_eq!(results, vec![9, 9, 9]);
}

#[test]
fn exit_flushes_final_interval() {
    let (c, dsm) = cluster(2);
    let (_, _) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(4096, Distribution::OnNode(0));
        node.barrier(1);
        if node.rank() == 1 {
            node.write_u64(a, 31);
        }
        node.exit();
        // After exit, the home (node 0) must hold the write.
        if node.rank() == 0 {
            assert_eq!(node.read_u64(a), 31);
        }
    });
}

#[test]
fn tree_barrier_is_correct_across_shapes() {
    // Every fanout/size combination must behave exactly like the
    // central barrier: all writes visible after the wave.
    for (nodes, spec) in
        [(2usize, "tree:2"), (5, "tree:2"), (7, "tree:3"), (9, "tree"), (16, "tree:4")]
    {
        let (c, dsm) = cluster_sync(nodes, spec.parse().unwrap());
        let (_, results) = c.run(|ctx| {
            let node = dsm.node(ctx);
            let a = node.alloc(nodes * 4096, Distribution::Cyclic);
            node.barrier(1);
            for round in 0..3u64 {
                node.write_u64(a.add(node.rank() as u32 * 4096), round + 1);
                node.barrier(2);
                let sum: u64 =
                    (0..nodes).map(|n| node.read_u64(a.add(n as u32 * 4096))).sum();
                assert_eq!(sum, (round + 1) * nodes as u64, "{spec} x{nodes} round {round}");
                node.barrier(3);
            }
            node.read_u64(a)
        });
        assert_eq!(results, vec![3; nodes], "{spec} x{nodes}");
    }
}

#[test]
fn tree_barrier_message_volume_is_linear() {
    // One tree barrier costs exactly 2(n-1) cross-node messages:
    // n-1 aggregations up plus n-1 release waves down.
    for nodes in [4usize, 8, 13] {
        let (c, dsm) = cluster_sync(nodes, "tree:2".parse().unwrap());
        let (_, _) = c.run(|ctx| {
            let node = dsm.node(ctx);
            node.barrier(1);
        });
        let msgs: u64 = (0..nodes).map(|n| dsm.stats(n).get("sync_msgs")).sum();
        assert_eq!(msgs, 2 * (nodes as u64 - 1), "{nodes} nodes");
        let waves: u64 = (0..nodes).map(|n| dsm.stats(n).get("tree_waves")).sum();
        assert_eq!(waves, nodes as u64 - 1);
    }
}

#[test]
fn token_queue_lock_counter_is_exact() {
    const PER_NODE: u64 = 8;
    let sync = cluster::SyncTopology {
        locks: cluster::LockTopology::TokenQueue,
        ..cluster::SyncTopology::centralized()
    };
    for nodes in [2usize, 3, 5] {
        let (c, dsm) = cluster_sync(nodes, sync);
        let (_, results) = c.run(|ctx| {
            let node = dsm.node(ctx);
            let a = node.alloc(4096, Distribution::Block);
            node.barrier(1);
            for _ in 0..PER_NODE {
                node.acquire(9);
                let v = node.read_u64(a);
                node.write_u64(a, v + 1);
                node.release(9);
            }
            node.barrier(2);
            node.read_u64(a)
        });
        assert_eq!(results, vec![nodes as u64 * PER_NODE; nodes], "{nodes} nodes");
    }
}

#[test]
fn token_queue_passes_directly_between_contenders() {
    // Under contention the token must travel releaser -> successor
    // without a manager round trip: token_forwards > 0.
    let sync = cluster::SyncTopology {
        locks: cluster::LockTopology::TokenQueue,
        ..cluster::SyncTopology::centralized()
    };
    let (c, dsm) = cluster_sync(4, sync);
    let (_, entries) = c.run(|ctx| {
        let node = dsm.node(ctx);
        node.barrier(1);
        node.acquire(5);
        let t = node.ctx().clock().now();
        node.ctx().compute(1_000_000);
        node.release(5);
        node.barrier(2);
        t
    });
    let mut sorted = entries.clone();
    sorted.sort();
    for w in sorted.windows(2) {
        assert!(w[1] >= w[0] + 1_000_000, "critical sections overlap: {entries:?}");
    }
    let forwards: u64 = (0..4).map(|n| dsm.stats(n).get("token_forwards")).sum();
    assert!(forwards >= 1, "contended release must forward the token, got {forwards}");
}

#[test]
fn digest_notices_invalidate_stale_copies() {
    let sync = cluster::SyncTopology {
        notices: cluster::NoticeWire::Digest { max_runs: 64 },
        ..cluster::SyncTopology::centralized()
    };
    let (c, dsm) = cluster_sync(2, sync);
    let (_, results) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(4096, Distribution::OnNode(0));
        node.barrier(1);
        if node.rank() == 1 {
            let first = node.read_u64(a);
            node.barrier(2);
            node.barrier(3);
            let second = node.read_u64(a);
            (first, second)
        } else {
            node.barrier(2);
            node.write_u64(a, 5);
            node.barrier(3);
            (0, 0)
        }
    });
    assert_eq!(results[1], (0, 5));
    assert!(dsm.stats(1).get("digest_hits") >= 1);
}

#[test]
fn scalable_preset_matches_centralized_results() {
    // The full scalable stack (tree barrier + token locks + digests)
    // must compute bit-identical results to the centralized protocols.
    let run = |sync: cluster::SyncTopology| {
        let (c, dsm) = cluster_sync(5, sync);
        let (_, results) = c.run(|ctx| {
            let node = dsm.node(ctx);
            let a = node.alloc(5 * 4096, Distribution::Cyclic);
            let counter = node.alloc(4096, Distribution::OnNode(0));
            node.barrier(1);
            for round in 0..4u64 {
                node.write_u64(a.add(node.rank() as u32 * 4096), round * 10 + node.rank() as u64);
                node.acquire(3);
                let v = node.read_u64(counter);
                node.write_u64(counter, v + 1);
                node.release(3);
                node.barrier(2);
            }
            let grid: u64 = (0..5).map(|n| node.read_u64(a.add(n * 4096))).sum();
            (grid, node.read_u64(counter))
        });
        results
    };
    let central = run(cluster::SyncTopology::centralized());
    let scalable = run(cluster::SyncTopology::scalable());
    assert_eq!(central, scalable);
    assert_eq!(central[0].1, 20);
}

#[test]
fn tree_barrier_heals_lost_release_waves() {
    // A release wave lost mid-tree-barrier must heal: the child's
    // resilient TREE_AGG request times out, the retry re-drives the
    // tree state machine, and the parent replays its cached wave.
    // Barrier 8 on 4 nodes roots the tree at node 0 (8 % 4); with
    // fanout 2 its children are nodes 1 and 2, so dropping traffic on
    // the root's downlinks loses waves specifically (the uplink
    // 1 -> 0 loses aggregates too, for good measure). 30% loss on the
    // doubly-lossy 1 <-> 0 edge means ~half the exchanges need at
    // least one retry; the widened retry budget keeps exhaustion (a
    // deliberate fatal) out of reach.
    use interconnect::fault::{FaultPlan, LinkFaults};
    let lossy = LinkFaults { drop_ppm: 300_000, ..LinkFaults::default() };
    let mut plan = FaultPlan::seeded(7);
    plan.per_link = vec![((0, 1), lossy), ((0, 2), lossy), ((1, 0), lossy)];
    let sync = cluster::SyncTopology {
        barrier: cluster::BarrierTopology::Tree { fanout: 2 },
        locks: cluster::LockTopology::Manager,
        notices: cluster::NoticeWire::Digest { max_runs: 64 },
    };
    let c = Cluster::new(
        FabricConfig::builder()
            .nodes(4)
            .link(LinkKind::Ethernet)
            .sync(sync)
            .chaos(plan)
            .resilience(interconnect::Resilience {
                retry: interconnect::fault::RetryPolicy {
                    max_attempts: 24,
                    ..interconnect::fault::RetryPolicy::default()
                },
                ..interconnect::Resilience::default()
            })
            .build(),
    );
    let dsm = SwDsm::install(&c, DsmConfig::default());
    let (report, vals) = c.run(|ctx| {
        let node = dsm.node(ctx);
        let a = node.alloc(4 * 8, Distribution::OnNode(0));
        node.barrier(8);
        for round in 0..6u64 {
            node.write_u64(a.add(node.rank() as u32 * 8), round * 100 + node.rank() as u64);
            node.barrier(8);
        }
        (0..4u32).map(|r| node.read_u64(a.add(r * 8))).collect::<Vec<_>>()
    });
    for (rank, vs) in vals.iter().enumerate() {
        assert_eq!(vs, &[500, 501, 502, 503], "rank {rank} read a stale grid");
    }
    let stat = |k: &str| report.net_stats.get(k).copied().unwrap_or(0);
    assert!(stat("faults_dropped") > 0, "the plan never dropped anything");
    assert!(stat("retries") > 0, "lost tree traffic was never retried");
}
