//! Per-node cached-page table for the software DSM.

use crate::addr::{PageId, PAGE_SIZE};
use std::collections::HashMap;

/// Local access rights for a cached page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Cached copy valid for reading only.
    ReadOnly,
    /// Cached copy writable; a twin exists for diffing.
    Writable,
}

/// One cached (non-home) page.
#[derive(Debug, Clone)]
pub struct CachedPage {
    /// Current access rights.
    pub state: PageState,
    /// The cached copy's contents.
    pub data: Vec<u8>,
    /// Pristine snapshot taken on the first write of the interval.
    pub twin: Option<Vec<u8>>,
}

impl CachedPage {
    /// A freshly fetched read-only copy.
    pub fn read_only(data: Vec<u8>) -> Self {
        assert_eq!(data.len(), PAGE_SIZE);
        Self { state: PageState::ReadOnly, data, twin: None }
    }

    /// Upgrade to writable, snapshotting the twin.
    pub fn make_writable(&mut self) {
        if self.state == PageState::ReadOnly {
            self.twin = Some(self.data.clone());
            self.state = PageState::Writable;
        }
    }
}

/// The page table of one node: every remotely homed page currently
/// cached, with its access state.
#[derive(Debug, Default)]
pub struct PageTable {
    pages: HashMap<PageId, CachedPage>,
    /// Installation order, for FIFO victim selection under a bounded
    /// cache (stale entries are skipped lazily).
    order: std::collections::VecDeque<PageId>,
}

impl PageTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a cached page.
    pub fn get(&self, id: PageId) -> Option<&CachedPage> {
        self.pages.get(&id)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: PageId) -> Option<&mut CachedPage> {
        self.pages.get_mut(&id)
    }

    /// Install a fetched copy (replacing any stale one).
    pub fn install(&mut self, id: PageId, page: CachedPage) {
        if self.pages.insert(id, page).is_none() {
            self.order.push_back(id);
        }
    }

    /// Pick an eviction victim in FIFO order, preferring clean
    /// (read-only) pages; a dirty page is returned only when every
    /// cached page is dirty. `None` when the table is empty.
    pub fn victim(&mut self) -> Option<(PageId, PageState)> {
        // Drop stale order entries (pages already invalidated).
        self.order.retain(|id| self.pages.contains_key(id));
        let clean = self
            .order
            .iter()
            .position(|id| self.pages[id].state == PageState::ReadOnly);
        let idx = clean.unwrap_or(0);
        let id = *self.order.get(idx)?;
        Some((id, self.pages[&id].state))
    }

    /// Drop a cached copy (invalidation). Returns true if it was present.
    pub fn invalidate(&mut self, id: PageId) -> bool {
        self.pages.remove(&id).is_some()
    }

    /// Ids of every cached page, sorted (deterministic iteration for
    /// digest-candidate scans).
    pub fn cached_pages(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self.pages.keys().copied().collect();
        v.sort();
        v
    }

    /// Ids of all pages currently writable (i.e. dirty this interval).
    pub fn writable_pages(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self
            .pages
            .iter()
            .filter(|(_, p)| p.state == PageState::Writable)
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    /// Downgrade a page to read-only, returning `(twin, current)` for
    /// diffing. Panics if the page is not writable (protocol bug).
    pub fn downgrade(&mut self, id: PageId) -> (Vec<u8>, Vec<u8>) {
        let p = self.pages.get_mut(&id).expect("downgrade of uncached page");
        assert_eq!(p.state, PageState::Writable, "downgrade of read-only page");
        let twin = p.twin.take().expect("writable page without twin");
        p.state = PageState::ReadOnly;
        (twin, p.data.clone())
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Remove everything (e.g. at exit).
    pub fn clear(&mut self) {
        self.pages.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> PageId {
        PageId { region: 0, index: i }
    }

    #[test]
    fn install_get_invalidate() {
        let mut t = PageTable::new();
        t.install(pid(1), CachedPage::read_only(vec![0; PAGE_SIZE]));
        assert!(t.get(pid(1)).is_some());
        assert!(t.invalidate(pid(1)));
        assert!(!t.invalidate(pid(1)));
        assert!(t.is_empty());
    }

    #[test]
    fn make_writable_snapshots_twin() {
        let mut p = CachedPage::read_only(vec![5; PAGE_SIZE]);
        p.make_writable();
        assert_eq!(p.state, PageState::Writable);
        assert_eq!(p.twin.as_deref(), Some(vec![5u8; PAGE_SIZE].as_slice()));
        // Idempotent: a second call must not re-snapshot modified data.
        p.data[0] = 9;
        p.make_writable();
        assert_eq!(p.twin.as_ref().unwrap()[0], 5);
    }

    #[test]
    fn writable_pages_lists_dirty_only() {
        let mut t = PageTable::new();
        t.install(pid(1), CachedPage::read_only(vec![0; PAGE_SIZE]));
        t.install(pid(2), CachedPage::read_only(vec![0; PAGE_SIZE]));
        t.get_mut(pid(2)).unwrap().make_writable();
        assert_eq!(t.writable_pages(), vec![pid(2)]);
    }

    #[test]
    fn downgrade_returns_twin_and_current() {
        let mut t = PageTable::new();
        t.install(pid(3), CachedPage::read_only(vec![1; PAGE_SIZE]));
        let p = t.get_mut(pid(3)).unwrap();
        p.make_writable();
        p.data[10] = 2;
        let (twin, cur) = t.downgrade(pid(3));
        assert_eq!(twin[10], 1);
        assert_eq!(cur[10], 2);
        assert_eq!(t.get(pid(3)).unwrap().state, PageState::ReadOnly);
        assert!(t.writable_pages().is_empty());
    }

    #[test]
    fn victim_prefers_clean_fifo() {
        let mut t = PageTable::new();
        t.install(pid(1), CachedPage::read_only(vec![0; PAGE_SIZE]));
        t.install(pid(2), CachedPage::read_only(vec![0; PAGE_SIZE]));
        t.get_mut(pid(1)).unwrap().make_writable();
        // Page 2 is the oldest *clean* page.
        assert_eq!(t.victim(), Some((pid(2), PageState::ReadOnly)));
        t.invalidate(pid(2));
        // Only the dirty page remains.
        assert_eq!(t.victim(), Some((pid(1), PageState::Writable)));
        t.invalidate(pid(1));
        assert_eq!(t.victim(), None);
    }

    #[test]
    fn victim_skips_stale_order_entries() {
        let mut t = PageTable::new();
        t.install(pid(1), CachedPage::read_only(vec![0; PAGE_SIZE]));
        t.install(pid(2), CachedPage::read_only(vec![0; PAGE_SIZE]));
        t.invalidate(pid(1));
        assert_eq!(t.victim(), Some((pid(2), PageState::ReadOnly)));
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn downgrade_readonly_panics() {
        let mut t = PageTable::new();
        t.install(pid(4), CachedPage::read_only(vec![0; PAGE_SIZE]));
        let _ = t.downgrade(pid(4));
    }
}
