//! Global addresses, regions, and pages.
//!
//! The global memory abstraction (paper §3.1) names memory with
//! region-relative addresses: an allocation call yields a region, and all
//! shared accesses are `(region, offset)` pairs packed into a
//! [`GlobalAddr`]. Page granularity matters to the software DSM (fault,
//! twin, and diff units) and to home placement in both DSMs.

/// Size of a DSM page in bytes (the testbed's x86 page size).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of an allocated global region.
pub type RegionId = u32;

/// A global address: region id in the high 32 bits, byte offset within
/// the region in the low 32 bits (regions are < 4 GiB, ample for the
/// paper's working sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalAddr(pub u64);

impl GlobalAddr {
    /// Address of `offset` within `region`.
    #[inline]
    pub fn new(region: RegionId, offset: u32) -> Self {
        Self(((region as u64) << 32) | offset as u64)
    }

    /// The region this address points into.
    #[inline]
    pub fn region(self) -> RegionId {
        (self.0 >> 32) as RegionId
    }

    /// Byte offset within the region.
    #[inline]
    pub fn offset(self) -> u32 {
        self.0 as u32
    }

    /// The page containing this address.
    #[inline]
    pub fn page(self) -> PageId {
        PageId { region: self.region(), index: self.offset() / PAGE_SIZE as u32 }
    }

    /// Byte offset within the containing page.
    #[inline]
    pub fn page_offset(self) -> usize {
        self.offset() as usize % PAGE_SIZE
    }

    /// This address displaced by `bytes`.
    #[inline]
    #[allow(clippy::should_implement_trait)] // address arithmetic, not ops::Add
    pub fn add(self, bytes: u32) -> Self {
        Self::new(self.region(), self.offset() + bytes)
    }
}

/// A page within a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// The region this page belongs to.
    pub region: RegionId,
    /// Zero-based page index within the region.
    pub index: u32,
}

impl PageId {
    /// Address of the first byte of this page.
    pub fn base(self) -> GlobalAddr {
        GlobalAddr::new(self.region, self.index * PAGE_SIZE as u32)
    }

    /// Pack into a u64 (for wire messages and mailbox tags).
    pub fn pack(self) -> u64 {
        ((self.region as u64) << 32) | self.index as u64
    }

    /// Unpack from [`PageId::pack`].
    pub fn unpack(v: u64) -> Self {
        Self { region: (v >> 32) as u32, index: v as u32 }
    }
}

/// Number of pages needed to hold `bytes`.
pub fn pages_for(bytes: usize) -> u32 {
    bytes.div_ceil(PAGE_SIZE) as u32
}

/// The range of pages `[first, last]` touched by `len` bytes at `addr`.
pub fn page_span(addr: GlobalAddr, len: usize) -> (PageId, PageId) {
    assert!(len > 0, "empty span has no pages");
    let first = addr.page();
    let last = addr.add(len as u32 - 1).page();
    (first, last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_packing() {
        let a = GlobalAddr::new(3, 0x1234);
        assert_eq!(a.region(), 3);
        assert_eq!(a.offset(), 0x1234);
        assert_eq!(a.page(), PageId { region: 3, index: 1 });
        assert_eq!(a.page_offset(), 0x234);
    }

    #[test]
    fn page_base_and_pack_roundtrip() {
        let p = PageId { region: 9, index: 7 };
        assert_eq!(p.base(), GlobalAddr::new(9, 7 * 4096));
        assert_eq!(PageId::unpack(p.pack()), p);
    }

    #[test]
    fn add_moves_within_region() {
        let a = GlobalAddr::new(1, 100).add(28);
        assert_eq!(a, GlobalAddr::new(1, 128));
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
    }

    #[test]
    fn page_span_covers_straddles() {
        let (f, l) = page_span(GlobalAddr::new(0, 4090), 10);
        assert_eq!(f.index, 0);
        assert_eq!(l.index, 1);
        let (f, l) = page_span(GlobalAddr::new(0, 0), 4096);
        assert_eq!((f.index, l.index), (0, 0));
    }

    #[test]
    #[should_panic(expected = "empty span")]
    fn empty_span_panics() {
        let _ = page_span(GlobalAddr::new(0, 0), 0);
    }
}
