//! Region allocation with distribution annotations.
//!
//! HAMSTER's memory-management module lets the user "specify coherence
//! constraints and distribution annotations for any memory subsystem"
//! (paper §4.2). The [`Distribution`] enum captures the placement
//! annotations; [`Arena`] is the in-region bump allocator backing
//! fine-grained allocation calls (`Tmk_malloc`, `jia_alloc`, …).

use crate::addr::{GlobalAddr, RegionId, PAGE_SIZE};

/// Layout hint for a shared allocation: how much to pad each logical
/// element run (a matrix row, a counter slot) so that concurrent
/// writers land on disjoint pages or cache lines.
///
/// This is the memory side of the tuner's false-sharing action: the
/// analyzer flags pages written by several nodes at disjoint offsets,
/// and the advisor answers with a `PadTo` hint that the workload's
/// allocation honors on the next run. Padding never changes the values
/// a workload computes — only where they live — so checksums are
/// unaffected by any hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlignHint {
    /// Natural packed layout (stride = element size).
    #[default]
    None,
    /// Round each element run up to the next multiple of `bytes`
    /// (a power of two; `PAGE_SIZE` gives every run its own page).
    PadTo(u32),
}

impl AlignHint {
    /// The hint that pads each element run to a whole page.
    pub fn page() -> Self {
        AlignHint::PadTo(PAGE_SIZE as u32)
    }

    /// The stride (bytes between consecutive element runs) this hint
    /// produces for runs of `natural` bytes.
    pub fn padded_stride(self, natural: usize) -> usize {
        match self {
            AlignHint::None => natural,
            AlignHint::PadTo(bytes) => {
                assert!(
                    bytes.is_power_of_two(),
                    "AlignHint::PadTo must be a power of two, got {bytes}"
                );
                natural.div_ceil(bytes as usize) * bytes as usize
            }
        }
    }
}

/// How a region's pages are assigned home nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Contiguous chunks of pages per node (the default for array codes).
    Block,
    /// Pages dealt round-robin across nodes.
    Cyclic,
    /// Chunks of `N` pages dealt round-robin across nodes (aligning a
    /// multi-page row or block with one home).
    BlockCyclic(u32),
    /// All pages homed on one node (TreadMarks-style single-node
    /// allocation; also used for small control structures).
    OnNode(usize),
}

impl Distribution {
    /// Home node for `page_index` of a region of `total_pages`, over
    /// `nodes` nodes.
    pub fn home_of(self, page_index: u32, total_pages: u32, nodes: usize) -> usize {
        assert!(nodes > 0);
        assert!(page_index < total_pages.max(1));
        match self {
            Distribution::Block => {
                let chunk = total_pages.max(1).div_ceil(nodes as u32);
                ((page_index / chunk) as usize).min(nodes - 1)
            }
            Distribution::Cyclic => page_index as usize % nodes,
            Distribution::BlockCyclic(chunk) => {
                assert!(chunk > 0, "BlockCyclic chunk must be positive");
                (page_index / chunk) as usize % nodes
            }
            Distribution::OnNode(n) => {
                assert!(n < nodes, "home node {n} out of range");
                n
            }
        }
    }
}

/// Bump allocator inside one region.
#[derive(Debug)]
pub struct Arena {
    region: RegionId,
    size: u32,
    next: u32,
}

impl Arena {
    /// An arena over a region of `size` bytes.
    pub fn new(region: RegionId, size: usize) -> Self {
        assert!(size > 0 && size <= u32::MAX as usize, "region size out of range");
        Self { region, size: size as u32, next: 0 }
    }

    /// Allocate `bytes` aligned to `align` (a power of two). Returns
    /// `None` when the region is exhausted.
    pub fn alloc(&mut self, bytes: usize, align: usize) -> Option<GlobalAddr> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(bytes > 0, "zero-sized allocation");
        let mask = align as u32 - 1;
        let start = (self.next + mask) & !mask;
        let end = start.checked_add(bytes as u32)?;
        if end > self.size {
            return None;
        }
        self.next = end;
        Some(GlobalAddr::new(self.region, start))
    }

    /// Allocate a whole number of pages, page-aligned.
    pub fn alloc_pages(&mut self, pages: u32) -> Option<GlobalAddr> {
        self.alloc(pages as usize * PAGE_SIZE, PAGE_SIZE)
    }

    /// Bytes remaining (ignoring alignment padding).
    pub fn remaining(&self) -> usize {
        (self.size - self.next) as usize
    }

    /// The region this arena allocates from.
    pub fn region(&self) -> RegionId {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_hint_strides() {
        assert_eq!(AlignHint::None.padded_stride(960), 960);
        assert_eq!(AlignHint::PadTo(64).padded_stride(960), 960);
        assert_eq!(AlignHint::PadTo(64).padded_stride(970), 1024);
        assert_eq!(AlignHint::page().padded_stride(960), PAGE_SIZE);
        assert_eq!(AlignHint::page().padded_stride(PAGE_SIZE), PAGE_SIZE);
        assert_eq!(AlignHint::page().padded_stride(PAGE_SIZE + 1), 2 * PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_hint_rejects_non_power_of_two() {
        let _ = AlignHint::PadTo(96).padded_stride(100);
    }

    #[test]
    fn block_distribution_chunks() {
        // 8 pages over 4 nodes -> 2 pages per node.
        let d = Distribution::Block;
        let homes: Vec<usize> = (0..8).map(|i| d.home_of(i, 8, 4)).collect();
        assert_eq!(homes, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn block_distribution_uneven() {
        // 5 pages over 4 nodes -> chunk of 2: homes 0,0,1,1,2.
        let d = Distribution::Block;
        let homes: Vec<usize> = (0..5).map(|i| d.home_of(i, 5, 4)).collect();
        assert_eq!(homes, vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn cyclic_distribution_wraps() {
        let d = Distribution::Cyclic;
        let homes: Vec<usize> = (0..5).map(|i| d.home_of(i, 5, 3)).collect();
        assert_eq!(homes, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn block_cyclic_chunks_round_robin() {
        let d = Distribution::BlockCyclic(2);
        let homes: Vec<usize> = (0..8).map(|i| d.home_of(i, 8, 3)).collect();
        assert_eq!(homes, vec![0, 0, 1, 1, 2, 2, 0, 0]);
    }

    #[test]
    fn on_node_pins() {
        let d = Distribution::OnNode(2);
        assert!((0..4).all(|i| d.home_of(i, 4, 4) == 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn on_node_out_of_range() {
        Distribution::OnNode(5).home_of(0, 1, 4);
    }

    #[test]
    fn arena_bump_and_align() {
        let mut a = Arena::new(7, 4096);
        let x = a.alloc(10, 8).unwrap();
        assert_eq!(x.offset(), 0);
        let y = a.alloc(10, 64).unwrap();
        assert_eq!(y.offset(), 64);
        assert_eq!(y.region(), 7);
    }

    #[test]
    fn arena_exhaustion() {
        let mut a = Arena::new(0, 100);
        assert!(a.alloc(64, 1).is_some());
        assert!(a.alloc(64, 1).is_none());
        assert_eq!(a.remaining(), 36);
    }

    #[test]
    fn alloc_pages_is_page_aligned() {
        let mut a = Arena::new(0, 3 * PAGE_SIZE);
        let _ = a.alloc(100, 8).unwrap();
        let p = a.alloc_pages(1).unwrap();
        assert_eq!(p.page_offset(), 0);
        assert_eq!(p.page().index, 1);
    }
}
