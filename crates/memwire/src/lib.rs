#![warn(missing_docs)]
//! Shared-memory bookkeeping common to all DSM backends.
//!
//! HAMSTER's memory-management module and both DSM substrates (the
//! JiaJia-style software DSM and the SCI-VM-style hybrid DSM) share the
//! same low-level vocabulary, which this crate provides:
//!
//! * [`addr`] — global addresses, regions, pages ([`GlobalAddr`],
//!   [`PageId`], [`PAGE_SIZE`]).
//! * [`page`] — page buffers and the per-node cached-page table.
//! * [`diff`] — twin/diff machinery for write detection (run-length
//!   encoded against a pristine twin, as in TreadMarks/JiaJia).
//! * [`notice`] — write notices exchanged at synchronization points.
//! * [`arena`] — bump allocation inside a region, with distribution
//!   annotations (paper §4.2, Memory Management module).
//! * [`store`] — a process-shared, atomically accessed region store used
//!   by the platforms where memory is physically shared (SMP hardware
//!   coherence; SCI remote memory).

pub mod addr;
pub mod arena;
pub mod dir;
pub mod diff;
pub mod notice;
pub mod page;
pub mod store;

pub use addr::{page_span, pages_for, GlobalAddr, PageId, RegionId, PAGE_SIZE};
pub use arena::{AlignHint, Arena, Distribution};
pub use dir::{RegionDir, RegionMeta};
pub use diff::Diff;
pub use notice::{Interval, WriteNotice};
pub use page::{CachedPage, PageState, PageTable};
pub use store::RegionStore;
