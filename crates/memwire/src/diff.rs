//! Twin/diff write detection.
//!
//! The software DSM detects modifications the TreadMarks/JiaJia way: the
//! first write to a page in an interval snapshots a pristine *twin*; at a
//! release point the current page is compared against the twin and the
//! changed byte runs are encoded as a *diff*, which is shipped to the
//! page's home and applied there. Diffs from different writers to
//! disjoint parts of a page merge cleanly (the usual false-sharing
//! remedy of multiple-writer protocols).

use crate::addr::PAGE_SIZE;

/// One run of modified bytes within a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRun {
    /// Byte offset of the run within the page.
    pub offset: u16,
    /// The new bytes.
    pub bytes: Vec<u8>,
}

/// The encoded difference between a twin and the current page contents.
///
/// ```
/// use memwire::{Diff, PAGE_SIZE};
/// let twin = vec![0u8; PAGE_SIZE];
/// let mut page = twin.clone();
/// page[100..108].copy_from_slice(&0x0102030405060708u64.to_le_bytes());
/// let diff = Diff::between(&twin, &page);
/// assert_eq!(diff.changed_bytes(), 8);
///
/// let mut home = twin.clone();
/// diff.apply(&mut home);
/// assert_eq!(home, page);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diff {
    /// The changed byte runs, in ascending offset order.
    pub runs: Vec<DiffRun>,
}

impl Diff {
    /// Compare `current` against its pristine `twin` and encode the
    /// changed runs. Both slices must be exactly one page.
    pub fn between(twin: &[u8], current: &[u8]) -> Self {
        assert_eq!(twin.len(), PAGE_SIZE, "twin must be one page");
        assert_eq!(current.len(), PAGE_SIZE, "page must be one page");
        let mut runs = Vec::new();
        let mut i = 0;
        while i < PAGE_SIZE {
            if twin[i] != current[i] {
                let start = i;
                while i < PAGE_SIZE && twin[i] != current[i] {
                    i += 1;
                }
                runs.push(DiffRun { offset: start as u16, bytes: current[start..i].to_vec() });
            } else {
                i += 1;
            }
        }
        Self { runs }
    }

    /// Apply this diff to `page` (the home copy).
    pub fn apply(&self, page: &mut [u8]) {
        assert_eq!(page.len(), PAGE_SIZE, "target must be one page");
        for run in &self.runs {
            let start = run.offset as usize;
            page[start..start + run.bytes.len()].copy_from_slice(&run.bytes);
        }
    }

    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total count of changed bytes.
    pub fn changed_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.bytes.len()).sum()
    }

    /// Size of this diff on the wire: 4 bytes of header per run plus the
    /// payload bytes (matches the JiaJia encoding granularity).
    pub fn wire_bytes(&self) -> u64 {
        self.runs.iter().map(|r| 4 + r.bytes.len() as u64).sum::<u64>() + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn identical_pages_give_empty_diff() {
        let twin = page_of(0);
        let d = Diff::between(&twin, &twin);
        assert!(d.is_empty());
        assert_eq!(d.changed_bytes(), 0);
    }

    #[test]
    fn single_run_encoded() {
        let twin = page_of(0);
        let mut cur = twin.clone();
        cur[100..110].fill(7);
        let d = Diff::between(&twin, &cur);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 100);
        assert_eq!(d.runs[0].bytes, vec![7; 10]);
    }

    #[test]
    fn apply_reconstructs_current() {
        let twin = page_of(1);
        let mut cur = twin.clone();
        cur[0] = 9;
        cur[4095] = 9;
        cur[2000..2100].fill(3);
        let d = Diff::between(&twin, &cur);
        let mut home = twin.clone();
        d.apply(&mut home);
        assert_eq!(home, cur);
    }

    #[test]
    fn disjoint_diffs_merge() {
        // Two writers modify disjoint halves of the same page; applying
        // both diffs to the home must preserve both sets of writes
        // (multiple-writer protocol invariant).
        let twin = page_of(0);
        let mut a = twin.clone();
        a[..100].fill(1);
        let mut b = twin.clone();
        b[200..300].fill(2);
        let da = Diff::between(&twin, &a);
        let db = Diff::between(&twin, &b);
        let mut home = twin.clone();
        da.apply(&mut home);
        db.apply(&mut home);
        assert!(home[..100].iter().all(|&x| x == 1));
        assert!(home[200..300].iter().all(|&x| x == 2));
        assert!(home[100..200].iter().all(|&x| x == 0));
    }

    #[test]
    fn wire_bytes_tracks_payload() {
        let twin = page_of(0);
        let mut cur = twin.clone();
        cur[0..8].fill(5);
        let d = Diff::between(&twin, &cur);
        assert_eq!(d.wire_bytes(), 8 + 4 + 8);
    }

    #[test]
    #[should_panic(expected = "one page")]
    fn wrong_size_rejected() {
        let _ = Diff::between(&[0u8; 10], &[0u8; 10]);
    }
}
