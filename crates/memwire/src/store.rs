//! Process-shared region storage for hardware-backed platforms.
//!
//! On the SMP platform (hardware cache coherence) and on the hybrid-DSM
//! platform (SCI remote memory), every node can physically load and store
//! any global location; only the *cost* differs. [`RegionStore`] provides
//! that physical substrate inside the simulation process: regions of
//! relaxed-atomic bytes that all node threads may access concurrently.
//!
//! Byte-level relaxed atomics mirror real hardware: racy unsynchronized
//! accesses may tear (exactly as on the machine), while properly
//! synchronized programs — which charge lock/barrier/flush costs through
//! the DSM layers — observe coherent values.

use crate::addr::{GlobalAddr, RegionId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// One physically shared region.
pub struct Region {
    bytes: Box<[AtomicU8]>,
}

impl Region {
    fn new(size: usize) -> Self {
        let mut v = Vec::with_capacity(size);
        v.resize_with(size, || AtomicU8::new(0));
        Self { bytes: v.into_boxed_slice() }
    }

    /// Region size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True for an empty region (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Read `out.len()` bytes at `offset`.
    pub fn read_bytes(&self, offset: usize, out: &mut [u8]) {
        let src = &self.bytes[offset..offset + out.len()];
        for (o, s) in out.iter_mut().zip(src) {
            *o = s.load(Ordering::Relaxed);
        }
    }

    /// Write `data` at `offset`.
    pub fn write_bytes(&self, offset: usize, data: &[u8]) {
        let dst = &self.bytes[offset..offset + data.len()];
        for (d, s) in dst.iter().zip(data) {
            d.store(*s, Ordering::Relaxed);
        }
    }

    /// Read a little-endian u64.
    pub fn read_u64(&self, offset: usize) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(offset, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a little-endian u64.
    pub fn write_u64(&self, offset: usize, v: u64) {
        self.write_bytes(offset, &v.to_le_bytes());
    }

    /// Read an f64.
    pub fn read_f64(&self, offset: usize) -> f64 {
        f64::from_bits(self.read_u64(offset))
    }

    /// Write an f64.
    pub fn write_f64(&self, offset: usize, v: f64) {
        self.write_u64(offset, v.to_bits());
    }
}

/// All physically shared regions of one experiment run.
#[derive(Default)]
pub struct RegionStore {
    regions: RwLock<HashMap<RegionId, Arc<Region>>>,
}

impl RegionStore {
    /// An empty store.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Create a region of `size` zeroed bytes. Panics if the id exists
    /// (allocation is globally coordinated, so a duplicate is a bug).
    pub fn create(&self, id: RegionId, size: usize) -> Arc<Region> {
        let region = Arc::new(Region::new(size));
        let prev = self.regions.write().insert(id, region.clone());
        assert!(prev.is_none(), "region {id} created twice");
        region
    }

    /// Look up a region.
    pub fn get(&self, id: RegionId) -> Arc<Region> {
        self.regions
            .read()
            .get(&id)
            .unwrap_or_else(|| panic!("region {id} does not exist"))
            .clone()
    }

    /// Whether a region exists.
    pub fn exists(&self, id: RegionId) -> bool {
        self.regions.read().contains_key(&id)
    }

    /// Convenience typed access through a [`GlobalAddr`].
    pub fn read_f64(&self, a: GlobalAddr) -> f64 {
        self.get(a.region()).read_f64(a.offset() as usize)
    }

    /// Convenience typed store through a [`GlobalAddr`].
    pub fn write_f64(&self, a: GlobalAddr, v: f64) {
        self.get(a.region()).write_f64(a.offset() as usize, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_read_write() {
        let s = RegionStore::new();
        let r = s.create(1, 64);
        r.write_u64(8, 0xDEAD_BEEF);
        assert_eq!(r.read_u64(8), 0xDEAD_BEEF);
        assert_eq!(r.read_u64(0), 0);
    }

    #[test]
    fn f64_roundtrip() {
        let s = RegionStore::new();
        s.create(2, 64);
        let a = GlobalAddr::new(2, 16);
        s.write_f64(a, 3.25);
        assert_eq!(s.read_f64(a), 3.25);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let s = RegionStore::new();
        let r = s.create(3, 4096);
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        r.write_bytes(100, &data);
        let mut out = vec![0u8; 1000];
        r.read_bytes(100, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    #[should_panic(expected = "created twice")]
    fn duplicate_region_panics() {
        let s = RegionStore::new();
        s.create(4, 8);
        s.create(4, 8);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn missing_region_panics() {
        RegionStore::new().get(99);
    }

    #[test]
    fn concurrent_disjoint_writes_preserved() {
        let s = RegionStore::new();
        let r = s.create(5, 1024);
        std::thread::scope(|sc| {
            for t in 0..4usize {
                let r = &r;
                sc.spawn(move || {
                    r.write_bytes(t * 256, &vec![t as u8 + 1; 256]);
                });
            }
        });
        let mut out = vec![0u8; 1024];
        r.read_bytes(0, &mut out);
        for t in 0..4 {
            assert!(out[t * 256..(t + 1) * 256].iter().all(|&b| b == t as u8 + 1));
        }
    }
}
