//! Write notices and intervals.
//!
//! Scope consistency transmits *which* pages were modified, not the
//! modifications themselves, along synchronization edges: a lock grant
//! carries the notices of intervals performed under that lock, a barrier
//! broadcasts the union of everyone's notices. Receivers invalidate the
//! listed pages so the next access re-fetches a current copy from home.

use crate::addr::PageId;

/// Notice that a page was modified in some interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WriteNotice {
    /// The modified page.
    pub page: PageId,
}

/// One synchronization interval on one node: the pages that node wrote
/// between two consecutive release points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interval {
    /// The pages written in this interval, sorted and deduplicated.
    pub notices: Vec<WriteNotice>,
}

impl Interval {
    /// An interval covering the given modified pages.
    pub fn from_pages(pages: &[PageId]) -> Self {
        let mut notices: Vec<WriteNotice> =
            pages.iter().map(|&page| WriteNotice { page }).collect();
        notices.sort();
        notices.dedup();
        Self { notices }
    }

    /// Merge another interval's notices into this one.
    pub fn merge(&mut self, other: &Interval) {
        self.notices.extend_from_slice(&other.notices);
        self.notices.sort();
        self.notices.dedup();
    }

    /// Wire size: 8 bytes per notice plus a small header.
    pub fn wire_bytes(&self) -> u64 {
        8 + 8 * self.notices.len() as u64
    }

    /// True if no pages were written.
    pub fn is_empty(&self) -> bool {
        self.notices.is_empty()
    }

    /// The noticed page ids.
    pub fn pages(&self) -> impl Iterator<Item = PageId> + '_ {
        self.notices.iter().map(|n| n.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> PageId {
        PageId { region: 0, index: i }
    }

    #[test]
    fn from_pages_sorts_and_dedups() {
        let iv = Interval::from_pages(&[pid(3), pid(1), pid(3)]);
        let pages: Vec<_> = iv.pages().collect();
        assert_eq!(pages, vec![pid(1), pid(3)]);
    }

    #[test]
    fn merge_unions() {
        let mut a = Interval::from_pages(&[pid(1), pid(2)]);
        let b = Interval::from_pages(&[pid(2), pid(5)]);
        a.merge(&b);
        let pages: Vec<_> = a.pages().collect();
        assert_eq!(pages, vec![pid(1), pid(2), pid(5)]);
    }

    #[test]
    fn wire_bytes_scales_with_notices() {
        assert_eq!(Interval::default().wire_bytes(), 8);
        assert_eq!(Interval::from_pages(&[pid(1), pid(2)]).wire_bytes(), 24);
    }

    #[test]
    fn empty_detection() {
        assert!(Interval::default().is_empty());
        assert!(!Interval::from_pages(&[pid(0)]).is_empty());
    }
}
