//! The region directory: cluster-wide agreement on what was allocated.
//!
//! Global allocation in the JiaJia/HLRC/SPMD family is *synchronous*: all
//! nodes call the allocation routine collectively and in the same order
//! (paper §5.2: "these DSM APIs use synchronous allocation routines
//! involving all nodes"). Region ids are therefore assigned
//! deterministically per node, and the directory — replicated metadata
//! on a real cluster — is shared state here, written idempotently by
//! every participant and verified for agreement.

use crate::addr::{pages_for, RegionId};
use crate::arena::Distribution;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Metadata of one allocated region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionMeta {
    /// Requested size in bytes.
    pub size: usize,
    /// Number of pages backing the region.
    pub pages: u32,
    /// Home-placement policy of the region's pages.
    pub dist: Distribution,
}

impl RegionMeta {
    /// Metadata for `size` bytes distributed per `dist`.
    pub fn new(size: usize, dist: Distribution) -> Self {
        assert!(size > 0, "empty region");
        Self { size, pages: pages_for(size), dist }
    }

    /// Home node of `page_index` on a cluster of `nodes`.
    pub fn home_of(&self, page_index: u32, nodes: usize) -> usize {
        self.dist.home_of(page_index, self.pages, nodes)
    }
}

/// The cluster-wide region table.
#[derive(Debug, Default)]
pub struct RegionDir {
    regions: RwLock<HashMap<RegionId, RegionMeta>>,
}

impl RegionDir {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `meta` for `id`. Collective allocation means every node
    /// registers the same metadata; the first write wins and later ones
    /// must agree (divergence is a lockstep violation and panics).
    pub fn register(&self, id: RegionId, meta: RegionMeta) {
        let mut g = self.regions.write();
        match g.get(&id) {
            None => {
                g.insert(id, meta);
            }
            Some(prev) => assert_eq!(
                *prev, meta,
                "collective allocation disagreement on region {id}"
            ),
        }
    }

    /// Metadata of `id`. Panics on unknown regions (use-before-alloc bug).
    pub fn meta(&self, id: RegionId) -> RegionMeta {
        *self
            .regions
            .read()
            .get(&id)
            .unwrap_or_else(|| panic!("region {id} not allocated"))
    }

    /// Whether `id` exists.
    pub fn exists(&self, id: RegionId) -> bool {
        self.regions.read().contains_key(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let d = RegionDir::new();
        let m = RegionMeta::new(10_000, Distribution::Block);
        d.register(1, m);
        assert_eq!(d.meta(1), m);
        assert_eq!(d.meta(1).pages, 3);
        assert!(d.exists(1));
        assert!(!d.exists(2));
    }

    #[test]
    fn idempotent_reregistration() {
        let d = RegionDir::new();
        let m = RegionMeta::new(4096, Distribution::Cyclic);
        d.register(5, m);
        d.register(5, m); // every node registers; same data is fine
    }

    #[test]
    #[should_panic(expected = "disagreement")]
    fn conflicting_registration_panics() {
        let d = RegionDir::new();
        d.register(5, RegionMeta::new(4096, Distribution::Cyclic));
        d.register(5, RegionMeta::new(8192, Distribution::Cyclic));
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn unknown_region_panics() {
        RegionDir::new().meta(9);
    }

    #[test]
    fn home_mapping_through_meta() {
        let m = RegionMeta::new(8 * 4096, Distribution::Block);
        assert_eq!(m.home_of(0, 4), 0);
        assert_eq!(m.home_of(7, 4), 3);
    }
}
