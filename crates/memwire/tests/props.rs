//! Property-based tests for the memory substrate's invariants.

use memwire::{Arena, Diff, Distribution, GlobalAddr, Interval, PageId, PAGE_SIZE};
use proptest::prelude::*;

fn page_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), PAGE_SIZE..=PAGE_SIZE)
}

/// A sparse set of edits applied to a page.
fn edits_strategy() -> impl Strategy<Value = Vec<(usize, u8)>> {
    proptest::collection::vec((0..PAGE_SIZE, any::<u8>()), 0..200)
}

proptest! {
    #[test]
    fn diff_reconstructs_any_modification(twin in page_strategy(), edits in edits_strategy()) {
        let mut current = twin.clone();
        for (off, val) in &edits {
            current[*off] = *val;
        }
        let diff = Diff::between(&twin, &current);
        let mut rebuilt = twin.clone();
        diff.apply(&mut rebuilt);
        prop_assert_eq!(rebuilt, current);
    }

    #[test]
    fn diff_is_empty_iff_no_change(twin in page_strategy(), edits in edits_strategy()) {
        let mut current = twin.clone();
        for (off, val) in &edits {
            current[*off] = *val;
        }
        let diff = Diff::between(&twin, &current);
        prop_assert_eq!(diff.is_empty(), twin == current);
        prop_assert_eq!(diff.changed_bytes(),
            twin.iter().zip(&current).filter(|(a, b)| a != b).count());
    }

    #[test]
    fn disjoint_writers_merge_without_loss(
        twin in page_strategy(),
        edits_a in edits_strategy(),
        edits_b in edits_strategy(),
    ) {
        // Writer B's edits are shifted into the other half of the page
        // so the two edit sets are guaranteed disjoint.
        let mut a = twin.clone();
        for (off, val) in &edits_a {
            a[*off % (PAGE_SIZE / 2)] = *val;
        }
        let mut b = twin.clone();
        for (off, val) in &edits_b {
            b[PAGE_SIZE / 2 + (*off % (PAGE_SIZE / 2))] = *val;
        }
        let da = Diff::between(&twin, &a);
        let db = Diff::between(&twin, &b);
        let mut home = twin.clone();
        da.apply(&mut home);
        db.apply(&mut home);
        // Every byte matches writer A in the low half, writer B in the
        // high half (multiple-writer protocol invariant).
        prop_assert_eq!(&home[..PAGE_SIZE / 2], &a[..PAGE_SIZE / 2]);
        prop_assert_eq!(&home[PAGE_SIZE / 2..], &b[PAGE_SIZE / 2..]);
    }

    #[test]
    fn diff_wire_size_bounded_by_page(twin in page_strategy(), cur in page_strategy()) {
        let diff = Diff::between(&twin, &cur);
        // Each run costs 4 bytes of header; runs are separated by at
        // least one unchanged byte, so there are at most PAGE_SIZE/2
        // runs (+8 bytes of message header).
        let bound = 8 + diff.changed_bytes() as u64 + 4 * (PAGE_SIZE as u64 / 2).max(1);
        prop_assert!(diff.wire_bytes() <= bound);
        prop_assert!(diff.wire_bytes() >= diff.changed_bytes() as u64);
    }

    #[test]
    fn addr_roundtrip(region in 0u32..1_000_000, offset in 0u32..u32::MAX) {
        let a = GlobalAddr::new(region, offset);
        prop_assert_eq!(a.region(), region);
        prop_assert_eq!(a.offset(), offset);
        let page = a.page();
        prop_assert_eq!(page.region, region);
        prop_assert_eq!(page.index as usize, offset as usize / PAGE_SIZE);
        prop_assert_eq!(PageId::unpack(page.pack()), page);
        prop_assert_eq!(
            page.base().offset() as usize + a.page_offset(),
            offset as usize
        );
    }

    #[test]
    fn every_page_gets_a_home_in_range(
        pages in 1u32..10_000,
        nodes in 1usize..64,
        chunk in 1u32..16,
        pin in 0usize..64,
    ) {
        for dist in [
            Distribution::Block,
            Distribution::Cyclic,
            Distribution::BlockCyclic(chunk),
            Distribution::OnNode(pin % nodes),
        ] {
            for probe in [0, pages / 2, pages - 1] {
                let home = dist.home_of(probe, pages, nodes);
                prop_assert!(home < nodes, "{dist:?} sent page {probe} to {home}");
            }
        }
    }

    #[test]
    fn block_distribution_is_monotone(pages in 1u32..5_000, nodes in 1usize..16) {
        let mut last = 0;
        for i in 0..pages {
            let h = Distribution::Block.home_of(i, pages, nodes);
            prop_assert!(h >= last, "block homes must be nondecreasing");
            last = h;
        }
    }

    #[test]
    fn arena_allocations_never_overlap(
        sizes in proptest::collection::vec((1usize..5000, 0u32..4), 1..50)
    ) {
        let mut arena = Arena::new(1, 1 << 20);
        let mut taken: Vec<(u32, u32)> = Vec::new();
        for (bytes, align_pow) in sizes {
            let align = 1usize << align_pow;
            if let Some(addr) = arena.alloc(bytes, align) {
                let start = addr.offset();
                let end = start + bytes as u32;
                prop_assert_eq!(start as usize % align, 0, "misaligned");
                for &(s, e) in &taken {
                    prop_assert!(end <= s || start >= e, "overlap [{start},{end}) vs [{s},{e})");
                }
                taken.push((start, end));
            }
        }
    }

    #[test]
    fn interval_merge_is_set_union(
        a in proptest::collection::vec(0u32..100, 0..30),
        b in proptest::collection::vec(0u32..100, 0..30),
    ) {
        let pid = |i: u32| PageId { region: 0, index: i };
        let mut iv = Interval::from_pages(&a.iter().map(|&i| pid(i)).collect::<Vec<_>>());
        let ivb = Interval::from_pages(&b.iter().map(|&i| pid(i)).collect::<Vec<_>>());
        iv.merge(&ivb);
        let expect: std::collections::BTreeSet<u32> =
            a.iter().chain(b.iter()).copied().collect();
        let got: Vec<u32> = iv.pages().map(|p| p.index).collect();
        prop_assert_eq!(got, expect.into_iter().collect::<Vec<_>>());
    }
}
