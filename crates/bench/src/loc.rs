//! The paper's line-counting methodology (Table 2).
//!
//! "Each count is computed by a simple script that first removes
//! comments and empty lines, and then (to a certain degree)
//! standardizes the coding style" (§5.2). This module reimplements that
//! script for Rust sources: strip `//`-style and block comments and doc
//! comments, drop blank lines, fold lines containing only a closing
//! brace into their predecessor (brace-style standardization), then
//! count lines and exported API calls.

/// Per-model counting result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelCount {
    pub name: &'static str,
    pub lines: usize,
    pub api_calls: usize,
}

impl ModelCount {
    /// Lines of code per API call.
    pub fn lines_per_call(&self) -> f64 {
        self.lines as f64 / self.api_calls.max(1) as f64
    }
}

/// Strip comments (line, block, doc) from Rust source. String literals
/// are respected enough for the model sources (no raw strings with
/// `//` inside).
pub fn strip_comments(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut in_str = false;
    let mut block_depth = 0usize;
    while i < bytes.len() {
        let rest = &src[i..];
        if block_depth > 0 {
            if rest.starts_with("*/") {
                block_depth -= 1;
                i += 2;
            } else if rest.starts_with("/*") {
                block_depth += 1;
                i += 2;
            } else {
                i += rest.chars().next().map_or(1, |c| c.len_utf8());
            }
            continue;
        }
        if in_str {
            if rest.starts_with('\\') {
                out.push_str(&rest[..rest.chars().take(2).map(|c| c.len_utf8()).sum::<usize>()]);
                i += rest.chars().take(2).map(|c| c.len_utf8()).sum::<usize>();
                continue;
            }
            if rest.starts_with('"') {
                in_str = false;
            }
            let c = rest.chars().next().unwrap();
            out.push(c);
            i += c.len_utf8();
            continue;
        }
        if rest.starts_with("//") {
            // Line comment (incl. /// and //!): skip to end of line.
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if rest.starts_with("/*") {
            block_depth = 1;
            i += 2;
            continue;
        }
        if rest.starts_with('"') {
            in_str = true;
            out.push('"');
            i += 1;
            continue;
        }
        let c = rest.chars().next().unwrap();
        out.push(c);
        i += c.len_utf8();
    }
    out
}

/// Count effective lines after comment stripping and style
/// standardization.
pub fn count_lines(src: &str) -> usize {
    let stripped = strip_comments(src);
    let mut count = 0usize;
    for line in stripped.lines() {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        // Style standardization: a line holding only closing
        // punctuation belongs to the statement above.
        if t.chars().all(|c| "}])>,;".contains(c)) {
            continue;
        }
        count += 1;
    }
    count
}

/// Count exported API calls: public functions and exported macros.
pub fn count_api_calls(src: &str) -> usize {
    let stripped = strip_comments(src);
    let mut calls = 0usize;
    for line in stripped.lines() {
        let t = line.trim_start();
        if t.starts_with("pub fn ") || t.starts_with("pub(crate) fn") {
            // Internal helpers prefixed with `_` are not API.
            if !t.starts_with("pub fn _") && t.starts_with("pub fn ") {
                calls += 1;
            }
        } else if t.starts_with("macro_rules!") {
            calls += 1;
        }
    }
    calls
}

/// Count one model source file.
pub fn count_model(name: &'static str, src: &str) -> ModelCount {
    ModelCount { name, lines: count_lines(src), api_calls: count_api_calls(src) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_stripped() {
        let src = "// line\nfn f() {} /* block\nstill block */ fn g() {}\n/// doc\n";
        let s = strip_comments(src);
        assert!(!s.contains("line"));
        assert!(!s.contains("block"));
        assert!(!s.contains("doc"));
        assert!(s.contains("fn f()"));
        assert!(s.contains("fn g()"));
    }

    #[test]
    fn nested_block_comments() {
        let s = strip_comments("a /* x /* y */ z */ b");
        assert_eq!(s.trim(), "a  b");
    }

    #[test]
    fn strings_survive() {
        let s = strip_comments(r#"let x = "// not a comment";"#);
        assert!(s.contains("// not a comment"));
    }

    #[test]
    fn line_count_skips_blank_and_closers() {
        let src = "fn f() {\n    body();\n}\n\nfn g() {\n    x();\n}\n";
        assert_eq!(count_lines(src), 4); // two signatures + two bodies
    }

    #[test]
    fn api_calls_counted() {
        let src = "pub fn a() {}\nfn private() {}\npub fn b(x: u32) {}\nmacro_rules! M { () => {} }\n";
        assert_eq!(count_api_calls(src), 3);
    }
}
