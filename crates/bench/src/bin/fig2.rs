//! Figure 2: overhead of execution with HAMSTER compared to native
//! execution on the software DSM (4 nodes).
//!
//! Native = the benchmarks calling the `swdsm` engine directly.
//! HAMSTER = identical benchmark code through the JiaJia adapter on
//! HAMSTER's software-DSM platform (service dispatch + monitoring on
//! every call, unified messaging layer on every message).
//! Positive = slowdown under HAMSTER; negative = speedup.

use bench::report::{write_report, Json};
use bench::suite::{suite_hamster_pinned, suite_native_pinned, Sizes, PINNED_ETHERNET_BPS, ROWS};
use bench::{bar, Args};
use hamster_core::PlatformKind;

fn main() {
    let args = Args::parse(4);
    let sizes = Sizes::choose(args.quick);
    let repeat = if args.quick { 1 } else { 3 };
    // Ethernet pinned at 250 MB/s (below bus-window saturation, like the
    // chaos bench) so this figure's report is committed to
    // bench-baselines/ and gated. Gating is banded, not exact: PI and
    // WATER contend on locks, and contended grant order follows real
    // message arrival (OBSERVABILITY.md, "Contended locks"), so those
    // rows' virtual times legitimately jitter a few percent.
    eprintln!("running native suite ({} nodes, best of {repeat})...", args.nodes);
    let native = suite_native_pinned(args.nodes, sizes, repeat);
    eprintln!("running HAMSTER suite ({} nodes, best of {repeat})...", args.nodes);
    let ham = suite_hamster_pinned(args.nodes, PlatformKind::SwDsm, sizes, repeat);

    let rows = ROWS
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let (n, h) = (native.secs[i], ham.secs[i]);
            Json::obj([
                ("benchmark", Json::str(*row)),
                ("native_s", Json::num(n)),
                ("hamster_s", Json::num(h)),
                ("overhead_pct", Json::num((h - n) / n * 100.0)),
            ])
        })
        .collect();
    write_report(
        "fig2",
        &Json::obj([
            ("figure", Json::str("fig2")),
            ("title", Json::str("Overhead of execution with HAMSTER vs native SW-DSM")),
            ("nodes", Json::int(args.nodes)),
            ("quick", Json::Bool(args.quick)),
            ("repeat", Json::int(repeat)),
            ("ethernet_bytes_per_sec", Json::int(PINNED_ETHERNET_BPS)),
            ("tolerance_pct", Json::num(10.0)),
            ("rows", Json::Arr(rows)),
        ]),
    );

    if args.csv {
        println!("benchmark,native_s,hamster_s,overhead_pct");
        for (i, row) in ROWS.iter().enumerate() {
            let (n, h) = (native.secs[i], ham.secs[i]);
            println!("{row},{n:.6},{h:.6},{:.3}", (h - n) / n * 100.0);
        }
        return;
    }
    println!(
        "Figure 2. Overhead of Execution with HAMSTER Compared to Native Execution ({} nodes)",
        args.nodes
    );
    println!("{:-<78}", "");
    println!(
        "{:<12} {:>12} {:>12} {:>9}  (each # = 0.5%)",
        "benchmark", "native [s]", "hamster [s]", "overhead"
    );
    println!("{:-<78}", "");
    for (i, row) in ROWS.iter().enumerate() {
        let n = native.secs[i];
        let h = ham.secs[i];
        let pct = (h - n) / n * 100.0;
        println!("{row:<12} {n:>12.4} {h:>12.4} {pct:>+8.2}% {}", bar(pct, 0.5));
    }
    println!("{:-<78}", "");
    println!("Paper: overheads within -4.5%..+6.5% (single digits, some speedups).");
}
