//! Synchronization scalability sweep: centralized vs scalable
//! protocols from 16 to 1024 nodes.
//!
//! For each sweep point and each topology (`centralized`: central
//! barrier manager, lock managers, explicit per-writer notices;
//! `scalable`: fanout-8 aggregation tree, lock-token queue, interval
//! digests) the binary runs three kernels — SOR, LU, and a rank-ordered
//! lock ring — and records virtual time, checksums, and the six
//! synchronization counters (`sync_msgs`, `sync_records`,
//! `digest_hits`, `digest_misses`, `token_forwards`, `tree_waves`).
//!
//! The binary is its own acceptance check:
//!
//! * checksums must be bit-identical between the two topologies at
//!   every sweep point (the protocols may only change *when* data
//!   moves, never *what* it says);
//! * the tree barrier's per-episode message count must stay ≤ 12·n
//!   (it is 2(n−1): one aggregate and one wave per non-root node),
//!   while the centralized explicit-notice protocol ships ≥ n²/4
//!   notice records per barrier once every node writes each epoch;
//! * message growth between consecutive sweep points must stay linear
//!   (ratio ≤ 1.25 × the node-count ratio — a superlinear regression
//!   fails the run);
//! * at 256 nodes a traced SOR run is fed to [`analyzer::analyze`] and
//!   the scalable topology must keep barrier wait off the critical
//!   path: its barrier-wait share must be below 25% of the path and
//!   below the centralized share.
//!
//! Artifact: `BENCH_scale.json` — counters and checksums only, byte
//! identical across runs of the same build. Virtual times are printed
//! in the table but kept out of the artifact: once hundreds of arrivals
//! saturate a bus window the slowdown factor depends on the real-time
//! order demand was registered in, so `sim_time_ns` can wobble by a
//! fraction of a percent while every counter stays exact (the Ethernet
//! bus is pinned at 250 MB/s for the same reason as `analyze`, see
//! OBSERVABILITY.md). `--quick` caps the sweep at 256 nodes for CI.

use apps::world::{NativeWorld, World};
use apps::BenchResult;
use bench::Args;
use cluster::{Cluster, FabricConfig, LinkKind, SyncTopology};
use memwire::Distribution;
use std::sync::Arc;
use swdsm::{DsmConfig, SwDsm};

/// Lock-ring turns are capped so the ring stays tractable at 1024
/// nodes: the first `RING_TURNS` ranks take one turn each (everyone
/// still participates in every barrier, which is the scaling surface
/// under test — the cap only bounds the serial lock handoffs).
const RING_TURNS: usize = 16;

/// Critical-path budget for barrier wait under the scalable topology
/// at the traced sweep point.
const BARRIER_SHARE_LIMIT: f64 = 0.25;

/// Weak-scaling SOR grid: four rows per node, so per-node work stays
/// constant as the cluster grows and every node writes every epoch
/// (the all-writers pattern that makes centralized notices quadratic).
fn sor_size(nodes: usize) -> usize {
    4 * nodes.max(16)
}

fn run_sync(
    nodes: usize,
    sync: SyncTopology,
    f: impl Fn(&NativeWorld) -> BenchResult + Send + Sync,
) -> (cluster::RunReport, Vec<BenchResult>, Arc<SwDsm>) {
    // Below-saturation bus windows keep the schedule (and artifact)
    // byte-reproducible; see `bench::suite::PINNED_ETHERNET_BPS`.
    let cost = bench::suite::pinned_cost();
    let fabric = FabricConfig::builder()
        .nodes(nodes)
        .link(LinkKind::Ethernet)
        .cost(cost)
        .sync(sync)
        .build();
    let c = Cluster::new(fabric);
    let dsm = SwDsm::install(&c, DsmConfig::default());
    let (report, results) = {
        let dsm = dsm.clone();
        c.run(move |ctx| f(&NativeWorld::new(dsm.node(ctx))))
    };
    (report, results, dsm)
}

/// Rank-ordered lock ring (same schedule as `analyze`'s, with the turn
/// cap): deterministic handoffs, one barrier per turn.
fn lock_ring<W: World>(w: &W) -> BenchResult {
    let cell = w.alloc_dist(64, Distribution::OnNode(0));
    w.barrier(1);
    let t0 = w.now_ns();
    let turns = w.nprocs().min(RING_TURNS);
    let mut bar = 10u32;
    for turn in 0..turns {
        if w.rank() == turn {
            w.lock(1);
            let cur = w.read_f64(cell);
            w.write_f64(cell, cur + 1.0);
            w.unlock(1);
        }
        w.barrier(bar);
        bar += 1;
    }
    let total_ns = w.now_ns() - t0;
    let value = w.read_f64(cell);
    w.barrier(bar);
    BenchResult {
        total_ns,
        phases: Default::default(),
        checksum: apps::report::checksum_f64(0, value),
    }
}

/// Aggregated counters for one (workload, topology, nodes) cell.
struct Cell {
    nodes: usize,
    workload: &'static str,
    topology: &'static str,
    sim_time_ns: u64,
    checksum: u64,
    /// Barrier episodes (every node participates in each).
    barriers: u64,
    sync_msgs: u64,
    sync_records: u64,
    digest_hits: u64,
    digest_misses: u64,
    token_forwards: u64,
    tree_waves: u64,
}

impl Cell {
    /// Cross-node synchronization messages per barrier episode.
    fn msgs_per_barrier(&self) -> f64 {
        self.sync_msgs as f64 / self.barriers.max(1) as f64
    }
}

fn measure(
    nodes: usize,
    workload: &'static str,
    topology: &'static str,
    sync: SyncTopology,
    f: impl Fn(&NativeWorld) -> BenchResult + Send + Sync,
) -> Cell {
    let (report, results, dsm) = run_sync(nodes, sync, f);
    // Rank-order-sensitive fold: a plain XOR of identical per-rank
    // checksums would cancel to zero on every even-sized cluster.
    let checksum = results.iter().fold(0u64, |acc, r| acc.rotate_left(1) ^ r.checksum);
    let sum = |name: &str| (0..nodes).map(|n| dsm.stats(n).get(name)).sum::<u64>();
    Cell {
        nodes,
        workload,
        topology,
        sim_time_ns: report.sim_time_ns,
        checksum,
        barriers: sum("barriers") / nodes as u64,
        sync_msgs: sum("sync_msgs"),
        sync_records: sum("sync_records"),
        digest_hits: sum("digest_hits"),
        digest_misses: sum("digest_misses"),
        token_forwards: sum("token_forwards"),
        tree_waves: sum("tree_waves"),
    }
}

/// Barrier-wait share of the critical path in a traced SOR run.
fn barrier_path_share(nodes: usize, sync: SyncTopology) -> f64 {
    let session = sim::TraceSession::begin();
    let n = sor_size(nodes);
    let _ = run_sync(nodes, sync, move |w| apps::sor::sor(w, n, 2, false));
    let report = analyzer::analyze(&session.finish());
    let barrier_ns: u64 = report
        .critical_path
        .contributors
        .iter()
        .filter(|c| c.lane == analyzer::Lane::BarrierWait)
        .map(|c| c.ns)
        .sum();
    barrier_ns as f64 / report.critical_path.total_ns.max(1) as f64
}

fn main() {
    let args = Args::parse(0);
    let sweep: &[usize] = if args.quick { &[16, 64, 256] } else { &[16, 64, 256, 1024] };
    let topologies =
        [("centralized", SyncTopology::centralized()), ("scalable", SyncTopology::scalable())];

    let mut cells: Vec<Cell> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for &nodes in sweep {
        for (name, sync) in topologies {
            let sor_n = sor_size(nodes);
            cells.push(measure(nodes, "sor", name, sync, move |w| {
                apps::sor::sor(w, sor_n, 2, false)
            }));
            cells.push(measure(nodes, "lu", name, sync, |w| apps::lu::lu(w, 96)));
            cells.push(measure(nodes, "lock_ring", name, sync, lock_ring));
        }
    }

    println!(
        "{:>6} {:<10} {:<12} {:>9} {:>12} {:>12} {:>9} {:>14}",
        "nodes", "workload", "topology", "barriers", "sync_msgs", "sync_records", "msgs/bar", "sim_ms"
    );
    for c in &cells {
        println!(
            "{:>6} {:<10} {:<12} {:>9} {:>12} {:>12} {:>9.1} {:>14.2}",
            c.nodes,
            c.workload,
            c.topology,
            c.barriers,
            c.sync_msgs,
            c.sync_records,
            c.msgs_per_barrier(),
            c.sim_time_ns as f64 / 1e6,
        );
    }

    let find = |nodes: usize, workload: &str, topology: &str| {
        cells
            .iter()
            .find(|c| c.nodes == nodes && c.workload == workload && c.topology == topology)
            .unwrap()
    };

    // 1. Checksums must match between topologies everywhere.
    for &nodes in sweep {
        for workload in ["sor", "lu", "lock_ring"] {
            let a = find(nodes, workload, "centralized");
            let b = find(nodes, workload, "scalable");
            if a.checksum != b.checksum {
                failures.push(format!(
                    "{workload}@{nodes}: checksum diverged (centralized {:#x} vs scalable {:#x})",
                    a.checksum, b.checksum
                ));
            }
        }
    }

    // 2. Tree-barrier message volume: ≤ 12·n per episode at every
    //    point; the centralized explicit notices go quadratic.
    let &last = sweep.last().unwrap();
    for &nodes in sweep {
        let tree = find(nodes, "sor", "scalable");
        if tree.msgs_per_barrier() > 12.0 * nodes as f64 {
            failures.push(format!(
                "sor@{nodes}: scalable barrier costs {:.1} msgs/episode (> 12n = {})",
                tree.msgs_per_barrier(),
                12 * nodes
            ));
        }
    }
    let central = find(last, "sor", "centralized");
    let central_records = central.sync_records as f64 / central.barriers.max(1) as f64;
    if central_records < (last * last) as f64 / 4.0 {
        failures.push(format!(
            "sor@{last}: centralized notice volume {central_records:.0} records/barrier, \
             expected ≥ n²/4 = {} (the quadratic baseline the digests replace)",
            last * last / 4
        ));
    }

    // 3. Superlinear-growth gate on the scalable barrier.
    for pair in sweep.windows(2) {
        let (a, b) = (find(pair[0], "sor", "scalable"), find(pair[1], "sor", "scalable"));
        let growth = b.msgs_per_barrier() / a.msgs_per_barrier().max(1.0);
        let limit = 1.25 * pair[1] as f64 / pair[0] as f64;
        if growth > limit {
            failures.push(format!(
                "sor: scalable msgs/barrier grew {growth:.2}x from {} to {} nodes (limit {limit:.2}x)",
                pair[0], pair[1]
            ));
        }
    }

    // 4. Critical-path attribution at 256 nodes: the tree must push
    //    barrier wait off the path.
    let traced_nodes = 256;
    let central_share = barrier_path_share(traced_nodes, SyncTopology::centralized());
    let scalable_share = barrier_path_share(traced_nodes, SyncTopology::scalable());
    println!(
        "\ncritical-path barrier-wait share @ {traced_nodes} nodes: \
         centralized {:.1}%, scalable {:.1}%",
        central_share * 100.0,
        scalable_share * 100.0
    );
    if scalable_share >= BARRIER_SHARE_LIMIT {
        failures.push(format!(
            "scalable barrier wait is {:.1}% of the {traced_nodes}-node critical path \
             (budget {:.0}%)",
            scalable_share * 100.0,
            BARRIER_SHARE_LIMIT * 100.0
        ));
    }
    if scalable_share > central_share {
        failures.push(format!(
            "scalable barrier-wait share ({:.1}%) exceeds centralized ({:.1}%) at {traced_nodes} nodes",
            scalable_share * 100.0,
            central_share * 100.0
        ));
    }

    // Artifact. Counters and checksums only — no virtual times, which
    // are registration-order dependent at saturated sweep points (see
    // the module doc): two runs of one build are byte-identical.
    let mut doc = String::from("{\n  \"schema\": \"hamster-scale-v1\",\n");
    doc.push_str(&format!(
        "  \"sweep\": [{}],\n  \"cells\": [\n",
        sweep.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ")
    ));
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        doc.push_str(&format!(
            "    {{\"nodes\": {}, \"workload\": \"{}\", \"topology\": \"{}\", \
             \"checksum\": {}, \"barriers\": {}, \"sync_msgs\": {}, \
             \"sync_records\": {}, \"digest_hits\": {}, \"digest_misses\": {}, \
             \"token_forwards\": {}, \"tree_waves\": {}}}{comma}\n",
            c.nodes,
            c.workload,
            c.topology,
            c.checksum,
            c.barriers,
            c.sync_msgs,
            c.sync_records,
            c.digest_hits,
            c.digest_misses,
            c.token_forwards,
            c.tree_waves,
        ));
    }
    doc.push_str("  ]\n}\n");
    std::fs::write("BENCH_scale.json", &doc)
        .unwrap_or_else(|e| panic!("writing BENCH_scale.json: {e}"));
    eprintln!("wrote BENCH_scale.json ({} cells)", cells.len());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("all scale gates passed");
}
