//! Table 2: implementation complexity of the programming models,
//! counted with the paper's comment-stripping methodology over this
//! repository's actual adapter sources.

use bench::loc::{count_model, ModelCount};
use bench::report::{write_report, Json};

fn model_row(m: &ModelCount) -> Json {
    Json::obj([
        ("model", Json::str(m.name)),
        ("lines", Json::int(m.lines)),
        ("api_calls", Json::int(m.api_calls)),
        ("lines_per_call", Json::num(m.lines_per_call())),
    ])
}

fn main() {
    let models: Vec<ModelCount> = vec![
        count_model("SPMD model", include_str!("../../../models/src/spmd.rs")),
        count_model("SMP/SPMD model", include_str!("../../../models/src/smp_spmd.rs")),
        count_model("ANL macros", include_str!("../../../models/src/anl.rs")),
        count_model("TreadMarks API", include_str!("../../../models/src/treadmarks.rs")),
        count_model("HLRC API", include_str!("../../../models/src/hlrc.rs")),
        count_model("JiaJia API (subset)", include_str!("../../../models/src/jiajia.rs")),
        count_model("POSIX threads", include_str!("../../../models/src/pthreads.rs")),
        count_model("WIN32 threads", include_str!("../../../models/src/win32.rs")),
        count_model("Cray put/get (shmem) API", include_str!("../../../models/src/shmem.rs")),
    ];
    let support = count_model("(support: wait queues)", include_str!("../../../models/src/waitq.rs"));
    let omp = count_model("(extension: OpenMP-style)", include_str!("../../../models/src/omp.rs"));

    let total_lines: usize = models.iter().map(|m| m.lines).sum();
    let total_calls: usize = models.iter().map(|m| m.api_calls).sum();
    write_report(
        "table2",
        &Json::obj([
            ("table", Json::str("table2")),
            ("title", Json::str("Implementation complexity of programming models using HAMSTER")),
            ("rows", Json::Arr(models.iter().map(model_row).collect())),
            (
                "average",
                Json::obj([
                    ("lines", Json::int(total_lines / models.len())),
                    ("api_calls", Json::int(total_calls / models.len())),
                    ("lines_per_call", Json::num(total_lines as f64 / total_calls as f64)),
                ]),
            ),
            ("support", model_row(&support)),
            ("extension", model_row(&omp)),
        ]),
    );

    println!("Table 2. Implementation Complexity of Programming Models Using HAMSTER");
    println!("{:-<70}", "");
    println!("{:<28} {:>8} {:>11} {:>12}", "Programming Model", "#Lines", "#API calls", "Lines/call");
    println!("{:-<70}", "");
    let (mut tl, mut tc) = (0usize, 0usize);
    for m in &models {
        println!(
            "{:<28} {:>8} {:>11} {:>12.1}",
            m.name,
            m.lines,
            m.api_calls,
            m.lines_per_call()
        );
        tl += m.lines;
        tc += m.api_calls;
    }
    println!("{:-<70}", "");
    println!(
        "{:<28} {:>8} {:>11} {:>12.1}",
        "average",
        tl / models.len(),
        tc / models.len(),
        tl as f64 / tc as f64
    );
    println!(
        "{:<28} {:>8} {:>11}   (shared by the two thread models)",
        support.name, support.lines, support.api_calls
    );
    println!(
        "{:<28} {:>8} {:>11} {:>12.1}",
        omp.name, omp.lines, omp.api_calls, omp.lines_per_call()
    );
    println!();
    println!(
        "Paper reports 7.3–25.1 lines/call (average < 25); the thread models are"
    );
    println!("the thickest adapters there as here, due to command forwarding.");
}
