//! Chaos benchmark: SOR and LU on the software DSM under seeded fault
//! injection (drop + duplicate + delay + a crash/heal window), proving
//! the robustness layer end to end:
//!
//! * both workloads run to completion through retries,
//! * their checksums are bit-identical to the fault-free run,
//! * the same seed reproduces the identical fault schedule, retry
//!   counts, and virtual times (asserted by running the chaos
//!   configuration twice),
//! * both under the centralized sync protocols and under the full
//!   scalable preset — tree barrier, digest waves, and the token queue
//!   (whose manager-mediated resilient grant machine replays lost or
//!   duplicated handoffs),
//! * and additionally under elastic-membership churn: a node leaves and
//!   recovers twice mid-run on top of the link faults, and the
//!   checksums still match the fault-free run bit for bit.
//!
//! Emits `BENCH_chaos.json` with runs-to-completion, fault/retry
//! counters, and the virtual latency the faults added.

use apps::world::NativeWorld;
use apps::BenchResult;
use bench::report::{write_report, Json};
use bench::suite::Sizes;
use bench::Args;
use cluster::{Cluster, FabricConfig, LinkKind, RunReport};
use interconnect::fault::{CrashWindow, FaultPlan, LinkFaults};
use interconnect::{MembershipPlan, Resilience};
use std::collections::BTreeMap;

/// The fixed chaos seed: every run of this binary injects the identical
/// fault schedule.
const SEED: u64 = 42;

/// The injected fault mix (acceptance floor: ≥1% drop, plus dup and a
/// crash/heal window).
fn chaos_plan(nodes: usize) -> FaultPlan {
    let mut plan = FaultPlan::seeded(SEED);
    plan.default_link = LinkFaults {
        drop_ppm: 30_000,  // 3% of messages destroyed
        dup_ppm: 20_000,   // 2% duplicated
        delay_ppm: 50_000, // 5% delayed by up to 200 µs
        delay_ns: 200_000,
        reorder_ppm: 20_000, // 2% jittered within a 100 µs window
        reorder_window_ns: 100_000,
    };
    // The last node crashes 6 ms into the run (startup ends at 2 ms, so
    // this lands mid-workload) and heals 6 ms later; survivors see
    // NodeDown and retry until the retried request lands post-heal.
    plan.crashes.push(CrashWindow {
        node: nodes - 1,
        from_ns: 6_000_000,
        until_ns: 12_000_000,
    });
    plan
}

/// Two leave/recover cycles after the chaos crash window heals: the
/// victim (never node 0) departs and rejoins while link faults are
/// still firing, exercising view-epoch fencing on top of retries.
fn churn_plan(nodes: usize) -> MembershipPlan {
    MembershipPlan::churn(SEED, nodes, 14_000_000, 26_000_000, 2)
}

fn fabric(
    nodes: usize,
    sync: cluster::SyncTopology,
    faults: Option<FaultPlan>,
    membership: Option<MembershipPlan>,
) -> FabricConfig {
    // Pin Ethernet below bus-window saturation: the determinism this
    // binary asserts is only guaranteed while link windows stay
    // unsaturated (a saturated window's slowdown depends on real
    // registration order — see OBSERVABILITY.md and the rationale on
    // `bench::suite::PINNED_ETHERNET_BPS`).
    let cost = bench::suite::pinned_cost();
    let mut b = FabricConfig::builder()
        .nodes(nodes)
        .link(LinkKind::Ethernet)
        .cost(cost)
        .sync(sync);
    if let Some(plan) = faults {
        b = b.chaos(plan).resilience(Resilience::default());
    }
    if let Some(plan) = membership {
        b = b.membership(plan);
    }
    b.build()
}

/// The scalable topology chaos also runs under: fanout-4 tree barrier,
/// digest waves, and token-queue locks — the resilient token machine
/// (sequence-numbered tenures, manager-mediated replay) makes
/// token-queue handoff idempotent under drops, duplicates, and crashes.
fn tree_sync() -> cluster::SyncTopology {
    cluster::SyncTopology {
        barrier: cluster::BarrierTopology::Tree { fanout: 4 },
        locks: cluster::LockTopology::TokenQueue,
        notices: cluster::NoticeWire::Digest { max_runs: 64 },
    }
}

struct ChaosRun {
    result: BenchResult,
    report: RunReport,
    /// Software-DSM protocol counters summed over nodes.
    dsm: BTreeMap<&'static str, u64>,
}

fn run(
    nodes: usize,
    sync: cluster::SyncTopology,
    faults: Option<FaultPlan>,
    membership: Option<MembershipPlan>,
    bench: impl Fn(&NativeWorld) -> BenchResult + Send + Sync,
) -> ChaosRun {
    let cluster = Cluster::new(fabric(nodes, sync, faults, membership));
    let dsm = swdsm::SwDsm::install(&cluster, swdsm::DsmConfig::default());
    let (report, rs) = cluster.run(|ctx| bench(&NativeWorld::new(dsm.node(ctx))));
    let mut sums: BTreeMap<&'static str, u64> = BTreeMap::new();
    for node in 0..nodes {
        for (k, v) in dsm.stats(node).snapshot() {
            *sums.entry(k).or_insert(0) += v;
        }
    }
    ChaosRun { result: BenchResult::merge(&rs), report, dsm: sums }
}

fn workload_row(
    name: &str,
    nodes: usize,
    sync: cluster::SyncTopology,
    churn: bool,
    base: &ChaosRun,
    bench: impl Fn(&NativeWorld) -> BenchResult + Send + Sync,
) -> Json {
    let membership = || churn.then(|| churn_plan(nodes));
    eprintln!("{name}: chaos run (seed {SEED})...");
    let chaos = run(nodes, sync, Some(chaos_plan(nodes)), membership(), &bench);
    eprintln!("{name}: chaos run again (determinism check)...");
    let again = run(nodes, sync, Some(chaos_plan(nodes)), membership(), &bench);

    // Bit-identical numerical results despite drops, dups, delays, and
    // the crash window: the retry/replay machinery is exactly-once.
    assert_eq!(
        chaos.result.checksum,
        base.result.checksum,
        "{name}: chaos checksum diverged from fault-free"
    );
    // Same seed ⇒ same fault schedule ⇒ identical counters and clocks.
    assert_eq!(
        chaos.report.net_stats, again.report.net_stats,
        "{name}: fault schedule not reproducible"
    );
    assert_eq!(
        chaos.report.sim_time_ns, again.report.sim_time_ns,
        "{name}: virtual time not reproducible"
    );
    assert_eq!(chaos.result.checksum, again.result.checksum);
    // The schedule must actually have exercised the machinery.
    let stat = |k: &str| chaos.report.net_stats.get(k).copied().unwrap_or(0);
    assert!(stat("faults_dropped") > 0, "{name}: no drops injected");
    assert!(stat("faults_dup") > 0, "{name}: no duplicates injected");
    assert!(stat("retries") > 0, "{name}: no retries exercised");
    if churn {
        assert!(stat("nodedown") > 0, "{name}: churn absence windows never observed");
    }

    let base_ns = base.report.sim_time_ns;
    let chaos_ns = chaos.report.sim_time_ns;
    let counters = chaos
        .report
        .net_stats
        .iter()
        .map(|(k, v)| (*k, Json::int(*v)))
        .collect::<Vec<_>>();
    println!(
        "{name:<12} baseline {:>10.3} ms  chaos {:>10.3} ms  (+{:.2}%)  retries {}  drops {}  dups {}  nodedown {}",
        base_ns as f64 / 1e6,
        chaos_ns as f64 / 1e6,
        (chaos_ns as f64 - base_ns as f64) / base_ns as f64 * 100.0,
        stat("retries"),
        stat("faults_dropped"),
        stat("faults_dup"),
        stat("nodedown"),
    );
    Json::obj([
        ("workload", Json::str(name)),
        ("completed", Json::Bool(true)),
        ("checksum_matches_fault_free", Json::Bool(true)),
        ("deterministic", Json::Bool(true)),
        ("baseline_ns", Json::int(base_ns)),
        ("chaos_ns", Json::int(chaos_ns)),
        (
            "added_latency_pct",
            Json::num((chaos_ns as f64 - base_ns as f64) / base_ns as f64 * 100.0),
        ),
        ("protocol_retries", Json::int(chaos.dsm.get("retries").copied().unwrap_or(0))),
        ("net", Json::obj(counters)),
    ])
}

fn main() {
    let args = Args::parse(2);
    assert!(args.nodes >= 2, "chaos needs at least 2 nodes (one crashes)");
    // Chaos sizes: enough traffic for the percentage faults to bite
    // while staying CI-friendly (messages are cheap in virtual time).
    let sizes = Sizes::choose(args.quick);
    let sor_n = sizes.sor_n.min(256);
    let sor_iters = if args.quick { 30 } else { 50 };
    let lu_n = sizes.lu_n.min(256);

    println!(
        "Chaos run: seed {SEED}, {} nodes, 3% drop + 2% dup + 5% delay + crash/heal window",
        args.nodes
    );
    println!("{:-<100}", "");
    // One fault-free centralized baseline per workload; every chaos
    // configuration — either topology — must reproduce its checksum
    // exactly, so topology equivalence is asserted here too.
    let sor = |w: &NativeWorld| apps::sor::sor(w, sor_n, sor_iters, true);
    let lu = |w: &NativeWorld| apps::lu::lu(w, lu_n);
    eprintln!("SOR: fault-free baseline...");
    let sor_base = run(args.nodes, cluster::SyncTopology::centralized(), None, None, sor);
    eprintln!("LU: fault-free baseline...");
    let lu_base = run(args.nodes, cluster::SyncTopology::centralized(), None, None, lu);
    let central = cluster::SyncTopology::centralized;
    let rows = vec![
        workload_row("SOR/central", args.nodes, central(), false, &sor_base, sor),
        workload_row("SOR/tree", args.nodes, tree_sync(), false, &sor_base, sor),
        workload_row("SOR/churn", args.nodes, tree_sync(), true, &sor_base, sor),
        workload_row("LU/central", args.nodes, central(), false, &lu_base, lu),
        workload_row("LU/tree", args.nodes, tree_sync(), false, &lu_base, lu),
        workload_row("LU/churn", args.nodes, tree_sync(), true, &lu_base, lu),
    ];
    println!("{:-<100}", "");
    println!("all workloads completed with bit-identical checksums; schedules reproduced exactly");

    write_report(
        "chaos",
        &Json::obj([
            ("figure", Json::str("chaos")),
            ("title", Json::str("SOR/LU under deterministic fault injection")),
            ("seed", Json::int(SEED)),
            ("nodes", Json::int(args.nodes)),
            ("quick", Json::Bool(args.quick)),
            ("drop_ppm", Json::int(30_000)),
            ("dup_ppm", Json::int(20_000)),
            ("delay_ppm", Json::int(50_000)),
            ("crash_window_ns", Json::Arr(vec![Json::int(6_000_000), Json::int(12_000_000)])),
            ("churn_window_ns", Json::Arr(vec![Json::int(14_000_000), Json::int(26_000_000)])),
            ("churn_cycles", Json::int(2)),
            ("rows", Json::Arr(rows)),
        ]),
    );
}
