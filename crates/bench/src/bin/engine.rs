//! Engine throughput benchmark: the redesigned fabric (sharded
//! event-driven scheduler + zero-copy [`Page`] payloads) against the
//! seed fabric it replaced (one OS thread per node with channel
//! rendezvous, and the old message contract that cloned every buffer
//! into its envelope — `proto.rs`'s `bytes: Vec<u8>`, `home.rs`'s
//! per-fetch `.clone()`).
//!
//! Four runs, all on the same workload and the same virtual cost model:
//!
//! 1. **baseline** — `EngineMode::ThreadPerNode`, with each bulk token
//!    deep-copied per hop ([`PayloadSemantics::SeedClone`]): the seed
//!    fabric's delivery shape and copy contract. This is the
//!    *measured* baseline the ≥10× claim is made against.
//! 2. **legacy** — `ThreadPerNode` with zero-copy payloads: isolates
//!    the engine swap from the copy-contract change. Reported as
//!    `engine_only_speedup`.
//! 3. **sharded** — the redesigned engine, zero-copy (measured).
//! 4. **sharded again** — determinism check.
//!
//! All four must agree *bit-identically* on checksums, virtual end
//! times, and fabric counters: engines and copy semantics are
//! observationally equivalent in virtual time, and only wall-clock
//! throughput differs. Two sharded runs must reproduce each other
//! exactly.
//!
//! Workload phases (64 nodes by default):
//!
//! * **Notification relay** — a handful of zero-byte tokens hot-potato
//!   around the ring. Pure scheduling: each hop lands on an *idle*
//!   node (token count ≪ node count, the common case for protocol
//!   control traffic), so the legacy engine pays a sleeping daemon's
//!   condvar wake and context switch per event while a sharded worker
//!   stays hot.
//! * **Bulk page relay** — tokens carrying a fetch-reply-shaped page
//!   set (`Vec<(id, Page)>`, [`PAGES_PER_TOKEN`] × 4 KiB — the shape
//!   of `swdsm`'s multi-page `FetchReply`/region writeback). Each hop
//!   stamps one page (copy-on-write, in place for a uniquely held
//!   page). Under seed semantics every hop clones the whole set, as
//!   the old `Vec<u8>` message contract forced; the redesigned path
//!   moves the `Arc`s untouched.
//! * **Post flood** — every node fires a burst of one-way posts at its
//!   ring successor (bounded ingress queues; on the sharded engine,
//!   backpressure), closed by one synchronous flush request per sender
//!   so every flood message is provably processed before counters are
//!   read.
//!
//! Two reports are written:
//!
//! * `BENCH_engine.json` — virtual-time results only; byte-identical
//!   across runs (CI diffs two runs).
//! * `BENCH_engine_wall.json` — wall-clock throughput (events/sec,
//!   speedups); machine-dependent by nature, gated in CI against a
//!   conservative committed floor.

use bench::report::{write_report, Json};
use bench::Args;
use interconnect::mailbox::tag;
use interconnect::{
    downcast, EngineMode, HandlerCtx, Network, NodeId, Outcome, Page, Payload,
};
use sim::{LinkCost, VirtualClock};
use std::collections::BTreeMap;
use std::time::Instant;

/// Zero-byte notification-relay hop: payload `(origin, hops_left, acc)`.
const RELAY: u32 = 0x61;
/// Finished token reporting back to its origin's mailbox.
const DONE: u32 = 0x62;
/// One-way flood message (no reply).
const SINK: u32 = 0x63;
/// Synchronous flush closing a sender's flood burst.
const FLUSH: u32 = 0x64;
/// Bulk page-relay hop: payload [`Bulk`].
const BULK: u32 = 0x65;

/// 4 KiB pages per bulk token: the shape of a multi-page fetch reply /
/// region writeback (`swdsm::proto::FetchReply.pages`).
const PAGES_PER_TOKEN: usize = 32;

/// How the workload treats payload buffers — the message-contract half
/// of the redesign (the engine half is [`EngineMode`]).
#[derive(Clone, Copy, PartialEq)]
enum PayloadSemantics {
    /// Redesigned contract: pages travel as `Arc` references, stamped
    /// in place via copy-on-write.
    ZeroCopy,
    /// Seed contract: every buffer is cloned into the envelope on each
    /// post (what `Vec<u8>` message bodies forced before the redesign).
    SeedClone,
}

/// A bulk token: relay bookkeeping plus a fetch-reply-shaped page set.
struct Bulk {
    origin: u32,
    hops_left: u32,
    acc: u64,
    pages: Vec<(u64, Page)>,
}

/// One run's outcome: everything virtual is deterministic; `wall_ns` is
/// the only machine-dependent field.
struct RunOut {
    /// Max origin-port clock when the last token reported (ns).
    sim_time_ns: u64,
    /// FNV fold over all finished tokens (notification and bulk).
    checksum: u64,
    /// Fabric counters (includes `delivered`, the engine event count).
    stats: BTreeMap<&'static str, u64>,
    /// Blocking waits on full ingress queues (sharded engine only).
    bp_waits: u64,
    /// Wall-clock for build + all phases + teardown.
    wall_ns: u64,
}

fn fold(acc: u64, x: u64) -> u64 {
    acc.wrapping_mul(0x100_0000_01b3).wrapping_add(x.wrapping_add(1))
}

/// Relay tokens in flight per phase: few enough that almost every hop
/// lands on an idle node (see the module docs), at least two so tokens
/// interleave.
fn token_count(nodes: usize) -> usize {
    (nodes / 16).clamp(2, 8).min(nodes)
}

/// Engine-microbench cost model: zero software overheads and a small
/// fixed wire latency. Virtual time still advances per hop (so ordering
/// and determinism are exercised for real), but the wall clock measures
/// delivery-engine and copy-contract machinery, which is what this
/// benchmark compares.
fn micro_cost() -> LinkCost {
    LinkCost {
        send_overhead_ns: 0,
        recv_overhead_ns: 0,
        latency_ns: 1_000,
        bytes_per_sec: 1_000_000_000,
        handler_ns: 0,
    }
}

/// Wire size of a bulk token: id + page bytes per page, plus the relay
/// header. Identical under both payload semantics, which is what keeps
/// the four runs' virtual times bit-identical.
fn bulk_wire_bytes(pages: usize) -> u64 {
    (pages as u64) * (4096 + 8) + 16
}

fn run(
    mode: EngineMode,
    semantics: PayloadSemantics,
    nodes: usize,
    notif_hops: u32,
    bulk_hops: u32,
    flood: u32,
) -> RunOut {
    let started = Instant::now();
    let net = Network::builder(nodes, micro_cost()).engine(mode).build();

    net.register_all(RELAY, |node| {
        move |ctx: &HandlerCtx<'_>, _src, p: Payload| {
            let (origin, hops_left, acc) = downcast::<(u32, u32, u64)>(p);
            let acc = fold(acc, node as u64);
            if hops_left == 0 {
                ctx.post(origin as NodeId, DONE, acc, 0);
            } else {
                ctx.post((node + 1) % nodes, RELAY, (origin, hops_left - 1, acc), 0);
            }
            Outcome::done()
        }
    });
    net.register_all(BULK, |node| {
        move |ctx: &HandlerCtx<'_>, _src, p: Payload| {
            let mut t = downcast::<Bulk>(p);
            t.acc = fold(t.acc, node as u64);
            // Stamp one page per hop. `make_mut` is in place for the
            // zero-copy path (the token is uniquely held) and proves
            // every hop's mutation survives whichever contract carried
            // the pages.
            let slot = (t.hops_left as usize) % t.pages.len();
            t.pages[slot].1.make_mut()[..8].copy_from_slice(&t.acc.to_le_bytes());
            if semantics == PayloadSemantics::SeedClone {
                // The seed message contract: the fabric cloned every
                // buffer into the envelope on post (`bytes: Vec<u8>`).
                for (_, page) in &mut t.pages {
                    *page = Page::from(page.as_slice());
                }
            }
            let wire = bulk_wire_bytes(t.pages.len());
            if t.hops_left == 0 {
                // Close the token: fold the final stamp of every page
                // so the checksum witnesses the full mutation history.
                let mut acc = t.acc;
                for (id, page) in &t.pages {
                    let mut stamp = [0u8; 8];
                    stamp.copy_from_slice(&page[..8]);
                    acc = fold(acc, *id ^ u64::from_le_bytes(stamp));
                }
                ctx.post(t.origin as NodeId, DONE, acc, 0);
            } else {
                t.hops_left -= 1;
                ctx.post((node + 1) % nodes, BULK, t, wire);
            }
            Outcome::done()
        }
    });
    net.register_all(DONE, |node| {
        let mb = net.mailbox(node);
        move |ctx: &HandlerCtx<'_>, _src, p: Payload| {
            mb.deposit(tag(DONE, 0), p, ctx.now);
            Outcome::done()
        }
    });
    net.register_all(SINK, |_node| |_c: &HandlerCtx<'_>, _s, _p: Payload| Outcome::done());
    net.register_all(FLUSH, |_node| |_c: &HandlerCtx<'_>, _s, _p: Payload| Outcome::reply((), 0));

    let ports: Vec<_> = (0..nodes).map(|n| net.port(n, VirtualClock::new())).collect();

    let tokens = token_count(nodes);
    let origins: Vec<usize> = (0..tokens).map(|t| t * nodes / tokens).collect();
    let mut checksum = 0u64;
    let mut sim_time_ns = 0u64;

    // Phase 1 — notification relay: launch zero-byte tokens from
    // origins spread evenly around the ring, then collect them.
    for &o in &origins {
        ports[o].post((o + 1) % nodes, RELAY, (o as u32, notif_hops, o as u64), 0);
    }
    for &o in &origins {
        let acc = downcast::<u64>(ports[o].wait_mailbox(tag(DONE, 0)));
        checksum = checksum.wrapping_add(acc);
        sim_time_ns = sim_time_ns.max(ports[o].clock().now());
    }

    // Phase 2 — bulk page relay: fetch-reply-shaped tokens.
    for &o in &origins {
        let pages = (0..PAGES_PER_TOKEN as u64)
            .map(|i| {
                let mut p = vec![0u8; 4096];
                p[..8].copy_from_slice(&(o as u64 ^ i).to_le_bytes());
                (i, Page::from(p))
            })
            .collect();
        let t = Bulk { origin: o as u32, hops_left: bulk_hops, acc: o as u64, pages };
        ports[o].post((o + 1) % nodes, BULK, t, bulk_wire_bytes(PAGES_PER_TOKEN));
    }
    for &o in &origins {
        let acc = downcast::<u64>(ports[o].wait_mailbox(tag(DONE, 0)));
        checksum = checksum.wrapping_add(acc);
        sim_time_ns = sim_time_ns.max(ports[o].clock().now());
    }

    // Phase 3 — flood: a burst of one-way posts per node, then a flush
    // request so every flood message is processed before we count.
    for (o, port) in ports.iter().enumerate() {
        let dst = (o + 1) % nodes;
        for i in 0..flood {
            port.post(dst, SINK, i as u64, 8);
        }
        downcast::<()>(port.request(dst, FLUSH, (), 0));
    }

    let stats = net.stats().snapshot();
    let bp_waits = net.backpressure_waits();
    drop(ports);
    drop(net);
    RunOut { sim_time_ns, checksum, stats, bp_waits, wall_ns: started.elapsed().as_nanos() as u64 }
}

fn events_per_sec(r: &RunOut) -> u64 {
    let delivered = r.stats["delivered"];
    (delivered as f64 / (r.wall_ns as f64 / 1e9)) as u64
}

fn main() {
    let args = Args::parse(64);
    assert!(args.nodes >= 2, "engine bench needs at least 2 nodes");
    let nodes = args.nodes;
    let (notif_hops, bulk_hops, flood): (u32, u32, u32) =
        if args.quick { (500, 1_000, 64) } else { (2_500, 30_000, 256) };

    eprintln!(
        "engine bench: {nodes} nodes, {} tokens, {notif_hops} notif + {bulk_hops} bulk hops, \
         {flood} flood posts/node",
        token_count(nodes)
    );
    eprintln!("seed baseline: thread-per-node engine, clone-per-hop contract...");
    let baseline =
        run(EngineMode::ThreadPerNode, PayloadSemantics::SeedClone, nodes, notif_hops, bulk_hops, flood);
    eprintln!("legacy engine, zero-copy contract (engine-delta control)...");
    let legacy =
        run(EngineMode::ThreadPerNode, PayloadSemantics::ZeroCopy, nodes, notif_hops, bulk_hops, flood);
    eprintln!("sharded engine, run 1...");
    let sharded =
        run(EngineMode::default(), PayloadSemantics::ZeroCopy, nodes, notif_hops, bulk_hops, flood);
    eprintln!("sharded engine, run 2 (determinism check)...");
    let again =
        run(EngineMode::default(), PayloadSemantics::ZeroCopy, nodes, notif_hops, bulk_hops, flood);

    // Engines AND payload contracts must be observationally equivalent
    // in virtual time: all four runs agree bit-for-bit.
    for (name, r) in [("baseline", &baseline), ("legacy", &legacy), ("again", &again)] {
        assert_eq!(sharded.checksum, r.checksum, "checksum drift vs {name} run");
        assert_eq!(sharded.sim_time_ns, r.sim_time_ns, "virtual time drift vs {name} run");
        assert_eq!(sharded.stats, r.stats, "fabric counter drift vs {name} run");
    }

    let delivered = sharded.stats["delivered"];
    let eps_baseline = events_per_sec(&baseline);
    let eps_legacy = events_per_sec(&legacy);
    let eps_sharded = events_per_sec(&sharded).max(events_per_sec(&again));
    let speedup = eps_sharded as f64 / eps_baseline as f64;
    let engine_only = eps_sharded as f64 / eps_legacy as f64;
    println!(
        "{delivered} events  seed baseline {:>7.1} ms ({eps_baseline}/s)  sharded {:>7.1} ms \
         ({eps_sharded}/s)  speedup {speedup:.1}x (engine alone {engine_only:.1}x)",
        baseline.wall_ns as f64 / 1e6,
        sharded.wall_ns.min(again.wall_ns) as f64 / 1e6,
    );
    if !args.quick {
        assert!(
            speedup >= 10.0,
            "redesigned fabric below the 10x floor: {eps_sharded}/s vs {eps_baseline}/s \
             ({speedup:.1}x)"
        );
    }

    // Virtual-time report: byte-identical across runs by construction.
    let counters =
        sharded.stats.iter().map(|(k, v)| (*k, Json::int(*v))).collect::<Vec<_>>();
    write_report(
        "engine",
        &Json::obj([
            ("figure", Json::str("engine")),
            ("title", Json::str("Sharded zero-copy fabric vs thread-per-node baseline")),
            ("nodes", Json::int(nodes)),
            ("tokens", Json::int(token_count(nodes))),
            ("notif_hops_per_token", Json::int(notif_hops)),
            ("bulk_hops_per_token", Json::int(bulk_hops)),
            ("pages_per_token", Json::int(PAGES_PER_TOKEN)),
            ("flood_per_node", Json::int(flood)),
            ("quick", Json::Bool(args.quick)),
            ("delivered", Json::int(delivered)),
            ("sim_time_ns", Json::int(sharded.sim_time_ns)),
            ("checksum", Json::str(format!("{:016x}", sharded.checksum))),
            ("engines_agree", Json::Bool(true)),
            ("deterministic", Json::Bool(true)),
            ("net", Json::obj(counters)),
        ]),
    );
    // Wall-clock report: machine-dependent, kept out of the
    // determinism-gated file.
    write_report(
        "engine_wall",
        &Json::obj([
            ("figure", Json::str("engine_wall")),
            ("nodes", Json::int(nodes)),
            ("workers", Json::int(EngineMode::default().resolved_workers(nodes))),
            ("events", Json::int(delivered)),
            ("baseline_wall_ms", Json::num(baseline.wall_ns as f64 / 1e6)),
            ("baseline_events_per_sec", Json::int(eps_baseline)),
            ("legacy_zero_copy_events_per_sec", Json::int(eps_legacy)),
            ("sharded_wall_ms", Json::num(sharded.wall_ns.min(again.wall_ns) as f64 / 1e6)),
            ("events_per_sec", Json::int(eps_sharded)),
            ("speedup_x", Json::num(speedup)),
            ("engine_only_speedup_x", Json::num(engine_only)),
            ("backpressure_waits", Json::int(sharded.bp_waits)),
        ]),
    );
}
