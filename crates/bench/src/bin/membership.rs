//! Membership benchmark: elastic join/leave/recover under load, with
//! adaptive state transfer.
//!
//! Two sweeps, both virtual-time deterministic:
//!
//! * **State size** — a victim node leaves mid-run, peers keep writing,
//!   and the victim rejoins through [`swdsm::DsmNode::rejoin`]. The
//!   divergence it must absorb grows row by row; the adaptive policy
//!   (`delta_max_records`) replays write-notice deltas while the
//!   divergence is small and switches to a bulk snapshot sync once it
//!   crosses the cutoff. Each row reports rejoin-to-caught-up time, the
//!   transfer path taken, and the bytes/records moved — and asserts the
//!   rejoined node reads back every peer write correctly.
//! * **Churn rate** — SOR runs to completion under seeded leave/recover
//!   churn at 1, 2, and 4 cycles; every row's checksum must match the
//!   churn-free run bit for bit.
//!
//! The whole report is built twice in-process and the two renderings
//! must be byte-identical before `BENCH_membership.json` is written:
//! membership schedules are as reproducible as fault schedules.

use apps::world::NativeWorld;
use apps::BenchResult;
use bench::report::{write_report, Json};
use bench::Args;
use cluster::{Cluster, FabricConfig, LinkKind, MembershipPlan, SyncTopology, ViewChange};
use interconnect::MembershipEvent;
use memwire::{Distribution, PAGE_SIZE};
use swdsm::{DsmConfig, SwDsm};

/// Fixed seed: every run of this binary sees the identical schedules.
const SEED: u64 = 42;

/// Adaptive state-transfer cutoff: replay deltas up to this many
/// write-notice records, snapshot-sync beyond it.
const DELTA_CUTOFF: u64 = 64;

/// The victim leaves at 80 ms (well past the largest row's warm-up) and
/// recovers 8 ms later; peers write its missed state inside the window.
const LEAVE_NS: u64 = 80_000_000;
const RECOVER_NS: u64 = 88_000_000;

fn fabric(nodes: usize, membership: Option<MembershipPlan>) -> FabricConfig {
    // Ethernet pinned below bus-window saturation, like the chaos
    // bench: the byte-identity this binary asserts needs exactly
    // reproducible virtual times (`bench::suite::PINNED_ETHERNET_BPS`).
    let cost = bench::suite::pinned_cost();
    let mut b = FabricConfig::builder()
        .nodes(nodes)
        .link(LinkKind::Ethernet)
        .cost(cost)
        .sync(SyncTopology::centralized());
    if let Some(plan) = membership {
        b = b.membership(plan);
    }
    b.build()
}

/// One leave/recover cycle for the state-transfer sweep: the victim is
/// absent during `[LEAVE_NS, RECOVER_NS)` while the peers diverge.
fn leave_recover(victim: usize) -> MembershipPlan {
    MembershipPlan::scripted(
        SEED,
        vec![
            MembershipEvent {
                node: victim,
                at_ns: LEAVE_NS,
                change: ViewChange::Leave { graceful: false },
            },
            MembershipEvent { node: victim, at_ns: RECOVER_NS, change: ViewChange::Recover },
        ],
    )
}

struct Transfer {
    rejoin_ns: u64,
    transfer_ns: u64,
    snapshot: bool,
    snapshot_bytes: u64,
    delta_records: u64,
    nodedown: u64,
    view_fenced: u64,
}

/// Run the state-transfer scenario at one divergence size: warm every
/// cache, take the victim away, let the peers write `div_pages` pages,
/// rejoin, and verify the victim caught up.
fn transfer_run(nodes: usize, div_pages: usize) -> Transfer {
    let victim = nodes - 1;
    let cluster = Cluster::new(fabric(nodes, Some(leave_recover(victim))));
    let dsm = SwDsm::install(
        &cluster,
        DsmConfig { delta_max_records: DELTA_CUTOFF, ..DsmConfig::default() },
    );
    let d = dsm.clone();
    let (report, results) = cluster.run(move |ctx| {
        let node = d.node(ctx);
        let a = node.alloc(div_pages * PAGE_SIZE, Distribution::Block);
        node.barrier(1);
        // Warm-up: every node caches every page, so the victim has a
        // full (soon stale) cache to catch up.
        for p in 0..div_pages {
            node.read_u64(a.add((p * PAGE_SIZE) as u32));
        }
        node.barrier(2);
        let me = node.rank();
        let outcome = if me == victim {
            // Model the absence: the victim computes past its recovery
            // instant, then rejoins and synchronizes.
            let now = node.ctx().clock().now();
            node.ctx().compute((RECOVER_NS + 500_000).saturating_sub(now));
            let rejoin_ns = node.rejoin(3);
            let (transfer_ns, snapshot) = node.last_transfer();
            (rejoin_ns, transfer_ns, snapshot)
        } else {
            // Peers wait until the victim is gone, then write its
            // missed state: page p belongs to peer (p mod peers), so
            // every page is written exactly once.
            let now = node.ctx().clock().now();
            node.ctx().compute((LEAVE_NS + 500_000).saturating_sub(now));
            for p in 0..div_pages {
                if p % (nodes - 1) == me {
                    node.write_u64(a.add((p * PAGE_SIZE) as u32), 0xBEEF + p as u64);
                }
            }
            node.barrier(3);
            (0, 0, false)
        };
        // Everyone — the rejoined victim included — must read back all
        // peer writes.
        let mut sum = 0u64;
        for p in 0..div_pages {
            sum += node.read_u64(a.add((p * PAGE_SIZE) as u32));
        }
        let expect: u64 = (0..div_pages).map(|p| 0xBEEF + p as u64).sum();
        assert_eq!(sum, expect, "node {me} diverged after rejoin at {div_pages} pages");
        node.barrier(4);
        outcome
    });
    let (rejoin_ns, transfer_ns, snapshot) = results[victim];
    let vstats = dsm.stats(victim);
    assert_eq!(vstats.get("view_changes"), 1, "victim counted its rejoin");
    let net = |k: &str| report.net_stats.get(k).copied().unwrap_or(0);
    assert!(net("nodedown") > 0, "peer flushes never hit the absence window");
    Transfer {
        rejoin_ns,
        transfer_ns,
        snapshot,
        snapshot_bytes: vstats.get("snapshot_bytes"),
        delta_records: vstats.get("delta_records"),
        nodedown: net("nodedown"),
        view_fenced: net("view_fenced"),
    }
}

fn transfer_row(nodes: usize, div_pages: usize) -> Json {
    eprintln!("state transfer: {div_pages} diverged pages...");
    let t = transfer_run(nodes, div_pages);
    // The adaptive policy must pick delta below the cutoff and
    // snapshot above it (each page diverges by one record here).
    let expect_snapshot = div_pages as u64 > DELTA_CUTOFF;
    assert_eq!(t.snapshot, expect_snapshot, "adaptive policy mispicked at {div_pages} pages");
    if t.snapshot {
        assert!(t.snapshot_bytes > 0, "snapshot path moved no bytes");
    } else {
        assert!(t.delta_records > 0, "delta path replayed no records");
    }
    println!(
        "{div_pages:>5} pages  rejoin {:>9.3} ms  transfer {:>9.3} ms  path {:<8}  snapshot {:>9} B  delta {:>4} records",
        t.rejoin_ns as f64 / 1e6,
        t.transfer_ns as f64 / 1e6,
        if t.snapshot { "snapshot" } else { "delta" },
        t.snapshot_bytes,
        t.delta_records,
    );
    Json::obj([
        ("diverged_pages", Json::int(div_pages)),
        ("rejoin_ns", Json::int(t.rejoin_ns)),
        ("transfer_ns", Json::int(t.transfer_ns)),
        ("path", Json::str(if t.snapshot { "snapshot" } else { "delta" })),
        ("snapshot_bytes", Json::int(t.snapshot_bytes)),
        ("delta_records", Json::int(t.delta_records)),
        ("nodedown", Json::int(t.nodedown)),
        ("view_fenced", Json::int(t.view_fenced)),
        ("caught_up", Json::Bool(true)),
    ])
}

/// SOR under seeded churn: `cycles` leave/recover pairs over the run.
fn churn_run(nodes: usize, cycles: usize, sor_n: usize, sor_iters: usize) -> (BenchResult, u64, u64, u64) {
    let membership =
        (cycles > 0).then(|| MembershipPlan::churn(SEED, nodes, 6_000_000, 30_000_000, cycles));
    let cluster = Cluster::new(fabric(nodes, membership));
    let dsm = SwDsm::install(&cluster, DsmConfig::default());
    let d = dsm.clone();
    let (report, rs) = cluster
        .run(move |ctx| apps::sor::sor(&NativeWorld::new(d.node(ctx)), sor_n, sor_iters, true));
    let net = |k: &str| report.net_stats.get(k).copied().unwrap_or(0);
    (BenchResult::merge(&rs), report.sim_time_ns, net("nodedown"), net("view_fenced"))
}

fn churn_row(nodes: usize, cycles: usize, sor_n: usize, sor_iters: usize, base: &BenchResult, base_ns: u64) -> Json {
    eprintln!("churn: {cycles} cycle(s)...");
    let (result, ns, nodedown, view_fenced) = churn_run(nodes, cycles, sor_n, sor_iters);
    assert_eq!(
        result.checksum, base.checksum,
        "churn at {cycles} cycles changed the SOR checksum"
    );
    println!(
        "{cycles:>2} cycles  makespan {:>9.3} ms  (+{:.2}%)  nodedown {nodedown}  view_fenced {view_fenced}",
        ns as f64 / 1e6,
        (ns as f64 - base_ns as f64) / base_ns as f64 * 100.0,
    );
    Json::obj([
        ("cycles", Json::int(cycles)),
        ("makespan_ns", Json::int(ns)),
        ("slowdown_pct", Json::num((ns as f64 - base_ns as f64) / base_ns as f64 * 100.0)),
        ("nodedown", Json::int(nodedown)),
        ("view_fenced", Json::int(view_fenced)),
        ("checksum_matches_stable", Json::Bool(true)),
    ])
}

fn build_report(nodes: usize, quick: bool) -> Json {
    let divergences = [8usize, 32, 128, 512];
    println!("State transfer: {nodes} nodes, victim absent 8 ms, delta cutoff {DELTA_CUTOFF} records");
    println!("{:-<100}", "");
    let transfers: Vec<Json> =
        divergences.iter().map(|&d| transfer_row(nodes, d)).collect();

    let (sor_n, sor_iters) = if quick { (96, 8) } else { (256, 30) };
    println!("{:-<100}", "");
    println!("Churn: SOR {sor_n}x{sor_iters}, seeded leave/recover cycles over [6 ms, 30 ms)");
    println!("{:-<100}", "");
    eprintln!("churn: stable baseline...");
    let (base, base_ns, _, _) = churn_run(nodes, 0, sor_n, sor_iters);
    let churns: Vec<Json> = [1usize, 2, 4]
        .iter()
        .map(|&c| churn_row(nodes, c, sor_n, sor_iters, &base, base_ns))
        .collect();

    Json::obj([
        ("figure", Json::str("membership")),
        ("title", Json::str("Elastic membership: rejoin time vs state size and churn rate")),
        ("seed", Json::int(SEED)),
        ("nodes", Json::int(nodes)),
        ("quick", Json::Bool(quick)),
        ("delta_cutoff_records", Json::int(DELTA_CUTOFF)),
        ("absence_window_ns", Json::Arr(vec![Json::int(LEAVE_NS), Json::int(RECOVER_NS)])),
        ("state_transfer", Json::Arr(transfers)),
        ("stable_sor_ns", Json::int(base_ns)),
        ("churn", Json::Arr(churns)),
    ])
}

fn main() {
    let args = Args::parse(4);
    assert!(args.nodes >= 2, "membership needs a victim and at least one survivor");
    println!("Membership run: seed {SEED}, {} nodes", args.nodes);
    println!("{:-<100}", "");
    let doc = build_report(args.nodes, args.quick);
    eprintln!("re-running everything (byte-identity check)...");
    let again = build_report(args.nodes, args.quick);
    assert_eq!(doc.pretty(), again.pretty(), "membership report not byte-identical across runs");
    println!("{:-<100}", "");
    println!("report byte-identical across two in-process runs");
    write_report("membership", &doc);
}
