//! Figure 3: performance of the Hybrid-DSM with the Software-DSM as
//! baseline (4 nodes). Same binaries, only the HAMSTER configuration
//! (platform) changes. Positive = hybrid faster.

use bench::report::{write_report, Json};
use bench::suite::{suite_hamster_pinned, Sizes, PINNED_ETHERNET_BPS, ROWS};
use bench::{bar, Args};
use hamster_core::PlatformKind;

fn main() {
    let args = Args::parse(4);
    let sizes = Sizes::choose(args.quick);
    // Ethernet pinned at 250 MB/s (below bus-window saturation, like the
    // chaos bench) so this figure's report can sit in the perf-trend
    // gate. The hybrid column rides the SCI link and is unaffected by
    // the pin. Gating is banded, not exact: PI and WATER contend on
    // locks, and contended grant order follows real message arrival
    // (OBSERVABILITY.md, "Contended locks"), so those rows' virtual
    // times legitimately jitter a few percent.
    eprintln!("running software-DSM suite ({} nodes)...", args.nodes);
    let sw = suite_hamster_pinned(args.nodes, PlatformKind::SwDsm, sizes, 1);
    eprintln!("running hybrid-DSM suite ({} nodes)...", args.nodes);
    let hy = suite_hamster_pinned(args.nodes, PlatformKind::HybridDsm, sizes, 1);

    let rows = ROWS
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let (s, h) = (sw.secs[i], hy.secs[i]);
            Json::obj([
                ("benchmark", Json::str(*row)),
                ("swdsm_s", Json::num(s)),
                ("hybrid_s", Json::num(h)),
                ("advantage_pct", Json::num((s - h) / s * 100.0)),
            ])
        })
        .collect();
    write_report(
        "fig3",
        &Json::obj([
            ("figure", Json::str("fig3")),
            ("title", Json::str("Hybrid-DSM performance with SW-DSM as baseline")),
            ("nodes", Json::int(args.nodes)),
            ("quick", Json::Bool(args.quick)),
            ("ethernet_bytes_per_sec", Json::int(PINNED_ETHERNET_BPS)),
            ("tolerance_pct", Json::num(10.0)),
            ("rows", Json::Arr(rows)),
        ]),
    );

    if args.csv {
        println!("benchmark,swdsm_s,hybrid_s,advantage_pct");
        for (i, row) in ROWS.iter().enumerate() {
            let (s, h) = (sw.secs[i], hy.secs[i]);
            println!("{row},{s:.6},{h:.6},{:.3}", (s - h) / s * 100.0);
        }
        return;
    }
    println!(
        "Figure 3. Performance of Hybrid-DSM with SW-DSM as Baseline ({} nodes)",
        args.nodes
    );
    println!("{:-<78}", "");
    println!(
        "{:<12} {:>12} {:>12} {:>10}  (each # = 2%)",
        "benchmark", "sw-dsm [s]", "hybrid [s]", "advantage"
    );
    println!("{:-<78}", "");
    for (i, row) in ROWS.iter().enumerate() {
        let s = sw.secs[i];
        let h = hy.secs[i];
        let pct = (s - h) / s * 100.0;
        println!("{row:<12} {s:>12.4} {h:>12.4} {pct:>+9.2}% {}", bar(pct, 2.0));
    }
    println!("{:-<78}", "");
    println!("Paper: hybrid ahead overall (up to ~55%), biggest for unoptimized SOR");
    println!("and LU (write-only init); SOR-opt shows only a small difference.");
}
