//! The closed tuning loop: run → analyze → re-configure → verify.
//!
//! For each workload the binary runs a traced baseline on the software
//! DSM, feeds the `hamster-analysis-v1` report to the tuner's advisor,
//! applies the resulting [`tuner::TuningPlan`] **as configuration** —
//! placement through `ClusterConfig::placement`, layout through
//! `memwire::AlignHint`, topology through `ClusterConfig::sync` — and
//! re-runs the *identical* kernel. That is the paper's §5.4 portability
//! claim exercised as an optimization loop: the program never changes,
//! only the configuration does.
//!
//! The binary is its own acceptance check:
//!
//! * every workload's tuned run must reproduce the baseline checksum
//!   bit for bit (tuning moves pages and locks, never results);
//! * at least one workload must improve its virtual-time makespan by
//!   ≥ 15%;
//! * the whole pipeline runs twice and the rendered `BENCH_tune.json`
//!   must come out byte-identical.
//!
//! Per-action-category attribution comes from solo re-runs: each
//! category present in the plan (layout / placement / topology) is
//! applied alone and its makespan recorded, so the artifact shows where
//! the win came from. Before/after analyzer reports are written to
//! `TUNE_<workload>_{before,after}.json` for CI artifact upload.

use apps::world::{run_hamster, HamsterWorld, World};
use bench::report::{write_report, Json};
use bench::Args;
use cluster::{BarrierTopology, LockTopology, SyncTopology};
use hamster_core::{ClusterConfig, Placement, PlatformKind};
use memwire::{AlignHint, Distribution};
use tuner::{advise, parse_report, Action};

/// Page-misaligned SOR (960-byte rows): the false-sharing victim the
/// layout action repairs. Same size as the `analyze` bin uses.
const SOR_UNOPT_N: usize = 120;
const SOR_ITERS: usize = 10;
const LU_N: usize = 128;

/// The hot-lock workload's shape: every rank takes one serialized turn
/// per round, then the hot rank takes `HOT_EXTRA` more — so the hot
/// rank holds a strict majority of acquisitions and the advisor pins
/// the manager onto it.
const HOT_ROUNDS: usize = 6;
const HOT_EXTRA: usize = 3;
const HOT_RANK: usize = 1;
const HOT_LOCK: u32 = 2;

/// The per-rank counters workload: each rank bumps its own slot every
/// round. Packed, every slot shares one page — the canonical
/// false-sharing victim the layout action exists for. Slots sit one
/// cache line apart so the analyzer's proximity filter flags the page.
const CTR_ROUNDS: usize = 40;
const CTR_SLOT: usize = 64;

/// Per-rank counters with a barrier per round. Under the packed layout
/// every rank invalidates everyone else's copy each round; padded to a
/// page per slot (and `Distribution::Block` then homing each page on
/// its writer), all the traffic disappears.
fn counters<W: World>(w: &W, hint: AlignHint) -> apps::BenchResult {
    let stride = hint.padded_stride(CTR_SLOT);
    let region = w.alloc_dist(w.nprocs() * stride, Distribution::Block);
    let mine = region.add((w.rank() * stride) as u32);
    w.barrier(1);
    let t0 = w.now_ns();
    let mut bar = 10u32;
    for _ in 0..CTR_ROUNDS {
        let cur = w.read_f64(mine);
        w.write_f64(mine, cur + 1.0);
        w.barrier(bar);
        bar += 1;
    }
    let total_ns = w.now_ns() - t0;
    // Checksum over every slot: layout changes must not leak into the
    // values anyone reads.
    let mut sum = 0.0;
    for r in 0..w.nprocs() {
        sum += w.read_f64(region.add((r * stride) as u32));
    }
    w.barrier(bar);
    apps::BenchResult {
        total_ns,
        phases: Default::default(),
        checksum: apps::report::checksum_f64(0, sum),
    }
}

/// Deterministic hot-lock microworkload: acquisitions are serialized
/// behind barriers (same trick as the `analyze` bin's lock ring), so
/// grant order — and the whole trace — is identical on every run.
fn lock_hot<W: World>(w: &W) -> apps::BenchResult {
    let cell = w.alloc_dist(64, Distribution::OnNode(0));
    w.barrier(1);
    let t0 = w.now_ns();
    let hot = HOT_RANK % w.nprocs();
    let mut bar = 10u32;
    let turn = |me: bool, bar: &mut u32| {
        if me {
            w.lock(HOT_LOCK);
            let cur = w.read_f64(cell);
            w.write_f64(cell, cur + 1.0);
            w.unlock(HOT_LOCK);
        }
        w.barrier(*bar);
        *bar += 1;
    };
    for _round in 0..HOT_ROUNDS {
        for t in 0..w.nprocs() {
            turn(w.rank() == t, &mut bar);
        }
        for _ in 0..HOT_EXTRA {
            turn(w.rank() == hot, &mut bar);
        }
    }
    let total_ns = w.now_ns() - t0;
    let value = w.read_f64(cell);
    w.barrier(bar);
    apps::BenchResult {
        total_ns,
        phases: Default::default(),
        checksum: apps::report::checksum_f64(0, value),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Kernel {
    SorUnopt,
    Lu,
    Counters,
    LockHot,
}

impl Kernel {
    fn name(self) -> &'static str {
        match self {
            Kernel::SorUnopt => "sor_unopt",
            Kernel::Lu => "lu",
            Kernel::Counters => "counters",
            Kernel::LockHot => "lock_hot",
        }
    }

    fn run(self, w: &HamsterWorld, hint: AlignHint) -> apps::BenchResult {
        match self {
            Kernel::SorUnopt => apps::sor::sor_hinted(w, SOR_UNOPT_N, SOR_ITERS, false, hint),
            Kernel::Lu => apps::lu::lu(w, LU_N),
            Kernel::Counters => counters(w, hint),
            Kernel::LockHot => lock_hot(w),
        }
    }
}

struct RunOut {
    report: analyzer::Report,
    checksum: u64,
}

/// One traced run under the given configuration knobs. The ethernet
/// pin keeps every diff burst below bus-window saturation so the
/// virtual schedule — and with it this artifact — is byte-reproducible
/// (same rationale as the `analyze` bin; see OBSERVABILITY.md).
fn traced(nodes: usize, kernel: Kernel, hint: AlignHint, placement: &Placement, sync: SyncTopology) -> RunOut {
    let session = sim::TraceSession::begin();
    let mut cfg = ClusterConfig::new(nodes, PlatformKind::SwDsm);
    cfg.cost = bench::suite::pinned_cost();
    cfg.placement = placement.clone();
    cfg.sync = sync;
    let (_, results) = run_hamster(&cfg, move |w| kernel.run(w, hint));
    let events = session.finish();
    let checksum = results[0].checksum;
    assert!(
        results.iter().all(|r| r.checksum == checksum),
        "{}: nodes disagree on the checksum",
        kernel.name()
    );
    RunOut { report: analyzer::analyze(&events), checksum }
}

fn action_json(a: &Action) -> Json {
    match *a {
        Action::RehomePage { page, to } => Json::obj([
            ("action", Json::str("rehome")),
            ("region", Json::int(page.region)),
            ("page", Json::int(page.index)),
            ("to", Json::int(to)),
        ]),
        Action::PadRegion { region, pad_to } => Json::obj([
            ("action", Json::str("pad")),
            ("region", Json::int(region)),
            ("pad_to", Json::int(pad_to)),
        ]),
        Action::PlaceLock { lock, to } => Json::obj([
            ("action", Json::str("place_lock")),
            ("lock", Json::int(lock)),
            ("to", Json::int(to)),
        ]),
        Action::SwitchLocks => Json::obj([("action", Json::str("switch_locks"))]),
        Action::SwitchBarrier { fanout } => Json::obj([
            ("action", Json::str("switch_barrier")),
            ("fanout", Json::int(fanout)),
        ]),
    }
}

struct Outcome {
    row: Json,
    before: String,
    after: String,
    improvement_permille: i64,
}

fn tune_workload(nodes: usize, kernel: Kernel, failures: &mut Vec<String>) -> Outcome {
    let name = kernel.name();
    let base_sync = SyncTopology::centralized();
    let base = traced(nodes, kernel, AlignHint::None, &Placement::default(), base_sync);
    let before = base.report.to_json();
    if let Err(e) = analyzer::validate(&before) {
        failures.push(format!("{name}: baseline schema: {e}"));
    }
    let summary = parse_report(&before).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
    let plan = advise(&summary);

    // Split the plan into its configuration carriers.
    let mut hint = AlignHint::None;
    let mut placement = Placement::default();
    let mut sync = base_sync;
    let mut topology_changed = false;
    for a in &plan.actions {
        match *a {
            Action::PadRegion { pad_to, .. } => hint = AlignHint::PadTo(pad_to),
            Action::RehomePage { page, to } => placement.homes.push((page, to)),
            Action::PlaceLock { lock, to } => placement.locks.push((lock, to)),
            Action::SwitchLocks => {
                sync.locks = LockTopology::TokenQueue;
                topology_changed = true;
            }
            Action::SwitchBarrier { fanout } => {
                sync.barrier = BarrierTopology::Tree { fanout: fanout as usize };
                topology_changed = true;
            }
        }
    }

    // Solo runs per category present, for impact attribution.
    let mut attribution = Vec::new();
    let mut checksum_ok = true;
    let mut solo = |label: &str, h: AlignHint, p: &Placement, s: SyncTopology| {
        let r = traced(nodes, kernel, h, p, s);
        if r.checksum != base.checksum {
            checksum_ok = false;
        }
        let saved = base.report.makespan_ns as i64 - r.report.makespan_ns as i64;
        attribution.push(Json::obj([
            ("category", Json::str(label)),
            ("makespan_ns", Json::int(r.report.makespan_ns)),
            ("saved_ns", Json::Int(saved)),
        ]));
    };
    if hint != AlignHint::None {
        solo("layout", hint, &Placement::default(), base_sync);
    }
    if !placement.is_empty() {
        solo("placement", AlignHint::None, &placement, base_sync);
    }
    if topology_changed {
        solo("topology", AlignHint::None, &Placement::default(), sync);
    }

    // The full tuned run; an empty plan keeps the baseline as-is.
    let tuned = if plan.is_empty() {
        None
    } else {
        Some(traced(nodes, kernel, hint, &placement, sync))
    };
    let (after, tuned_makespan, tuned_checksum) = match &tuned {
        Some(t) => (t.report.to_json(), t.report.makespan_ns, t.checksum),
        None => (before.clone(), base.report.makespan_ns, base.checksum),
    };
    if tuned_checksum != base.checksum {
        checksum_ok = false;
    }
    if !checksum_ok {
        failures.push(format!("{name}: tuned run changed the workload checksum"));
    }

    let improvement_permille = (base.report.makespan_ns as i64 - tuned_makespan as i64) * 1000
        / base.report.makespan_ns.max(1) as i64;
    let improved = tuned_makespan < base.report.makespan_ns;

    println!(
        "{name}: baseline {:.3} ms, tuned {:.3} ms ({} actions, {:+.1}%)",
        base.report.makespan_ns as f64 / 1e6,
        tuned_makespan as f64 / 1e6,
        plan.actions.len(),
        improvement_permille as f64 / 10.0
    );

    let row = Json::obj([
        ("name", Json::str(name)),
        ("baseline_makespan_ns", Json::int(base.report.makespan_ns)),
        ("checksum", Json::str(format!("{:016x}", base.checksum))),
        ("plan", Json::Arr(plan.actions.iter().map(action_json).collect())),
        (
            "applied",
            Json::int(plan.actions.iter().filter(|a| a.is_placement()).count()),
        ),
        (
            "deferred",
            Json::int(plan.actions.iter().filter(|a| !a.is_placement()).count()),
        ),
        ("rejected", Json::int(0u64)),
        ("attribution", Json::Arr(attribution)),
        ("tuned_makespan_ns", Json::int(tuned_makespan)),
        ("improvement_permille", Json::Int(improvement_permille)),
        ("improved", Json::Bool(improved)),
    ]);
    Outcome { row, before, after, improvement_permille }
}

fn pipeline(nodes: usize, failures: &mut Vec<String>) -> (Json, Vec<(&'static str, String, String)>) {
    let kernels = [Kernel::SorUnopt, Kernel::Lu, Kernel::Counters, Kernel::LockHot];
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    let mut best = i64::MIN;
    for k in kernels {
        let out = tune_workload(nodes, k, failures);
        best = best.max(out.improvement_permille);
        rows.push(out.row);
        reports.push((k.name(), out.before, out.after));
    }
    if best < 150 {
        failures.push(format!(
            "no workload improved by >= 15% (best {:+.1}%)",
            best as f64 / 10.0
        ));
    }
    let doc = Json::obj([
        ("schema", Json::str("hamster-tune-v1")),
        ("nodes", Json::int(nodes)),
        ("workloads", Json::Arr(rows)),
        ("best_improvement_permille", Json::Int(best)),
    ]);
    (doc, reports)
}

fn main() {
    let args = Args::parse(2);
    let nodes = args.nodes;
    let mut failures = Vec::new();

    let (doc, reports) = pipeline(nodes, &mut failures);

    // Determinism check: the whole loop — baseline, advice, tuned
    // re-runs — must reproduce the artifact byte for byte.
    println!("--- second pass (byte-determinism check) ---");
    let mut failures2 = Vec::new();
    let (doc2, _) = pipeline(nodes, &mut failures2);
    if doc.pretty() != doc2.pretty() {
        failures.push("BENCH_tune.json differs between two in-process runs".into());
    }

    for (name, before, after) in &reports {
        for (suffix, text) in [("before", before), ("after", after)] {
            let path = format!("TUNE_{name}_{suffix}.json");
            std::fs::write(&path, text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        }
        eprintln!("wrote TUNE_{name}_{{before,after}}.json");
    }
    write_report("tune", &doc);

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("tuning loop verified on {} workloads", reports.len());
}
