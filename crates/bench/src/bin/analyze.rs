//! Causal trace analysis of the paper's kernels.
//!
//! Runs traced SOR and LU on the software-DSM and hybrid-DSM platforms
//! (2 nodes by default) plus a rank-ordered lock ring on each, feeds
//! each virtual-time trace to [`analyzer::analyze`], prints each run's
//! lane breakdown and top critical-path contributors, and writes every
//! report into one `BENCH_analysis.json` artifact.
//!
//! The binary is its own acceptance check: every embedded report is
//! validated against the `hamster-analysis-v1` schema (which includes
//! the lanes-sum-to-makespan tiling invariant), and the unoptimized SOR
//! run must exhibit false sharing (its cyclic row distribution
//! interleaves writers within pages). Any violation exits nonzero, so
//! CI needs no external schema tooling.
//!
//! Workloads with *contended* locks (e.g. PI's accumulation lock, where
//! both ranks request at nearly the same virtual instant) are excluded:
//! the lock manager serves requests in real arrival order, so the grant
//! order — and with it every downstream wait — can legitimately differ
//! between runs. The lock ring serializes acquisitions behind barriers
//! instead, which pins the handoff sequence; PI's sharing-detector
//! expectations live in `tests/analysis.rs`, which only asserts
//! timing-independent fields.

use apps::world::{run_hamster, HamsterWorld, World};
use bench::Args;
use hamster_core::{ClusterConfig, PlatformKind};
use memwire::Distribution;

/// Deliberately page-misaligned problem size: 120 rows of 120 f64s is
/// 960 bytes/row, so block boundaries fall mid-page and two ranks write
/// distinct cache lines of the same page (the classic false-sharing
/// layout). The optimized runs keep n = 128 (page-aligned rows).
const SOR_UNOPT_N: usize = 120;
const SOR_N: usize = 128;
const SOR_ITERS: usize = 10;
const LU_N: usize = 128;
const RING_ROUNDS: usize = 4;

/// A lock-contention microworkload with a *deterministic* schedule:
/// each rank increments a shared counter under lock 1, in rank order,
/// with a barrier after every turn. The barrier round-trip guarantees
/// the previous holder's release is processed before the next request
/// is even sent, so grants, handoffs and wait times are identical on
/// every run — unlike a free-for-all lock, whose grant order follows
/// real message arrival.
fn lock_ring<W: World>(w: &W) -> apps::BenchResult {
    let cell = w.alloc_dist(64, Distribution::OnNode(0));
    w.barrier(1);
    let t0 = w.now_ns();
    let mut bar = 10u32;
    for _round in 0..RING_ROUNDS {
        for turn in 0..w.nprocs() {
            if w.rank() == turn {
                w.lock(1);
                let cur = w.read_f64(cell);
                w.write_f64(cell, cur + 1.0);
                w.unlock(1);
            }
            w.barrier(bar);
            bar += 1;
        }
    }
    let total_ns = w.now_ns() - t0;
    let value = w.read_f64(cell);
    w.barrier(bar);
    apps::BenchResult {
        total_ns,
        phases: Default::default(),
        checksum: apps::report::checksum_f64(0, value),
    }
}

struct Run {
    name: &'static str,
    platform: &'static str,
    report: analyzer::Report,
}

fn traced(
    name: &'static str,
    nodes: usize,
    platform: PlatformKind,
    kernel: impl Fn(&HamsterWorld) -> apps::BenchResult + Send + Sync,
) -> Run {
    let session = sim::TraceSession::begin();
    let mut cfg = ClusterConfig::new(nodes, platform);
    // Gigabit-class Ethernet instead of the paper's 100 Mbit: the
    // windowed bus model is a pure function of each transfer's
    // (time, bytes) while windows stay below capacity, but under
    // saturation a transfer's slowdown depends on which thread
    // registered demand first — real-time order, not virtual order.
    // SOR's 56 KB diff bursts saturate fast-Ethernet windows (12.5 KB
    // per 1 ms window), so this artifact would not be byte-reproducible
    // there; at the shared pinned rate every burst fits and the
    // schedule — hence the emitted JSON — is identical on every run.
    // See OBSERVABILITY.md and `bench::suite::PINNED_ETHERNET_BPS`.
    cfg.cost = bench::suite::pinned_cost();
    let _ = run_hamster(&cfg, kernel);
    let events = session.finish();
    let platform_name = match platform {
        PlatformKind::SwDsm => "swdsm",
        PlatformKind::HybridDsm => "hybriddsm",
        _ => "other",
    };
    Run { name, platform: platform_name, report: analyzer::analyze(&events) }
}

/// Indent every line of an already-rendered JSON document so it embeds
/// cleanly in the combined artifact.
fn indent(json: &str, by: &str) -> String {
    json.trim_end()
        .lines()
        .map(|l| format!("{by}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let args = Args::parse(2);
    let nodes = args.nodes;

    let runs = [
        traced("sor_unopt", nodes, PlatformKind::SwDsm, |w| {
            apps::sor::sor(w, SOR_UNOPT_N, SOR_ITERS, false)
        }),
        traced("sor_opt", nodes, PlatformKind::SwDsm, |w| {
            apps::sor::sor(w, SOR_N, SOR_ITERS, true)
        }),
        traced("lu", nodes, PlatformKind::SwDsm, |w| apps::lu::lu(w, LU_N)),
        traced("lock_ring", nodes, PlatformKind::SwDsm, lock_ring),
        traced("sor_opt", nodes, PlatformKind::HybridDsm, |w| {
            apps::sor::sor(w, SOR_N, SOR_ITERS, true)
        }),
        traced("lu", nodes, PlatformKind::HybridDsm, |w| apps::lu::lu(w, LU_N)),
        traced("lock_ring", nodes, PlatformKind::HybridDsm, lock_ring),
    ];

    let mut failures = Vec::new();
    for run in &runs {
        println!("=== {}/{} ({} nodes) ===", run.platform, run.name, nodes);
        print!("{}", run.report.render_text());
        if let Err(e) = analyzer::validate(&run.report.to_json()) {
            failures.push(format!("{}/{}: schema: {e}", run.platform, run.name));
        }
    }

    // Built-in expectations on the sharing detector and lock engine.
    let sor_unopt = &runs[0].report;
    if sor_unopt.false_sharing.is_empty() {
        failures
            .push("swdsm/sor_unopt: expected false sharing, none detected".into());
    }
    for ring in [&runs[3], &runs[6]] {
        let want = (RING_ROUNDS * nodes) as u64;
        let got: u64 = ring.report.locks.iter().map(|l| l.acquires).sum();
        if got != want {
            failures.push(format!(
                "{}/lock_ring: {got} lock acquires traced, expected {want}",
                ring.platform
            ));
        }
    }

    // Combined artifact: one embedded hamster-analysis-v1 document per
    // run. All-integer reports + canonical trace order make the file
    // byte-identical across runs of the same build.
    let mut doc = String::from("{\n  \"schema\": \"hamster-analysis-suite-v1\",\n");
    doc.push_str(&format!("  \"nodes\": {nodes},\n  \"runs\": [\n"));
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        doc.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"platform\": \"{}\",\n      \
             \"report\":\n{}\n    }}{comma}\n",
            run.name,
            run.platform,
            indent(&run.report.to_json(), "      ")
        ));
    }
    doc.push_str("  ]\n}\n");
    std::fs::write("BENCH_analysis.json", &doc)
        .unwrap_or_else(|e| panic!("writing BENCH_analysis.json: {e}"));
    eprintln!("wrote BENCH_analysis.json");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("all {} reports valid", runs.len());
}
