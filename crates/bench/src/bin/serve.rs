//! `serve`: the multi-tenant KV service workload under the SLO lens.
//!
//! Runs `apps::kv` across all three platforms (SMP / hybrid DSM /
//! SW-DSM), fault-free and under the PR-3 chaos plan, and emits
//! `BENCH_serve.json` (schema `hamster-serve-v1`): per-(platform,
//! tenant, op) latency quantiles from the [`sim::stats::Sketch`]
//! telemetry, per-window metrics timeseries (throughput, inflight,
//! retries, view fences), and the SLO-under-faults table. Every number
//! in the artifact is virtual time, so the perf-trend gate holds it
//! exactly.
//!
//! Asserted in-binary:
//!
//! * the three platforms agree on the workload checksum (portability);
//! * two in-process passes produce a byte-identical artifact
//!   (determinism — CI additionally re-runs the whole binary and
//!   `cmp`s);
//! * for every platform × tenant, the chaos p99 strictly exceeds the
//!   fault-free p99 (faults are visible as user latency, never as
//!   wrong answers — the checksums still match the fault-free run).
//!
//! Flags: `--quick` (CI size), `--nodes N`, `--trace` (also write a
//! Chrome `trace_event` JSON of the chaotic SW-DSM run).

use apps::kv::{serve, KvConfig, LoadGen};
use apps::world::run_hamster;
use apps::BenchResult;
use bench::report::{write_report, Json};
use hamster_core::{
    chrome_trace_json, validate_chrome_trace, ClusterConfig, PlatformKind, ServiceOp, Telemetry,
};
use interconnect::fault::{CrashWindow, FaultPlan, LinkFaults};
use sim::stats::Quantiles;
use sim::TraceSession;

/// The fixed workload/chaos seed.
const SEED: u64 = 42;

/// Virtual-time metrics window (1 ms).
const WINDOW_NS: u64 = 1_000_000;

/// The PR-3 chaos mix: drop + dup + delay + reorder on every link,
/// plus a crash/heal window on the last node mid-run.
fn chaos_plan(nodes: usize) -> FaultPlan {
    let mut plan = FaultPlan::seeded(SEED);
    plan.default_link = LinkFaults {
        drop_ppm: 30_000,
        dup_ppm: 20_000,
        delay_ppm: 50_000,
        delay_ns: 200_000,
        reorder_ppm: 20_000,
        reorder_window_ns: 100_000,
    };
    plan.crashes.push(CrashWindow { node: nodes - 1, from_ns: 6_000_000, until_ns: 12_000_000 });
    plan
}

struct ServeRun {
    result: BenchResult,
    tel: Telemetry,
    events: Vec<sim::TraceEvent>,
}

/// One printable SLO row: (platform, tenant, base p99, chaos p99).
type SloRow = (&'static str, usize, u64, u64);

fn run_one(nodes: usize, platform: PlatformKind, kv: &KvConfig, faults: Option<FaultPlan>) -> ServeRun {
    let session = TraceSession::begin();
    let mut cfg = ClusterConfig::new(nodes, platform);
    // Below-saturation link windows keep the schedule byte-reproducible
    // (see `bench::suite::PINNED_ETHERNET_BPS`).
    cfg.cost = bench::suite::pinned_cost();
    cfg.faults = faults;
    let tel = Telemetry::new(kv.tenants, WINDOW_NS);
    let (t2, k2) = (tel.clone(), kv.clone());
    let (_, results) = run_hamster(&cfg, move |w| serve(w, &k2, &t2));
    let events = session.finish();
    // Bin the robustness layer's fault instants into the timeseries.
    for e in &events {
        if e.module == "fault" {
            match e.op {
                "retry" => tel.add_retry(e.t_ns),
                "view_fence" => tel.add_view_fence(e.t_ns),
                _ => {}
            }
        }
    }
    ServeRun { result: BenchResult::merge(&results), tel, events }
}

fn platform_name(p: PlatformKind) -> &'static str {
    match p {
        PlatformKind::Smp => "smp",
        PlatformKind::HybridDsm => "hybrid",
        PlatformKind::SwDsm => "swdsm",
        PlatformKind::Mixed => "mixed",
    }
}

fn quantiles_json(tenant: usize, op: &str, q: &Quantiles) -> Json {
    Json::obj([
        ("tenant", Json::int(tenant as i64)),
        ("op", Json::str(op)),
        ("count", Json::int(q.count as i64)),
        ("p50", Json::int(q.p50 as i64)),
        ("p90", Json::int(q.p90 as i64)),
        ("p99", Json::int(q.p99 as i64)),
        ("p999", Json::int(q.p999 as i64)),
        ("max", Json::int(q.max as i64)),
        ("mean", Json::int(q.mean as i64)),
    ])
}

fn telemetry_json(tel: &Telemetry) -> (Json, Json) {
    let mut quants = Vec::new();
    for t in 0..tel.tenants() {
        for op in [ServiceOp::Get, ServiceOp::Put] {
            quants.push(quantiles_json(t, op.name(), &tel.quantiles(t, op)));
        }
        quants.push(quantiles_json(t, "all", &tel.tenant_quantiles(t)));
    }
    let rows = tel
        .series_rows()
        .into_iter()
        .map(|r| {
            Json::obj([
                ("name", Json::str(r.name)),
                ("values", Json::Arr(r.values.into_iter().map(Json::int).collect())),
            ])
        })
        .collect();
    let series = Json::obj([
        ("window_ns", Json::int(WINDOW_NS as i64)),
        ("rows", Json::Arr(rows)),
    ]);
    (Json::Arr(quants), series)
}

/// One full sweep: every platform fault-free and under chaos, plus a
/// closed-loop SW-DSM leg. Returns the artifact and (for `--trace`)
/// the chaotic SW-DSM run's events.
fn sweep(nodes: usize, kv: &KvConfig) -> (Json, Vec<sim::TraceEvent>, Vec<SloRow>) {
    let platforms = [PlatformKind::Smp, PlatformKind::HybridDsm, PlatformKind::SwDsm];
    let mut platform_docs = Vec::new();
    let mut slo_rows = Vec::new();
    let mut slo_table = Vec::new();
    let mut checksums = Vec::new();
    let mut trace_events = Vec::new();
    for p in platforms {
        let name = platform_name(p);
        eprintln!("serve: {name} base + chaos ({} nodes)...", nodes);
        let base = run_one(nodes, p, kv, None);
        let chaos = run_one(nodes, p, kv, Some(chaos_plan(nodes)));
        assert_eq!(
            base.result.checksum, chaos.result.checksum,
            "{name}: faults changed the answers, not just the latency"
        );
        checksums.push(base.result.checksum);
        let (quants, series) = telemetry_json(&base.tel);
        let (chaos_quants, chaos_series) = telemetry_json(&chaos.tel);
        for t in 0..kv.tenants {
            let bq = base.tel.tenant_quantiles(t);
            let cq = chaos.tel.tenant_quantiles(t);
            assert!(
                cq.p99 > bq.p99,
                "{name} tenant {t}: chaos p99 {} does not exceed fault-free p99 {}",
                cq.p99,
                bq.p99
            );
            slo_table.push((name, t, bq.p99, cq.p99));
            slo_rows.push(Json::obj([
                ("platform", Json::str(name)),
                ("tenant", Json::int(t as i64)),
                ("base_p99_ns", Json::int(bq.p99 as i64)),
                ("chaos_p99_ns", Json::int(cq.p99 as i64)),
                ("base_p999_ns", Json::int(bq.p999 as i64)),
                ("chaos_p999_ns", Json::int(cq.p999 as i64)),
                (
                    "added_p99_pct",
                    Json::num(((cq.p99 as f64 / bq.p99 as f64) - 1.0) * 100.0),
                ),
            ]));
        }
        platform_docs.push(Json::obj([
            ("platform", Json::str(name)),
            ("makespan_ns", Json::int(base.result.total_ns as i64)),
            ("chaos_makespan_ns", Json::int(chaos.result.total_ns as i64)),
            ("checksum", Json::str(format!("{:#018x}", base.result.checksum))),
            ("quantiles", quants),
            ("timeseries", series),
            ("chaos_quantiles", chaos_quants),
            ("chaos_timeseries", chaos_series),
        ]));
        if p == PlatformKind::SwDsm {
            trace_events = chaos.events;
        }
    }
    assert!(
        checksums.iter().all(|c| *c == checksums[0]),
        "platforms disagree on the workload result: {checksums:#x?}"
    );

    // Closed-loop generator leg (SW-DSM): load adapts to service speed.
    eprintln!("serve: swdsm closed-loop...");
    let mut closed_cfg = kv.clone();
    closed_cfg.load = LoadGen::ClosedLoop;
    let closed = run_one(nodes, PlatformKind::SwDsm, &closed_cfg, None);
    let (closed_quants, closed_series) = telemetry_json(&closed.tel);
    let closed_doc = Json::obj([
        ("platform", Json::str("swdsm")),
        ("makespan_ns", Json::int(closed.result.total_ns as i64)),
        ("checksum", Json::str(format!("{:#018x}", closed.result.checksum))),
        ("quantiles", closed_quants),
        ("timeseries", closed_series),
    ]);

    let doc = Json::obj([
        ("schema", Json::str("hamster-serve-v1")),
        ("nodes", Json::int(nodes as i64)),
        ("seed", Json::int(SEED as i64)),
        ("tenants", Json::int(kv.tenants as i64)),
        ("keys_per_part", Json::int(kv.keys_per_part as i64)),
        ("rounds", Json::int(kv.rounds as i64)),
        ("batch", Json::int(kv.batch as i64)),
        ("clients", Json::int(kv.clients as i64)),
        ("window_ns", Json::int(WINDOW_NS as i64)),
        ("platforms", Json::Arr(platform_docs)),
        ("slo_under_faults", Json::Arr(slo_rows)),
        ("closed_loop", closed_doc),
    ]);
    (doc, trace_events, slo_table)
}

fn main() {
    let mut quick = false;
    let mut nodes = 4usize;
    let mut trace = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--trace" => trace = true,
            "--nodes" => {
                nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--nodes needs a number");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("unknown flag {other:?} (supported: --quick, --nodes N, --trace)");
                std::process::exit(2);
            }
        }
    }
    assert!(nodes.is_power_of_two(), "--nodes must be a power of two");
    let kv = if quick { KvConfig::quick() } else { KvConfig::paper() };

    // Two in-process passes must serialize identically: the telemetry
    // path (sketches, timeseries, fault binning) is commutative and the
    // simulation below saturation is schedule-deterministic.
    let (doc1, events, slo) = sweep(nodes, &kv);
    let (doc2, _, _) = sweep(nodes, &kv);
    assert_eq!(doc1.pretty(), doc2.pretty(), "two in-process runs diverged");
    write_report("serve", &doc1);

    if trace {
        let json = chrome_trace_json(&events);
        let n = validate_chrome_trace(&json).expect("trace validates");
        std::fs::write("serve_trace.json", &json).expect("writing serve_trace.json");
        eprintln!("wrote serve_trace.json ({n} events, chaotic sw-dsm run)");
    }

    println!("serve: SLO under faults ({nodes} nodes, {} tenants)", kv.tenants);
    println!("{:>8} {:>7} {:>15} {:>15} {:>9}", "platform", "tenant", "base p99 (ns)", "chaos p99 (ns)", "added %");
    for (name, t, base, chaos) in slo {
        println!(
            "{name:>8} {t:>7} {base:>15} {chaos:>15} {:>8.1}%",
            (chaos as f64 / base as f64 - 1.0) * 100.0
        );
    }
}
