//! Randomized stress harness: a seeded workload generator drives mixed
//! shared-memory programs (writes, bulk transfers, locks, barriers,
//! reductions) across all three platforms and verifies every run
//! against a sequential reference.
//!
//! ```sh
//! cargo run -p hamster-bench --release --bin stress            # 20 seeds
//! cargo run -p hamster-bench --release --bin stress -- --quick # 5 seeds
//! ```
//!
//! The same generator backs the `swdsm` property tests; this binary
//! scales it up, runs it on every platform, and reports protocol
//! statistics, making it the long-running soak complement to the unit
//! suites.

use apps::world::{run_hamster, World};
use hamster_core::{ClusterConfig, Distribution, PlatformKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 4;
const SLICE: usize = 2 * 4096 + 512; // deliberately page-misaligned

/// One generated program: epochs of single-writer byte stores plus a
/// lock-protected counter contended by everyone.
#[derive(Clone)]
struct Program {
    writes: Vec<(u8, u8, u32, u8)>, // (epoch, writer, offset, value)
    epochs: u8,
    dist: Distribution,
    counter_rounds: u64,
}

fn generate(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let epochs = rng.gen_range(2..6);
    let n_writes = rng.gen_range(50..400);
    let writes = (0..n_writes)
        .map(|_| {
            (
                rng.gen_range(0..epochs),
                rng.gen_range(0..NODES as u8),
                rng.gen_range(0..SLICE as u32),
                rng.gen(),
            )
        })
        .collect();
    let dist = match rng.gen_range(0..4) {
        0 => Distribution::Block,
        1 => Distribution::Cyclic,
        2 => Distribution::BlockCyclic(1 + rng.gen_range(0..3)),
        _ => Distribution::OnNode(rng.gen_range(0..NODES)),
    };
    Program { writes, epochs, dist, counter_rounds: rng.gen_range(1..8) }
}

fn reference(p: &Program) -> (Vec<u8>, u64) {
    let mut mem = vec![0u8; NODES * SLICE];
    let mut ws = p.writes.clone();
    ws.sort_by_key(|w| w.0);
    for (_, writer, off, val) in ws {
        mem[writer as usize * SLICE + off as usize] = val;
    }
    (mem, p.counter_rounds * NODES as u64)
}

fn run_on(platform: PlatformKind, p: &Program) -> (Vec<u8>, u64) {
    let cfg = ClusterConfig::new(NODES, platform);
    let p = p.clone();
    let (_, results) = run_hamster(&cfg, move |w| {
        let me = w.rank() as u8;
        let data = w.alloc_dist(NODES * SLICE, p.dist);
        let counter = w.alloc_dist(64, Distribution::Block);
        w.barrier(1);
        for epoch in 0..p.epochs {
            for &(e, writer, off, val) in &p.writes {
                if e == epoch && writer == me {
                    w.write_bytes(data.add(writer as u32 * SLICE as u32 + off), &[val]);
                }
            }
            w.barrier(2);
        }
        for _ in 0..p.counter_rounds {
            w.lock(3);
            let v = w.read_u64(counter);
            w.write_u64(counter, v + 1);
            w.unlock(3);
        }
        w.barrier(4);
        let mut image = vec![0u8; NODES * SLICE];
        w.read_bytes(data, &mut image);
        let count = w.read_u64(counter);
        w.barrier(5);
        (image, count)
    });
    for r in &results[1..] {
        assert_eq!(r, &results[0], "nodes disagree on {platform:?}");
    }
    results.into_iter().next().unwrap()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: u64 = if quick { 5 } else { 20 };
    let mut failures = 0;
    for seed in 0..seeds {
        let program = generate(seed);
        let (expect_mem, expect_count) = reference(&program);
        for platform in [PlatformKind::Smp, PlatformKind::HybridDsm, PlatformKind::SwDsm] {
            let (mem, count) = run_on(platform, &program);
            let ok = mem == expect_mem && count == expect_count;
            if !ok {
                failures += 1;
                eprintln!("seed {seed} FAILED on {platform:?} (count {count} vs {expect_count})");
            }
        }
        println!(
            "seed {seed:>3}: {} writes, {} epochs, {:?} — ok on all platforms",
            program.writes.len(),
            program.epochs,
            program.dist
        );
    }
    if failures > 0 {
        eprintln!("{failures} failures");
        std::process::exit(1);
    }
    println!("\nall {seeds} seeds × 3 platforms verified against the sequential reference");
}
