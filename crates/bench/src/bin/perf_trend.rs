//! Perf-trajectory gate: compare freshly generated `BENCH_*.json`
//! artifacts against the committed baselines in `bench-baselines/`.
//!
//! Every file in the baseline directory must have a counterpart in the
//! current directory. Virtual-time leaves must match **exactly** (the
//! simulation is deterministic; a drifting virtual number is a real
//! perf or protocol change someone must own), while wall-clock-derived
//! leaves (`*wall*`, `*per_sec*`) get ±10%, and an artifact declaring
//! `"tolerance_pct"` at its root (fig2/fig3, whose lock-contended rows
//! jitter with real grant order) gets that band (see `bench::trend`).
//!
//! Usage:
//!
//! ```text
//! perf_trend                 # compare, exit 1 on any drift
//! perf_trend --update        # copy current artifacts over the baselines
//! perf_trend --only <name>   # gate one artifact (e.g. --only membership)
//! ```
//!
//! A deliberate perf change therefore lands as: regenerate the
//! artifact, run `perf_trend --update`, and commit the new baseline
//! next to the change that caused it — the trajectory stays reviewable
//! in git history.

use bench::trend;
use sim::json;
use std::path::Path;

const BASELINE_DIR: &str = "bench-baselines";

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn main() {
    let mut update = false;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update" => update = true,
            "--only" => {
                only = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--only needs an artifact name (e.g. --only membership)");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown flag {other:?} (supported: --update, --only <name>)");
                std::process::exit(2);
            }
        }
    }

    let dir = Path::new(BASELINE_DIR);
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("reading {BASELINE_DIR}/: {e} (run from the repo root)"))
        .map(|e| e.expect("dir entry").file_name().into_string().expect("utf-8 name"))
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    if let Some(only) = &only {
        // Accept both the bare figure name and the full file name.
        names.retain(|n| n == only || *n == format!("BENCH_{only}.json"));
        assert!(!names.is_empty(), "--only {only:?} matches no baseline in {BASELINE_DIR}/");
    }
    assert!(!names.is_empty(), "{BASELINE_DIR}/ holds no BENCH_*.json baselines");

    let mut failed = false;
    for name in &names {
        let current = Path::new(name);
        if !current.exists() {
            eprintln!("FAIL {name}: artifact not regenerated (expected ./{name})");
            failed = true;
            continue;
        }
        if update {
            std::fs::copy(current, dir.join(name))
                .unwrap_or_else(|e| panic!("updating {name}: {e}"));
            println!("updated {BASELINE_DIR}/{name}");
            continue;
        }
        let base = json::parse(&read(&dir.join(name)))
            .unwrap_or_else(|e| panic!("{BASELINE_DIR}/{name}: {e}"));
        let cur = json::parse(&read(current)).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut diffs = Vec::new();
        trend::compare(&base, &cur, "", &mut diffs);
        if diffs.is_empty() {
            println!("ok   {name}");
        } else {
            failed = true;
            eprintln!("FAIL {name}: {} difference(s) vs committed baseline", diffs.len());
            for d in &diffs {
                eprintln!("  {d}");
            }
        }
    }

    if failed {
        eprintln!("perf trajectory drifted; if intentional, rerun with --update and commit");
        std::process::exit(1);
    }
    println!("perf trajectory holds across {} artifact(s)", names.len());
}
