//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. Diff-based vs whole-page write-back (software DSM).
//! 2. Write notices on lock grants (scope consistency) vs conservative
//!    invalidate-everything acquires.
//! 3. HAMSTER's unified messaging layer on vs off.
//! 4. Home placement: block vs cyclic pages for the SOR grid.
//! 5. Adaptive home migration for misplaced pages (JiaJia's
//!    optimization, off by default in the calibrated runs).
//! 6. Barrier algorithm: centralized manager vs dissemination.

use apps::world::{run_hamster, run_native};
use apps::BenchResult;
use bench::suite::Sizes;
use bench::Args;
use hamster_core::{ClusterConfig, PlatformKind};
use swdsm::DsmConfig;

fn native_sor(nodes: usize, cfg: DsmConfig, n: usize, iters: usize, opt: bool) -> f64 {
    let (_, rs) = run_native(nodes, cfg, |w| apps::sor::sor(w, n, iters, opt));
    BenchResult::merge(&rs).total_ns as f64 / 1e9
}

fn native_lu(nodes: usize, cfg: DsmConfig, n: usize) -> f64 {
    let (_, rs) = run_native(nodes, cfg, |w| apps::lu::lu(w, n));
    BenchResult::merge(&rs).total_ns as f64 / 1e9
}

fn native_water(nodes: usize, cfg: DsmConfig, nmol: usize, steps: usize) -> f64 {
    let (_, rs) = run_native(nodes, cfg, |w| apps::water::water(w, nmol, steps));
    BenchResult::merge(&rs).total_ns as f64 / 1e9
}

fn main() {
    let args = Args::parse(4);
    let sizes = Sizes::choose(args.quick);
    let nodes = args.nodes;

    println!("Ablation studies (software-DSM platform, {} nodes)", nodes);
    println!("{:=<74}", "");

    // 1. Diffs vs whole pages.
    let base = DsmConfig::default();
    let pages = DsmConfig { whole_page_writeback: true, ..base };
    println!("\n[1] Release write-back: run-length diffs vs whole pages");
    for (name, t_diff, t_page) in [
        (
            "SOR (unopt)",
            native_sor(nodes, base, sizes.sor_n, sizes.sor_iters, false),
            native_sor(nodes, pages, sizes.sor_n, sizes.sor_iters, false),
        ),
        ("LU", native_lu(nodes, base, sizes.lu_n), native_lu(nodes, pages, sizes.lu_n)),
    ] {
        println!(
            "  {name:<12} diffs {t_diff:>9.4}s   whole-page {t_page:>9.4}s   ({:+.1}% from diffs)",
            (t_page - t_diff) / t_diff * 100.0
        );
    }

    // 2. Lock notices vs conservative invalidation.
    let conservative = DsmConfig { notices_on_locks: false, ..base };
    println!("\n[2] Acquire consistency: scope notices vs invalidate-all");
    let t_scope = native_water(nodes, base, sizes.water_a, sizes.water_steps);
    let t_cons = native_water(nodes, conservative, sizes.water_a, sizes.water_steps);
    println!(
        "  WATER {a:<6} notices {t_scope:>9.4}s   invalidate-all {t_cons:>9.4}s   ({p:+.1}%)",
        a = sizes.water_a,
        p = (t_cons - t_scope) / t_scope * 100.0
    );

    // 3. Unified messaging layer.
    println!("\n[3] HAMSTER unified messaging layer: on vs off");
    let mut cfg_on = ClusterConfig::new(nodes, PlatformKind::SwDsm);
    cfg_on.unified_messaging = true;
    let mut cfg_off = cfg_on.clone();
    cfg_off.unified_messaging = false;
    let t_on = {
        let (_, rs) = run_hamster(&cfg_on, |w| apps::lu::lu(w, sizes.lu_n));
        BenchResult::merge(&rs).total_ns as f64 / 1e9
    };
    let t_off = {
        let (_, rs) = run_hamster(&cfg_off, |w| apps::lu::lu(w, sizes.lu_n));
        BenchResult::merge(&rs).total_ns as f64 / 1e9
    };
    println!(
        "  LU           unified {t_on:>9.4}s   separate stacks {t_off:>9.4}s   ({:+.1}%)",
        (t_on - t_off) / t_off * 100.0
    );

    // 4. Home placement for the SOR grid.
    println!("\n[4] Home placement (SOR): partition-aligned (opt) vs round-robin (unopt)");
    let t_aligned = native_sor(nodes, base, sizes.sor_n, sizes.sor_iters, true);
    let t_cyclic = native_sor(nodes, base, sizes.sor_n, sizes.sor_iters, false);
    println!(
        "  SOR          aligned {t_aligned:>9.4}s   round-robin {t_cyclic:>9.4}s   ({:.1}x)",
        t_cyclic / t_aligned
    );

    // 5. Home migration rescues misplaced pages.
    println!("\n[5] Adaptive home migration (SOR with round-robin homes)");
    let migrating = DsmConfig { home_migration: true, ..base };
    let t_mig = native_sor(nodes, migrating, sizes.sor_n, sizes.sor_iters, false);
    println!(
        "  SOR (unopt)  static homes {t_cyclic:>9.4}s   migrating {t_mig:>9.4}s   ({:+.1}%)",
        (t_mig - t_cyclic) / t_cyclic * 100.0
    );

    // 6. Barrier algorithm at scale: a barrier-heavy kernel on 8 nodes.
    println!("\n[6] Barrier algorithm (8 nodes, barrier-dominated kernel)");
    let barrier_kernel = |sync: cluster::SyncTopology| {
        let (_, rs) = apps::world::run_native_sync(8, base, sync, |w| {
            use apps::world::World;
            let a = w.alloc_dist(8 * 4096, memwire::Distribution::Cyclic);
            w.barrier(1);
            let t0 = w.now_ns();
            for round in 0..40u64 {
                w.write_u64(a.add(w.rank() as u32 * 4096), round);
                w.barrier(2);
            }
            w.now_ns() - t0
        });
        rs.into_iter().max().unwrap() as f64 / 1e9
    };
    let t_central = barrier_kernel(cluster::SyncTopology::centralized());
    let t_diss = barrier_kernel("dissemination".parse().unwrap());
    let t_tree = barrier_kernel(cluster::SyncTopology {
        barrier: cluster::BarrierTopology::Tree { fanout: 4 },
        ..cluster::SyncTopology::centralized()
    });
    println!(
        "  40 barriers  central {t_central:>9.4}s   dissemination {t_diss:>9.4}s ({:+.1}%)   tree:4 {t_tree:>9.4}s ({:+.1}%)",
        (t_diss - t_central) / t_central * 100.0,
        (t_tree - t_central) / t_central * 100.0
    );
}
