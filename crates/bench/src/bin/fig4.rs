//! Figure 4: performance of Hardware-, Hybrid-, and Software-DSM on
//! two nodes, relative to the hardware (SMP) execution.
//!
//! The SMP configuration runs the two "nodes" as the two CPUs of one
//! multiprocessor (shared memory bus); the cluster configurations run
//! two single-CPU nodes. Values are execution time normalized to the
//! hardware DSM (100%); above 100% = slower than the SMP.

use bench::report::{write_report, Json};
use bench::suite::{suite_hamster, Sizes, ROWS};
use bench::Args;
use hamster_core::PlatformKind;

fn main() {
    let args = Args::parse(2);
    let sizes = Sizes::choose(args.quick);
    eprintln!("running hardware (SMP) suite ({} CPUs)...", args.nodes);
    let hw = suite_hamster(args.nodes, PlatformKind::Smp, sizes);
    eprintln!("running hybrid-DSM suite ({} nodes)...", args.nodes);
    let hy = suite_hamster(args.nodes, PlatformKind::HybridDsm, sizes);
    eprintln!("running software-DSM suite ({} nodes)...", args.nodes);
    let sw = suite_hamster(args.nodes, PlatformKind::SwDsm, sizes);

    let rows = ROWS
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let (h, y, s) = (hw.secs[i], hy.secs[i], sw.secs[i]);
            Json::obj([
                ("benchmark", Json::str(*row)),
                ("hw_s", Json::num(h)),
                ("hybrid_s", Json::num(y)),
                ("sw_s", Json::num(s)),
                ("hybrid_pct", Json::num(y / h * 100.0)),
                ("sw_pct", Json::num(s / h * 100.0)),
            ])
        })
        .collect();
    write_report(
        "fig4",
        &Json::obj([
            ("figure", Json::str("fig4")),
            ("title", Json::str("Hardware- vs Hybrid- vs Software-DSM, normalized to hardware")),
            ("nodes", Json::int(args.nodes)),
            ("quick", Json::Bool(args.quick)),
            ("rows", Json::Arr(rows)),
        ]),
    );

    if args.csv {
        println!("benchmark,hw_s,hybrid_s,sw_s,hybrid_pct,sw_pct");
        for (i, row) in ROWS.iter().enumerate() {
            let (h, y, s) = (hw.secs[i], hy.secs[i], sw.secs[i]);
            println!(
                "{row},{h:.6},{y:.6},{s:.6},{:.2},{:.2}",
                y / h * 100.0,
                s / h * 100.0
            );
        }
        return;
    }
    println!(
        "Figure 4. Performance of Hardware-, Hybrid-, and Software-DSM ({} nodes/CPUs)",
        args.nodes
    );
    println!("{:-<86}", "");
    println!(
        "{:<12} {:>10} {:>10} {:>10}   {:>9} {:>9} {:>9}",
        "benchmark", "hw [s]", "hybrid[s]", "sw [s]", "hw%", "hybrid%", "sw%"
    );
    println!("{:-<86}", "");
    for (i, row) in ROWS.iter().enumerate() {
        let (h, y, s) = (hw.secs[i], hy.secs[i], sw.secs[i]);
        println!(
            "{row:<12} {h:>10.4} {y:>10.4} {s:>10.4}   {:>8.1}% {:>8.1}% {:>8.1}%",
            100.0,
            y / h * 100.0,
            s / h * 100.0
        );
    }
    println!("{:-<86}", "");
    println!("Paper: the SMP wins in most cases; the memory-bound MatMult is the");
    println!("exception — two cluster nodes bring two memory buses.");
}
