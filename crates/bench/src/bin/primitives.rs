//! Primitive-operation costs per platform — the classic "basic
//! operation latencies" table every DSM paper of the era includes
//! (TreadMarks Table 2, JiaJia §4, …). All numbers are virtual time.
//!
//! ```sh
//! cargo run -p hamster-bench --release --bin primitives
//! ```

use bench::report::{write_report, Json};
use hamster_core::{ClusterConfig, Distribution, PlatformKind, Runtime};

fn measure(platform: PlatformKind, nodes: usize) -> Vec<(&'static str, f64)> {
    let rt = Runtime::new(ClusterConfig::new(nodes, platform));
    let (_, rows) = rt.run(|ham| {
        let mut rows = Vec::new();
        let mut time = |name: &'static str, reps: u64, f: &mut dyn FnMut()| {
            let t0 = ham.wtime_ns();
            for _ in 0..reps {
                f();
            }
            rows.push((name, (ham.wtime_ns() - t0) as f64 / reps as f64 / 1e3));
        };

        let spec = hamster_core::AllocSpec {
            dist: Distribution::OnNode(0),
            ..Default::default()
        };
        let r = ham.mem().alloc(16 * 4096, spec).unwrap();
        ham.sync().barrier(1);

        if ham.task().rank() == 1 {
            // Cold read miss: touch a fresh page each repetition.
            let mut page = 0u32;
            time("remote read miss (8 B)", 8, &mut || {
                let _ = ham.mem().read_u64(r.addr().add(page * 4096));
                page += 1;
            });
            // Warm read: same location again.
            time("warm re-read (8 B)", 16, &mut || {
                let _ = ham.mem().read_u64(r.addr());
            });
            // Remote write (miss + twin on the software DSM, posted
            // write on the hybrid, plain store on the SMP).
            let mut wpage = 8u32;
            time("remote write miss (8 B)", 8, &mut || {
                ham.mem().write_u64(r.addr().add(wpage * 4096), 1);
                wpage += 1;
            });
        }
        ham.sync().barrier(2);

        // Uncontended lock round trip (manager on node 0).
        time("lock+unlock (uncontended)", 8, &mut || {
            if ham.task().rank() == 1 {
                ham.sync().lock(4 + ham.task().rank() as u32 * 16);
                ham.sync().unlock(4 + ham.task().rank() as u32 * 16);
            }
        });
        ham.sync().barrier(3);

        // Full barrier.
        time("barrier (all nodes)", 8, &mut || {
            ham.sync().barrier(5);
        });

        // Bulk transfer: one remote page.
        if ham.task().rank() == 1 {
            let mut buf = vec![0u8; 4096];
            let mut bpage = 0u32;
            time("bulk read 4 KiB (warm)", 8, &mut || {
                ham.mem().read_bytes(r.addr().add(bpage * 4096), &mut buf);
                bpage = (bpage + 1) % 16;
            });
        }
        ham.sync().barrier(6);
        rows
    });
    rows.into_iter().nth(1).unwrap()
}

fn main() {
    let nodes = 4;
    println!("Primitive operation costs (virtual µs, measured on node 1 of {nodes})");
    println!("{:-<78}", "");
    let platforms =
        [PlatformKind::Smp, PlatformKind::HybridDsm, PlatformKind::SwDsm];
    let all: Vec<Vec<(&str, f64)>> =
        platforms.iter().map(|&p| measure(p, nodes)).collect();

    let rows = all[0]
        .iter()
        .enumerate()
        .map(|(i, (name, smp_us))| {
            Json::obj([
                ("operation", Json::str(*name)),
                ("smp_us", Json::num(*smp_us)),
                ("hybrid_us", Json::num(all[1][i].1)),
                ("swdsm_us", Json::num(all[2][i].1)),
            ])
        })
        .collect();
    write_report(
        "primitives",
        &Json::obj([
            ("table", Json::str("primitives")),
            ("title", Json::str("Primitive operation costs per platform (virtual us)")),
            ("nodes", Json::int(nodes)),
            ("rows", Json::Arr(rows)),
        ]),
    );

    println!(
        "{:<28} {:>14} {:>14} {:>14}",
        "operation", "SMP", "hybrid DSM", "software DSM"
    );
    println!("{:-<78}", "");
    for (i, (name, smp_us)) in all[0].iter().enumerate() {
        println!(
            "{:<28} {:>11.2} µs {:>11.2} µs {:>11.2} µs",
            name, smp_us, all[1][i].1, all[2][i].1
        );
    }
    println!("{:-<78}", "");
    println!("(read miss: SMP = cached load; hybrid = SAN transaction; software");
    println!(" DSM = page fault + whole-page fetch over Ethernet)");
}
