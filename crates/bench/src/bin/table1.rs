//! Table 1: benchmarks and their working sets.

use bench::report::{write_report, Json};

const BENCHES: [(&str, &str); 5] = [
    ("Matrix Multiplication", "1024x1024 matrix"),
    ("Computation of pi", "10M intervals"),
    ("Successive Over Relaxation (SOR)", "1024x1024 matrix"),
    ("LU Decomposition", "1024x1024 matrix"),
    ("WATER (Molecular Simulation)", "288 / 343 molecules"),
];

fn main() {
    write_report(
        "table1",
        &Json::obj([
            ("table", Json::str("table1")),
            ("title", Json::str("Benchmarks and their working sets")),
            (
                "rows",
                Json::Arr(
                    BENCHES
                        .iter()
                        .map(|(name, ws)| {
                            Json::obj([
                                ("benchmark", Json::str(*name)),
                                ("working_set", Json::str(*ws)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    );

    println!("Table 1. Benchmarks and Their Working Sets");
    println!("{:-<58}", "");
    println!("{:<38} {:<20}", "Benchmark", "Working Set");
    println!("{:-<58}", "");
    for (name, ws) in BENCHES {
        println!("{name:<38} {ws:<20}");
    }
    println!("{:-<58}", "");
    println!("(paper sizes; pass --quick to the figure binaries for reduced sets)");
}
