//! Table 1: benchmarks and their working sets.

fn main() {
    println!("Table 1. Benchmarks and Their Working Sets");
    println!("{:-<58}", "");
    println!("{:<38} {:<20}", "Benchmark", "Working Set");
    println!("{:-<58}", "");
    for (name, ws) in [
        ("Matrix Multiplication", "1024x1024 matrix"),
        ("Computation of pi", "10M intervals"),
        ("Successive Over Relaxation (SOR)", "1024x1024 matrix"),
        ("LU Decomposition", "1024x1024 matrix"),
        ("WATER (Molecular Simulation)", "288 / 343 molecules"),
    ] {
        println!("{name:<38} {ws:<20}");
    }
    println!("{:-<58}", "");
    println!("(paper sizes; pass --quick to the figure binaries for reduced sets)");
}
