//! Parameter sweeps beyond the paper's fixed testbed — the "different
//! and larger system setups" its §5.4 leaves as ongoing work.
//!
//! 1. **Node scaling**: SOR (optimized) and LU on 1–8 nodes per
//!    platform: where does each platform stop scaling?
//! 2. **Interconnect sensitivity**: sweep the software DSM's network
//!    latency and bandwidth from Fast-Ethernet toward SAN-class values
//!    and watch the software/hybrid gap close — quantifying how much of
//!    Figure 3 is protocol and how much is wire.

use apps::world::run_hamster;
use apps::BenchResult;
use bench::suite::Sizes;
use bench::Args;
use hamster_core::{ClusterConfig, PlatformKind};

fn run_lu(cfg: &ClusterConfig, n: usize) -> f64 {
    let (_, rs) = run_hamster(cfg, |w| apps::lu::lu(w, n));
    BenchResult::merge(&rs).total_ns as f64 / 1e9
}

fn run_sor(cfg: &ClusterConfig, n: usize, iters: usize) -> f64 {
    let (_, rs) = run_hamster(cfg, |w| apps::sor::sor(w, n, iters, true));
    BenchResult::merge(&rs).total_ns as f64 / 1e9
}

fn main() {
    let args = Args::parse(4);
    let sizes = Sizes::choose(args.quick);

    println!("Sweep 1: node scaling (SOR opt {}², LU {}²)", sizes.sor_n, sizes.lu_n);
    println!("{:-<74}", "");
    println!(
        "{:<7} {:>10} {:>10} {:>10}   {:>10} {:>10} {:>10}",
        "nodes", "sor:smp", "sor:hyb", "sor:sw", "lu:smp", "lu:hyb", "lu:sw"
    );
    for nodes in [1usize, 2, 4, 8] {
        let mut row = Vec::new();
        for platform in [PlatformKind::Smp, PlatformKind::HybridDsm, PlatformKind::SwDsm] {
            let cfg = ClusterConfig::new(nodes, platform);
            row.push(run_sor(&cfg, sizes.sor_n, sizes.sor_iters));
        }
        for platform in [PlatformKind::Smp, PlatformKind::HybridDsm, PlatformKind::SwDsm] {
            let cfg = ClusterConfig::new(nodes, platform);
            row.push(run_lu(&cfg, sizes.lu_n));
        }
        println!(
            "{:<7} {:>9.3}s {:>9.3}s {:>9.3}s   {:>9.3}s {:>9.3}s {:>9.3}s",
            nodes, row[0], row[1], row[2], row[3], row[4], row[5]
        );
    }
    println!("(the software DSM's barrier/diff costs cap its scaling first)");

    println!();
    println!("Sweep 2: software-DSM interconnect sensitivity (LU {}²)", sizes.lu_n);
    println!("{:-<74}", "");
    let hybrid_ref = run_lu(&ClusterConfig::new(args.nodes, PlatformKind::HybridDsm), sizes.lu_n);
    println!("hybrid-DSM reference: {hybrid_ref:.3}s");
    println!(
        "{:<22} {:>12} {:>12} {:>16}",
        "network", "latency", "bandwidth", "sw-dsm LU [s]"
    );
    for (name, latency_us, mbps) in [
        ("Fast Ethernet", 60u64, 12u64),
        ("Fast Ethernet, tuned", 30, 12),
        ("Gigabit-class", 30, 90),
        ("early SAN", 10, 90),
        ("SCI-class wire", 5, 80),
    ] {
        let mut cfg = ClusterConfig::new(args.nodes, PlatformKind::SwDsm);
        cfg.cost.ethernet.latency_ns = latency_us * 1_000;
        cfg.cost.ethernet.bytes_per_sec = mbps * 1_000_000;
        let t = run_lu(&cfg, sizes.lu_n);
        println!(
            "{:<22} {:>9} µs {:>9} MB/s {:>13.3}s  ({:+.0}% vs hybrid)",
            name,
            latency_us,
            mbps,
            t,
            (t - hybrid_ref) / hybrid_ref * 100.0
        );
    }
    println!("(page-protocol overheads remain even on SAN-class wire — the");
    println!(" residual gap is what the hybrid's hardware data path removes)");
}
