//! Extra benchmark beyond Table 1: the NAS-style integer sort across
//! all platforms (the paper's §5.4 ongoing work, "experiments with more
//! and larger codes").

use apps::world::run_hamster;
use apps::BenchResult;
use bench::Args;
use hamster_core::{ClusterConfig, PlatformKind};

fn main() {
    let args = Args::parse(4);
    let keys = if args.quick { 1 << 14 } else { 1 << 20 };
    println!("IS (integer sort), {keys} keys, {} nodes", args.nodes);
    println!("{:-<56}", "");
    let mut base = None;
    for platform in [PlatformKind::Smp, PlatformKind::HybridDsm, PlatformKind::SwDsm] {
        let cfg = ClusterConfig::new(args.nodes, platform);
        let (_, rs) = run_hamster(&cfg, |w| apps::is::is(w, keys));
        let t = BenchResult::merge(&rs).secs();
        let rel = base.get_or_insert(t);
        println!("{platform:?}: {t:>9.4}s  ({:.1}% of SMP)", t / *rel * 100.0);
    }
    println!("{:-<56}", "");
    println!("IS is all-to-all-heavy: the scatter phase ships every key across");
    println!("the machine once — bandwidth-bound on every platform.");
}
