//! Experiment harness for the paper's tables and figures.
//!
//! Each binary regenerates one artifact:
//!
//! * `table1` — the benchmark/working-set table.
//! * `table2` — implementation complexity of the programming models
//!   (lines of code / API calls, via the paper's comment-stripping
//!   line-count methodology applied to the `models` crate).
//! * `fig2`   — overhead of the JiaJia API on HAMSTER vs native
//!   execution on the software DSM (4 nodes).
//! * `fig3`   — hybrid-DSM vs software-DSM performance (4 nodes).
//! * `fig4`   — hardware- vs hybrid- vs software-DSM (2 nodes).
//! * `ablation` — protocol design-choice studies (diff vs whole-page
//!   write-back, lock notices vs conservative invalidation, unified
//!   messaging, home placement).
//!
//! All numbers are *virtual* times from the simulated cluster (see
//! DESIGN.md); shapes, not absolute values, are the reproduction
//! target. Run with `--quick` for reduced working sets.
//!
//! Besides its pretty table each binary writes a machine-readable
//! `BENCH_<name>.json` artifact into the current directory (see
//! [`report`] and OBSERVABILITY.md).

pub mod loc;
pub mod report;
pub mod suite;
pub mod trend;

/// Parse the common CLI flags: `--quick` (reduced sizes) and
/// `--nodes N`.
pub struct Args {
    /// Reduced working sets.
    pub quick: bool,
    /// Cluster size.
    pub nodes: usize,
    /// Emit machine-readable CSV instead of the pretty table.
    pub csv: bool,
}

impl Args {
    /// Parse from `std::env::args`, with `default_nodes` as the node
    /// count when `--nodes` is absent.
    pub fn parse(default_nodes: usize) -> Args {
        let mut quick = false;
        let mut nodes = default_nodes;
        let mut csv = false;
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--csv" => csv = true,
                "--nodes" => {
                    nodes = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--nodes needs a number");
                }
                "--help" | "-h" => {
                    eprintln!("flags: --quick (small working sets), --nodes N, --csv");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other:?} (try --help)");
                    std::process::exit(2);
                }
            }
        }
        Args { quick, nodes, csv }
    }
}

/// Render a signed percentage as an ASCII bar (for figure binaries).
pub fn bar(pct: f64, scale: f64) -> String {
    let chars = (pct.abs() / scale).round() as usize;
    let body: String = std::iter::repeat_n('#', chars.min(60)).collect();
    if pct < 0.0 {
        format!("{body:>30}|")
    } else {
        format!("{:>30}|{body}", "")
    }
}
