//! Perf-trajectory comparison: a committed baseline `BENCH_*.json`
//! against a freshly generated one.
//!
//! The repo's benchmark artifacts are *virtual-time* measurements from
//! the simulated cluster, so almost every field is byte-deterministic
//! and must match the committed baseline **exactly** — a changed
//! virtual number is a real behavior change, not noise. Two
//! exceptions:
//!
//! * wall-clock-derived leaves (key contains `wall` or `per_sec`)
//!   depend on the machine and get a relative tolerance;
//! * an artifact whose root object declares `"tolerance_pct": N`
//!   opts its numeric leaves into a ±N% band (absolute ±N points for
//!   `*_pct` leaves, whose baselines sit near zero). fig2/fig3 use
//!   this: their PI and WATER rows contend on locks, and contended
//!   grant order follows real message arrival (see OBSERVABILITY.md,
//!   "Contended locks"), so those virtual times legitimately jitter.

use sim::json::Value;

/// Relative tolerance (percent) for wall-clock-derived leaves.
pub const WALL_TOLERANCE_PCT: f64 = 10.0;

/// The tolerance an artifact's root object declares for its own
/// numeric leaves (0 = exact, the default).
pub fn declared_tolerance_pct(baseline: &Value) -> f64 {
    match baseline {
        Value::Obj(m) => match m.get("tolerance_pct") {
            Some(Value::Num(n)) => *n,
            _ => 0.0,
        },
        _ => 0.0,
    }
}

/// Cap on reported differences per file — enough to diagnose, not a
/// dump of every row after a schema change.
const MAX_DIFFS: usize = 12;

/// Whether a key names a wall-clock-derived quantity (machine
/// dependent, tolerated) rather than a virtual-time one (exact).
pub fn is_wall_key(key: &str) -> bool {
    key.contains("wall") || key.contains("per_sec")
}

/// Compare `current` against `baseline`, appending human-readable
/// difference descriptions to `diffs`. `path` is the JSON-pointer-ish
/// location prefix ("" at the root); a root call reads the baseline's
/// declared tolerance (see module docs).
pub fn compare(baseline: &Value, current: &Value, path: &str, diffs: &mut Vec<String>) {
    let tol = if path.is_empty() { declared_tolerance_pct(baseline) } else { 0.0 };
    compare_at(baseline, current, path, diffs, tol);
}

fn compare_at(baseline: &Value, current: &Value, path: &str, diffs: &mut Vec<String>, tol: f64) {
    if diffs.len() >= MAX_DIFFS {
        return;
    }
    match (baseline, current) {
        (Value::Obj(b), Value::Obj(c)) => {
            for key in b.keys().chain(c.keys().filter(|k| !b.contains_key(*k))) {
                let at = if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                match (b.get(key), c.get(key)) {
                    (Some(bv), Some(cv)) => compare_leaf_or_node(key, bv, cv, &at, diffs, tol),
                    (Some(_), None) => diffs.push(format!("{at}: missing from current run")),
                    (None, Some(_)) => diffs.push(format!("{at}: not in baseline")),
                    (None, None) => unreachable!(),
                }
                if diffs.len() >= MAX_DIFFS {
                    return;
                }
            }
        }
        (Value::Arr(b), Value::Arr(c)) => {
            if b.len() != c.len() {
                diffs.push(format!("{path}: length {} -> {}", b.len(), c.len()));
                return;
            }
            for (i, (bv, cv)) in b.iter().zip(c).enumerate() {
                compare_at(bv, cv, &format!("{path}[{i}]"), diffs, tol);
                if diffs.len() >= MAX_DIFFS {
                    return;
                }
            }
        }
        _ => {
            if baseline != current {
                diffs.push(format!("{path}: {baseline:?} -> {current:?}"));
            }
        }
    }
}

/// Numbers under a wall-clock key get the wall tolerance; numbers in
/// an artifact with a declared tolerance get that band (relative for
/// plain leaves, absolute percentage *points* for `*_pct` leaves,
/// whose baselines sit near zero where a relative band means
/// nothing); everything else recurses into the exact comparison.
fn compare_leaf_or_node(
    key: &str,
    baseline: &Value,
    current: &Value,
    at: &str,
    diffs: &mut Vec<String>,
    tol: f64,
) {
    if let (Value::Num(b), Value::Num(c)) = (baseline, current) {
        if is_wall_key(key) {
            if (c - b).abs() > b.abs() * WALL_TOLERANCE_PCT / 100.0 {
                diffs.push(format!(
                    "{at}: {b} -> {c} (beyond ±{WALL_TOLERANCE_PCT}% wall-clock tolerance)"
                ));
            }
            return;
        }
        if tol > 0.0 {
            let limit = if key.ends_with("_pct") { tol } else { b.abs() * tol / 100.0 };
            if (c - b).abs() > limit {
                diffs.push(format!(
                    "{at}: {b} -> {c} (beyond the artifact's declared ±{tol}% tolerance)"
                ));
            }
            return;
        }
    }
    compare_at(baseline, current, at, diffs, tol);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::json;

    fn diffs(base: &str, cur: &str) -> Vec<String> {
        let mut out = Vec::new();
        compare(&json::parse(base).unwrap(), &json::parse(cur).unwrap(), "", &mut out);
        out
    }

    #[test]
    fn identical_documents_have_no_diffs() {
        let doc = r#"{"a": 1, "rows": [{"x": 2}, {"x": 3}], "s": "hi"}"#;
        assert!(diffs(doc, doc).is_empty());
    }

    #[test]
    fn virtual_numbers_must_match_exactly() {
        let d = diffs(r#"{"makespan_ns": 1000}"#, r#"{"makespan_ns": 1001}"#);
        assert_eq!(d.len(), 1);
        assert!(d[0].starts_with("makespan_ns:"), "{d:?}");
    }

    #[test]
    fn wall_clock_numbers_get_ten_percent() {
        assert!(diffs(r#"{"sharded_wall_ms": 100}"#, r#"{"sharded_wall_ms": 109}"#).is_empty());
        assert!(diffs(r#"{"events_per_sec": 1000}"#, r#"{"events_per_sec": 905}"#).is_empty());
        let d = diffs(r#"{"sharded_wall_ms": 100}"#, r#"{"sharded_wall_ms": 111}"#);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("tolerance"), "{d:?}");
    }

    #[test]
    fn a_zero_wall_baseline_tolerates_only_zero() {
        assert!(diffs(r#"{"wall_ns": 0}"#, r#"{"wall_ns": 0}"#).is_empty());
        assert_eq!(diffs(r#"{"wall_ns": 0}"#, r#"{"wall_ns": 1}"#).len(), 1);
    }

    #[test]
    fn declared_tolerance_widens_numeric_leaves() {
        let base = r#"{"tolerance_pct": 10, "rows": [{"hamster_s": 100.0}]}"#;
        assert!(diffs(base, r#"{"tolerance_pct": 10, "rows": [{"hamster_s": 109.0}]}"#).is_empty());
        let d = diffs(base, r#"{"tolerance_pct": 10, "rows": [{"hamster_s": 111.0}]}"#);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("declared ±10% tolerance"), "{d:?}");
    }

    #[test]
    fn pct_leaves_under_declared_tolerance_get_absolute_points() {
        // *_pct baselines sit near zero, where a relative band means
        // nothing — the declared tolerance is absolute points there.
        let base = r#"{"tolerance_pct": 10, "overhead_pct": 2.0}"#;
        assert!(diffs(base, r#"{"tolerance_pct": 10, "overhead_pct": 11.5}"#).is_empty());
        assert_eq!(diffs(base, r#"{"tolerance_pct": 10, "overhead_pct": 12.5}"#).len(), 1);
    }

    #[test]
    fn without_a_declaration_leaves_stay_exact() {
        assert_eq!(diffs(r#"{"hamster_s": 100.0}"#, r#"{"hamster_s": 100.1}"#).len(), 1);
    }

    #[test]
    fn structural_changes_are_reported() {
        let d = diffs(r#"{"rows": [1, 2]}"#, r#"{"rows": [1, 2, 3]}"#);
        assert!(d[0].contains("length 2 -> 3"), "{d:?}");
        let d = diffs(r#"{"a": 1}"#, r#"{"b": 1}"#);
        assert_eq!(d.len(), 2, "one missing, one new: {d:?}");
    }

    #[test]
    fn diff_flood_is_capped() {
        let base: String =
            format!("{{{}}}", (0..40).map(|i| format!("\"k{i:02}\": 0")).collect::<Vec<_>>().join(", "));
        let cur: String =
            format!("{{{}}}", (0..40).map(|i| format!("\"k{i:02}\": 1")).collect::<Vec<_>>().join(", "));
        assert_eq!(diffs(&base, &cur).len(), MAX_DIFFS);
    }
}
