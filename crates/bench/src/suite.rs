//! Shared benchmark-suite driver for the figure binaries.

use apps::world::{run_hamster, run_native, run_native_cost, World};
use apps::BenchResult;
use hamster_core::{ClusterConfig, PlatformKind};

/// Ethernet rate every determinism-gated bench pins (bytes/s) — the
/// single authoritative copy; `analyze`, `chaos`, `tune`, `membership`,
/// `scale`, `serve`, fig2, and fig3 all take it from here. The windowed
/// bus model is only exactly reproducible while link windows stay
/// unsaturated; the paper-testbed fast Ethernet saturates under the
/// centralized LU release burst at ≥4 nodes (see OBSERVABILITY.md), so
/// the runs whose virtual times feed the perf-trend gate pin 250 MB/s.
/// The pin is a workaround, not a fix: ROADMAP item 3
/// (order-independent window accounting above saturation) is the work
/// that would let these benches drop it and run the paper-testbed rate.
pub const PINNED_ETHERNET_BPS: u64 = 250_000_000;

/// The paper-testbed cost model with the Ethernet link pinned at
/// [`PINNED_ETHERNET_BPS`].
pub fn pinned_cost() -> sim::CostModel {
    let mut cost = sim::CostModel::default();
    cost.ethernet.bytes_per_sec = PINNED_ETHERNET_BPS;
    cost
}

/// Working-set sizes for one harness run.
#[derive(Debug, Clone, Copy)]
pub struct Sizes {
    pub matmult_n: usize,
    pub pi_samples: usize,
    pub sor_n: usize,
    pub sor_iters: usize,
    pub lu_n: usize,
    pub water_a: usize,
    pub water_b: usize,
    pub water_steps: usize,
}

impl Sizes {
    /// The paper's Table 1 working sets.
    pub fn paper() -> Sizes {
        Sizes {
            matmult_n: 1024,
            pi_samples: 10_000_000,
            sor_n: 1024,
            sor_iters: 50,
            lu_n: 1024,
            water_a: 288,
            water_b: 343,
            water_steps: 3,
        }
    }

    /// Reduced sizes for quick runs and CI.
    pub fn quick() -> Sizes {
        Sizes {
            matmult_n: 128,
            pi_samples: 200_000,
            sor_n: 128,
            sor_iters: 10,
            lu_n: 128,
            water_a: 64,
            water_b: 125,
            water_steps: 2,
        }
    }

    /// Choose by flag.
    pub fn choose(quick: bool) -> Sizes {
        if quick {
            Sizes::quick()
        } else {
            Sizes::paper()
        }
    }
}

/// The rows of the paper's figures, in their x-axis order.
pub const ROWS: [&str; 10] = [
    "MatMult",
    "PI",
    "SOR opt",
    "SOR",
    "LU all",
    "LU",
    "LU core",
    "LU bar",
    "WATER 288",
    "WATER 343",
];

/// One system's measurements: virtual seconds per figure row.
#[derive(Debug, Clone)]
pub struct SuiteTimes {
    pub secs: Vec<f64>,
}

impl SuiteTimes {
    /// Time of the named row.
    pub fn of(&self, row: &str) -> f64 {
        self.secs[ROWS.iter().position(|r| *r == row).expect("unknown row")]
    }
}

fn run_all<W: World + 'static>(
    sizes: Sizes,
    repeat: usize,
    run: impl Fn(&(dyn Fn(&W) -> BenchResult + Sync)) -> BenchResult,
) -> SuiteTimes {
    // Take the fastest of `repeat` runs: the queueing models are mildly
    // sensitive to host thread scheduling, and the minimum approximates
    // the undisturbed schedule.
    let best = |bench: &(dyn Fn(&W) -> BenchResult + Sync)| -> BenchResult {
        (0..repeat.max(1))
            .map(|_| run(bench))
            .min_by_key(|r| r.total_ns)
            .expect("at least one run")
    };
    let mm = best(&|w: &W| apps::matmult::matmult(w, sizes.matmult_n));
    let pi = best(&|w: &W| apps::pi::pi(w, sizes.pi_samples));
    let sor_opt = best(&|w: &W| apps::sor::sor(w, sizes.sor_n, sizes.sor_iters, true));
    let sor = best(&|w: &W| apps::sor::sor(w, sizes.sor_n, sizes.sor_iters, false));
    let lu = best(&|w: &W| apps::lu::lu(w, sizes.lu_n));
    let wa = best(&|w: &W| apps::water::water(w, sizes.water_a, sizes.water_steps));
    let wb = best(&|w: &W| apps::water::water(w, sizes.water_b, sizes.water_steps));
    let s = 1e-9;
    SuiteTimes {
        secs: vec![
            mm.total_ns as f64 * s,
            pi.total_ns as f64 * s,
            sor_opt.total_ns as f64 * s,
            sor.total_ns as f64 * s,
            lu.total_ns as f64 * s,
            lu.phases["no_init"] as f64 * s,
            lu.phases["core"] as f64 * s,
            lu.phases["bar"] as f64 * s,
            wa.total_ns as f64 * s,
            wb.total_ns as f64 * s,
        ],
    }
}

/// Run the whole suite natively on the software DSM (no HAMSTER).
pub fn suite_native(nodes: usize, sizes: Sizes) -> SuiteTimes {
    suite_native_repeat(nodes, sizes, 1)
}

/// [`suite_native`] with repeat-and-take-minimum smoothing.
pub fn suite_native_repeat(nodes: usize, sizes: Sizes, repeat: usize) -> SuiteTimes {
    run_all::<apps::world::NativeWorld>(sizes, repeat, |bench| {
        let (_, rs) = run_native(nodes, Default::default(), |w| bench(w));
        BenchResult::merge(&rs)
    })
}

/// [`suite_native_repeat`] on the pinned-Ethernet cost model
/// ([`pinned_cost`]): exactly reproducible virtual times, fit for the
/// perf-trend gate.
pub fn suite_native_pinned(nodes: usize, sizes: Sizes, repeat: usize) -> SuiteTimes {
    run_all::<apps::world::NativeWorld>(sizes, repeat, |bench| {
        let (_, rs) = run_native_cost(
            nodes,
            Default::default(),
            cluster::SyncTopology::centralized(),
            pinned_cost(),
            |w| bench(w),
        );
        BenchResult::merge(&rs)
    })
}

/// Run the whole suite on HAMSTER over the given platform.
pub fn suite_hamster(nodes: usize, platform: PlatformKind, sizes: Sizes) -> SuiteTimes {
    suite_hamster_repeat(nodes, platform, sizes, 1)
}

/// [`suite_hamster`] with repeat-and-take-minimum smoothing.
pub fn suite_hamster_repeat(
    nodes: usize,
    platform: PlatformKind,
    sizes: Sizes,
    repeat: usize,
) -> SuiteTimes {
    run_all::<apps::world::HamsterWorld>(sizes, repeat, |bench| {
        let cfg = ClusterConfig::new(nodes, platform);
        let (_, rs) = run_hamster(&cfg, |w| bench(w));
        BenchResult::merge(&rs)
    })
}

/// [`suite_hamster_repeat`] on the pinned-Ethernet cost model
/// ([`pinned_cost`]). Only the Ethernet link changes, so non-Ethernet
/// platforms (hybrid, SMP) time identically to the unpinned suite.
pub fn suite_hamster_pinned(
    nodes: usize,
    platform: PlatformKind,
    sizes: Sizes,
    repeat: usize,
) -> SuiteTimes {
    run_all::<apps::world::HamsterWorld>(sizes, repeat, |bench| {
        let mut cfg = ClusterConfig::new(nodes, platform);
        cfg.cost = pinned_cost();
        let (_, rs) = run_hamster(&cfg, |w| bench(w));
        BenchResult::merge(&rs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_choose_flag() {
        assert_eq!(Sizes::choose(false).matmult_n, Sizes::paper().matmult_n);
        assert_eq!(Sizes::choose(true).matmult_n, Sizes::quick().matmult_n);
        assert!(Sizes::quick().lu_n < Sizes::paper().lu_n);
    }

    #[test]
    fn suite_rows_lookup() {
        let t = SuiteTimes { secs: (0..ROWS.len()).map(|i| i as f64).collect() };
        assert_eq!(t.of("MatMult"), 0.0);
        assert_eq!(t.of("LU bar"), 7.0);
        assert_eq!(t.of("WATER 343"), 9.0);
    }

    #[test]
    #[should_panic(expected = "unknown row")]
    fn unknown_row_panics() {
        let t = SuiteTimes { secs: vec![0.0; ROWS.len()] };
        let _ = t.of("FFT");
    }
}
