//! Machine-readable JSON reports for the benchmark binaries.
//!
//! Every figure/table binary emits a `BENCH_<name>.json` file next to
//! its pretty-printed table, so downstream tooling (CI artifact upload,
//! plotting, regression tracking) never has to scrape stdout. The
//! writer is hand-rolled — the harness runs fully offline, with no
//! serde available — and produces deterministic, pretty-printed JSON.
//!
//! ```
//! use bench::report::Json;
//! let doc = Json::obj([
//!     ("figure", Json::str("fig2")),
//!     ("nodes", Json::int(4)),
//!     ("rows", Json::Arr(vec![Json::obj([
//!         ("benchmark", Json::str("MatMult")),
//!         ("overhead_pct", Json::num(1.25)),
//!     ])])),
//! ]);
//! let text = doc.pretty();
//! assert!(text.contains("\"figure\": \"fig2\""));
//! assert!(text.contains("\"overhead_pct\": 1.25"));
//! ```

use std::fmt::Write as _;

/// A JSON value (the subset the reports need).
#[derive(Debug, Clone)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float (emitted in Rust's shortest round-trip form; non-finite
    /// values degrade to `null`, which JSON requires).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as built.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an integer value.
    pub fn int(v: impl TryInto<i64>) -> Json {
        Json::Int(v.try_into().unwrap_or(i64::MAX))
    }

    /// Shorthand for a float value.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, indent + 1);
                    escape_into(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write `doc` to `BENCH_<name>.json` in the current directory and
/// note the path on stderr. Panics (with the I/O error) on failure —
/// a benchmark run whose artifact cannot be saved should not look
/// successful.
pub fn write_report(name: &str, doc: &Json) {
    let path = format!("BENCH_{name}.json");
    std::fs::write(&path, doc.pretty())
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Bool(true).pretty(), "true\n");
        assert_eq!(Json::int(42u64).pretty(), "42\n");
        assert_eq!(Json::num(1.5).pretty(), "1.5\n");
        assert_eq!(Json::num(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::str("a\"b\\c\n").pretty(), "\"a\\\"b\\\\c\\n\"\n");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]\n");
        assert_eq!(Json::obj(Vec::<(&str, Json)>::new()).pretty(), "{}\n");
    }

    #[test]
    fn object_preserves_order_and_indents() {
        let doc = Json::obj([
            ("b", Json::int(1u64)),
            ("a", Json::Arr(vec![Json::str("x")])),
        ]);
        let text = doc.pretty();
        assert_eq!(text, "{\n  \"b\": 1,\n  \"a\": [\n    \"x\"\n  ]\n}\n");
        assert!(text.find("\"b\"").unwrap() < text.find("\"a\"").unwrap());
    }

    #[test]
    fn control_chars_escaped() {
        let text = Json::str("\u{1}").pretty();
        assert_eq!(text, "\"\\u0001\"\n");
    }

    #[test]
    fn exported_reports_parse_as_chrome_trace_rejects() {
        // Sanity-check against the independent parser in hamster-core:
        // a bench report is valid JSON but NOT a Chrome trace, so the
        // validator must parse it fine and then reject the schema.
        let doc = Json::obj([("rows", Json::Arr(vec![]))]);
        let err = hamster_core::validate_chrome_trace(&doc.pretty());
        assert!(err.is_err());
    }
}
