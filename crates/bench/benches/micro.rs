//! Criterion micro-benchmarks of the framework implementation itself
//! (host wall-clock cost of the simulation's primitives; the *virtual*
//! times of the paper's figures come from the `fig*` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_diff(c: &mut Criterion) {
    use memwire::{Diff, PAGE_SIZE};
    let twin = vec![0u8; PAGE_SIZE];
    let mut cur = twin.clone();
    for i in (0..PAGE_SIZE).step_by(97) {
        cur[i] = 1;
    }
    c.bench_function("diff_create_sparse_page", |b| {
        b.iter(|| Diff::between(black_box(&twin), black_box(&cur)))
    });
    let d = Diff::between(&twin, &cur);
    c.bench_function("diff_apply_sparse_page", |b| {
        let mut page = twin.clone();
        b.iter(|| d.apply(black_box(&mut page)))
    });
}

fn bench_clock_and_server(c: &mut Criterion) {
    use sim::{Server, VirtualClock};
    let clock = VirtualClock::new();
    c.bench_function("virtual_clock_advance", |b| b.iter(|| clock.advance(black_box(7))));
    let server = Server::new();
    c.bench_function("server_serve", |b| b.iter(|| server.serve(black_box(5), black_box(3))));
}

fn bench_statset(c: &mut Criterion) {
    use sim::StatSet;
    let s = StatSet::new(&["a", "b", "c"]);
    c.bench_function("statset_add_by_name", |b| b.iter(|| s.add(black_box("b"), 1)));
}

fn bench_network_roundtrip(c: &mut Criterion) {
    use interconnect::{downcast, Network, Outcome};
    use sim::{LinkCost, VirtualClock};
    let link = LinkCost {
        send_overhead_ns: 10,
        recv_overhead_ns: 10,
        latency_ns: 100,
        bytes_per_sec: 1_000_000_000,
        handler_ns: 10,
    };
    let net = Network::builder(2, link).build();
    net.router(1).register(1, |_c, _s, p| Outcome::reply(downcast::<u64>(p) + 1, 8));
    let port = net.port(0, VirtualClock::new());
    c.bench_function("fabric_request_roundtrip", |b| {
        b.iter(|| downcast::<u64>(port.request(1, 1, black_box(5u64), 8)))
    });
}

fn bench_dsm_ops(c: &mut Criterion) {
    use cluster::{Cluster, FabricConfig, LinkKind};
    use memwire::Distribution;
    use swdsm::{DsmConfig, SwDsm};
    // Single node: exercise the local fast paths (collective allocation
    // with one participant completes immediately).
    let cl = Cluster::new(FabricConfig::builder().nodes(1).link(LinkKind::Ethernet).build());
    let dsm = SwDsm::install(&cl, DsmConfig::default());
    let node = dsm.node(cl.node_ctx(0));
    let a = node.alloc(4096, Distribution::Block);
    c.bench_function("swdsm_local_read_u64", |b| b.iter(|| node.read_u64(black_box(a))));
    c.bench_function("swdsm_local_write_u64", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(1);
            node.write_u64(black_box(a), v)
        })
    });
    c.bench_function("swdsm_bulk_read_4k", |b| {
        let mut buf = vec![0u8; 4096];
        b.iter(|| node.read_bytes(black_box(a), &mut buf))
    });
}

fn bench_hybrid_ops(c: &mut Criterion) {
    use cluster::{Cluster, FabricConfig, LinkKind};
    use hybriddsm::{HybridConfig, HybridDsm};
    use memwire::Distribution;
    let cl = Cluster::new(FabricConfig::builder().nodes(1).link(LinkKind::Sci).build());
    let dsm = HybridDsm::install(&cl, HybridConfig::default());
    let node = dsm.node(cl.node_ctx(0));
    let a = node.alloc(4096, Distribution::Block);
    c.bench_function("hybrid_local_read_u64", |b| b.iter(|| node.read_u64(black_box(a))));
    c.bench_function("hybrid_local_write_u64", |b| {
        b.iter(|| node.write_u64(black_box(a), black_box(3)))
    });
}

criterion_group!(
    benches,
    bench_diff,
    bench_clock_and_server,
    bench_statset,
    bench_network_roundtrip,
    bench_dsm_ops,
    bench_hybrid_ops
);
criterion_main!(benches);
