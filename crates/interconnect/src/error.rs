//! Typed failures of the request path.

use crate::message::NodeId;

/// Why a request (or a tagged wait) did not produce a reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// No reply arrived within the resilience timeout — the request or
    /// its reply was lost on the wire. Transient: retryable.
    Timeout {
        /// Virtual time at which the waiter gave up.
        deadline_ns: u64,
    },
    /// The destination node was crashed when the message would have
    /// reached it. Transient: the node may heal.
    NodeDown {
        /// The unreachable node.
        node: NodeId,
        /// Virtual time at which the failure was detected.
        at_ns: u64,
    },
    /// The message departed in one membership view epoch and would have
    /// arrived in another; the fabric fenced it at the view boundary
    /// (see `membership::MembershipPlan`). Transient: a retried send
    /// departs inside the new epoch and passes the fence.
    StaleView {
        /// The view epoch in force when the message would have arrived.
        epoch: u64,
        /// Virtual time at which the fence refused the message.
        at_ns: u64,
    },
    /// The fabric is tearing down; no further delivery will happen.
    /// Fatal.
    FabricStopped,
    /// The remote handler failed (panicked, or no handler is registered
    /// for the kind). Fatal: retrying would fail the same way.
    HandlerFailed {
        /// The message kind whose handler failed.
        kind: u32,
        /// Human-readable cause.
        reason: String,
    },
}

impl RequestError {
    /// Transient errors are worth retrying; fatal ones are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            RequestError::Timeout { .. }
                | RequestError::NodeDown { .. }
                | RequestError::StaleView { .. }
        )
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Timeout { deadline_ns } => {
                write!(f, "timed out at t={deadline_ns}ns")
            }
            RequestError::NodeDown { node, at_ns } => {
                write!(f, "node {node} down (detected at t={at_ns}ns)")
            }
            RequestError::StaleView { epoch, at_ns } => {
                write!(f, "fenced at view epoch {epoch} (t={at_ns}ns)")
            }
            RequestError::FabricStopped => write!(f, "fabric stopped"),
            RequestError::HandlerFailed { kind, reason } => {
                write!(f, "handler for kind {kind:#x} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// Why [`crate::Router::dispatch`] could not produce an [`crate::Outcome`].
/// The delivery engine turns this into a NACK
/// ([`RequestError::HandlerFailed`]) instead of dying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchError {
    /// No handler is registered for the message kind.
    NoHandler {
        /// The unroutable message kind.
        kind: u32,
    },
    /// The payload was not the type the handler expects. Produced by
    /// [`crate::try_downcast`] inside fallible handlers — the typed
    /// alternative to the panicking [`crate::downcast`].
    PayloadType {
        /// The type the handler expected (`std::any::type_name`).
        expected: &'static str,
    },
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::NoHandler { kind } => {
                write!(f, "no handler for message kind {kind:#x}")
            }
            DispatchError::PayloadType { expected } => {
                write!(f, "payload type mismatch: handler expected {expected}")
            }
        }
    }
}

impl std::error::Error for DispatchError {}
