//! Synchronization topology selection.
//!
//! The fabric itself is topology-agnostic — any node can message any
//! other — but the *synchronization protocols* layered on top (barriers,
//! locks, write-notice distribution in the DSM layers) choose between
//! centralized and scalable structures. [`SyncTopology`] is the typed
//! knob on [`crate::network::NetworkBuilder`]-level configs (exposed via
//! `FabricConfig::builder().sync(..)` in the cluster crate) that makes
//! that choice once, for every protocol in the stack.
//!
//! Two presets cover almost every use:
//!
//! * [`SyncTopology::centralized`] (the default) — one manager node per
//!   barrier/lock id, full write-notice directories on release
//!   broadcasts. Matches the paper's 4-node evaluation scale; message
//!   volume per barrier is O(n) messages but O(n²) carried notice
//!   records.
//! * [`SyncTopology::scalable`] — k-ary tree barrier (fan-out 8),
//!   MCS-style distributed lock-token queue, and compact write-notice
//!   digests. Per-barrier traffic is 2(n−1) messages and the carried
//!   volume is the per-subtree complement only: O(n log n) records in
//!   the worst all-writers case, with digests compressing the common
//!   sparse case further.
//!
//! The individual axes can also be mixed freely, with two documented
//! exceptions enforced by the consumers: the legacy dissemination
//! barrier does not support fault resilience, and digests do not ride
//! the dissemination barrier's pairwise exchange rounds.

use std::str::FromStr;

/// How barrier arrivals and releases are structured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierTopology {
    /// All arrivals funnel into a single manager node (`id % nodes`),
    /// which broadcasts the release with every node's write notices.
    /// O(n) messages, O(n²) carried notice records per barrier.
    Central,
    /// Pairwise dissemination rounds (⌈log₂ n⌉ rounds, every node sends
    /// one message per round). Legacy scalable scheme from the ablation
    /// study; does not support fault resilience and carries the full
    /// notice directory in every exchange.
    Dissemination,
    /// k-ary aggregation tree rooted at `id % nodes`. Arrivals aggregate
    /// up the tree; release waves flow down carrying only the interval
    /// deltas the receiving subtree has not seen (the complement of its
    /// own aggregate). 2(n−1) messages per barrier, resilient-capable.
    Tree {
        /// Maximum children per tree node. 2 gives a binary tree
        /// (deepest, smallest per-node fan-in); larger values flatten
        /// the tree at the cost of more serialized child handling per
        /// parent. The [`SyncTopology::scalable`] preset uses 8.
        fanout: usize,
    },
}

/// How lock ownership moves between nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockTopology {
    /// A single manager node (`lock % nodes`) grants and queues every
    /// acquisition; releases return to the manager. Two messages per
    /// handoff, but the manager serializes all traffic for a hot lock.
    Manager,
    /// MCS-style distributed queue: the manager only tracks the queue
    /// tail; the lock *token* (with its accumulated write notices)
    /// passes directly from releaser to successor. Uncontended and
    /// chained handoffs bypass the manager entirely. Does not support
    /// fault resilience; shared-mode acquisitions serialize as
    /// exclusive.
    TokenQueue,
}

/// How write notices are encoded on barrier release waves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoticeWire {
    /// Full per-writer page lists, exactly as accumulated. Lossless and
    /// simple; wire size grows linearly with pages written.
    Explicit,
    /// Compact digests: run-length interval summaries while the page
    /// set stays clustered, switching to a fixed-size Bloom filter past
    /// `max_runs` runs. Bloom positives are validated against home page
    /// versions in a fallback round before invalidating, so false
    /// positives cost a check, never correctness.
    Digest {
        /// Run count above which the run-length encoding is abandoned
        /// for the Bloom filter. The [`SyncTopology::scalable`] preset
        /// uses 64.
        max_runs: usize,
    },
}

/// Typed selection of synchronization structures for every protocol in
/// the stack (DSM barriers, DSM locks, write-notice wire encoding, and
/// the hybrid-DSM barrier mirror).
///
/// Construct via [`SyncTopology::centralized`] /
/// [`SyncTopology::scalable`], tweak fields directly for mixed setups,
/// or parse from a config string (see the [`FromStr`] impl).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncTopology {
    /// Barrier structure.
    pub barrier: BarrierTopology,
    /// Lock handoff structure.
    pub locks: LockTopology,
    /// Write-notice wire encoding on barrier releases.
    pub notices: NoticeWire,
}

impl SyncTopology {
    /// The paper-scale default: central barrier manager, central lock
    /// manager, explicit write notices.
    pub fn centralized() -> Self {
        Self {
            barrier: BarrierTopology::Central,
            locks: LockTopology::Manager,
            notices: NoticeWire::Explicit,
        }
    }

    /// The 1024-node configuration: fan-out-8 tree barrier, distributed
    /// lock-token queue, digest-encoded write notices.
    pub fn scalable() -> Self {
        Self {
            barrier: BarrierTopology::Tree { fanout: 8 },
            locks: LockTopology::TokenQueue,
            notices: NoticeWire::Digest { max_runs: 64 },
        }
    }
}

impl Default for SyncTopology {
    fn default() -> Self {
        Self::centralized()
    }
}

/// Error from parsing a [`SyncTopology`] config string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSyncTopologyError(String);

impl std::fmt::Display for ParseSyncTopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown sync topology {:?} (expected centralized | scalable | tree | tree:<fanout> | dissemination)",
            self.0
        )
    }
}

impl std::error::Error for ParseSyncTopologyError {}

impl FromStr for SyncTopology {
    type Err = ParseSyncTopologyError;

    /// Accepted forms:
    ///
    /// * `centralized` — [`SyncTopology::centralized`]
    /// * `scalable` — [`SyncTopology::scalable`]
    /// * `tree` / `tree:<fanout>` — scalable preset with the given tree
    ///   fan-out (default 8)
    /// * `dissemination` — dissemination barrier with otherwise
    ///   centralized locks and explicit notices (the legacy ablation
    ///   configuration)
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        match s {
            "centralized" => return Ok(Self::centralized()),
            "scalable" => return Ok(Self::scalable()),
            "tree" => return Ok(Self::scalable()),
            "dissemination" => {
                return Ok(Self {
                    barrier: BarrierTopology::Dissemination,
                    ..Self::centralized()
                });
            }
            _ => {}
        }
        if let Some(rest) = s.strip_prefix("tree:") {
            let fanout: usize =
                rest.parse().map_err(|_| ParseSyncTopologyError(s.to_string()))?;
            if fanout < 2 {
                return Err(ParseSyncTopologyError(s.to_string()));
            }
            return Ok(Self {
                barrier: BarrierTopology::Tree { fanout },
                ..Self::scalable()
            });
        }
        Err(ParseSyncTopologyError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_centralized() {
        assert_eq!(SyncTopology::default(), SyncTopology::centralized());
        assert_eq!(SyncTopology::centralized().barrier, BarrierTopology::Central);
        assert_eq!(SyncTopology::centralized().locks, LockTopology::Manager);
        assert_eq!(SyncTopology::centralized().notices, NoticeWire::Explicit);
    }

    #[test]
    fn scalable_preset() {
        let t = SyncTopology::scalable();
        assert_eq!(t.barrier, BarrierTopology::Tree { fanout: 8 });
        assert_eq!(t.locks, LockTopology::TokenQueue);
        assert_eq!(t.notices, NoticeWire::Digest { max_runs: 64 });
    }

    #[test]
    fn parses_presets_and_tree_fanout() {
        assert_eq!("centralized".parse::<SyncTopology>().unwrap(), SyncTopology::centralized());
        assert_eq!("scalable".parse::<SyncTopology>().unwrap(), SyncTopology::scalable());
        assert_eq!("tree".parse::<SyncTopology>().unwrap(), SyncTopology::scalable());
        let t: SyncTopology = "tree:4".parse().unwrap();
        assert_eq!(t.barrier, BarrierTopology::Tree { fanout: 4 });
        let d: SyncTopology = "dissemination".parse().unwrap();
        assert_eq!(d.barrier, BarrierTopology::Dissemination);
        assert_eq!(d.locks, LockTopology::Manager);
    }

    #[test]
    fn rejects_garbage_and_degenerate_fanout() {
        assert!("mesh".parse::<SyncTopology>().is_err());
        assert!("tree:1".parse::<SyncTopology>().is_err());
        assert!("tree:x".parse::<SyncTopology>().is_err());
        let err = "mesh".parse::<SyncTopology>().unwrap_err();
        assert!(err.to_string().contains("mesh"), "{err}");
    }
}
