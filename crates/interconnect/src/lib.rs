#![deny(missing_docs)]
//! Simulated cluster interconnect with virtual-time cost accounting.
//!
//! This crate stands in for the paper's physical networks (switched Fast
//! Ethernet for the Beowulf/software-DSM configuration, Dolphin SCI for
//! the hybrid configuration, and the memory bus for SMP-as-cluster). All
//! protocol traffic between simulated nodes really happens — messages are
//! delivered across threads and handled by per-node communication daemons
//! — while *time* is charged according to a [`sim::LinkCost`] model.
//!
//! Key pieces:
//!
//! * [`Network`] — constructs the fabric: one inbox + service thread per
//!   node, a handler [`router::Router`] per node, and a [`sim::Server`]
//!   per node modelling protocol-handler occupancy (so a hot page home
//!   exhibits queueing, as on the real cluster).
//! * [`NodePort`] — the per-node endpoint used by application threads:
//!   synchronous [`NodePort::request`] (round-trip timed), asynchronous
//!   [`NodePort::post`], and broadcast.
//! * [`Mailbox`] — node-local wait queues that let an application thread
//!   block until a protocol handler deposits a wake-up (used by barriers,
//!   queued locks, thread forwarding, and user-level messaging).
//! * The *unified messaging layer* flag — HAMSTER coalesces the separate
//!   native messaging stacks into one (paper §3.3); when active, a fixed
//!   per-message software saving is applied. This is the mechanism behind
//!   the small speedups of Figure 2.

//! * [`fault`] — deterministic, seeded fault injection (drop, duplicate,
//!   delay, reorder, crash, partition) plus the [`fault::Resilience`]
//!   timeout/retry policy; failures surface as typed [`RequestError`]s.
//! * [`membership`] — deterministic join/leave/recover schedules
//!   ([`MembershipPlan`]) whose view epochs fence in-flight messages
//!   across view changes ([`RequestError::StaleView`]).

pub mod engine;
pub mod error;
pub mod fault;
pub mod mailbox;
pub mod membership;
pub mod message;
pub mod network;
pub mod router;
pub mod topology;

pub use engine::EngineMode;
pub use error::{DispatchError, RequestError};
pub use fault::{FaultPlan, LinkFaults, Resilience, RetryPolicy};
pub use membership::{MembershipEvent, MembershipPlan, MembershipSpec, ViewChange};
pub use mailbox::Mailbox;
pub use message::{downcast, try_downcast, HandlerCtx, NodeId, Outcome, Page, Payload};
pub use network::{Network, NetworkBuilder, NodePort};
pub use router::Router;
pub use topology::{BarrierTopology, LockTopology, NoticeWire, SyncTopology};
