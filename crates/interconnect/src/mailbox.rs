//! Node-local wait queues connecting protocol handlers to blocked
//! application threads.
//!
//! Several shared-memory operations complete asynchronously from the
//! requester's point of view: a barrier release, a queued lock grant, a
//! forwarded thread's exit notification, a user-level receive. The
//! handler that learns of the event runs on the node's communication
//! daemon; the application thread meanwhile blocks on the node's
//! [`Mailbox`] under a tag. Deposits carry the virtual time at which the
//! wake-up message arrived, so the woken thread can advance its clock.

use crate::message::Payload;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};

/// A deposited wake-up: payload plus virtual arrival time.
pub struct Deposit {
    /// The handler's payload for the waiter.
    pub payload: Payload,
    /// Virtual time the wake-up message arrived.
    pub arrive_ns: u64,
    /// Tombstone for a wake-up the fault injector destroyed: `payload`
    /// is `()` and `arrive_ns` is the timeout deadline. Resilient
    /// waiters turn this into a `Timeout` error and re-drive the
    /// protocol; plain [`Mailbox::wait`]ers must not see one.
    pub lost: bool,
}

#[derive(Default)]
struct Inner {
    queues: HashMap<u64, VecDeque<Deposit>>,
}

/// One mailbox per simulated node.
#[derive(Default)]
pub struct Mailbox {
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit a wake-up under `tag`. Called from protocol handlers.
    ///
    /// A real wake-up supersedes any loss tombstone still pending under
    /// the same tag: the tombstone said "the wake-up was destroyed", and
    /// a later copy (a fault-injected duplicate, a retried send) proving
    /// otherwise must win. Without the purge, batched delivery could
    /// hand the waiter the stale tombstone — a spurious timeout — while
    /// the real wake-up sat right behind it.
    pub fn deposit(&self, tag: u64, payload: Payload, arrive_ns: u64) {
        let mut g = self.inner.lock();
        let q = g.queues.entry(tag).or_default();
        q.retain(|d| !d.lost);
        q.push_back(Deposit { payload, arrive_ns, lost: false });
        self.cond.notify_all();
    }

    /// Deposit a loss tombstone under `tag`: the wake-up that should
    /// have landed here was destroyed by fault injection, and the
    /// waiter should learn about it at `deadline_ns` (its timeout).
    pub fn deposit_lost(&self, tag: u64, deadline_ns: u64) {
        let mut g = self.inner.lock();
        g.queues
            .entry(tag)
            .or_default()
            .push_back(Deposit { payload: Box::new(()), arrive_ns: deadline_ns, lost: true });
        self.cond.notify_all();
    }

    /// Block until a deposit under `tag` is available, then take it.
    pub fn wait(&self, tag: u64) -> Deposit {
        let mut g = self.inner.lock();
        loop {
            if let Some(q) = g.queues.get_mut(&tag) {
                if let Some(d) = take_preferring_real(q) {
                    return d;
                }
            }
            self.cond.wait(&mut g);
        }
    }

    /// Take a deposit under `tag` if one is already present.
    pub fn try_take(&self, tag: u64) -> Option<Deposit> {
        let mut g = self.inner.lock();
        g.queues.get_mut(&tag).and_then(take_preferring_real)
    }

    /// Number of pending deposits under `tag`.
    pub fn pending(&self, tag: u64) -> usize {
        self.inner.lock().queues.get(&tag).map_or(0, |q| q.len())
    }
}

/// Take the first *real* deposit if one exists; fall back to a
/// tombstone only when nothing else is queued. Batched delivery can
/// land a late real wake-up behind an already-queued tombstone for the
/// same tag in one batch — the waiter must never time out on the
/// tombstone while the real deposit is present.
fn take_preferring_real(q: &mut VecDeque<Deposit>) -> Option<Deposit> {
    if let Some(ix) = q.iter().position(|d| !d.lost) {
        q.remove(ix)
    } else {
        q.pop_front()
    }
}

/// Build a mailbox tag from a message kind and an instance id (e.g. a
/// particular barrier or lock).
pub fn tag(kind: u32, id: u32) -> u64 {
    ((kind as u64) << 32) | id as u64
}

/// A bounded multi-producer work queue with explicit backpressure: the
/// per-node envelope queue of the sharded engine.
///
/// Two enqueue flavours reflect who is calling:
///
/// * [`BoundedQueue::push_wait`] — application threads. Blocks (in real
///   time) while the queue is full; this is the backpressure that keeps
///   a flooding sender from ballooning memory.
/// * [`BoundedQueue::push`] — handler context. Never blocks, even over
///   capacity: a worker that blocked pushing to a queue it is itself
///   responsible for draining would deadlock the shard, so handler
///   enqueues always overflow the bound instead.
///
/// Closing the queue (teardown) wakes blocked producers and makes every
/// subsequent push return the rejected value to the caller, which
/// answers any reply obligation itself.
pub struct BoundedQueue<T> {
    inner: Mutex<BoundedInner<T>>,
    space: Condvar,
    capacity: usize,
}

struct BoundedInner<T> {
    q: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// An open queue admitting `capacity` items before producers block.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "bounded queue needs capacity");
        Self {
            inner: Mutex::new(BoundedInner { q: VecDeque::new(), closed: false }),
            space: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking enqueue that may overflow the bound (handler
    /// context — see the type docs). `Err(v)` when closed.
    pub fn push(&self, v: T) -> Result<(), T> {
        let mut g = self.inner.lock();
        if g.closed {
            return Err(v);
        }
        g.q.push_back(v);
        Ok(())
    }

    /// Blocking enqueue honoring the bound. Returns whether the caller
    /// had to wait for space (the backpressure signal), or `Err(v)`
    /// when the queue is (or becomes, while waiting) closed.
    pub fn push_wait(&self, v: T) -> Result<bool, T> {
        let mut g = self.inner.lock();
        let mut waited = false;
        while g.q.len() >= self.capacity && !g.closed {
            waited = true;
            self.space.wait(&mut g);
        }
        if g.closed {
            return Err(v);
        }
        g.q.push_back(v);
        Ok(waited)
    }

    /// Move up to `max` items (FIFO) into `out`, waking producers that
    /// were blocked on the freed space.
    pub fn drain_into(&self, max: usize, out: &mut Vec<T>) {
        let mut g = self.inner.lock();
        let n = g.q.len().min(max);
        out.extend(g.q.drain(..n));
        if n > 0 {
            self.space.notify_all();
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().q.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the queue and return everything still queued. Blocked
    /// producers wake up with `Err`.
    pub fn close(&self) -> Vec<T> {
        let mut g = self.inner.lock();
        g.closed = true;
        let left = g.q.drain(..).collect();
        self.space.notify_all();
        left
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn deposit_then_wait() {
        let m = Mailbox::new();
        m.deposit(tag(1, 0), Box::new(5u32), 100);
        let d = m.wait(tag(1, 0));
        assert_eq!(d.arrive_ns, 100);
        assert_eq!(crate::downcast::<u32>(d.payload), 5);
    }

    #[test]
    fn wait_blocks_until_deposit() {
        let m = Arc::new(Mailbox::new());
        let m2 = m.clone();
        let h = std::thread::spawn(move || m2.wait(tag(2, 7)).arrive_ns);
        std::thread::sleep(std::time::Duration::from_millis(20));
        m.deposit(tag(2, 7), Box::new(()), 42);
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn tags_are_independent() {
        let m = Mailbox::new();
        m.deposit(tag(1, 0), Box::new(()), 1);
        assert!(m.try_take(tag(1, 1)).is_none());
        assert!(m.try_take(tag(2, 0)).is_none());
        assert!(m.try_take(tag(1, 0)).is_some());
    }

    #[test]
    fn fifo_order_within_tag() {
        let m = Mailbox::new();
        m.deposit(tag(3, 0), Box::new(1u8), 10);
        m.deposit(tag(3, 0), Box::new(2u8), 20);
        assert_eq!(crate::downcast::<u8>(m.wait(tag(3, 0)).payload), 1);
        assert_eq!(crate::downcast::<u8>(m.wait(tag(3, 0)).payload), 2);
    }

    #[test]
    fn pending_counts() {
        let m = Mailbox::new();
        assert_eq!(m.pending(tag(9, 9)), 0);
        m.deposit(tag(9, 9), Box::new(()), 0);
        m.deposit(tag(9, 9), Box::new(()), 0);
        assert_eq!(m.pending(tag(9, 9)), 2);
    }

    #[test]
    fn lost_deposits_are_marked() {
        let m = Mailbox::new();
        m.deposit_lost(tag(4, 0), 9_000);
        let d = m.wait(tag(4, 0));
        assert!(d.lost);
        assert_eq!(d.arrive_ns, 9_000);
        m.deposit(tag(4, 0), Box::new(1u8), 10);
        assert!(!m.wait(tag(4, 0)).lost);
    }

    #[test]
    fn tag_packing_distinct() {
        assert_ne!(tag(1, 2), tag(2, 1));
        assert_eq!(tag(0xABCD, 0x1234) >> 32, 0xABCD);
    }

    #[test]
    fn late_deposit_supersedes_tombstone() {
        // Regression: batched delivery can enqueue a loss tombstone and
        // then a late real copy of the same wake-up before the waiter
        // runs. The waiter must get the real deposit, and the stale
        // tombstone must be gone — not surface as a spurious timeout on
        // the *next* wait under the tag.
        let m = Mailbox::new();
        m.deposit_lost(tag(5, 1), 9_000);
        m.deposit(tag(5, 1), Box::new(3u8), 700);
        assert_eq!(m.pending(tag(5, 1)), 1, "real deposit purges the tombstone");
        let d = m.wait(tag(5, 1));
        assert!(!d.lost);
        assert_eq!(d.arrive_ns, 700);
        assert!(m.try_take(tag(5, 1)).is_none());
    }

    #[test]
    fn take_prefers_real_over_queued_tombstone() {
        // Even if a tombstone lands *between* two real deposits (so the
        // purge in `deposit` cannot see it coming), takers skip over it.
        let m = Mailbox::new();
        let q_tag = tag(6, 0);
        {
            // Build the pathological order directly: real, lost, real
            // cannot occur via deposit() (it purges), but try_take must
            // still prefer real entries if a tombstone is mid-queue.
            m.deposit(q_tag, Box::new(1u8), 10);
            m.deposit_lost(q_tag, 5_000);
        }
        assert!(!m.try_take(q_tag).unwrap().lost, "real deposit wins over tombstone");
        assert!(m.try_take(q_tag).unwrap().lost, "tombstone only when nothing real is left");
    }

    #[test]
    fn bounded_queue_fifo_and_drain() {
        let q = BoundedQueue::new(4);
        for i in 0..3 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 3);
        let mut out = Vec::new();
        q.drain_into(2, &mut out);
        assert_eq!(out, vec![0, 1]);
        q.drain_into(8, &mut out);
        assert_eq!(out, vec![0, 1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_queue_backpressure_blocks_until_drained() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push_wait(0).unwrap();
        q.push_wait(1).unwrap();
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.push_wait(2).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.len(), 2, "third producer is blocked");
        let mut out = Vec::new();
        q.drain_into(1, &mut out);
        assert!(h.join().unwrap(), "blocked producer reports having waited");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn bounded_queue_push_overflows_instead_of_blocking() {
        // Handler-context pushes must never block, even over capacity.
        let q = BoundedQueue::new(1);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn bounded_queue_close_rejects_and_returns_leftovers() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(7).unwrap();
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.push_wait(8));
        std::thread::sleep(std::time::Duration::from_millis(20));
        let left = q.close();
        assert_eq!(left, vec![7]);
        assert_eq!(h.join().unwrap(), Err(8), "blocked producer wakes with its value");
        assert_eq!(q.push(9), Err(9));
    }
}
