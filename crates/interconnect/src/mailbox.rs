//! Node-local wait queues connecting protocol handlers to blocked
//! application threads.
//!
//! Several shared-memory operations complete asynchronously from the
//! requester's point of view: a barrier release, a queued lock grant, a
//! forwarded thread's exit notification, a user-level receive. The
//! handler that learns of the event runs on the node's communication
//! daemon; the application thread meanwhile blocks on the node's
//! [`Mailbox`] under a tag. Deposits carry the virtual time at which the
//! wake-up message arrived, so the woken thread can advance its clock.

use crate::message::Payload;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};

/// A deposited wake-up: payload plus virtual arrival time.
pub struct Deposit {
    /// The handler's payload for the waiter.
    pub payload: Payload,
    /// Virtual time the wake-up message arrived.
    pub arrive_ns: u64,
    /// Tombstone for a wake-up the fault injector destroyed: `payload`
    /// is `()` and `arrive_ns` is the timeout deadline. Resilient
    /// waiters turn this into a `Timeout` error and re-drive the
    /// protocol; plain [`Mailbox::wait`]ers must not see one.
    pub lost: bool,
}

#[derive(Default)]
struct Inner {
    queues: HashMap<u64, VecDeque<Deposit>>,
}

/// One mailbox per simulated node.
#[derive(Default)]
pub struct Mailbox {
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit a wake-up under `tag`. Called from protocol handlers.
    pub fn deposit(&self, tag: u64, payload: Payload, arrive_ns: u64) {
        let mut g = self.inner.lock();
        g.queues
            .entry(tag)
            .or_default()
            .push_back(Deposit { payload, arrive_ns, lost: false });
        self.cond.notify_all();
    }

    /// Deposit a loss tombstone under `tag`: the wake-up that should
    /// have landed here was destroyed by fault injection, and the
    /// waiter should learn about it at `deadline_ns` (its timeout).
    pub fn deposit_lost(&self, tag: u64, deadline_ns: u64) {
        let mut g = self.inner.lock();
        g.queues
            .entry(tag)
            .or_default()
            .push_back(Deposit { payload: Box::new(()), arrive_ns: deadline_ns, lost: true });
        self.cond.notify_all();
    }

    /// Block until a deposit under `tag` is available, then take it.
    pub fn wait(&self, tag: u64) -> Deposit {
        let mut g = self.inner.lock();
        loop {
            if let Some(q) = g.queues.get_mut(&tag) {
                if let Some(d) = q.pop_front() {
                    return d;
                }
            }
            self.cond.wait(&mut g);
        }
    }

    /// Take a deposit under `tag` if one is already present.
    pub fn try_take(&self, tag: u64) -> Option<Deposit> {
        let mut g = self.inner.lock();
        g.queues.get_mut(&tag).and_then(|q| q.pop_front())
    }

    /// Number of pending deposits under `tag`.
    pub fn pending(&self, tag: u64) -> usize {
        self.inner.lock().queues.get(&tag).map_or(0, |q| q.len())
    }
}

/// Build a mailbox tag from a message kind and an instance id (e.g. a
/// particular barrier or lock).
pub fn tag(kind: u32, id: u32) -> u64 {
    ((kind as u64) << 32) | id as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn deposit_then_wait() {
        let m = Mailbox::new();
        m.deposit(tag(1, 0), Box::new(5u32), 100);
        let d = m.wait(tag(1, 0));
        assert_eq!(d.arrive_ns, 100);
        assert_eq!(crate::downcast::<u32>(d.payload), 5);
    }

    #[test]
    fn wait_blocks_until_deposit() {
        let m = Arc::new(Mailbox::new());
        let m2 = m.clone();
        let h = std::thread::spawn(move || m2.wait(tag(2, 7)).arrive_ns);
        std::thread::sleep(std::time::Duration::from_millis(20));
        m.deposit(tag(2, 7), Box::new(()), 42);
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn tags_are_independent() {
        let m = Mailbox::new();
        m.deposit(tag(1, 0), Box::new(()), 1);
        assert!(m.try_take(tag(1, 1)).is_none());
        assert!(m.try_take(tag(2, 0)).is_none());
        assert!(m.try_take(tag(1, 0)).is_some());
    }

    #[test]
    fn fifo_order_within_tag() {
        let m = Mailbox::new();
        m.deposit(tag(3, 0), Box::new(1u8), 10);
        m.deposit(tag(3, 0), Box::new(2u8), 20);
        assert_eq!(crate::downcast::<u8>(m.wait(tag(3, 0)).payload), 1);
        assert_eq!(crate::downcast::<u8>(m.wait(tag(3, 0)).payload), 2);
    }

    #[test]
    fn pending_counts() {
        let m = Mailbox::new();
        assert_eq!(m.pending(tag(9, 9)), 0);
        m.deposit(tag(9, 9), Box::new(()), 0);
        m.deposit(tag(9, 9), Box::new(()), 0);
        assert_eq!(m.pending(tag(9, 9)), 2);
    }

    #[test]
    fn lost_deposits_are_marked() {
        let m = Mailbox::new();
        m.deposit_lost(tag(4, 0), 9_000);
        let d = m.wait(tag(4, 0));
        assert!(d.lost);
        assert_eq!(d.arrive_ns, 9_000);
        m.deposit(tag(4, 0), Box::new(1u8), 10);
        assert!(!m.wait(tag(4, 0)).lost);
    }

    #[test]
    fn tag_packing_distinct() {
        assert_ne!(tag(1, 2), tag(2, 1));
        assert_eq!(tag(0xABCD, 0x1234) >> 32, 0xABCD);
    }
}
