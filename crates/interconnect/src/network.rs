//! The fabric: per-node ingress queues, the delivery engine, and timed
//! request/post primitives.
//!
//! Two delivery engines execute the same envelope-processing code (see
//! [`EngineMode`]): the legacy thread-per-node communication daemons,
//! and the default sharded event-driven scheduler — per-node bounded
//! run queues over a small worker pool with batched virtual-time
//! delivery. Virtual timings are identical either way; only wall-clock
//! throughput differs.
//!
//! With a [`FaultPlan`] installed the fabric fails on purpose: messages
//! are dropped, duplicated, delayed or displaced, and whole nodes crash
//! and heal at scheduled virtual times. Failures surface to requesters
//! as typed [`RequestError`]s at virtual-time deadlines (never as
//! wall-clock waits), and the resilient request variants retry through
//! transient faults with exponential backoff.

use crate::engine::{EngineMode, NodeQueue, ENGINE_BATCH};
use crate::error::RequestError;
use crate::fault::{FaultDecision, FaultPlan, Resilience, mix, REPLY_STREAM, RETRY_STREAM};
use crate::mailbox::Mailbox;
use crate::membership::MembershipPlan;
use crate::message::{HandlerCtx, NodeId, Outcome, Payload};

use crate::router::Router;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use sim::{Bus, Histogram, LinkCost, StatSet, VirtualClock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Delivery cost when a node messages itself (protocol layers normally
/// shortcut this, but correctness must not depend on it).
const LOCAL_DELIVERY_NS: u64 = 500;

/// Request ids a daemon remembers for duplicate suppression.
const DEDUP_WINDOW: usize = 1 << 16;

enum ReplyMsg {
    Ok { payload: Payload, wire_bytes: u64, ready_ns: u64 },
    Err { err: RequestError, ready_ns: u64 },
}

enum Envelope {
    Stop,
    User {
        src: NodeId,
        kind: u32,
        payload: Payload,
        arrive_ns: u64,
        reply: Option<Sender<ReplyMsg>>,
        /// Delivery id (unique per enqueued message; doubles as the
        /// trace correlation id between sender and handler spans).
        /// Duplicated deliveries repeat the id so the receiving daemon
        /// can recognize and discard the copy.
        req_id: u64,
        /// Virtual time at which the requester gives up (0 = none).
        deadline_ns: u64,
    },
    /// A fault-injected duplicate of the `req_id` delivery. Payloads
    /// are not `Clone`, so the copy is delivered as a marker; the
    /// daemon charges receive overhead, matches the id against its
    /// dedup window, and drops it — exactly what an idempotent
    /// transport layer does.
    Dup { src: NodeId, kind: u32, req_id: u64, arrive_ns: u64 },
    /// A fault-destroyed request. The typed error is routed through the
    /// destination daemon rather than handed to the requester
    /// synchronously: the virtual timing is identical (`ready_ns` is
    /// fixed at send time), but the requester only unblocks — and can
    /// only resend — after the daemon has worked through everything
    /// enqueued ahead of the loss. That keeps real-time processing
    /// order close to virtual order, which the service-queue model
    /// depends on for run-to-run reproducibility.
    Fail { reply: Sender<ReplyMsg>, err: RequestError, ready_ns: u64 },
}

/// Seeded fault machinery: the plan plus per-stream sequence counters
/// (so decisions depend only on a message's position in its
/// `(src, dst, kind)` stream, not on thread interleaving) and per-node
/// windows of recently seen request ids.
struct FaultState {
    plan: FaultPlan,
    seqs: Vec<Mutex<HashMap<(NodeId, u32), u64>>>,
    dedup: Vec<Mutex<DedupWindow>>,
}

#[derive(Default)]
struct DedupWindow {
    seen: HashSet<u64>,
    order: VecDeque<u64>,
}

impl DedupWindow {
    fn insert(&mut self, id: u64) {
        if self.seen.insert(id) {
            self.order.push_back(id);
            if self.order.len() > DEDUP_WINDOW {
                if let Some(old) = self.order.pop_front() {
                    self.seen.remove(&old);
                }
            }
        }
    }

    fn contains(&self, id: u64) -> bool {
        self.seen.contains(&id)
    }
}

impl FaultState {
    /// Draw the next decision on the `(src, dst, kind)` stream.
    fn next_decision(&self, src: NodeId, dst: NodeId, kind: u32) -> FaultDecision {
        let seq = {
            let mut g = self.seqs[src].lock();
            let c = g.entry((dst, kind)).or_insert(0);
            *c += 1;
            *c
        };
        self.plan.decide(src, dst, kind, seq)
    }

    /// Deterministic jitter salt for the next retry on the
    /// `(src, dst, kind)` stream (see [`RETRY_STREAM`]).
    fn next_retry_salt(&self, src: NodeId, dst: NodeId, kind: u32) -> u64 {
        let kind = kind | RETRY_STREAM;
        let seq = {
            let mut g = self.seqs[src].lock();
            let c = g.entry((dst, kind)).or_insert(0);
            *c += 1;
            *c
        };
        let stream = ((src as u64) << 42) ^ ((dst as u64) << 21) ^ kind as u64;
        mix(self.plan.seed ^ mix(stream) ^ seq)
    }
}

/// Per-node ingress of the fabric: which delivery engine owns the
/// envelopes between `send_user` and `process_envelope`.
enum Ingress {
    /// Legacy: one unbounded channel per node, drained by a dedicated
    /// communication-daemon thread.
    Threads(Vec<Sender<Envelope>>),
    /// Sharded scheduler: one bounded run queue per node, drained in
    /// batches by the shard worker the node is pinned to.
    Sharded { queues: Vec<NodeQueue<Envelope>>, shards: Arc<sim::sched::Shards> },
}

/// Shared state of the fabric (one per experiment run).
pub struct NetShared {
    ingress: Ingress,
    /// Protocol-handler occupancy per node (the communication daemon),
    /// modelled as windowed service demand: one virtual "byte" per
    /// nanosecond of handler time. Like the NIC and memory buses, the
    /// windowed form is independent of the real-time order in which
    /// messages reach the daemon (a FIFO horizon here let a virtually
    /// *later* message delay a virtually earlier one by its full
    /// service time).
    servers: Vec<Bus>,
    /// Egress bandwidth per node: one NIC per node, so concurrent
    /// outbound transfers share (and contend for) link bandwidth. A
    /// windowed model keeps the accounting independent of the real-time
    /// order in which node threads reserve virtual bandwidth.
    egress: Vec<Bus>,
    routers: Vec<Arc<Router>>,
    mailboxes: Vec<Arc<Mailbox>>,
    cost: LinkCost,
    send_eff_ns: u64,
    recv_eff_ns: u64,
    stats: StatSet,
    /// Latency histogram over completed synchronous request round trips
    /// (send overhead → reply received), in virtual ns.
    rtt_hist: Histogram,
    faults: Option<FaultState>,
    resilience: Option<Resilience>,
    /// Membership schedule, when the cluster is elastic. Every send is
    /// epoch-fenced against it: a message departing in one view epoch
    /// and arriving in another is refused with the transient
    /// [`RequestError::StaleView`] instead of crossing the view change.
    /// Pure virtual-time data, so fencing is deterministic. Replies are
    /// not fenced — a request served inside an epoch completes — and
    /// the absence windows the plan implies are enforced by the fault
    /// layer's crash windows (merged in by the cluster layer).
    membership: Option<MembershipPlan>,
    /// Number of activated node slots: the initial set plus every
    /// [`Network::join_node`] so far. Slots in `active..capacity` are
    /// reserved but latent (no delivery service yet).
    active: AtomicUsize,
    /// Teardown flag: once set, requests fail with `FabricStopped` and
    /// posts are dropped instead of racing the daemons' exit.
    stopped: AtomicBool,
    /// Times an application thread blocked on a full node queue
    /// (sharded engine backpressure). Real-time dependent, so kept out
    /// of the deterministic [`NET_STAT_NAMES`] counters.
    bp_waits: AtomicU64,
    next_req_id: AtomicU64,
    /// Reply obligations parked by handlers ([`Outcome::defer`]), keyed
    /// by `(handling node, protocol key, requester)`. A re-request from
    /// the same requester replaces its entry (the abandoned channel is
    /// harmless); teardown fails whatever is left with `FabricStopped`.
    deferred: Mutex<HashMap<(NodeId, u64, NodeId), DeferredReply>>,
    /// Signalled whenever a reply obligation is parked in `deferred`:
    /// an application thread racing ahead of the engine's park
    /// registration waits here ([`NetShared::complete_deferred_wait`]).
    deferred_cv: Condvar,
}

/// A parked reply obligation: everything `send_reply` needs, captured
/// when the request was served.
struct DeferredReply {
    tx: Sender<ReplyMsg>,
    kind: u32,
    /// Service completion of the deferred request; the eventual reply
    /// departs no earlier than this.
    ready_ns: u64,
    deadline_ns: u64,
    /// Delivery id of the parked request, so the discharge can emit the
    /// same `net/not_before` stall span a direct reply would.
    req_id: u64,
}

impl NetShared {
    /// Number of activated nodes in the fabric (latent reserved slots
    /// are excluded until [`Network::join_node`] brings them up).
    pub fn nodes(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Total node slots, activated or latent.
    fn capacity(&self) -> usize {
        match &self.ingress {
            Ingress::Threads(inboxes) => inboxes.len(),
            Ingress::Sharded { queues, .. } => queues.len(),
        }
    }

    /// Hand `env` to `dst`'s delivery engine. `can_block` distinguishes
    /// application threads (which absorb backpressure on a full node
    /// queue) from handler context, which must never block: the worker
    /// draining the destination queue may be the caller itself, so a
    /// handler-context enqueue overflows the bound instead. Envelopes
    /// rejected by a closed queue (teardown) are answered here.
    fn deliver(&self, dst: NodeId, env: Envelope, can_block: bool) {
        match &self.ingress {
            Ingress::Threads(inboxes) => {
                let _ = inboxes[dst].send(env);
            }
            Ingress::Sharded { queues, shards } => {
                let nq = &queues[dst];
                let res = if can_block {
                    match nq.q.push_wait(env) {
                        Ok(waited) => {
                            if waited {
                                self.bp_waits.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(())
                        }
                        Err(env) => Err(env),
                    }
                } else {
                    nq.q.push(env)
                };
                match res {
                    Ok(()) => {
                        if nq.claim_schedule() {
                            shards.schedule(dst);
                        }
                    }
                    Err(env) => answer_stranded(env),
                }
            }
        }
    }

    fn wire_arrival(&self, src: NodeId, dst: NodeId, depart: u64, bytes: u64) -> u64 {
        if src == dst {
            depart + LOCAL_DELIVERY_NS
        } else {
            // The sender's NIC has finite bandwidth shared by all of
            // the node's concurrent outbound transfers.
            self.egress[src].transfer(depart, bytes) + self.cost.latency_ns
        }
    }

    fn timeout_ns(&self) -> u64 {
        self.resilience.map_or_else(|| Resilience::default().timeout_ns, |r| r.timeout_ns)
    }

    pub(crate) fn resilience(&self) -> Option<Resilience> {
        self.resilience
    }

    /// Discharge the reply parked under `(node, key, who)`: the reply
    /// departs at the later of the deferred request's service end and
    /// `not_before_ns`, through the same fault gauntlet as any reply.
    pub(crate) fn complete_deferred(
        &self,
        node: NodeId,
        key: u64,
        who: NodeId,
        payload: Payload,
        wire_bytes: u64,
        not_before_ns: u64,
    ) {
        let parked = self
            .deferred
            .lock()
            .remove(&(node, key, who))
            .unwrap_or_else(|| {
                panic!("node {node}: no deferred reply parked under key {key:#x} for node {who}")
            });
        let ready_ns = parked.ready_ns.max(not_before_ns);
        if ready_ns > parked.ready_ns && sim::trace::enabled() {
            // Mirror the direct-reply `net/not_before` stall span: the
            // discharge floor held this reply past its service end.
            // Emitting it here too keeps the trace stream independent
            // of *which* same-instant arrival happened to be served
            // last (and so replied directly instead of deferring).
            sim::trace::span_corr(
                parked.ready_ns,
                ready_ns - parked.ready_ns,
                node,
                "net",
                "not_before",
                ready_ns,
                parked.req_id,
            );
        }
        send_reply(
            self,
            node,
            who,
            parked.kind,
            parked.tx,
            payload,
            wire_bytes,
            ready_ns,
            parked.deadline_ns,
        );
    }

    /// Like [`NetShared::complete_deferred`], but blocks until the park
    /// exists instead of panicking. Application threads race the engine
    /// here: a handler may wake the app thread (mailbox deposit, state
    /// machine update) *before* returning the [`Outcome::defer`] that
    /// registers the park, so the discharge can legitimately arrive a
    /// few instructions early. Stops waiting if the fabric shuts down.
    pub(crate) fn complete_deferred_wait(
        &self,
        node: NodeId,
        key: u64,
        who: NodeId,
        payload: Payload,
        wire_bytes: u64,
        not_before_ns: u64,
    ) {
        let parked = {
            let mut map = self.deferred.lock();
            loop {
                if let Some(p) = map.remove(&(node, key, who)) {
                    break p;
                }
                if self.stopped.load(Ordering::Acquire) {
                    return;
                }
                self.deferred_cv.wait(&mut map);
            }
        };
        let ready_ns = parked.ready_ns.max(not_before_ns);
        if ready_ns > parked.ready_ns && sim::trace::enabled() {
            // See `complete_deferred`: deferred discharges emit the same
            // stall span a direct reply would.
            sim::trace::span_corr(
                parked.ready_ns,
                ready_ns - parked.ready_ns,
                node,
                "net",
                "not_before",
                ready_ns,
                parked.req_id,
            );
        }
        send_reply(
            self,
            node,
            who,
            parked.kind,
            parked.tx,
            payload,
            wire_bytes,
            ready_ns,
            parked.deadline_ns,
        );
    }

    /// The one gate every message passes on its way to an inbox. With
    /// no fault plan this is a plain send; with one, the message may be
    /// destroyed (crash window, partition, drop draw), delayed, or
    /// duplicated. Destroyed messages produce a *loss notification* at
    /// the requester's timeout deadline — an `Err` reply for requests,
    /// a mailbox tombstone for tagged posts — so waiting threads time
    /// out in virtual time instead of blocking forever.
    ///
    /// Returns the delivery id assigned to the enqueued message (every
    /// delivery gets one: it doubles as the sender↔handler correlation
    /// id in traces), or 0 if the message never reached an inbox.
    #[allow(clippy::too_many_arguments)]
    fn send_user(
        &self,
        src: NodeId,
        dst: NodeId,
        kind: u32,
        payload: Payload,
        wire_bytes: u64,
        depart: u64,
        reply: Option<Sender<ReplyMsg>>,
        wake_tag: Option<u64>,
        can_block: bool,
    ) -> u64 {
        if self.stopped.load(Ordering::Acquire) {
            if let Some(tx) = reply {
                let _ = tx.send(ReplyMsg::Err {
                    err: RequestError::FabricStopped,
                    ready_ns: depart,
                });
            }
            return 0;
        }
        let arrive_ns = self.wire_arrival(src, dst, depart, wire_bytes);
        if let Some(mp) = &self.membership {
            let arrive_epoch = mp.epoch_at(arrive_ns);
            if mp.epoch_at(depart) != arrive_epoch {
                // View-change fence: the message spans a membership
                // epoch boundary. Refuse it deterministically — the
                // requester's retry departs inside the new epoch.
                self.stats.add("view_fenced", 1);
                sim::trace::instant(depart, src, "fault", "view_fence", kind as u64);
                let deadline_ns = depart + self.timeout_ns();
                let err = RequestError::StaleView { epoch: arrive_epoch, at_ns: arrive_ns };
                self.fail_delivery(dst, reply, wake_tag, err, deadline_ns, can_block);
                return 0;
            }
        }
        let Some(fs) = &self.faults else {
            // Sends to stopped fabrics are ignored: a handler may
            // legitimately fire a post while the run is tearing down
            // (the teardown drain answers any reply channel).
            let req_id = self.next_req_id.fetch_add(1, Ordering::Relaxed) + 1;
            self.deliver(
                dst,
                Envelope::User { src, kind, payload, arrive_ns, reply, req_id, deadline_ns: 0 },
                can_block,
            );
            return req_id;
        };
        let deadline_ns = depart + self.timeout_ns();
        let dst_down = fs.plan.down_at(dst, arrive_ns);
        if dst_down || fs.plan.down_at(src, depart) || fs.plan.cut_at(src, dst, depart) {
            self.stats.add("crash_drops", 1);
            sim::trace::instant(depart, src, "fault", "crash_drop", kind as u64);
            let err = if dst_down {
                // The sender's transport notices the dead peer one
                // wire trip out; a partitioned or self-crashed path
                // just goes silent until the timeout.
                RequestError::NodeDown { node: dst, at_ns: arrive_ns }
            } else {
                RequestError::Timeout { deadline_ns }
            };
            self.fail_delivery(dst, reply, wake_tag, err, deadline_ns, can_block);
            return 0;
        }
        let d = fs.next_decision(src, dst, kind);
        if d.drop {
            self.stats.add("faults_dropped", 1);
            sim::trace::instant(depart, src, "fault", "drop", kind as u64);
            let err = RequestError::Timeout { deadline_ns };
            self.fail_delivery(dst, reply, wake_tag, err, deadline_ns, can_block);
            return 0;
        }
        let arrive_ns = arrive_ns + d.extra_delay_ns;
        if d.extra_delay_ns > 0 {
            self.stats.add("faults_delayed", 1);
            sim::trace::instant(depart, src, "fault", "delay", d.extra_delay_ns);
        }
        let req_id = self.next_req_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.deliver(
            dst,
            Envelope::User { src, kind, payload, arrive_ns, reply, req_id, deadline_ns },
            can_block,
        );
        if d.dup {
            self.stats.add("faults_dup", 1);
            sim::trace::instant(depart, src, "fault", "dup", kind as u64);
            self.deliver(dst, Envelope::Dup { src, kind, req_id, arrive_ns }, can_block);
        }
        req_id
    }

    #[allow(clippy::too_many_arguments)]
    fn fail_delivery(
        &self,
        dst: NodeId,
        reply: Option<Sender<ReplyMsg>>,
        wake_tag: Option<u64>,
        err: RequestError,
        deadline_ns: u64,
        can_block: bool,
    ) {
        let ready_ns = match &err {
            RequestError::NodeDown { at_ns, .. } | RequestError::StaleView { at_ns, .. } => *at_ns,
            _ => deadline_ns,
        };
        if let Some(tx) = reply {
            self.deliver(dst, Envelope::Fail { reply: tx, err, ready_ns }, can_block);
        } else if let Some(tag) = wake_tag {
            self.stats.add("tombstones", 1);
            self.mailboxes[dst].deposit_lost(tag, deadline_ns);
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn post_from_handler(
        &self,
        src: NodeId,
        dst: NodeId,
        kind: u32,
        payload: Payload,
        wire_bytes: u64,
        depart: u64,
        wake_tag: Option<u64>,
    ) {
        self.stats.at(STAT_POSTS).incr();
        self.stats.at(STAT_BYTES).add(wire_bytes);
        // Handler context: never block on backpressure (the draining
        // worker may be us).
        let _ = self.send_user(src, dst, kind, payload, wire_bytes, depart, None, wake_tag, false);
    }
}

/// Answer an envelope that can no longer be delivered (closed queue or
/// teardown drain): in-flight requests get a typed `FabricStopped`
/// error instead of a wedged waiter; one-way traffic is dropped.
fn answer_stranded(env: Envelope) {
    match env {
        Envelope::User { reply: Some(tx), arrive_ns, .. } => {
            let _ = tx.send(ReplyMsg::Err { err: RequestError::FabricStopped, ready_ns: arrive_ns });
        }
        Envelope::Fail { reply, err, ready_ns } => {
            let _ = reply.send(ReplyMsg::Err { err, ready_ns });
        }
        _ => {}
    }
}

/// Indices of the counters bumped on the delivery fast path: those are
/// an indexed atomic add, not a name scan (checked against
/// [`NET_STAT_NAMES`] when the fabric is built).
const STAT_REQUESTS: usize = 0;
const STAT_POSTS: usize = 1;
const STAT_BYTES: usize = 2;
const STAT_DELIVERED: usize = 3;

/// Names of the fabric-wide counters (see [`Network::stats`]). The
/// fault/retry counters stay at zero unless a fault plan is installed.
pub const NET_STAT_NAMES: &[&str] = &[
    "requests",
    "posts",
    "bytes",
    "delivered",
    "retries",
    "timeouts",
    "nodedown",
    "faults_dropped",
    "faults_dup",
    "faults_delayed",
    "crash_drops",
    "dedup_hits",
    "tombstones",
    "handler_failures",
    "view_fenced",
];

/// Builder for a [`Network`].
pub struct NetworkBuilder {
    nodes: usize,
    reserve: usize,
    cost: LinkCost,
    unified_saving_ns: u64,
    faults: Option<FaultPlan>,
    resilience: Option<Resilience>,
    membership: Option<MembershipPlan>,
    engine: EngineMode,
}

impl NetworkBuilder {
    /// A fabric of `nodes` endpoints over the given link.
    pub fn new(nodes: usize, cost: LinkCost) -> Self {
        assert!(nodes > 0, "need at least one node");
        Self {
            nodes,
            reserve: 0,
            cost,
            unified_saving_ns: 0,
            faults: None,
            resilience: None,
            membership: None,
            engine: EngineMode::default(),
        }
    }

    /// Pre-allocate `extra` latent node slots beyond the initial set.
    /// Reserved slots have routers, mailboxes and cost-model state from
    /// the start but no delivery service until [`Network::join_node`]
    /// activates them, so elastic growth never reallocates shared state.
    pub fn reserve_nodes(mut self, extra: usize) -> Self {
        self.reserve = extra;
        self
    }

    /// Install a membership schedule. Every send is epoch-fenced against
    /// the plan's view changes (see [`MembershipPlan::epoch_at`]); the
    /// caller is responsible for merging the plan's absence windows into
    /// the fault plan (the cluster layer does this).
    pub fn membership(mut self, plan: Option<MembershipPlan>) -> Self {
        self.membership = plan;
        self
    }

    /// Select the delivery engine (default: [`EngineMode::Sharded`]
    /// auto-sized). Virtual-time results are identical across engines;
    /// only wall-clock throughput differs.
    pub fn engine(mut self, mode: EngineMode) -> Self {
        self.engine = mode;
        self
    }

    /// Activate HAMSTER's unified messaging layer: each message saves
    /// `saving_ns` of software overhead on both the send and receive path
    /// (paper §3.3). Capped so overheads never go below 10% of native.
    pub fn unified(mut self, saving_ns: u64) -> Self {
        self.unified_saving_ns = saving_ns;
        self
    }

    /// Install a fault plan (None leaves the fabric perfectly reliable).
    /// Installing a plan without a resilience policy activates
    /// [`Resilience::default`] so lost messages still time out.
    pub fn faults(mut self, plan: Option<FaultPlan>) -> Self {
        self.faults = plan;
        self
    }

    /// Install a timeout/retry policy (None keeps the legacy
    /// infallible behaviour when no fault plan is present).
    pub fn resilience(mut self, r: Option<Resilience>) -> Self {
        self.resilience = r;
        self
    }

    /// Start the fabric: spawns the delivery engine's threads — the
    /// shard worker pool by default, or one communication-daemon thread
    /// per node under [`EngineMode::ThreadPerNode`].
    pub fn build(self) -> Network {
        debug_assert_eq!(NET_STAT_NAMES[STAT_REQUESTS], "requests");
        debug_assert_eq!(NET_STAT_NAMES[STAT_POSTS], "posts");
        debug_assert_eq!(NET_STAT_NAMES[STAT_BYTES], "bytes");
        debug_assert_eq!(NET_STAT_NAMES[STAT_DELIVERED], "delivered");
        let floor_send = self.cost.send_overhead_ns / 10;
        let floor_recv = self.cost.recv_overhead_ns / 10;
        let send_eff_ns = self.cost.send_overhead_ns.saturating_sub(self.unified_saving_ns).max(floor_send);
        let recv_eff_ns = self.cost.recv_overhead_ns.saturating_sub(self.unified_saving_ns).max(floor_recv);

        // Reserved slots share the fabric's state vectors from the
        // start; only their delivery service is latent until joined.
        let slots = self.nodes + self.reserve;
        let workers = self.engine.resolved_workers(slots);
        let mut receivers: Vec<Receiver<Envelope>> = Vec::new();
        let ingress = if workers == 0 {
            let mut inboxes = Vec::with_capacity(slots);
            for _ in 0..slots {
                let (tx, rx) = unbounded();
                inboxes.push(tx);
                receivers.push(rx);
            }
            Ingress::Threads(inboxes)
        } else {
            Ingress::Sharded {
                queues: (0..slots).map(|_| NodeQueue::new()).collect(),
                shards: sim::sched::Shards::new(workers),
            }
        };
        let resilience = self.resilience.or(self.faults.as_ref().map(|_| Resilience::default()));
        let faults = self.faults.map(|plan| FaultState {
            plan,
            seqs: (0..slots).map(|_| Mutex::new(HashMap::new())).collect(),
            dedup: (0..slots).map(|_| Mutex::new(DedupWindow::default())).collect(),
        });
        let shared = Arc::new(NetShared {
            ingress,
            servers: (0..slots)
                .map(|_| Bus::with_bandwidth(1_000_000_000))
                .collect(),
            egress: (0..slots)
                .map(|_| Bus::with_bandwidth(self.cost.bytes_per_sec))
                .collect(),
            routers: (0..slots).map(|_| Arc::new(Router::new())).collect(),
            mailboxes: (0..slots).map(|_| Arc::new(Mailbox::new())).collect(),
            cost: self.cost,
            send_eff_ns,
            recv_eff_ns,
            stats: StatSet::new(NET_STAT_NAMES),
            rtt_hist: Histogram::new(),
            faults,
            resilience,
            membership: self.membership,
            active: AtomicUsize::new(self.nodes),
            stopped: AtomicBool::new(false),
            bp_waits: AtomicU64::new(0),
            next_req_id: AtomicU64::new(0),
            deferred: Mutex::new(HashMap::new()),
            deferred_cv: Condvar::new(),
        });

        // The drain set covers every slot — including latent ones —
        // so teardown answers stranded envelopes of late joiners too.
        let drains = receivers.clone();
        let mut latent: VecDeque<(NodeId, Receiver<Envelope>)> = VecDeque::new();
        let daemons = if workers == 0 {
            let mut handles = Vec::with_capacity(self.nodes);
            for (node, rx) in receivers.into_iter().enumerate() {
                if node >= self.nodes {
                    latent.push_back((node, rx));
                    continue;
                }
                handles.push(spawn_daemon(node, rx, shared.clone()));
            }
            handles
        } else {
            let Ingress::Sharded { shards, .. } = &shared.ingress else { unreachable!() };
            let worker_shared = shared.clone();
            sim::sched::spawn_workers(shards, "net-worker", move |node| {
                drive_node(&worker_shared, node)
            })
        };

        Network { shared, daemons: Mutex::new(daemons), latent: Mutex::new(latent), drains }
    }
}

/// Send the (possibly fault-afflicted) reply of a served request.
#[allow(clippy::too_many_arguments)]
fn send_reply(
    shared: &NetShared,
    node: NodeId,
    src: NodeId,
    kind: u32,
    tx: Sender<ReplyMsg>,
    payload: Payload,
    wire_bytes: u64,
    mut ready_ns: u64,
    deadline_ns: u64,
) {
    if let Some(fs) = &shared.faults {
        let back_ns = ready_ns + shared.cost.latency_ns;
        if fs.plan.down_at(node, ready_ns)
            || fs.plan.down_at(src, back_ns)
            || fs.plan.cut_at(node, src, ready_ns)
        {
            shared.stats.add("crash_drops", 1);
            sim::trace::instant(ready_ns, node, "fault", "crash_drop", kind as u64);
            let err = RequestError::Timeout { deadline_ns };
            let _ = tx.send(ReplyMsg::Err { err, ready_ns: deadline_ns });
            return;
        }
        // Replies draw from their own decision stream (kind tagged with
        // the reply marker) so symmetric protocols don't share draws.
        let d = fs.next_decision(node, src, kind | REPLY_STREAM);
        if d.drop {
            shared.stats.add("faults_dropped", 1);
            sim::trace::instant(ready_ns, node, "fault", "drop", kind as u64);
            let err = RequestError::Timeout { deadline_ns };
            let _ = tx.send(ReplyMsg::Err { err, ready_ns: deadline_ns });
            return;
        }
        if d.extra_delay_ns > 0 {
            shared.stats.add("faults_delayed", 1);
            sim::trace::instant(ready_ns, node, "fault", "delay", d.extra_delay_ns);
            ready_ns += d.extra_delay_ns;
        }
        // A duplicated reply would be absorbed by the reply slot (the
        // requester takes the first), so `d.dup` needs no action.
    }
    // Requester may have vanished on teardown; ignore.
    let _ = tx.send(ReplyMsg::Ok { payload, wire_bytes, ready_ns });
}

/// Execute one delivered envelope on `node`: charge virtual service
/// time, dispatch through the node's router, and route the reply. Both
/// delivery engines funnel through here, which is what keeps their
/// virtual-time behaviour identical.
fn process_envelope(shared: &NetShared, node: NodeId, env: Envelope) {
    shared.stats.at(STAT_DELIVERED).incr();
    match env {
        Envelope::Stop => {}
        Envelope::Dup { src: _, kind, req_id, arrive_ns } => {
            // The transport pays receive overhead for the copy,
            // then recognizes the request id and discards it: this
            // is the de-duplication boundary duplicated deliveries
            // die at.
            shared.servers[node].transfer(arrive_ns, shared.recv_eff_ns);
            let known = shared
                .faults
                .as_ref()
                .is_some_and(|f| f.dedup[node].lock().contains(req_id));
            debug_assert!(known, "duplicate delivered before its original");
            shared.stats.add("dedup_hits", 1);
            sim::trace::instant(arrive_ns, node, "fault", "dedup", kind as u64);
        }
        Envelope::Fail { reply, err, ready_ns } => {
            // Forward the precomputed failure to the requester; no
            // service charge — the loss consumed no receive cycles.
            let _ = reply.send(ReplyMsg::Err { err, ready_ns });
        }
        Envelope::User { src, kind, payload, arrive_ns, reply, req_id, deadline_ns } => {
            if req_id != 0 {
                if let Some(fs) = &shared.faults {
                    fs.dedup[node].lock().insert(req_id);
                }
            }
            let service = shared.recv_eff_ns + shared.cost.handler_ns;
            let end0 = shared.servers[node].transfer(arrive_ns, service);
            let ctx = HandlerCtx { net: shared, node, now: end0 };
            let out = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                shared.routers[node].dispatch(&ctx, src, kind, payload)
            })) {
                Ok(Ok(out)) => out,
                Ok(Err(e)) => {
                    // Unroutable kind or typed dispatch failure: NACK
                    // the requester (or log, for one-way traffic)
                    // instead of dying.
                    shared.stats.add("handler_failures", 1);
                    eprintln!("node {node}: {e} (from node {src})");
                    if let Some(tx) = reply {
                        let err = RequestError::HandlerFailed { kind, reason: e.to_string() };
                        let _ = tx.send(ReplyMsg::Err { err, ready_ns: end0 });
                    }
                    return;
                }
                Err(e) => {
                    // A protocol-handler panic is a bug in the layer
                    // above; surface it loudly and fail the requester
                    // with a typed (non-retryable) error instead of
                    // silently wedging the whole fabric.
                    let msg = e
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| e.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic>".into());
                    shared.stats.add("handler_failures", 1);
                    eprintln!(
                        "node {node}: handler for kind {kind:#x} (from node {src}) \
                         panicked: {msg}"
                    );
                    if let Some(tx) = reply {
                        let err = RequestError::HandlerFailed { kind, reason: msg };
                        let _ = tx.send(ReplyMsg::Err { err, ready_ns: end0 });
                    }
                    return;
                }
            };
            let served = if out.extra_ns > 0 {
                shared.servers[node].transfer(end0, out.extra_ns)
            } else {
                end0
            };
            let end = served.max(out.not_before_ns);
            if sim::trace::enabled() {
                // corr = the delivery id stamped by `send_user`, the
                // same id the requester's `net/request` span carries:
                // the analyzer joins the two to rebuild send→serve
                // edges of the happens-before graph.
                sim::trace::span_corr(
                    arrive_ns,
                    served - arrive_ns,
                    node,
                    "net",
                    "handler",
                    kind as u64,
                    req_id,
                );
                if end > served {
                    // The protocol handler imposed a release floor
                    // (e.g. a lock grant not valid before the
                    // holder's release time): the reply stalls here.
                    sim::trace::span_corr(served, end - served, node, "net", "not_before", end, req_id);
                }
            }
            if let Some(key) = out.defer_key {
                // The handler took ownership of the reply: park the
                // channel; a later invocation discharges it via
                // `complete_deferred`. A re-request from the same
                // node (its first attempt's reply was lost) simply
                // replaces the abandoned channel.
                let tx = reply.unwrap_or_else(|| {
                    panic!("one-way message kind {kind:#x} deferred a reply")
                });
                shared.deferred.lock().insert(
                    (node, key, src),
                    DeferredReply { tx, kind, ready_ns: end, deadline_ns, req_id },
                );
                shared.deferred_cv.notify_all();
                return;
            }
            match (reply, out.reply) {
                (Some(tx), Some((payload, wire_bytes))) => {
                    send_reply(shared, node, src, kind, tx, payload, wire_bytes, end, deadline_ns);
                }
                (Some(tx), None) => {
                    // In resilient mode, protocol messages that are
                    // one-way on a reliable fabric travel as
                    // requests so delivery is confirmable: the
                    // transport acks them without handler help.
                    assert!(
                        shared.resilience.is_some(),
                        "synchronous request handled by non-replying handler"
                    );
                    send_reply(shared, node, src, kind, tx, Box::new(()), 8, end, deadline_ns);
                }
                (None, Some(_)) => {
                    panic!("one-way message kind {kind:#x} produced a reply")
                }
                (None, None) => {}
            }
        }
    }
}

/// Batched virtual-time delivery order, shared by both engines: virtual
/// arrival first, ties broken by (src, kind) rather than enqueue order —
/// two same-instant arrivals from different senders race in real time,
/// and the service-bus accounting they trigger is order-sensitive under
/// window saturation, so an enqueue-order tiebreak would leak real time
/// into virtual time. `Stop` sorts last: everything drained ahead of the
/// shutdown marker still gets processed.
fn delivery_order(env: &Envelope) -> (u64, usize, u32) {
    match env {
        Envelope::User { arrive_ns, src, kind, .. }
        | Envelope::Dup { arrive_ns, src, kind, .. } => (*arrive_ns, *src, *kind),
        Envelope::Fail { ready_ns, .. } => (*ready_ns, usize::MAX, u32::MAX),
        Envelope::Stop => (u64::MAX, usize::MAX, u32::MAX),
    }
}

/// Legacy engine: one communication daemon blocking on its node's inbox.
/// Like the sharded engine's [`drive_node`], the daemon drains whatever
/// has queued up and processes it in [`delivery_order`] — without the
/// sort, a burst of same-window arrivals (64-node barrier and page
/// storms) would hit the order-sensitive handler-bus windows in real
/// enqueue order and virtual times would stop reproducing.
fn daemon_loop(node: NodeId, rx: Receiver<Envelope>, shared: Arc<NetShared>) {
    let mut batch: Vec<Envelope> = Vec::with_capacity(ENGINE_BATCH);
    loop {
        let Ok(first) = rx.recv() else { return };
        batch.push(first);
        while batch.len() < ENGINE_BATCH {
            match rx.try_recv() {
                Some(env) => batch.push(env),
                None => break,
            }
        }
        // Stable: a delivery and its fault-injected duplicate (same
        // src, kind, instant) keep enqueue order, so the dedup window
        // sees the original first.
        if batch.len() > 1 {
            batch.sort_by_key(delivery_order);
        }
        let mut stop = false;
        for env in batch.drain(..) {
            if matches!(env, Envelope::Stop) {
                stop = true;
                break;
            }
            process_envelope(&shared, node, env);
        }
        if stop {
            return;
        }
    }
}

/// Sharded engine: drain and process one batch from `node`'s run queue.
/// Returns true when the node must stay on its shard's ready ring
/// (batch was full or a push raced the retire).
fn drive_node(shared: &NetShared, node: NodeId) -> bool {
    let Ingress::Sharded { queues, .. } = &shared.ingress else {
        unreachable!("drive_node on a thread-per-node fabric")
    };
    let nq = &queues[node];
    // One drain buffer per worker thread, reused across node visits: a
    // fresh ENGINE_BATCH-capacity Vec per visit is an allocator round
    // trip on every single event at queue depth 1.
    thread_local! {
        static BATCH: std::cell::RefCell<Vec<Envelope>> =
            std::cell::RefCell::new(Vec::with_capacity(ENGINE_BATCH));
    }
    BATCH.with_borrow_mut(|batch| {
        batch.clear();
        nq.q.drain_into(ENGINE_BATCH, batch);
        if batch.is_empty() {
            return nq.retire();
        }
        // Batched virtual-time delivery (see [`delivery_order`]). The
        // sort is stable, so a delivery and its fault-injected
        // duplicate (same src, kind, instant) keep enqueue order and
        // the dedup window sees the original first.
        if batch.len() > 1 {
            batch.sort_by_key(delivery_order);
        }
        let full = batch.len() == ENGINE_BATCH;
        for env in batch.drain(..) {
            process_envelope(shared, node, env);
        }
        // A full batch means the queue likely has more: stay scheduled.
        // A partial batch emptied the queue — retire *now* instead of
        // paying a guaranteed-empty ring revisit per batch (at queue
        // depth 1 that revisit would double the scheduler overhead).
        full || nq.retire()
    })
}

/// A running fabric. Dropping it stops the communication daemons.
pub struct Network {
    shared: Arc<NetShared>,
    /// Daemon threads: the initial set plus any spawned by
    /// [`Network::join_node`] (hence the lock — joins take `&self`).
    daemons: Mutex<Vec<JoinHandle<()>>>,
    /// Reserved thread-per-node inbox receivers awaiting activation, in
    /// slot order. Empty under the sharded engine (the shard workers
    /// serve reserved queues from the start).
    latent: Mutex<VecDeque<(NodeId, Receiver<Envelope>)>>,
    /// Inbox receivers of *every* slot — initial, joined, and still
    /// latent — kept so teardown can atomically close each channel and
    /// answer stranded in-flight requests, no matter when the node
    /// joined.
    drains: Vec<Receiver<Envelope>>,
}

/// Spawn the communication daemon serving `node` (thread-per-node
/// engine).
fn spawn_daemon(node: NodeId, rx: Receiver<Envelope>, shared: Arc<NetShared>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("commd-{node}"))
        .spawn(move || daemon_loop(node, rx, shared))
        .expect("spawn communication daemon")
}

impl Network {
    /// Start building a fabric.
    pub fn builder(nodes: usize, cost: LinkCost) -> NetworkBuilder {
        NetworkBuilder::new(nodes, cost)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.shared.nodes()
    }

    /// Activate the next reserved node slot (see
    /// [`NetworkBuilder::reserve_nodes`]) and return its id. Under the
    /// thread-per-node engine this spawns the slot's communication
    /// daemon; under the sharded engine the shard workers already serve
    /// it. Panics when no reserved slots remain or the fabric is
    /// stopping.
    pub fn join_node(&self) -> NodeId {
        assert!(
            !self.shared.stopped.load(Ordering::Acquire),
            "join_node on a stopping fabric"
        );
        // Hold the latent lock across the activation so concurrent
        // joins hand out distinct slots in order.
        let mut latent = self.latent.lock();
        let node = self.shared.active.load(Ordering::Acquire);
        assert!(node < self.shared.capacity(), "no reserved node slots left");
        if let Ingress::Threads(_) = &self.shared.ingress {
            let (slot, rx) = latent.pop_front().expect("latent receiver for reserved slot");
            debug_assert_eq!(slot, node);
            self.daemons.lock().push(spawn_daemon(node, rx, self.shared.clone()));
        }
        self.shared.active.store(node + 1, Ordering::Release);
        node
    }

    /// The handler router of `node` (register protocol handlers here).
    pub fn router(&self, node: NodeId) -> Arc<Router> {
        self.shared.routers[node].clone()
    }

    /// The mailbox of `node`.
    pub fn mailbox(&self, node: NodeId) -> Arc<Mailbox> {
        self.shared.mailboxes[node].clone()
    }

    /// Create the application-side endpoint for `node`, bound to that
    /// node CPU's virtual clock.
    pub fn port(&self, node: NodeId, clock: Arc<VirtualClock>) -> NodePort {
        assert!(node < self.nodes());
        NodePort { node, clock, shared: self.shared.clone() }
    }

    /// Fabric-wide statistics (see [`NET_STAT_NAMES`]).
    pub fn stats(&self) -> &StatSet {
        &self.shared.stats
    }

    /// The fabric's request round-trip latency histogram. The returned
    /// handle shares storage with the live fabric ([`Histogram`] clones
    /// are views), so a monitor can keep it and query quantiles later.
    pub fn rtt_histogram(&self) -> Histogram {
        self.shared.rtt_hist.clone()
    }

    /// Register `handler` for `kind` on every node (common for symmetric
    /// protocols).
    pub fn register_all<F>(&self, kind: u32, make: impl Fn(NodeId) -> F)
    where
        F: Fn(&HandlerCtx<'_>, NodeId, Payload) -> Outcome + Send + Sync + 'static,
    {
        for (node, router) in self.shared.routers.iter().enumerate() {
            router.register(kind, make(node));
        }
    }

    /// Register a fallible handler for `kind` on every node (see
    /// [`Router::register_try`]): dispatch failures NACK the requester
    /// with a typed error instead of panicking the delivery engine.
    pub fn register_all_try<F>(&self, kind: u32, make: impl Fn(NodeId) -> F)
    where
        F: Fn(&HandlerCtx<'_>, NodeId, Payload) -> Result<Outcome, crate::error::DispatchError>
            + Send
            + Sync
            + 'static,
    {
        for (node, router) in self.shared.routers.iter().enumerate() {
            router.register_try(kind, make(node));
        }
    }

    /// How many times an application thread blocked on a full node
    /// queue (sharded-engine backpressure). Always 0 under
    /// [`EngineMode::ThreadPerNode`]. Real-time dependent — excluded
    /// from the deterministic [`NET_STAT_NAMES`] counters on purpose.
    pub fn backpressure_waits(&self) -> u64 {
        self.shared.bp_waits.load(Ordering::Relaxed)
    }
}

impl Drop for Network {
    fn drop(&mut self) {
        // New sends observe the flag and fail fast with FabricStopped.
        self.shared.stopped.store(true, Ordering::Release);
        // Wake any app thread blocked waiting for a park that will
        // never be registered now.
        self.shared.deferred_cv.notify_all();
        match &self.shared.ingress {
            Ingress::Threads(inboxes) => {
                for tx in inboxes {
                    let _ = tx.send(Envelope::Stop);
                }
            }
            Ingress::Sharded { shards, .. } => {
                // Workers drain their ready rings fully before exiting,
                // so every scheduled batch still gets processed.
                shards.stop();
            }
        }
        for d in self.daemons.lock().drain(..) {
            let _ = d.join();
        }
        // Everything enqueued after the stop (sends that raced the
        // flag) is drained atomically; in-flight requests among it get
        // a typed FabricStopped error instead of a wedged waiter.
        for rx in self.drains.drain(..) {
            for env in rx.close_and_drain() {
                answer_stranded(env);
            }
        }
        if let Ingress::Sharded { queues, .. } = &self.shared.ingress {
            for nq in queues {
                for env in nq.q.close() {
                    answer_stranded(env);
                }
            }
        }
        // Reply obligations still parked by handlers (a rendezvous that
        // never completed, e.g. a barrier cut short by an aborted run)
        // fail the same way instead of stranding their requesters.
        for (_, parked) in self.shared.deferred.lock().drain() {
            let _ = parked.tx.send(ReplyMsg::Err {
                err: RequestError::FabricStopped,
                ready_ns: parked.ready_ns,
            });
        }
    }
}

/// Per-node endpoint used by application (and HAMSTER-service) threads.
#[derive(Clone)]
pub struct NodePort {
    node: NodeId,
    clock: Arc<VirtualClock>,
    shared: Arc<NetShared>,
}

impl NodePort {
    /// This endpoint's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the fabric.
    pub fn nodes(&self) -> usize {
        self.shared.nodes()
    }

    /// The virtual clock this port charges time to.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The same endpoint bound to a different clock (used when a second
    /// CPU of the node issues traffic).
    pub fn with_clock(&self, clock: Arc<VirtualClock>) -> NodePort {
        NodePort { node: self.node, clock, shared: self.shared.clone() }
    }

    /// This node's mailbox.
    pub fn mailbox(&self) -> &Mailbox {
        &self.shared.mailboxes[self.node]
    }

    /// The fabric's timeout/retry policy, if one is installed. Protocol
    /// layers use this to decide between the legacy (infallible) and
    /// resilient message shapes.
    pub fn resilience(&self) -> Option<Resilience> {
        self.shared.resilience
    }

    /// Answer a request one of this node's handlers parked with
    /// [`crate::Outcome::defer`] under `key` by requester `who`, from
    /// application context. The reply departs no earlier than
    /// `not_before_ns` (and never before the deferred request's own
    /// service completion). Blocks until the park exists: the handler
    /// that wakes this thread runs *before* the engine registers its
    /// [`crate::Outcome::defer`], so an early discharge waits the few
    /// instructions until the park lands rather than misfiring.
    ///
    /// This is the application-thread twin of
    /// [`crate::HandlerCtx::complete_deferred`]: protocols whose
    /// release point is driven by a blocking exchange on the
    /// application thread (e.g. a tree barrier pulling its wave from
    /// the parent) discharge their children's parked replies here.
    pub fn complete_deferred<T: std::any::Any + Send>(
        &self,
        key: u64,
        who: NodeId,
        value: T,
        wire_bytes: u64,
        not_before_ns: u64,
    ) {
        self.shared.complete_deferred_wait(self.node, key, who, Box::new(value), wire_bytes, not_before_ns);
    }

    /// Block on the mailbox and advance the clock to the wake-up's
    /// arrival time. Returns the payload. Panics if the wake-up was
    /// destroyed by fault injection — waiters on a faulty fabric must
    /// use [`NodePort::wait_mailbox_checked`].
    pub fn wait_mailbox(&self, tag: u64) -> Payload {
        self.wait_mailbox_checked(tag).unwrap_or_else(|e| {
            panic!("node {}: wake-up under tag {tag:#x} lost ({e}) with no resilient waiter", self.node)
        })
    }

    /// Block on the mailbox until a deposit under `tag` arrives, or
    /// until the fault injector's loss tombstone reports that the
    /// wake-up was destroyed (surfacing as a `Timeout` at the sender's
    /// deadline, in virtual time).
    pub fn wait_mailbox_checked(&self, tag: u64) -> Result<Payload, RequestError> {
        let d = self.shared.mailboxes[self.node].wait(tag);
        if d.lost {
            self.clock.advance_to(d.arrive_ns);
            self.shared.stats.add("timeouts", 1);
            return Err(RequestError::Timeout { deadline_ns: d.arrive_ns });
        }
        self.clock.advance_to(d.arrive_ns);
        self.clock.advance(self.shared.recv_eff_ns);
        Ok(d.payload)
    }

    /// Synchronous request: sends `value` to `dst` under `kind`, blocks
    /// for the reply, charges the full round trip (send overhead, wire,
    /// handler queueing and service, reply wire, receive overhead) to
    /// this node's clock, and returns the reply payload.
    ///
    /// Infallible form: panics on fabric failure. Use
    /// [`NodePort::try_request`] or [`NodePort::request_retrying`] on a
    /// faulty fabric.
    pub fn request<T: std::any::Any + Send>(
        &self,
        dst: NodeId,
        kind: u32,
        value: T,
        wire_bytes: u64,
    ) -> Payload {
        self.try_request(dst, kind, value, wire_bytes)
            .unwrap_or_else(|e| panic!("request kind {kind:#x} to node {dst} failed: {e}"))
    }

    /// [`NodePort::request`] with failures surfaced as typed errors
    /// instead of panics. Lost messages and dead peers resolve at
    /// virtual-time deadlines; the clock is always advanced to the
    /// moment the failure was known.
    pub fn try_request<T: std::any::Any + Send>(
        &self,
        dst: NodeId,
        kind: u32,
        value: T,
        wire_bytes: u64,
    ) -> Result<Payload, RequestError> {
        self.shared.stats.at(STAT_REQUESTS).incr();
        self.shared.stats.at(STAT_BYTES).add(wire_bytes);
        let t0 = self.clock.now();
        let depart = self.clock.advance(self.shared.send_eff_ns);
        let (tx, rx) = unbounded();
        let req_id = self.shared.send_user(
            self.node,
            dst,
            kind,
            Box::new(value),
            wire_bytes,
            depart,
            Some(tx),
            None,
            true,
        );
        let res = match rx.recv() {
            Ok(ReplyMsg::Ok { payload, wire_bytes, ready_ns }) => {
                let back = self.shared.wire_arrival(dst, self.node, ready_ns, wire_bytes);
                self.clock.advance_to(back);
                self.clock.advance(self.shared.recv_eff_ns);
                Ok(payload)
            }
            Ok(ReplyMsg::Err { err, ready_ns }) => {
                self.clock.advance_to(ready_ns);
                self.count_error(&err);
                Err(err)
            }
            // Reply channel dropped without an answer: daemons are gone.
            Err(_) => Err(RequestError::FabricStopped),
        };
        if res.is_ok() {
            self.shared.rtt_hist.record(self.clock.now() - t0);
        }
        if sim::trace::enabled() {
            sim::trace::span_corr(
                t0,
                self.clock.now() - t0,
                self.node,
                "net",
                "request",
                kind as u64,
                req_id,
            );
        }
        res
    }

    /// [`NodePort::try_request`] plus the fabric's retry policy:
    /// transient failures (timeouts, dead peers) back off exponentially
    /// — with deterministic jitter — and retry with a fresh delivery
    /// id, up to the policy's attempt budget. Fatal errors and
    /// exhausted budgets surface as `Err`.
    pub fn request_retrying<T: std::any::Any + Send + Clone>(
        &self,
        dst: NodeId,
        kind: u32,
        value: T,
        wire_bytes: u64,
    ) -> Result<Payload, RequestError> {
        match self.try_request(dst, kind, value.clone(), wire_bytes) {
            Ok(p) => Ok(p),
            Err(e) => self.retry_loop(dst, kind, &value, wire_bytes, e),
        }
    }

    /// Drive the backoff/retry schedule after a first failure.
    fn retry_loop<T: std::any::Any + Send + Clone>(
        &self,
        dst: NodeId,
        kind: u32,
        value: &T,
        wire_bytes: u64,
        mut last: RequestError,
    ) -> Result<Payload, RequestError> {
        let Some(res) = self.shared.resilience else { return Err(last) };
        let seed = self.shared.faults.as_ref().map_or(0, |f| f.plan.seed);
        let mut failures = 1u32;
        loop {
            if !last.is_transient() || failures >= res.retry.max_attempts {
                return Err(last);
            }
            self.shared.stats.add("retries", 1);
            // Jitter from deterministic inputs only: the plan seed and
            // the stream's retry count. The clock is deliberately NOT an
            // input — its low microseconds can wobble with thread
            // scheduling, and hashing them would amplify a sub-µs
            // timing difference into a full backoff-sized divergence.
            let salt = match &self.shared.faults {
                Some(f) => f.next_retry_salt(self.node, dst, kind),
                None => {
                    let stream = ((self.node as u64) << 42)
                        ^ ((dst as u64) << 21)
                        ^ ((kind as u64) << 1);
                    mix(seed ^ stream ^ failures as u64)
                }
            };
            let pause = res.retry.backoff_ns(failures, salt);
            sim::trace::instant(self.clock.now(), self.node, "fault", "retry", kind as u64);
            self.clock.advance(pause);
            match self.try_request(dst, kind, value.clone(), wire_bytes) {
                Ok(p) => return Ok(p),
                Err(e) => {
                    last = e;
                    failures += 1;
                }
            }
        }
    }

    fn count_error(&self, err: &RequestError) {
        match err {
            RequestError::Timeout { .. } => self.shared.stats.add("timeouts", 1),
            RequestError::NodeDown { .. } => self.shared.stats.add("nodedown", 1),
            _ => {}
        }
    }

    /// Pipelined batch of synchronous requests: all messages are sent
    /// back-to-back (each paying send overhead on this CPU), then the
    /// clock advances to the completion of the *latest* reply — the
    /// behaviour of a DSM that pushes diffs to several homes in parallel
    /// and waits for all acknowledgements.
    ///
    /// Infallible form: panics on fabric failure (see
    /// [`NodePort::request_batch_retrying`]).
    pub fn request_batch<T: std::any::Any + Send>(
        &self,
        msgs: Vec<(NodeId, u32, T, u64)>,
    ) -> Vec<Payload> {
        let t0 = self.clock.now();
        let n_msgs = msgs.len() as u64;
        let mut pending = Vec::with_capacity(msgs.len());
        for (dst, kind, value, wire_bytes) in msgs {
            self.shared.stats.at(STAT_REQUESTS).incr();
            self.shared.stats.at(STAT_BYTES).add(wire_bytes);
            let depart = self.clock.advance(self.shared.send_eff_ns);
            let (tx, rx) = unbounded();
            self.shared.send_user(
                self.node,
                dst,
                kind,
                Box::new(value),
                wire_bytes,
                depart,
                Some(tx),
                None,
                true,
            );
            pending.push((dst, kind, rx));
        }
        let mut out = Vec::with_capacity(pending.len());
        let mut latest = self.clock.now();
        for (dst, kind, rx) in pending {
            match rx.recv() {
                Ok(ReplyMsg::Ok { payload, wire_bytes, ready_ns }) => {
                    let back = self.shared.wire_arrival(dst, self.node, ready_ns, wire_bytes);
                    latest = latest.max(back + self.shared.recv_eff_ns);
                    out.push(payload);
                }
                Ok(ReplyMsg::Err { err, .. }) => {
                    panic!("batched request kind {kind:#x} to node {dst} failed: {err}")
                }
                Err(_) => {
                    panic!("batched request kind {kind:#x} to node {dst} failed: fabric stopped")
                }
            }
        }
        self.clock.advance_to(latest);
        if sim::trace::enabled() && n_msgs > 0 {
            sim::trace::span(t0, self.clock.now() - t0, self.node, "net", "request_batch", n_msgs);
        }
        out
    }

    /// Resilient batch: entries that fail transiently are retried
    /// individually (with backoff) after the batch settles, so one lost
    /// diff doesn't abort a whole flush. Returns replies in request
    /// order, or the first unrecoverable error.
    pub fn request_batch_retrying<T: std::any::Any + Send + Clone>(
        &self,
        msgs: Vec<(NodeId, u32, T, u64)>,
    ) -> Result<Vec<Payload>, RequestError> {
        let t0 = self.clock.now();
        let n_msgs = msgs.len() as u64;
        let mut pending = Vec::with_capacity(msgs.len());
        for (dst, kind, value, wire_bytes) in &msgs {
            self.shared.stats.at(STAT_REQUESTS).incr();
            self.shared.stats.at(STAT_BYTES).add(*wire_bytes);
            let depart = self.clock.advance(self.shared.send_eff_ns);
            let (tx, rx) = unbounded();
            self.shared.send_user(
                self.node,
                *dst,
                *kind,
                Box::new(value.clone()),
                *wire_bytes,
                depart,
                Some(tx),
                None,
                true,
            );
            pending.push(rx);
        }
        let mut out: Vec<Option<Payload>> = msgs.iter().map(|_| None).collect();
        let mut failed: Vec<(usize, RequestError)> = Vec::new();
        let mut latest = self.clock.now();
        for (i, rx) in pending.into_iter().enumerate() {
            match rx.recv() {
                Ok(ReplyMsg::Ok { payload, wire_bytes, ready_ns }) => {
                    let back = self.shared.wire_arrival(msgs[i].0, self.node, ready_ns, wire_bytes);
                    latest = latest.max(back + self.shared.recv_eff_ns);
                    out[i] = Some(payload);
                }
                Ok(ReplyMsg::Err { err, ready_ns }) => {
                    latest = latest.max(ready_ns);
                    self.count_error(&err);
                    failed.push((i, err));
                }
                Err(_) => failed.push((i, RequestError::FabricStopped)),
            }
        }
        self.clock.advance_to(latest);
        for (i, err) in failed {
            let (dst, kind, ref value, wire_bytes) = msgs[i];
            out[i] = Some(self.retry_loop(dst, kind, value, wire_bytes, err)?);
        }
        if sim::trace::enabled() && n_msgs > 0 {
            sim::trace::span(t0, self.clock.now() - t0, self.node, "net", "request_batch", n_msgs);
        }
        Ok(out.into_iter().map(|p| p.expect("every batch entry resolved")).collect())
    }

    /// Fire-and-forget message to `dst`. Charges only the send overhead
    /// to this node's clock.
    pub fn post<T: std::any::Any + Send>(&self, dst: NodeId, kind: u32, value: T, wire_bytes: u64) {
        self.post_inner(dst, kind, value, wire_bytes, None);
    }

    /// Like [`NodePort::post`], for messages whose receiving handler
    /// deposits into a mailbox under `wake_tag`: if fault injection
    /// destroys the message, a loss tombstone lands under that tag so
    /// the waiter times out instead of blocking forever.
    pub fn post_tagged<T: std::any::Any + Send>(
        &self,
        dst: NodeId,
        kind: u32,
        value: T,
        wire_bytes: u64,
        wake_tag: u64,
    ) {
        self.post_inner(dst, kind, value, wire_bytes, Some(wake_tag));
    }

    fn post_inner<T: std::any::Any + Send>(
        &self,
        dst: NodeId,
        kind: u32,
        value: T,
        wire_bytes: u64,
        wake_tag: Option<u64>,
    ) {
        self.shared.stats.at(STAT_POSTS).incr();
        self.shared.stats.at(STAT_BYTES).add(wire_bytes);
        let depart = self.clock.advance(self.shared.send_eff_ns);
        let req_id = self.shared.send_user(
            self.node,
            dst,
            kind,
            Box::new(value),
            wire_bytes,
            depart,
            None,
            wake_tag,
            true,
        );
        sim::trace::instant_corr(depart, self.node, "net", "post", kind as u64, req_id);
    }

    /// Post `value` to every node except this one. The payload must be
    /// `Clone` because each destination gets its own copy.
    pub fn broadcast<T: std::any::Any + Send + Clone>(&self, kind: u32, value: T, wire_bytes: u64) {
        for dst in 0..self.nodes() {
            if dst != self.node {
                self.post(dst, kind, value.clone(), wire_bytes);
            }
        }
    }

    /// The link cost model of this fabric.
    pub fn link_cost(&self) -> LinkCost {
        self.shared.cost
    }

    /// Effective (possibly unified-layer-reduced) software send overhead.
    pub fn effective_send_overhead_ns(&self) -> u64 {
        self.shared.send_eff_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::downcast;

    fn tiny_link() -> LinkCost {
        LinkCost {
            send_overhead_ns: 100,
            recv_overhead_ns: 100,
            latency_ns: 1_000,
            bytes_per_sec: 1_000_000_000,
            handler_ns: 50,
        }
    }

    #[test]
    fn request_reply_roundtrip_and_timing() {
        let net = Network::builder(2, tiny_link()).build();
        net.router(1).register(0x10, |_ctx, src, p| {
            let x = downcast::<u64>(p);
            Outcome::reply(x + src as u64 + 100, 8)
        });
        let clock = VirtualClock::new();
        let port = net.port(0, clock.clone());
        let rep = port.request(1, 0x10, 5u64, 8);
        assert_eq!(downcast::<u64>(rep), 105);
        // send 100 + wire 1000+8 + service (100+50) + wire back 1000+8 + recv 100
        assert_eq!(clock.now(), 100 + 1008 + 150 + 1008 + 100);
    }

    #[test]
    fn handler_saturation_is_visible_in_reply_times() {
        // Handler occupancy is windowed demand: concurrent heavy
        // requests (2 ms of service each, far above the 1 ms/1 ms
        // window capacity) must slow each other down, while a single
        // request pays only its own service.
        let net = Network::builder(2, tiny_link()).build();
        net.router(1).register(0x11, |_ctx, _src, p| {
            let x = downcast::<u32>(p);
            Outcome::reply_costing(x, 4, 2_000_000)
        });
        let solo = {
            let c = VirtualClock::new();
            let p = net.port(0, c.clone());
            assert_eq!(downcast::<u32>(p.request(1, 0x11, 1u32, 4)), 1);
            c.now()
        };
        // Two more requests from fresh clocks at time 0: their service
        // demand lands in the same windows the first request used, plus
        // each other's — the slower of the two must exceed solo by a
        // contention factor.
        let c1 = VirtualClock::new();
        let p1 = net.port(0, c1.clone());
        let c2 = VirtualClock::new();
        let p2 = net.port(0, c2.clone());
        let h1 = std::thread::spawn(move || {
            downcast::<u32>(p1.request(1, 0x11, 2u32, 4))
        });
        let h2 = std::thread::spawn(move || {
            downcast::<u32>(p2.request(1, 0x11, 3u32, 4))
        });
        assert_eq!(h1.join().unwrap(), 2);
        assert_eq!(h2.join().unwrap(), 3);
        let slow = c1.now().max(c2.now());
        assert!(
            slow > solo + 1_000_000,
            "saturated handler should slow concurrent requests: solo={solo} slow={slow}"
        );
    }

    #[test]
    fn post_wakes_mailbox_via_handler() {
        let net = Network::builder(2, tiny_link()).build();
        let mb = net.mailbox(1);
        net.router(1).register(0x12, move |ctx, _src, p| {
            mb.deposit(crate::mailbox::tag(0x12, 0), p, ctx.now);
            Outcome::done()
        });
        let c0 = VirtualClock::new();
        let p0 = net.port(0, c0);
        p0.post(1, 0x12, 77u8, 1);
        let c1 = VirtualClock::new();
        let p1 = net.port(1, c1.clone());
        let payload = p1.wait_mailbox(crate::mailbox::tag(0x12, 0));
        assert_eq!(downcast::<u8>(payload), 77);
        assert!(c1.now() > 1_000, "waiter clock advanced to arrival");
    }

    #[test]
    fn handler_can_post_onward() {
        // Relay: node0 -> node1 handler -> posts to node2 mailbox.
        let net = Network::builder(3, tiny_link()).build();
        net.router(1).register(0x13, |ctx, src, p| {
            ctx.post(2, 0x14, (src, downcast::<u16>(p)), 4);
            Outcome::done()
        });
        let mb2 = net.mailbox(2);
        net.router(2).register(0x14, move |ctx, _src, p| {
            mb2.deposit(1, p, ctx.now);
            Outcome::done()
        });
        let p0 = net.port(0, VirtualClock::new());
        p0.post(1, 0x13, 9u16, 4);
        let p2 = net.port(2, VirtualClock::new());
        let (origin, val) = downcast::<(NodeId, u16)>(p2.wait_mailbox(1));
        assert_eq!((origin, val), (0, 9));
    }

    #[test]
    fn unified_layer_reduces_round_trip() {
        let run = |saving: u64| {
            let net = Network::builder(2, tiny_link()).unified(saving).build();
            net.router(1).register(1, |_c, _s, _p| Outcome::reply((), 0));
            let c = VirtualClock::new();
            let p = net.port(0, c.clone());
            let _ = p.request(1, 1, (), 0);
            c.now()
        };
        assert!(run(50) < run(0));
    }

    #[test]
    fn local_message_skips_wire() {
        let net = Network::builder(1, tiny_link()).build();
        net.router(0).register(2, |_c, _s, _p| Outcome::reply((), 0));
        let c = VirtualClock::new();
        let p = net.port(0, c.clone());
        let _ = p.request(0, 2, (), 0);
        // 100 + 500 + 150 + 500 + 100 — far less than one wire latency pair.
        assert!(c.now() < 2 * 1_000);
    }

    #[test]
    fn stats_count_traffic() {
        let net = Network::builder(2, tiny_link()).build();
        net.router(1).register(3, |_c, _s, _p| Outcome::reply((), 0));
        net.router(1).register(5, |_c, _s, _p| Outcome::done());
        let p = net.port(0, VirtualClock::new());
        let _ = p.request(1, 3, (), 64);
        p.post(1, 5, (), 32);
        assert_eq!(net.stats().get("requests"), 1);
        assert_eq!(net.stats().get("posts"), 1);
        assert!(net.stats().get("bytes") >= 96);
    }

    #[test]
    fn broadcast_reaches_all_others() {
        let net = Network::builder(4, tiny_link()).build();
        let counters: Vec<_> = (0..4).map(|_| Arc::new(sim::Counter::new())).collect();
        for (n, counter) in counters.iter().enumerate() {
            let c = counter.clone();
            net.router(n).register(4, move |_c, _s, _p| {
                c.incr();
                Outcome::done()
            });
        }
        let p = net.port(1, VirtualClock::new());
        p.broadcast(4, (), 8);
        // Drop the network to join daemons, guaranteeing delivery.
        drop(net);
        let got: Vec<u64> = counters.iter().map(|c| c.get()).collect();
        assert_eq!(got, vec![1, 0, 1, 1]);
    }

    #[test]
    fn unknown_kind_is_nacked_not_fatal() {
        let net = Network::builder(2, tiny_link()).build();
        net.router(1).register(0x30, |_c, _s, _p| Outcome::reply((), 0));
        let p = net.port(0, VirtualClock::new());
        let err = p.try_request(1, 0x31, (), 8).unwrap_err();
        assert!(matches!(err, RequestError::HandlerFailed { kind: 0x31, .. }), "{err}");
        assert_eq!(net.stats().get("handler_failures"), 1);
        // The daemon survived and still serves registered kinds.
        assert!(p.try_request(1, 0x30, (), 8).is_ok());
    }

    #[test]
    fn deferred_reply_rendezvous_answers_all_requesters() {
        // A 2-party rendezvous at node 2: the first arrival's reply is
        // parked (Outcome::defer); the last arrival discharges it and
        // gets the same collective answer in its own reply.
        let net = Network::builder(3, tiny_link())
            .resilience(Some(Resilience::default()))
            .build();
        let seen = std::sync::Arc::new(Mutex::new(Vec::<(NodeId, u64)>::new()));
        {
            let seen = seen.clone();
            net.router(2).register(0x40, move |ctx, src, p| {
                let x = downcast::<u64>(p);
                let mut g = seen.lock();
                g.push((src, x));
                if g.len() < 2 {
                    return Outcome::defer(7);
                }
                let sum: u64 = g.iter().map(|&(_, v)| v).sum();
                for &(who, _) in g.iter() {
                    if who != src {
                        ctx.complete_deferred(7, who, sum, 8, ctx.now);
                    }
                }
                Outcome::reply(sum, 8)
            });
        }
        let handles: Vec<_> = (0..2)
            .map(|n| {
                let port = net.port(n, VirtualClock::new());
                std::thread::spawn(move || {
                    downcast::<u64>(port.request(2, 0x40, (n as u64 + 1) * 10, 8))
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 30);
        }
    }

    #[test]
    fn parked_deferred_reply_fails_at_teardown() {
        // A deferred request never discharged must not hang teardown:
        // Network::drop fails it with FabricStopped.
        let net = Network::builder(2, tiny_link())
            .resilience(Some(Resilience::default()))
            .build();
        net.router(1).register(0x41, |_c, _s, _p| Outcome::defer(1));
        let port = net.port(0, VirtualClock::new());
        let h = std::thread::spawn(move || port.try_request(1, 0x41, (), 8));
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(net);
        assert_eq!(h.join().unwrap().unwrap_err(), RequestError::FabricStopped);
    }

    #[test]
    fn request_after_teardown_gets_fabric_stopped() {
        let net = Network::builder(2, tiny_link()).build();
        net.router(1).register(0x32, |_c, _s, _p| Outcome::reply((), 0));
        let p = net.port(0, VirtualClock::new());
        assert!(p.try_request(1, 0x32, (), 8).is_ok());
        drop(net);
        assert_eq!(p.try_request(1, 0x32, (), 8).unwrap_err(), RequestError::FabricStopped);
    }

    fn all_drop_plan() -> FaultPlan {
        FaultPlan {
            seed: 1,
            default_link: crate::fault::LinkFaults {
                drop_ppm: crate::fault::PPM as u32,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn dropped_request_times_out_in_virtual_time() {
        let net = Network::builder(2, tiny_link()).faults(Some(all_drop_plan())).build();
        net.router(1).register(0x40, |_c, _s, _p| Outcome::reply((), 0));
        let c = VirtualClock::new();
        let p = net.port(0, c.clone());
        let err = p.try_request(1, 0x40, (), 8).unwrap_err();
        let deadline = 100 + Resilience::default().timeout_ns;
        assert_eq!(err, RequestError::Timeout { deadline_ns: deadline });
        assert_eq!(c.now(), deadline, "clock advanced to the virtual deadline");
        assert_eq!(net.stats().get("faults_dropped"), 1);
        assert_eq!(net.stats().get("timeouts"), 1);
    }

    #[test]
    fn crashed_node_reports_node_down_then_heals() {
        let plan = FaultPlan {
            crashes: vec![crate::fault::CrashWindow {
                node: 1,
                from_ns: 0,
                until_ns: 1_000_000,
            }],
            ..FaultPlan::seeded(3)
        };
        let net = Network::builder(2, tiny_link()).faults(Some(plan)).build();
        net.router(1).register(0x41, |_c, _s, _p| Outcome::reply((), 0));
        let c = VirtualClock::new();
        let p = net.port(0, c.clone());
        match p.try_request(1, 0x41, (), 8) {
            Err(RequestError::NodeDown { node: 1, .. }) => {}
            other => panic!("expected NodeDown, got {other:?}"),
        }
        assert_eq!(net.stats().get("nodedown"), 1);
        // request_retrying backs off past the heal time and succeeds.
        c.advance_to(900_000);
        assert!(p.request_retrying(1, 0x41, (), 8).is_ok());
        assert!(net.stats().get("retries") >= 1);
    }

    #[test]
    fn duplicates_are_deduplicated_at_the_daemon() {
        let plan = FaultPlan {
            seed: 5,
            default_link: crate::fault::LinkFaults {
                dup_ppm: crate::fault::PPM as u32,
                ..Default::default()
            },
            ..Default::default()
        };
        let net = Network::builder(2, tiny_link()).faults(Some(plan)).build();
        let hits = Arc::new(sim::Counter::new());
        let h = hits.clone();
        net.router(1).register(0x42, move |_c, _s, p| {
            h.incr();
            Outcome::reply(downcast::<u32>(p) * 2, 8)
        });
        let p = net.port(0, VirtualClock::new());
        for i in 0..8u32 {
            assert_eq!(downcast::<u32>(p.request_retrying(1, 0x42, i, 8).unwrap()), i * 2);
        }
        drop(net);
        assert_eq!(hits.get(), 8, "handler ran once per request despite duplication");
    }

    #[test]
    fn dup_dedup_counters_match() {
        let plan = FaultPlan {
            seed: 6,
            default_link: crate::fault::LinkFaults {
                dup_ppm: crate::fault::PPM as u32,
                ..Default::default()
            },
            ..Default::default()
        };
        let net = Network::builder(2, tiny_link()).faults(Some(plan)).build();
        net.router(1).register(0x43, |_c, _s, _p| Outcome::reply((), 0));
        let p = net.port(0, VirtualClock::new());
        for _ in 0..5 {
            let _ = p.request_retrying(1, 0x43, (), 8).unwrap();
        }
        let dups = net.stats().get("faults_dup");
        drop(net);
        assert!(dups >= 5, "forward and reply streams both duplicate");
    }

    #[test]
    fn faulty_fabric_same_seed_same_schedule() {
        let run = |seed: u64| {
            let plan = FaultPlan {
                seed,
                default_link: crate::fault::LinkFaults {
                    drop_ppm: 200_000,
                    dup_ppm: 100_000,
                    delay_ppm: 200_000,
                    delay_ns: 50_000,
                    ..Default::default()
                },
                ..Default::default()
            };
            let net = Network::builder(2, tiny_link()).faults(Some(plan)).build();
            net.router(1).register(0x44, |_c, _s, p| Outcome::reply(downcast::<u32>(p), 8));
            let c = VirtualClock::new();
            let p = net.port(0, c.clone());
            for i in 0..32u32 {
                let _ = p.request_retrying(1, 0x44, i, 8).unwrap();
            }
            let stats: Vec<u64> = NET_STAT_NAMES.iter().map(|n| net.stats().get(n)).collect();
            (c.now(), stats)
        };
        assert_eq!(run(11), run(11), "same seed reproduces time and counters");
        assert_ne!(run(11), run(12), "different seed diverges");
    }

    #[test]
    fn lost_tagged_post_leaves_tombstone() {
        let net = Network::builder(2, tiny_link()).faults(Some(all_drop_plan())).build();
        let mb = net.mailbox(1);
        net.router(1).register(0x45, move |ctx, _src, p| {
            mb.deposit(crate::mailbox::tag(0x45, 0), p, ctx.now);
            Outcome::done()
        });
        let p0 = net.port(0, VirtualClock::new());
        p0.post_tagged(1, 0x45, 7u8, 1, crate::mailbox::tag(0x45, 0));
        let p1 = net.port(1, VirtualClock::new());
        let err = p1.wait_mailbox_checked(crate::mailbox::tag(0x45, 0)).unwrap_err();
        assert!(matches!(err, RequestError::Timeout { .. }));
        assert_eq!(net.stats().get("tombstones"), 1);
    }
}

#[cfg(test)]
mod panic_tests {
    use super::*;
    use crate::message::downcast;

    #[test]
    fn handler_panic_is_contained_and_reported() {
        // A panicking handler must not wedge the daemon: the panicking
        // request fails loudly at the requester (typed HandlerFailed),
        // while subsequent messages keep flowing.
        let link = LinkCost {
            send_overhead_ns: 10,
            recv_overhead_ns: 10,
            latency_ns: 100,
            bytes_per_sec: 1_000_000_000,
            handler_ns: 10,
        };
        let net = Network::builder(2, link).build();
        net.router(1).register(0x66, |_c, _s, p| {
            let v = downcast::<u32>(p);
            assert!(v != 13, "unlucky payload");
            Outcome::reply(v * 2, 8)
        });
        let port = net.port(0, VirtualClock::new());
        let err = port.try_request(1, 0x66, 13u32, 8).unwrap_err();
        match &err {
            RequestError::HandlerFailed { kind: 0x66, reason } => {
                assert!(reason.contains("unlucky"), "{reason}")
            }
            other => panic!("expected HandlerFailed, got {other:?}"),
        }
        assert!(!err.is_transient(), "handler bugs are not retryable");
        // The daemon is still alive and serving.
        let ok = downcast::<u32>(port.request(1, 0x66, 21u32, 8));
        assert_eq!(ok, 42);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::message::downcast;

    #[test]
    fn request_batch_overlaps_round_trips() {
        // A batch to three distinct handlers must complete in roughly
        // one round trip plus send spacing, not three round trips.
        let link = LinkCost {
            send_overhead_ns: 1_000,
            recv_overhead_ns: 1_000,
            latency_ns: 100_000,
            bytes_per_sec: 1_000_000_000,
            handler_ns: 1_000,
        };
        let net = Network::builder(4, link).build();
        for n in 1..4 {
            net.router(n).register(0x21, |_c, _s, p| Outcome::reply(downcast::<u64>(p), 8));
        }
        let serial = {
            let c = VirtualClock::new();
            let p = net.port(0, c.clone());
            for dst in 1..4 {
                let _ = p.request(dst, 0x21, dst as u64, 8);
            }
            c.now()
        };
        let batched = {
            let c = VirtualClock::new();
            let p = net.port(0, c.clone());
            let replies =
                p.request_batch((1..4).map(|dst| (dst, 0x21, dst as u64, 8)).collect());
            assert_eq!(replies.len(), 3);
            c.now()
        };
        assert!(
            batched * 2 < serial,
            "batch should pipeline: serial={serial} batched={batched}"
        );
    }

    #[test]
    fn resilient_batch_retries_lost_entries() {
        let plan = FaultPlan {
            seed: 9,
            default_link: crate::fault::LinkFaults { drop_ppm: 300_000, ..Default::default() },
            ..Default::default()
        };
        let net = Network::builder(4, tiny()).faults(Some(plan)).build();
        for n in 1..4 {
            net.router(n)
                .register(0x22, |_c, _s, p| Outcome::reply(downcast::<u64>(p) + 1, 8));
        }
        let p = net.port(0, VirtualClock::new());
        let replies = p
            .request_batch_retrying((1..4).map(|d| (d, 0x22, d as u64, 8)).collect::<Vec<_>>())
            .unwrap();
        let vals: Vec<u64> = replies.into_iter().map(downcast::<u64>).collect();
        assert_eq!(vals, vec![2, 3, 4], "replies stay in request order");
    }

    fn tiny() -> LinkCost {
        LinkCost {
            send_overhead_ns: 100,
            recv_overhead_ns: 100,
            latency_ns: 1_000,
            bytes_per_sec: 1_000_000_000,
            handler_ns: 50,
        }
    }

    #[test]
    fn view_fence_refuses_cross_epoch_send_then_retry_passes() {
        use crate::membership::{MembershipEvent, MembershipPlan, ViewChange};
        // One view change at t=1000ns: a request departing at ~100ns
        // would arrive at ~1108ns, crossing the epoch boundary — the
        // fence must refuse it with StaleView. The retry departs after
        // the boundary and goes through.
        let run = || {
            let plan = MembershipPlan::scripted(
                7,
                vec![MembershipEvent {
                    node: 1,
                    at_ns: 1_000,
                    change: ViewChange::Leave { graceful: true },
                }],
            );
            let net = Network::builder(2, tiny()).membership(Some(plan)).build();
            net.router(1).register(0x50, |_c, _s, _p| Outcome::reply((), 0));
            let c = VirtualClock::new();
            let p = net.port(0, c.clone());
            let err = p.try_request(1, 0x50, (), 8).unwrap_err();
            assert!(
                matches!(err, RequestError::StaleView { epoch: 1, .. }),
                "expected StaleView fence, got {err}"
            );
            assert!(err.is_transient());
            // The waiter clock advanced past the boundary: the retry
            // departs inside epoch 1 and passes the fence.
            assert!(c.now() >= 1_000, "fence wakes the waiter at the boundary");
            p.try_request(1, 0x50, (), 8).expect("same-epoch send passes the fence");
            (c.now(), net.stats().get("view_fenced"), net.stats().get("delivered"))
        };
        let a = run();
        assert_eq!(a.1, 1, "exactly the cross-epoch send is fenced");
        assert_eq!(a, run(), "fencing is deterministic in virtual time");
    }

    #[test]
    fn late_joiner_serves_requests_and_drains_at_teardown() {
        for engine in [EngineMode::ThreadPerNode, EngineMode::Sharded { workers: 2 }] {
            let net = Network::builder(2, tiny())
                .reserve_nodes(1)
                .resilience(Some(Resilience::default()))
                .engine(engine)
                .build();
            assert_eq!(net.nodes(), 2);
            let node = net.join_node();
            assert_eq!((node, net.nodes()), (2, 3));
            // The joined node serves requests like any initial node.
            net.router(node).register(0x51, |_c, _s, p| {
                Outcome::reply(downcast::<u64>(p) + 1, 8)
            });
            let p = net.port(0, VirtualClock::new());
            assert_eq!(downcast::<u64>(p.request(node, 0x51, 41u64, 8)), 42);
            // A reply parked on the late joiner must be answered at
            // teardown — the drop-drain walks joined slots too.
            net.router(node).register(0x52, |_c, _s, _p| Outcome::defer(2));
            let h = std::thread::spawn(move || p.try_request(node, 0x52, (), 8));
            std::thread::sleep(std::time::Duration::from_millis(50));
            drop(net);
            assert_eq!(h.join().unwrap().unwrap_err(), RequestError::FabricStopped);
        }
    }

    #[test]
    #[should_panic(expected = "no reserved node slots left")]
    fn join_without_reserved_slot_panics() {
        let net = Network::builder(2, tiny()).build();
        let _ = net.join_node();
    }
}
