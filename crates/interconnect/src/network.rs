//! The fabric: per-node inboxes, communication daemons, and timed
//! request/post primitives.

use crate::mailbox::Mailbox;
use crate::message::{HandlerCtx, NodeId, Outcome, Payload};
use crate::router::Router;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use sim::{Bus, LinkCost, StatSet, VirtualClock};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Delivery cost when a node messages itself (protocol layers normally
/// shortcut this, but correctness must not depend on it).
const LOCAL_DELIVERY_NS: u64 = 500;

struct ReplyMsg {
    payload: Payload,
    wire_bytes: u64,
    ready_ns: u64,
}

enum Envelope {
    Stop,
    User {
        src: NodeId,
        kind: u32,
        payload: Payload,
        arrive_ns: u64,
        reply: Option<Sender<ReplyMsg>>,
    },
}

/// Shared state of the fabric (one per experiment run).
pub struct NetShared {
    inboxes: Vec<Sender<Envelope>>,
    /// Protocol-handler occupancy per node (the communication daemon),
    /// modelled as windowed service demand: one virtual "byte" per
    /// nanosecond of handler time. Like the NIC and memory buses, the
    /// windowed form is independent of the real-time order in which
    /// messages reach the daemon (a FIFO horizon here let a virtually
    /// *later* message delay a virtually earlier one by its full
    /// service time).
    servers: Vec<Bus>,
    /// Egress bandwidth per node: one NIC per node, so concurrent
    /// outbound transfers share (and contend for) link bandwidth. A
    /// windowed model keeps the accounting independent of the real-time
    /// order in which node threads reserve virtual bandwidth.
    egress: Vec<Bus>,
    routers: Vec<Arc<Router>>,
    mailboxes: Vec<Arc<Mailbox>>,
    cost: LinkCost,
    send_eff_ns: u64,
    recv_eff_ns: u64,
    stats: StatSet,
}

impl NetShared {
    /// Number of nodes in the fabric.
    pub fn nodes(&self) -> usize {
        self.inboxes.len()
    }

    fn wire_arrival(&self, src: NodeId, dst: NodeId, depart: u64, bytes: u64) -> u64 {
        if src == dst {
            depart + LOCAL_DELIVERY_NS
        } else {
            // The sender's NIC has finite bandwidth shared by all of
            // the node's concurrent outbound transfers.
            let sent = self.egress[src].transfer(depart, bytes);
            sent + self.cost.latency_ns
        }
    }

    pub(crate) fn post_from_handler(
        &self,
        src: NodeId,
        dst: NodeId,
        kind: u32,
        payload: Payload,
        wire_bytes: u64,
        depart: u64,
    ) {
        self.stats.add("posts", 1);
        self.stats.add("bytes", wire_bytes);
        let arrive_ns = self.wire_arrival(src, dst, depart, wire_bytes);
        // Sends to stopped fabrics are ignored: a handler may legitimately
        // fire a post while the run is tearing down.
        let _ = self.inboxes[dst].send(Envelope::User {
            src,
            kind,
            payload,
            arrive_ns,
            reply: None,
        });
    }
}

/// Builder for a [`Network`].
pub struct NetworkBuilder {
    nodes: usize,
    cost: LinkCost,
    unified_saving_ns: u64,
}

impl NetworkBuilder {
    /// A fabric of `nodes` endpoints over the given link.
    pub fn new(nodes: usize, cost: LinkCost) -> Self {
        assert!(nodes > 0, "need at least one node");
        Self { nodes, cost, unified_saving_ns: 0 }
    }

    /// Activate HAMSTER's unified messaging layer: each message saves
    /// `saving_ns` of software overhead on both the send and receive path
    /// (paper §3.3). Capped so overheads never go below 10% of native.
    pub fn unified(mut self, saving_ns: u64) -> Self {
        self.unified_saving_ns = saving_ns;
        self
    }

    /// Start the fabric: spawns one communication-daemon thread per node.
    pub fn build(self) -> Network {
        let floor_send = self.cost.send_overhead_ns / 10;
        let floor_recv = self.cost.recv_overhead_ns / 10;
        let send_eff_ns = self.cost.send_overhead_ns.saturating_sub(self.unified_saving_ns).max(floor_send);
        let recv_eff_ns = self.cost.recv_overhead_ns.saturating_sub(self.unified_saving_ns).max(floor_recv);

        let mut inboxes = Vec::with_capacity(self.nodes);
        let mut receivers: Vec<Receiver<Envelope>> = Vec::with_capacity(self.nodes);
        for _ in 0..self.nodes {
            let (tx, rx) = unbounded();
            inboxes.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(NetShared {
            inboxes,
            servers: (0..self.nodes)
                .map(|_| Bus::with_bandwidth(1_000_000_000))
                .collect(),
            egress: (0..self.nodes)
                .map(|_| Bus::with_bandwidth(self.cost.bytes_per_sec))
                .collect(),
            routers: (0..self.nodes).map(|_| Arc::new(Router::new())).collect(),
            mailboxes: (0..self.nodes).map(|_| Arc::new(Mailbox::new())).collect(),
            cost: self.cost,
            send_eff_ns,
            recv_eff_ns,
            stats: StatSet::new(&["requests", "posts", "bytes"]),
        });

        let daemons = receivers
            .into_iter()
            .enumerate()
            .map(|(node, rx)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("commd-{node}"))
                    .spawn(move || daemon_loop(node, rx, shared))
                    .expect("spawn communication daemon")
            })
            .collect();

        Network { shared, daemons }
    }
}

fn daemon_loop(node: NodeId, rx: Receiver<Envelope>, shared: Arc<NetShared>) {
    for env in rx.iter() {
        match env {
            Envelope::Stop => break,
            Envelope::User { src, kind, payload, arrive_ns, reply } => {
                let service = shared.recv_eff_ns + shared.cost.handler_ns;
                let end0 = shared.servers[node].transfer(arrive_ns, service);
                let ctx = HandlerCtx { net: &shared, node, now: end0 };
                let out = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    shared.routers[node].dispatch(&ctx, src, kind, payload)
                })) {
                    Ok(out) => out,
                    Err(e) => {
                        // A protocol-handler panic is a bug in the layer
                        // above; surface it loudly (dropping the reply
                        // channel fails the requester) instead of
                        // silently wedging the whole fabric.
                        let msg = e
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| e.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".into());
                        eprintln!(
                            "commd-{node}: handler for kind {kind:#x} (from node {src}) \
                             panicked: {msg}"
                        );
                        continue;
                    }
                };
                let served = if out.extra_ns > 0 {
                    shared.servers[node].transfer(end0, out.extra_ns)
                } else {
                    end0
                };
                let end = served.max(out.not_before_ns);
                if sim::trace::enabled() {
                    sim::trace::span(arrive_ns, served - arrive_ns, node, "net", "handler", kind as u64);
                    if end > served {
                        // The protocol handler imposed a release floor
                        // (e.g. a lock grant not valid before the
                        // holder's release time): the reply stalls here.
                        sim::trace::span(served, end - served, node, "net", "not_before", end);
                    }
                }
                if let Some(tx) = reply {
                    let (payload, wire_bytes) = out
                        .reply
                        .expect("synchronous request handled by non-replying handler");
                    // Requester may have vanished on teardown; ignore.
                    let _ = tx.send(ReplyMsg { payload, wire_bytes, ready_ns: end });
                } else {
                    assert!(
                        out.reply.is_none(),
                        "one-way message kind {kind:#x} produced a reply"
                    );
                }
            }
        }
    }
}

/// A running fabric. Dropping it stops the communication daemons.
pub struct Network {
    shared: Arc<NetShared>,
    daemons: Vec<JoinHandle<()>>,
}

impl Network {
    /// Start building a fabric.
    pub fn builder(nodes: usize, cost: LinkCost) -> NetworkBuilder {
        NetworkBuilder::new(nodes, cost)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.shared.nodes()
    }

    /// The handler router of `node` (register protocol handlers here).
    pub fn router(&self, node: NodeId) -> Arc<Router> {
        self.shared.routers[node].clone()
    }

    /// The mailbox of `node`.
    pub fn mailbox(&self, node: NodeId) -> Arc<Mailbox> {
        self.shared.mailboxes[node].clone()
    }

    /// Create the application-side endpoint for `node`, bound to that
    /// node CPU's virtual clock.
    pub fn port(&self, node: NodeId, clock: Arc<VirtualClock>) -> NodePort {
        assert!(node < self.nodes());
        NodePort { node, clock, shared: self.shared.clone() }
    }

    /// Fabric-wide statistics (requests, posts, bytes).
    pub fn stats(&self) -> &StatSet {
        &self.shared.stats
    }

    /// Register `handler` for `kind` on every node (common for symmetric
    /// protocols).
    pub fn register_all<F>(&self, kind: u32, make: impl Fn(NodeId) -> F)
    where
        F: Fn(&HandlerCtx<'_>, NodeId, Payload) -> Outcome + Send + Sync + 'static,
    {
        for (node, router) in self.shared.routers.iter().enumerate() {
            router.register(kind, make(node));
        }
    }
}

impl Drop for Network {
    fn drop(&mut self) {
        for tx in &self.shared.inboxes {
            let _ = tx.send(Envelope::Stop);
        }
        for d in self.daemons.drain(..) {
            let _ = d.join();
        }
    }
}

/// Per-node endpoint used by application (and HAMSTER-service) threads.
#[derive(Clone)]
pub struct NodePort {
    node: NodeId,
    clock: Arc<VirtualClock>,
    shared: Arc<NetShared>,
}

impl NodePort {
    /// This endpoint's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the fabric.
    pub fn nodes(&self) -> usize {
        self.shared.nodes()
    }

    /// The virtual clock this port charges time to.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The same endpoint bound to a different clock (used when a second
    /// CPU of the node issues traffic).
    pub fn with_clock(&self, clock: Arc<VirtualClock>) -> NodePort {
        NodePort { node: self.node, clock, shared: self.shared.clone() }
    }

    /// This node's mailbox.
    pub fn mailbox(&self) -> &Mailbox {
        &self.shared.mailboxes[self.node]
    }

    /// Block on the mailbox and advance the clock to the wake-up's
    /// arrival time. Returns the payload.
    pub fn wait_mailbox(&self, tag: u64) -> Payload {
        let d = self.shared.mailboxes[self.node].wait(tag);
        self.clock.advance_to(d.arrive_ns);
        self.clock.advance(self.shared.recv_eff_ns);
        d.payload
    }

    /// Synchronous request: sends `value` to `dst` under `kind`, blocks
    /// for the reply, charges the full round trip (send overhead, wire,
    /// handler queueing and service, reply wire, receive overhead) to
    /// this node's clock, and returns the reply payload.
    pub fn request<T: std::any::Any + Send>(
        &self,
        dst: NodeId,
        kind: u32,
        value: T,
        wire_bytes: u64,
    ) -> Payload {
        self.shared.stats.add("requests", 1);
        self.shared.stats.add("bytes", wire_bytes);
        let depart = self.clock.advance(self.shared.send_eff_ns);
        let arrive_ns = self.shared.wire_arrival(self.node, dst, depart, wire_bytes);
        let (tx, rx) = bounded(1);
        self.shared.inboxes[dst]
            .send(Envelope::User {
                src: self.node,
                kind,
                payload: Box::new(value),
                arrive_ns,
                reply: Some(tx),
            })
            .expect("fabric stopped while request in flight");
        let rep = rx.recv().expect("handler dropped reply channel");
        let back = self.shared.wire_arrival(dst, self.node, rep.ready_ns, rep.wire_bytes);
        self.clock.advance_to(back);
        self.clock.advance(self.shared.recv_eff_ns);
        if sim::trace::enabled() {
            let t0 = depart - self.shared.send_eff_ns;
            sim::trace::span(t0, self.clock.now() - t0, self.node, "net", "request", kind as u64);
        }
        rep.payload
    }

    /// Pipelined batch of synchronous requests: all messages are sent
    /// back-to-back (each paying send overhead on this CPU), then the
    /// clock advances to the completion of the *latest* reply — the
    /// behaviour of a DSM that pushes diffs to several homes in parallel
    /// and waits for all acknowledgements.
    pub fn request_batch<T: std::any::Any + Send>(
        &self,
        msgs: Vec<(NodeId, u32, T, u64)>,
    ) -> Vec<Payload> {
        let t0 = self.clock.now();
        let n_msgs = msgs.len() as u64;
        let mut pending = Vec::with_capacity(msgs.len());
        for (dst, kind, value, wire_bytes) in msgs {
            self.shared.stats.add("requests", 1);
            self.shared.stats.add("bytes", wire_bytes);
            let depart = self.clock.advance(self.shared.send_eff_ns);
            let arrive_ns = self.shared.wire_arrival(self.node, dst, depart, wire_bytes);
            let (tx, rx) = bounded(1);
            self.shared.inboxes[dst]
                .send(Envelope::User {
                    src: self.node,
                    kind,
                    payload: Box::new(value),
                    arrive_ns,
                    reply: Some(tx),
                })
                .expect("fabric stopped while request in flight");
            pending.push((dst, rx));
        }
        let mut out = Vec::with_capacity(pending.len());
        let mut latest = self.clock.now();
        for (dst, rx) in pending {
            let rep = rx.recv().expect("handler dropped reply channel");
            let back = self.shared.wire_arrival(dst, self.node, rep.ready_ns, rep.wire_bytes);
            latest = latest.max(back + self.shared.recv_eff_ns);
            out.push(rep.payload);
        }
        self.clock.advance_to(latest);
        if sim::trace::enabled() && n_msgs > 0 {
            sim::trace::span(t0, self.clock.now() - t0, self.node, "net", "request_batch", n_msgs);
        }
        out
    }

    /// Fire-and-forget message to `dst`. Charges only the send overhead
    /// to this node's clock.
    pub fn post<T: std::any::Any + Send>(&self, dst: NodeId, kind: u32, value: T, wire_bytes: u64) {
        self.shared.stats.add("posts", 1);
        self.shared.stats.add("bytes", wire_bytes);
        let depart = self.clock.advance(self.shared.send_eff_ns);
        let arrive_ns = self.shared.wire_arrival(self.node, dst, depart, wire_bytes);
        sim::trace::instant(depart, self.node, "net", "post", kind as u64);
        self.shared.inboxes[dst]
            .send(Envelope::User {
                src: self.node,
                kind,
                payload: Box::new(value),
                arrive_ns,
                reply: None,
            })
            .expect("fabric stopped while posting");
    }

    /// Post `value` to every node except this one. The payload must be
    /// `Clone` because each destination gets its own copy.
    pub fn broadcast<T: std::any::Any + Send + Clone>(&self, kind: u32, value: T, wire_bytes: u64) {
        for dst in 0..self.nodes() {
            if dst != self.node {
                self.post(dst, kind, value.clone(), wire_bytes);
            }
        }
    }

    /// The link cost model of this fabric.
    pub fn link_cost(&self) -> LinkCost {
        self.shared.cost
    }

    /// Effective (possibly unified-layer-reduced) software send overhead.
    pub fn effective_send_overhead_ns(&self) -> u64 {
        self.shared.send_eff_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::downcast;

    fn tiny_link() -> LinkCost {
        LinkCost {
            send_overhead_ns: 100,
            recv_overhead_ns: 100,
            latency_ns: 1_000,
            bytes_per_sec: 1_000_000_000,
            handler_ns: 50,
        }
    }

    #[test]
    fn request_reply_roundtrip_and_timing() {
        let net = Network::builder(2, tiny_link()).build();
        net.router(1).register(0x10, |_ctx, src, p| {
            let x = downcast::<u64>(p);
            Outcome::reply(x + src as u64 + 100, 8)
        });
        let clock = VirtualClock::new();
        let port = net.port(0, clock.clone());
        let rep = port.request(1, 0x10, 5u64, 8);
        assert_eq!(downcast::<u64>(rep), 105);
        // send 100 + wire 1000+8 + service (100+50) + wire back 1000+8 + recv 100
        assert_eq!(clock.now(), 100 + 1008 + 150 + 1008 + 100);
    }

    #[test]
    fn handler_saturation_is_visible_in_reply_times() {
        // Handler occupancy is windowed demand: concurrent heavy
        // requests (2 ms of service each, far above the 1 ms/1 ms
        // window capacity) must slow each other down, while a single
        // request pays only its own service.
        let net = Network::builder(2, tiny_link()).build();
        net.router(1).register(0x11, |_ctx, _src, p| {
            let x = downcast::<u32>(p);
            Outcome::reply_costing(x, 4, 2_000_000)
        });
        let solo = {
            let c = VirtualClock::new();
            let p = net.port(0, c.clone());
            assert_eq!(downcast::<u32>(p.request(1, 0x11, 1u32, 4)), 1);
            c.now()
        };
        // Two more requests from fresh clocks at time 0: their service
        // demand lands in the same windows the first request used, plus
        // each other's — the slower of the two must exceed solo by a
        // contention factor.
        let c1 = VirtualClock::new();
        let p1 = net.port(0, c1.clone());
        let c2 = VirtualClock::new();
        let p2 = net.port(0, c2.clone());
        let h1 = std::thread::spawn(move || {
            downcast::<u32>(p1.request(1, 0x11, 2u32, 4))
        });
        let h2 = std::thread::spawn(move || {
            downcast::<u32>(p2.request(1, 0x11, 3u32, 4))
        });
        assert_eq!(h1.join().unwrap(), 2);
        assert_eq!(h2.join().unwrap(), 3);
        let slow = c1.now().max(c2.now());
        assert!(
            slow > solo + 1_000_000,
            "saturated handler should slow concurrent requests: solo={solo} slow={slow}"
        );
    }

    #[test]
    fn post_wakes_mailbox_via_handler() {
        let net = Network::builder(2, tiny_link()).build();
        let mb = net.mailbox(1);
        net.router(1).register(0x12, move |ctx, _src, p| {
            mb.deposit(crate::mailbox::tag(0x12, 0), p, ctx.now);
            Outcome::done()
        });
        let c0 = VirtualClock::new();
        let p0 = net.port(0, c0);
        p0.post(1, 0x12, 77u8, 1);
        let c1 = VirtualClock::new();
        let p1 = net.port(1, c1.clone());
        let payload = p1.wait_mailbox(crate::mailbox::tag(0x12, 0));
        assert_eq!(downcast::<u8>(payload), 77);
        assert!(c1.now() > 1_000, "waiter clock advanced to arrival");
    }

    #[test]
    fn handler_can_post_onward() {
        // Relay: node0 -> node1 handler -> posts to node2 mailbox.
        let net = Network::builder(3, tiny_link()).build();
        net.router(1).register(0x13, |ctx, src, p| {
            ctx.post(2, 0x14, (src, downcast::<u16>(p)), 4);
            Outcome::done()
        });
        let mb2 = net.mailbox(2);
        net.router(2).register(0x14, move |ctx, _src, p| {
            mb2.deposit(1, p, ctx.now);
            Outcome::done()
        });
        let p0 = net.port(0, VirtualClock::new());
        p0.post(1, 0x13, 9u16, 4);
        let p2 = net.port(2, VirtualClock::new());
        let (origin, val) = downcast::<(NodeId, u16)>(p2.wait_mailbox(1));
        assert_eq!((origin, val), (0, 9));
    }

    #[test]
    fn unified_layer_reduces_round_trip() {
        let run = |saving: u64| {
            let net = Network::builder(2, tiny_link()).unified(saving).build();
            net.router(1).register(1, |_c, _s, _p| Outcome::reply((), 0));
            let c = VirtualClock::new();
            let p = net.port(0, c.clone());
            let _ = p.request(1, 1, (), 0);
            c.now()
        };
        assert!(run(50) < run(0));
    }

    #[test]
    fn local_message_skips_wire() {
        let net = Network::builder(1, tiny_link()).build();
        net.router(0).register(2, |_c, _s, _p| Outcome::reply((), 0));
        let c = VirtualClock::new();
        let p = net.port(0, c.clone());
        let _ = p.request(0, 2, (), 0);
        // 100 + 500 + 150 + 500 + 100 — far less than one wire latency pair.
        assert!(c.now() < 2 * 1_000);
    }

    #[test]
    fn stats_count_traffic() {
        let net = Network::builder(2, tiny_link()).build();
        net.router(1).register(3, |_c, _s, _p| Outcome::reply((), 0));
        net.router(1).register(5, |_c, _s, _p| Outcome::done());
        let p = net.port(0, VirtualClock::new());
        let _ = p.request(1, 3, (), 64);
        p.post(1, 5, (), 32);
        assert_eq!(net.stats().get("requests"), 1);
        assert_eq!(net.stats().get("posts"), 1);
        assert!(net.stats().get("bytes") >= 96);
    }

    #[test]
    fn broadcast_reaches_all_others() {
        let net = Network::builder(4, tiny_link()).build();
        let counters: Vec<_> = (0..4).map(|_| Arc::new(sim::Counter::new())).collect();
        for (n, counter) in counters.iter().enumerate() {
            let c = counter.clone();
            net.router(n).register(4, move |_c, _s, _p| {
                c.incr();
                Outcome::done()
            });
        }
        let p = net.port(1, VirtualClock::new());
        p.broadcast(4, (), 8);
        // Drop the network to join daemons, guaranteeing delivery.
        drop(net);
        let got: Vec<u64> = counters.iter().map(|c| c.get()).collect();
        assert_eq!(got, vec![1, 0, 1, 1]);
    }
}

#[cfg(test)]
mod panic_tests {
    use super::*;
    use crate::message::downcast;

    #[test]
    fn handler_panic_is_contained_and_reported() {
        // A panicking handler must not wedge the daemon: the panicking
        // request fails loudly at the requester (dropped reply channel),
        // while subsequent messages keep flowing.
        let link = LinkCost {
            send_overhead_ns: 10,
            recv_overhead_ns: 10,
            latency_ns: 100,
            bytes_per_sec: 1_000_000_000,
            handler_ns: 10,
        };
        let net = Network::builder(2, link).build();
        net.router(1).register(0x66, |_c, _s, p| {
            let v = downcast::<u32>(p);
            assert!(v != 13, "unlucky payload");
            Outcome::reply(v * 2, 8)
        });
        let port = net.port(0, VirtualClock::new());
        // Trigger the panic from a scratch thread so this test survives.
        let p2 = port.clone();
        let bad = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                p2.request(1, 0x66, 13u32, 8)
            }));
        });
        bad.join().unwrap();
        // The daemon is still alive and serving.
        let ok = downcast::<u32>(port.request(1, 0x66, 21u32, 8));
        assert_eq!(ok, 42);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::message::downcast;

    #[test]
    fn request_batch_overlaps_round_trips() {
        // A batch to three distinct handlers must complete in roughly
        // one round trip plus send spacing, not three round trips.
        let link = LinkCost {
            send_overhead_ns: 1_000,
            recv_overhead_ns: 1_000,
            latency_ns: 100_000,
            bytes_per_sec: 1_000_000_000,
            handler_ns: 1_000,
        };
        let net = Network::builder(4, link).build();
        for n in 1..4 {
            net.router(n).register(0x21, |_c, _s, p| Outcome::reply(downcast::<u64>(p), 8));
        }
        let serial = {
            let c = VirtualClock::new();
            let p = net.port(0, c.clone());
            for dst in 1..4 {
                let _ = p.request(dst, 0x21, dst as u64, 8);
            }
            c.now()
        };
        let batched = {
            let c = VirtualClock::new();
            let p = net.port(0, c.clone());
            let replies =
                p.request_batch((1..4).map(|dst| (dst, 0x21, dst as u64, 8)).collect());
            assert_eq!(replies.len(), 3);
            c.now()
        };
        assert!(
            batched * 2 < serial,
            "batch should pipeline: serial={serial} batched={batched}"
        );
    }
}
