//! Delivery-engine selection: thread-per-node daemons vs the sharded
//! event-driven scheduler.
//!
//! Both engines execute the *same* envelope-processing code
//! (`network::process_envelope`) against the same virtual-time cost
//! model, so a workload's virtual timings, checksums and traces are
//! identical across engines; only the real-time execution shape — and
//! therefore wall-clock throughput — differs. See DESIGN.md §engine.

use crate::mailbox::BoundedQueue;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};

/// How many envelopes a shard worker drains from one node queue per
/// round. Within a batch, envelopes are processed in virtual arrival
/// order (batched virtual-time delivery).
pub(crate) const ENGINE_BATCH: usize = 128;

/// Per-node run-queue depth above which application-thread senders
/// block (backpressure). Handler-context sends overflow the bound
/// instead — see [`BoundedQueue`].
pub(crate) const NODE_QUEUE_CAPACITY: usize = 1024;

/// Which delivery engine a fabric runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Legacy shape: one communication-daemon OS thread per node, each
    /// blocking on its own inbox channel. Every delivery to an idle
    /// node pays a thread wake-up; at 64+ nodes the host drowns in
    /// mostly-sleeping threads.
    ThreadPerNode,
    /// Sharded event-driven scheduler: per-node bounded run queues
    /// multiplexed over a small worker pool, batched virtual-time
    /// delivery, wake elision while workers are hot.
    Sharded {
        /// Worker-thread count; `0` sizes automatically from the host's
        /// available parallelism (clamped to `[1, 8]` and to the node
        /// count).
        workers: usize,
    },
}

impl Default for EngineMode {
    fn default() -> Self {
        EngineMode::Sharded { workers: 0 }
    }
}

impl EngineMode {
    /// Worker threads to spawn for `nodes` nodes; `0` means
    /// thread-per-node daemons.
    pub fn resolved_workers(&self, nodes: usize) -> usize {
        match *self {
            EngineMode::ThreadPerNode => 0,
            EngineMode::Sharded { workers: 0 } => std::thread::available_parallelism()
                .map_or(1, |n| n.get())
                .clamp(1, 8)
                .min(nodes),
            EngineMode::Sharded { workers } => workers.min(nodes).max(1),
        }
    }
}

impl FromStr for EngineMode {
    type Err = String;

    /// `threads` / `thread-per-node` for the legacy engine, `sharded`
    /// (auto-sized) or `sharded:N` (N workers) for the event-driven one.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim().to_ascii_lowercase();
        match s.as_str() {
            "threads" | "thread-per-node" | "legacy" => Ok(EngineMode::ThreadPerNode),
            "sharded" => Ok(EngineMode::Sharded { workers: 0 }),
            other => match other.strip_prefix("sharded:") {
                Some(n) => n
                    .parse::<usize>()
                    .map(|workers| EngineMode::Sharded { workers })
                    .map_err(|e| format!("engine worker count {n:?}: {e}")),
                None => Err(format!("unknown engine mode {s:?} (threads | sharded[:N])")),
            },
        }
    }
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineMode::ThreadPerNode => write!(f, "threads"),
            EngineMode::Sharded { workers: 0 } => write!(f, "sharded"),
            EngineMode::Sharded { workers } => write!(f, "sharded:{workers}"),
        }
    }
}

/// One node's ingress under the sharded engine: the bounded envelope
/// queue plus the scheduled flag that keeps the node enqueued at most
/// once on its shard's ready ring.
pub(crate) struct NodeQueue<T> {
    pub(crate) q: BoundedQueue<T>,
    scheduled: AtomicBool,
}

impl<T> NodeQueue<T> {
    pub(crate) fn new() -> Self {
        Self { q: BoundedQueue::new(NODE_QUEUE_CAPACITY), scheduled: AtomicBool::new(false) }
    }

    /// After an enqueue: true when the caller must schedule the node
    /// (it was not already on a ready ring).
    pub(crate) fn claim_schedule(&self) -> bool {
        !self.scheduled.swap(true, Ordering::AcqRel)
    }

    /// Worker-side, after draining an empty batch: clear the scheduled
    /// flag, then re-check for a push that raced the clear. Returns
    /// true when the node re-claimed its slot and must stay scheduled.
    pub(crate) fn retire(&self) -> bool {
        self.scheduled.store(false, Ordering::Release);
        !self.q.is_empty() && self.claim_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!("threads".parse::<EngineMode>().unwrap(), EngineMode::ThreadPerNode);
        assert_eq!("legacy".parse::<EngineMode>().unwrap(), EngineMode::ThreadPerNode);
        assert_eq!("sharded".parse::<EngineMode>().unwrap(), EngineMode::Sharded { workers: 0 });
        assert_eq!(
            "Sharded:4".parse::<EngineMode>().unwrap(),
            EngineMode::Sharded { workers: 4 }
        );
        assert!("ring".parse::<EngineMode>().is_err());
        assert!("sharded:lots".parse::<EngineMode>().is_err());
    }

    #[test]
    fn mode_display_roundtrips() {
        for mode in [
            EngineMode::ThreadPerNode,
            EngineMode::Sharded { workers: 0 },
            EngineMode::Sharded { workers: 3 },
        ] {
            assert_eq!(mode.to_string().parse::<EngineMode>().unwrap(), mode);
        }
    }

    #[test]
    fn worker_resolution() {
        assert_eq!(EngineMode::ThreadPerNode.resolved_workers(64), 0);
        let auto = EngineMode::Sharded { workers: 0 }.resolved_workers(64);
        assert!((1..=8).contains(&auto));
        assert_eq!(EngineMode::Sharded { workers: 0 }.resolved_workers(1), 1);
        assert_eq!(EngineMode::Sharded { workers: 16 }.resolved_workers(4), 4);
    }

    #[test]
    fn node_queue_schedule_protocol() {
        let nq: NodeQueue<u32> = NodeQueue::new();
        assert!(nq.claim_schedule(), "first enqueue claims the slot");
        assert!(!nq.claim_schedule(), "second enqueue sees it scheduled");
        assert!(!nq.retire(), "empty queue retires for good");
        nq.q.push(1).unwrap();
        assert!(nq.claim_schedule());
        assert!(nq.retire(), "non-empty queue re-claims on retire");
    }
}
