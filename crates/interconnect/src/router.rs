//! Per-node handler registry.

use crate::error::DispatchError;
use crate::message::{Handler, HandlerCtx, NodeId, Outcome, Payload};
use parking_lot::RwLock;
use std::collections::HashMap;

/// Maps message kinds to protocol handlers on one node.
///
/// Protocols (software DSM, hybrid DSM, HAMSTER sync/task/cluster modules)
/// register their handlers during node initialization; the node's
/// communication daemon dispatches through the router afterwards.
/// Registration after the daemon has started is allowed (the map is
/// behind an `RwLock`), which HAMSTER's task module uses to install
/// forwarding handlers lazily.
#[derive(Default)]
pub struct Router {
    handlers: RwLock<HashMap<u32, Handler>>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `handler` for message `kind`. Panics if the kind is taken:
    /// protocol kind spaces are statically partitioned (see the `kinds`
    /// constants in each protocol crate), so a clash is a bug.
    pub fn register<F>(&self, kind: u32, handler: F)
    where
        F: Fn(&HandlerCtx<'_>, NodeId, Payload) -> Outcome + Send + Sync + 'static,
    {
        let prev = self.handlers.write().insert(kind, Box::new(handler));
        assert!(prev.is_none(), "handler kind {kind:#x} registered twice");
    }

    /// Dispatch a message. An unknown kind is reported as a
    /// [`DispatchError`] so the communication daemon can NACK the
    /// requester instead of dying with it.
    pub fn dispatch(
        &self,
        ctx: &HandlerCtx<'_>,
        src: NodeId,
        kind: u32,
        payload: Payload,
    ) -> Result<Outcome, DispatchError> {
        let guard = self.handlers.read();
        let h = guard.get(&kind).ok_or(DispatchError { kind })?;
        Ok(h(ctx, src, payload))
    }

    /// Whether a handler is registered for `kind`.
    pub fn knows(&self, kind: u32) -> bool {
        self.handlers.read().contains_key(&kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_knows() {
        let r = Router::new();
        assert!(!r.knows(1));
        r.register(1, |_ctx, _src, _p| Outcome::done());
        assert!(r.knows(1));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_register_panics() {
        let r = Router::new();
        r.register(7, |_, _, _| Outcome::done());
        r.register(7, |_, _, _| Outcome::done());
    }
}
