//! Per-node handler registry.

use crate::error::DispatchError;
use crate::message::{Handler, HandlerCtx, NodeId, Outcome, Payload};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Fibonacci-multiply hasher for the router's `u32` kind keys. Kinds
/// are small hand-picked constants — a full SipHash per dispatch is
/// wasted work on the fabric's hottest path.
#[derive(Default)]
pub(crate) struct KindHasher(u64);

impl Hasher for KindHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = (v as u64 ^ self.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type KindMap<V> = HashMap<u32, V, BuildHasherDefault<KindHasher>>;

/// Maps message kinds to protocol handlers on one node.
///
/// Protocols (software DSM, hybrid DSM, HAMSTER sync/task/cluster modules)
/// register their handlers during node initialization; the node's
/// communication daemon dispatches through the router afterwards.
/// Registration after the daemon has started is allowed (the map is
/// behind an `RwLock`), which HAMSTER's task module uses to install
/// forwarding handlers lazily.
#[derive(Default)]
pub struct Router {
    handlers: RwLock<KindMap<Handler>>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an infallible `handler` for message `kind`. Panics if
    /// the kind is taken: protocol kind spaces are statically
    /// partitioned (see the `kinds` constants in each protocol crate),
    /// so a clash is a bug.
    pub fn register<F>(&self, kind: u32, handler: F)
    where
        F: Fn(&HandlerCtx<'_>, NodeId, Payload) -> Outcome + Send + Sync + 'static,
    {
        self.register_try(kind, move |ctx, src, p| Ok(handler(ctx, src, p)));
    }

    /// Register a fallible handler: dispatch-level failures (a payload
    /// of the wrong type, via [`crate::try_downcast`]) surface as a
    /// typed NACK to the requester instead of a handler panic.
    pub fn register_try<F>(&self, kind: u32, handler: F)
    where
        F: Fn(&HandlerCtx<'_>, NodeId, Payload) -> Result<Outcome, DispatchError>
            + Send
            + Sync
            + 'static,
    {
        let prev = self.handlers.write().insert(kind, Box::new(handler));
        assert!(prev.is_none(), "handler kind {kind:#x} registered twice");
    }

    /// Dispatch a message. An unknown kind — or a handler-reported
    /// dispatch failure — is returned as a [`DispatchError`] so the
    /// delivery engine can NACK the requester instead of dying with it.
    pub fn dispatch(
        &self,
        ctx: &HandlerCtx<'_>,
        src: NodeId,
        kind: u32,
        payload: Payload,
    ) -> Result<Outcome, DispatchError> {
        let guard = self.handlers.read();
        let h = guard.get(&kind).ok_or(DispatchError::NoHandler { kind })?;
        h(ctx, src, payload)
    }

    /// Whether a handler is registered for `kind`.
    pub fn knows(&self, kind: u32) -> bool {
        self.handlers.read().contains_key(&kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_knows() {
        let r = Router::new();
        assert!(!r.knows(1));
        r.register(1, |_ctx, _src, _p| Outcome::done());
        assert!(r.knows(1));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_register_panics() {
        let r = Router::new();
        r.register(7, |_, _, _| Outcome::done());
        r.register(7, |_, _, _| Outcome::done());
    }

    #[test]
    fn register_try_and_infallible_share_the_kind_space() {
        let r = Router::new();
        r.register(1, |_, _, _| Outcome::done());
        r.register_try(2, |_, _, p| {
            crate::try_downcast::<u32>(p).map(|v| Outcome::reply(v * 2, 8))
        });
        assert!(r.knows(1) && r.knows(2));
    }
}
