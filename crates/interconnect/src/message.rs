//! Message and handler types shared across the fabric.

use std::any::Any;

/// Identifier of a simulated node (0-based rank).
pub type NodeId = usize;

/// An in-process message payload. The fabric never serializes payloads —
/// all nodes live in one address space — but every send declares its
/// *wire size* so the cost model can charge serialization/bandwidth as
/// the real network would.
pub type Payload = Box<dyn Any + Send>;

/// Downcast a payload to a concrete protocol message type.
///
/// Panics on a type mismatch: handler kinds and payload types are paired
/// statically by each protocol, so a mismatch is a protocol bug, not a
/// runtime condition.
pub fn downcast<T: 'static>(p: Payload) -> T {
    *p.downcast::<T>()
        .unwrap_or_else(|_| panic!("payload type mismatch for {}", std::any::type_name::<T>()))
}

/// What a handler produced.
pub struct Outcome {
    /// Reply payload and its wire size in bytes (for synchronous requests).
    pub reply: Option<(Payload, u64)>,
    /// Additional service time beyond the link's fixed handler cost, e.g.
    /// applying a large diff or copying a page out of the home store (ns).
    pub extra_ns: u64,
    /// Causal floor on the reply time: the reply is not ready before
    /// this virtual instant, without consuming handler capacity. Used
    /// to keep eagerly-made decisions virtually ordered (e.g. a lock
    /// grant must not precede the previous holder's release).
    pub not_before_ns: u64,
}

impl Outcome {
    /// A reply with the given wire size and no extra service time.
    pub fn reply<T: Any + Send>(value: T, wire_bytes: u64) -> Self {
        Self { reply: Some((Box::new(value), wire_bytes)), extra_ns: 0, not_before_ns: 0 }
    }

    /// A reply plus extra handler service time.
    pub fn reply_costing<T: Any + Send>(value: T, wire_bytes: u64, extra_ns: u64) -> Self {
        Self { reply: Some((Box::new(value), wire_bytes)), extra_ns, not_before_ns: 0 }
    }

    /// A reply that is not ready before the given virtual instant (a
    /// causal ordering floor, not handler work).
    pub fn reply_not_before<T: Any + Send>(
        value: T,
        wire_bytes: u64,
        not_before_ns: u64,
    ) -> Self {
        Self {
            reply: Some((Box::new(value), wire_bytes)),
            extra_ns: 0,
            not_before_ns,
        }
    }

    /// No reply (one-way message), no extra cost.
    pub fn done() -> Self {
        Self { reply: None, extra_ns: 0, not_before_ns: 0 }
    }

    /// No reply, with extra handler service time.
    pub fn done_costing(extra_ns: u64) -> Self {
        Self { reply: None, extra_ns, not_before_ns: 0 }
    }
}

/// Context handed to a protocol handler while it runs on a node's
/// communication daemon.
///
/// `now` is the virtual time at which the handler's fixed service window
/// ends; posts made from within the handler depart at `now` (plus the
/// handler's own `extra_ns`, which the handler should add via
/// [`HandlerCtx::post_at`] if it matters).
pub struct HandlerCtx<'a> {
    pub(crate) net: &'a crate::network::NetShared,
    /// The node this handler runs on.
    pub node: NodeId,
    /// Virtual time at which the fixed service window ends.
    pub now: u64,
}

impl HandlerCtx<'_> {
    /// Fire-and-forget message to `dst`, departing at `self.now`.
    pub fn post<T: Any + Send>(&self, dst: NodeId, kind: u32, value: T, wire_bytes: u64) {
        self.post_at(dst, kind, value, wire_bytes, self.now);
    }

    /// Fire-and-forget message departing at an explicit time (used when a
    /// handler performed additional work before sending).
    pub fn post_at<T: Any + Send>(
        &self,
        dst: NodeId,
        kind: u32,
        value: T,
        wire_bytes: u64,
        depart: u64,
    ) {
        self.net.post_from_handler(self.node, dst, kind, Box::new(value), wire_bytes, depart);
    }

    /// Number of nodes in the fabric.
    pub fn nodes(&self) -> usize {
        self.net.nodes()
    }
}

/// A protocol handler: `(ctx, requester, payload) -> outcome`.
pub type Handler = Box<dyn Fn(&HandlerCtx<'_>, NodeId, Payload) -> Outcome + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downcast_roundtrip() {
        let p: Payload = Box::new(42u32);
        assert_eq!(downcast::<u32>(p), 42);
    }

    #[test]
    #[should_panic(expected = "payload type mismatch")]
    fn downcast_wrong_type_panics() {
        let p: Payload = Box::new(42u32);
        let _: u64 = downcast::<u64>(p);
    }

    #[test]
    fn outcome_constructors() {
        let o = Outcome::reply(7u8, 16);
        assert!(o.reply.is_some());
        assert_eq!(o.extra_ns, 0);
        let o = Outcome::done_costing(99);
        assert!(o.reply.is_none());
        assert_eq!(o.extra_ns, 99);
    }
}
