//! Message and handler types shared across the fabric.

use crate::error::DispatchError;
use std::any::Any;
use std::sync::Arc;

/// Identifier of a simulated node (0-based rank).
pub type NodeId = usize;

/// An in-process message payload. The fabric never serializes payloads —
/// all nodes live in one address space — but every send declares its
/// *wire size* so the cost model can charge serialization/bandwidth as
/// the real network would.
pub type Payload = Box<dyn Any + Send>;

/// Downcast a payload to a concrete protocol message type.
///
/// Panics on a type mismatch: handler kinds and payload types are paired
/// statically by each protocol, so a mismatch is a protocol bug, not a
/// runtime condition. Fallible handlers (see [`crate::Router::register_try`])
/// use [`try_downcast`] and surface the mismatch as a typed NACK instead.
pub fn downcast<T: 'static>(p: Payload) -> T {
    *p.downcast::<T>()
        .unwrap_or_else(|_| panic!("payload type mismatch for {}", std::any::type_name::<T>()))
}

/// Downcast a payload to a concrete protocol message type, reporting a
/// mismatch as a typed [`DispatchError`] on the `Result` path (the
/// delivery engine NACKs the requester) instead of panicking.
pub fn try_downcast<T: 'static>(p: Payload) -> Result<T, DispatchError> {
    p.downcast::<T>()
        .map(|b| *b)
        .map_err(|_| DispatchError::PayloadType { expected: std::any::type_name::<T>() })
}

/// An immutable, cheaply clonable page of bytes: the zero-copy payload
/// unit for whole-page traffic (DSM page fetches, whole-page
/// write-back).
///
/// Cloning a `Page` bumps a reference count; the bytes are shared. A
/// home store that hands out snapshots therefore pays nothing per
/// fetch, and a retried `PutPages` clones Arcs, not kilobytes. Mutation
/// goes through [`Page::make_mut`], which copies only when the bytes
/// are shared (copy-on-write) — exactly the ownership shape of a real
/// zero-copy transport, where a page in flight must not be scribbled on.
///
/// Downstream code should name this type (re-exported from `swdsm` and
/// `hybriddsm`), never the `Arc<[u8]>` representation.
#[derive(Clone, PartialEq, Eq)]
pub struct Page(Arc<[u8]>);

impl Page {
    /// A zero-filled page of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        Self(vec![0u8; len].into())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for a zero-length page.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The bytes, read-only.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// An owned copy of the bytes (for sinks that need a `Vec`, e.g.
    /// installing into a locally mutable page cache).
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Mutable access, copy-on-write: in-place when this is the only
    /// reference, otherwise the bytes are copied first so shared
    /// snapshots (pages in flight) are never mutated.
    pub fn make_mut(&mut self) -> &mut [u8] {
        if Arc::get_mut(&mut self.0).is_none() {
            self.0 = Arc::from(&self.0[..]);
        }
        Arc::get_mut(&mut self.0).expect("freshly copied page is uniquely owned")
    }
}

impl From<Vec<u8>> for Page {
    fn from(v: Vec<u8>) -> Self {
        Self(v.into())
    }
}

impl From<&[u8]> for Page {
    fn from(v: &[u8]) -> Self {
        Self(Arc::from(v))
    }
}

impl std::ops::Deref for Page {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Page {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Don't dump kilobytes of page contents into assertion output.
        write!(f, "Page({} bytes)", self.0.len())
    }
}

/// What a handler produced.
pub struct Outcome {
    /// Reply payload and its wire size in bytes (for synchronous requests).
    pub reply: Option<(Payload, u64)>,
    /// Additional service time beyond the link's fixed handler cost, e.g.
    /// applying a large diff or copying a page out of the home store (ns).
    pub extra_ns: u64,
    /// Causal floor on the reply time: the reply is not ready before
    /// this virtual instant, without consuming handler capacity. Used
    /// to keep eagerly-made decisions virtually ordered (e.g. a lock
    /// grant must not precede the previous holder's release).
    pub not_before_ns: u64,
    /// When set, the handler takes ownership of the reply obligation:
    /// the transport parks the reply channel under `(this node, key,
    /// requester)` instead of answering, and a later handler invocation
    /// discharges it via [`HandlerCtx::complete_deferred`]. This is how
    /// rendezvous protocols (barriers) answer every participant with
    /// the collective result while staying pure request/reply — no
    /// side-channel broadcast for a retried request to race.
    pub defer_key: Option<u64>,
}

impl Outcome {
    /// A reply with the given wire size and no extra service time.
    pub fn reply<T: Any + Send>(value: T, wire_bytes: u64) -> Self {
        Self {
            reply: Some((Box::new(value), wire_bytes)),
            extra_ns: 0,
            not_before_ns: 0,
            defer_key: None,
        }
    }

    /// A reply plus extra handler service time.
    pub fn reply_costing<T: Any + Send>(value: T, wire_bytes: u64, extra_ns: u64) -> Self {
        Self {
            reply: Some((Box::new(value), wire_bytes)),
            extra_ns,
            not_before_ns: 0,
            defer_key: None,
        }
    }

    /// A reply that is not ready before the given virtual instant (a
    /// causal ordering floor, not handler work).
    pub fn reply_not_before<T: Any + Send>(
        value: T,
        wire_bytes: u64,
        not_before_ns: u64,
    ) -> Self {
        Self {
            reply: Some((Box::new(value), wire_bytes)),
            extra_ns: 0,
            not_before_ns,
            defer_key: None,
        }
    }

    /// No reply (one-way message), no extra cost.
    pub fn done() -> Self {
        Self { reply: None, extra_ns: 0, not_before_ns: 0, defer_key: None }
    }

    /// No reply, with extra handler service time.
    pub fn done_costing(extra_ns: u64) -> Self {
        Self { reply: None, extra_ns, not_before_ns: 0, defer_key: None }
    }

    /// Park the requester's reply channel under `key` (scoped to the
    /// handling node) instead of answering now. The request must be
    /// answered later — from a subsequent handler invocation on the
    /// same node — with [`HandlerCtx::complete_deferred`], or it is
    /// failed with `FabricStopped` at teardown. Only meaningful for
    /// synchronous requests; deferring a one-way message is a protocol
    /// bug and panics in the transport.
    pub fn defer(key: u64) -> Self {
        Self { reply: None, extra_ns: 0, not_before_ns: 0, defer_key: Some(key) }
    }
}

/// Context handed to a protocol handler while it runs on a node's
/// communication daemon.
///
/// `now` is the virtual time at which the handler's fixed service window
/// ends; posts made from within the handler depart at `now` (plus the
/// handler's own `extra_ns`, which the handler should add via
/// [`HandlerCtx::post_at`] if it matters).
pub struct HandlerCtx<'a> {
    pub(crate) net: &'a crate::network::NetShared,
    /// The node this handler runs on.
    pub node: NodeId,
    /// Virtual time at which the fixed service window ends.
    pub now: u64,
}

impl HandlerCtx<'_> {
    /// Fire-and-forget message to `dst`, departing at `self.now`.
    pub fn post<T: Any + Send>(&self, dst: NodeId, kind: u32, value: T, wire_bytes: u64) {
        self.post_at(dst, kind, value, wire_bytes, self.now);
    }

    /// Fire-and-forget message departing at an explicit time (used when a
    /// handler performed additional work before sending).
    pub fn post_at<T: Any + Send>(
        &self,
        dst: NodeId,
        kind: u32,
        value: T,
        wire_bytes: u64,
        depart: u64,
    ) {
        self.net
            .post_from_handler(self.node, dst, kind, Box::new(value), wire_bytes, depart, None);
    }

    /// Like [`HandlerCtx::post`], for messages whose receiving handler
    /// deposits into the mailbox under `wake_tag`. If fault injection
    /// destroys the message, a loss tombstone lands under that tag so a
    /// resilient waiter times out instead of blocking forever.
    pub fn post_tagged<T: Any + Send>(
        &self,
        dst: NodeId,
        kind: u32,
        value: T,
        wire_bytes: u64,
        wake_tag: u64,
    ) {
        self.post_tagged_at(dst, kind, value, wire_bytes, wake_tag, self.now);
    }

    /// [`HandlerCtx::post_tagged`] with an explicit departure time.
    pub fn post_tagged_at<T: Any + Send>(
        &self,
        dst: NodeId,
        kind: u32,
        value: T,
        wire_bytes: u64,
        wake_tag: u64,
        depart: u64,
    ) {
        self.net.post_from_handler(
            self.node,
            dst,
            kind,
            Box::new(value),
            wire_bytes,
            depart,
            Some(wake_tag),
        );
    }

    /// Number of nodes in the fabric.
    pub fn nodes(&self) -> usize {
        self.net.nodes()
    }

    /// Whether the fabric runs with a timeout/retry policy installed.
    /// Protocols use this to pick between the legacy one-way message
    /// shapes and the confirmable request/reply shapes.
    pub fn resilient(&self) -> bool {
        self.net.resilience().is_some()
    }

    /// Answer a request whose reply was parked with [`Outcome::defer`]
    /// under `key` by requester `who`. The reply departs no earlier
    /// than `not_before_ns` (and never before the deferred request's
    /// own service completion). Panics if no such deferred request is
    /// parked — matching a discharge to a missing park is a protocol
    /// bug, not a runtime condition.
    pub fn complete_deferred<T: Any + Send>(
        &self,
        key: u64,
        who: NodeId,
        value: T,
        wire_bytes: u64,
        not_before_ns: u64,
    ) {
        self.net.complete_deferred(self.node, key, who, Box::new(value), wire_bytes, not_before_ns);
    }
}

/// A protocol handler: `(ctx, requester, payload) -> outcome`, with
/// dispatch-level failures (wrong payload type) on the `Err` path. The
/// delivery engine NACKs the requester on `Err` instead of panicking.
/// Infallible handlers register through [`crate::Router::register`],
/// which wraps them in `Ok`.
pub type Handler =
    Box<dyn Fn(&HandlerCtx<'_>, NodeId, Payload) -> Result<Outcome, DispatchError> + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downcast_roundtrip() {
        let p: Payload = Box::new(42u32);
        assert_eq!(downcast::<u32>(p), 42);
    }

    #[test]
    #[should_panic(expected = "payload type mismatch")]
    fn downcast_wrong_type_panics() {
        let p: Payload = Box::new(42u32);
        let _: u64 = downcast::<u64>(p);
    }

    #[test]
    fn try_downcast_reports_typed_mismatch() {
        let p: Payload = Box::new(42u32);
        assert_eq!(try_downcast::<u32>(p).unwrap(), 42);
        let p: Payload = Box::new(42u32);
        let err = try_downcast::<u64>(p).unwrap_err();
        assert!(matches!(err, DispatchError::PayloadType { .. }));
        assert!(err.to_string().contains("u64"), "{err}");
    }

    #[test]
    fn page_clone_shares_bytes() {
        let a = Page::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_slice(), b.as_slice());
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()), "clone is zero-copy");
    }

    #[test]
    fn page_make_mut_copies_only_when_shared() {
        let mut a = Page::from(vec![0u8; 4]);
        let before = a.as_slice().as_ptr();
        a.make_mut()[0] = 7;
        assert!(std::ptr::eq(before, a.as_slice().as_ptr()), "unique page mutates in place");
        let b = a.clone();
        a.make_mut()[1] = 9;
        assert_eq!(b.as_slice(), &[7, 0, 0, 0], "shared snapshot untouched");
        assert_eq!(a.as_slice(), &[7, 9, 0, 0]);
    }

    #[test]
    fn page_zeroed_and_debug() {
        let p = Page::zeroed(16);
        assert_eq!(p.len(), 16);
        assert!(!p.is_empty());
        assert!(p.iter().all(|&b| b == 0));
        assert_eq!(format!("{p:?}"), "Page(16 bytes)");
    }

    #[test]
    fn outcome_constructors() {
        let o = Outcome::reply(7u8, 16);
        assert!(o.reply.is_some());
        assert_eq!(o.extra_ns, 0);
        let o = Outcome::done_costing(99);
        assert!(o.reply.is_none());
        assert_eq!(o.extra_ns, 99);
    }
}
