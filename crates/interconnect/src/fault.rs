//! Deterministic, seeded fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] describes *what can go wrong* on the wire: per-link
//! message drop / duplication / delay / reordering probabilities, plus
//! scheduled node crashes and network partitions (both heal at a given
//! virtual time). Every decision is a pure hash of the plan seed and
//! the message's stream position — no wall clock, no shared RNG state —
//! so the same seed reproduces the identical fault schedule on every
//! run, regardless of thread interleaving.
//!
//! A [`Resilience`] policy describes *how the requester copes*:
//! a virtual-time timeout after which a lost message surfaces as
//! [`crate::RequestError::Timeout`], and a [`RetryPolicy`] with
//! exponential backoff plus deterministic jitter.

/// Probabilities are expressed in parts-per-million of messages.
pub const PPM: u64 = 1_000_000;

/// Stream marker mixed into the message kind for reply-direction fault
/// streams, so a request and its reply draw from independent sequences
/// even on symmetric protocols. Protocol kinds never use the top bit.
pub(crate) const REPLY_STREAM: u32 = 0x8000_0000;

/// Stream marker for retry-backoff jitter draws. Each retry consumes
/// the next position in its `(src, dst, kind | RETRY_STREAM)` sequence,
/// so the jitter depends only on how many retries that stream has seen
/// — never on a virtual clock reading, whose last few microseconds can
/// wobble with thread scheduling and would otherwise reseed the jitter.
pub(crate) const RETRY_STREAM: u32 = 0x4000_0000;

/// splitmix64 finalizer: a statistically strong 64-bit mixer, used as
/// the stateless RNG behind every fault decision.
#[inline]
pub fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-link fault probabilities and magnitudes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkFaults {
    /// Probability (ppm) that a message is silently dropped.
    pub drop_ppm: u32,
    /// Probability (ppm) that a message is delivered twice.
    pub dup_ppm: u32,
    /// Probability (ppm) that a message suffers extra latency.
    pub delay_ppm: u32,
    /// Maximum extra latency for a delayed message (uniform in
    /// `1..=delay_ns`).
    pub delay_ns: u64,
    /// Probability (ppm) that a message is reordered past its peers.
    /// In a virtual-time fabric arrival order *is* delivery order, so
    /// reordering is modelled as an extra arrival-time displacement of
    /// up to [`LinkFaults::reorder_window_ns`].
    pub reorder_ppm: u32,
    /// Displacement window for reordered messages.
    pub reorder_window_ns: u64,
}

impl LinkFaults {
    /// True when no probabilistic fault can ever fire on this link.
    pub fn is_quiet(&self) -> bool {
        self.drop_ppm == 0 && self.dup_ppm == 0 && self.delay_ppm == 0 && self.reorder_ppm == 0
    }
}

/// A node is unreachable in `[from_ns, until_ns)` of virtual time; it
/// heals at `until_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashed node.
    pub node: usize,
    /// Crash start (inclusive), virtual ns.
    pub from_ns: u64,
    /// Heal time (exclusive end of the outage), virtual ns.
    pub until_ns: u64,
}

/// The fabric is split into two groups in `[from_ns, until_ns)`;
/// messages crossing the cut are lost. Heals at `until_ns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Nodes on one side of the cut (everything else is the other side).
    pub group: Vec<usize>,
    /// Partition start (inclusive), virtual ns.
    pub from_ns: u64,
    /// Heal time (exclusive), virtual ns.
    pub until_ns: u64,
}

impl PartitionWindow {
    fn separates(&self, a: usize, b: usize) -> bool {
        self.group.contains(&a) != self.group.contains(&b)
    }
}

/// The outcome of the fault draw for one message.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// The message is lost.
    pub drop: bool,
    /// The message is delivered a second time (same request id).
    pub dup: bool,
    /// Extra arrival delay (delay and reorder displacements combined).
    pub extra_delay_ns: u64,
}

/// A complete, reproducible description of everything that will go
/// wrong on this fabric. Configured from `cluster::config` chaos keys
/// or built directly in tests.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Faults applied to links with no per-link override.
    pub default_link: LinkFaults,
    /// Per-(src, dst) overrides. Directional: `(0, 1)` governs only
    /// messages from node 0 to node 1.
    pub per_link: Vec<((usize, usize), LinkFaults)>,
    /// Scheduled node outages.
    pub crashes: Vec<CrashWindow>,
    /// Scheduled network partitions.
    pub partitions: Vec<PartitionWindow>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// The fault profile of the `src -> dst` link.
    pub fn link(&self, src: usize, dst: usize) -> LinkFaults {
        self.per_link
            .iter()
            .find(|(l, _)| *l == (src, dst))
            .map(|(_, f)| *f)
            .unwrap_or(self.default_link)
    }

    /// Is `node` crashed at virtual time `t_ns`?
    pub fn down_at(&self, node: usize, t_ns: u64) -> bool {
        self.crashes
            .iter()
            .any(|c| c.node == node && c.from_ns <= t_ns && t_ns < c.until_ns)
    }

    /// Is the `src -> dst` path cut by a partition at virtual time `t_ns`?
    pub fn cut_at(&self, src: usize, dst: usize, t_ns: u64) -> bool {
        self.partitions
            .iter()
            .any(|p| p.from_ns <= t_ns && t_ns < p.until_ns && p.separates(src, dst))
    }

    /// Draw the fault decision for the `seq`-th message of the
    /// `(src, dst, kind)` stream. Pure: same plan + same stream
    /// position always gives the same answer.
    pub fn decide(&self, src: usize, dst: usize, kind: u32, seq: u64) -> FaultDecision {
        let lf = self.link(src, dst);
        if lf.is_quiet() {
            return FaultDecision::default();
        }
        let stream = ((src as u64) << 42) ^ ((dst as u64) << 21) ^ kind as u64;
        let key = mix(self.seed ^ mix(stream) ^ seq);
        let mut d = FaultDecision {
            drop: mix(key ^ 0xD0) % PPM < lf.drop_ppm as u64,
            dup: mix(key ^ 0xD1) % PPM < lf.dup_ppm as u64,
            extra_delay_ns: 0,
        };
        if lf.delay_ns > 0 && mix(key ^ 0xD2) % PPM < lf.delay_ppm as u64 {
            d.extra_delay_ns += 1 + mix(key ^ 0xD3) % lf.delay_ns;
        }
        if lf.reorder_window_ns > 0 && mix(key ^ 0xD4) % PPM < lf.reorder_ppm as u64 {
            d.extra_delay_ns += 1 + mix(key ^ 0xD5) % lf.reorder_window_ns;
        }
        d
    }
}

/// Exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt.
    pub base_backoff_ns: u64,
    /// Cap on the exponential term.
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 12, base_backoff_ns: 250_000, max_backoff_ns: 4_000_000 }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based: the pause after
    /// the first failure is `attempt == 1`). `salt` folds in the fault
    /// seed and the failure's virtual time, so jitter is deterministic
    /// per run yet decorrelates concurrent retriers.
    pub fn backoff_ns(&self, attempt: u32, salt: u64) -> u64 {
        let doublings = attempt.saturating_sub(1).min(63);
        let exp = self
            .base_backoff_ns
            .saturating_mul(1u64 << doublings)
            .min(self.max_backoff_ns)
            .max(1);
        let jitter = mix(salt ^ attempt as u64) % (self.base_backoff_ns / 2 + 1);
        exp + jitter
    }
}

/// How a port copes with a faulty fabric: give up on a message after
/// `timeout_ns` of virtual time, then retry per the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resilience {
    /// Virtual-time timeout on requests and tagged waits.
    pub timeout_ns: u64,
    /// Retry schedule for transient failures.
    pub retry: RetryPolicy,
}

impl Default for Resilience {
    fn default() -> Self {
        Self { timeout_ns: 2_000_000, retry: RetryPolicy::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_reproducible_and_seed_sensitive() {
        let a = FaultPlan {
            seed: 7,
            default_link: LinkFaults { drop_ppm: 500_000, ..Default::default() },
            ..Default::default()
        };
        let b = FaultPlan { seed: 8, ..a.clone() };
        let da: Vec<_> = (0..64).map(|s| a.decide(0, 1, 0x10, s)).collect();
        let da2: Vec<_> = (0..64).map(|s| a.decide(0, 1, 0x10, s)).collect();
        let db: Vec<_> = (0..64).map(|s| b.decide(0, 1, 0x10, s)).collect();
        assert_eq!(da, da2, "same seed must reproduce the schedule");
        assert_ne!(da, db, "different seeds must diverge");
        let drops = da.iter().filter(|d| d.drop).count();
        assert!(drops > 10 && drops < 54, "50% drop rate should be roughly half: {drops}");
    }

    #[test]
    fn per_link_overrides_default() {
        let plan = FaultPlan {
            default_link: LinkFaults { drop_ppm: PPM as u32, ..Default::default() },
            per_link: vec![((1, 2), LinkFaults::default())],
            ..Default::default()
        };
        assert!(plan.decide(0, 1, 1, 1).drop, "default link drops everything");
        assert!(!plan.decide(1, 2, 1, 1).drop, "override link is quiet");
    }

    #[test]
    fn crash_and_partition_windows() {
        let plan = FaultPlan {
            crashes: vec![CrashWindow { node: 1, from_ns: 100, until_ns: 200 }],
            partitions: vec![PartitionWindow { group: vec![0], from_ns: 50, until_ns: 60 }],
            ..Default::default()
        };
        assert!(!plan.down_at(1, 99));
        assert!(plan.down_at(1, 100));
        assert!(plan.down_at(1, 199));
        assert!(!plan.down_at(1, 200), "node heals at until_ns");
        assert!(!plan.down_at(0, 150));
        assert!(plan.cut_at(0, 1, 55));
        assert!(plan.cut_at(1, 0, 55));
        assert!(!plan.cut_at(1, 2, 55), "same side of the cut");
        assert!(!plan.cut_at(0, 1, 60), "partition heals");
    }

    #[test]
    fn delays_stay_within_configured_windows() {
        let plan = FaultPlan {
            default_link: LinkFaults {
                delay_ppm: PPM as u32,
                delay_ns: 1_000,
                reorder_ppm: PPM as u32,
                reorder_window_ns: 500,
                ..Default::default()
            },
            ..Default::default()
        };
        for s in 0..256 {
            let d = plan.decide(0, 1, 2, s);
            assert!(d.extra_delay_ns >= 2 && d.extra_delay_ns <= 1_500);
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy { max_attempts: 10, base_backoff_ns: 100, max_backoff_ns: 1_000 };
        let b1 = p.backoff_ns(1, 0);
        let b3 = p.backoff_ns(3, 0);
        let b9 = p.backoff_ns(9, 0);
        assert!((100..=150).contains(&b1));
        assert!((400..=450).contains(&b3));
        assert!((1_000..=1_050).contains(&b9), "capped at max: {b9}");
    }
}
