//! Deterministic membership plans: scripted or seeded join/leave/recover
//! churn, mirroring [`crate::fault::FaultPlan`] so view-change schedules
//! are exactly as reproducible as fault schedules.
//!
//! A [`MembershipPlan`] is pure data plus pure functions of virtual
//! time: the cluster's **view epoch** at instant `t` is the number of
//! membership events at or before `t`, and a node's absence windows
//! (between a `Leave` and the matching `Recover`, or before a late
//! `Join`) convert into [`CrashWindow`]s that the fault layer already
//! knows how to enforce. Nothing here reads real time or mutable state,
//! so two runs with the same plan see the identical view history.
//!
//! The fabric uses the plan for **epoch fencing**: a message that
//! departs in one view epoch and would arrive in another is refused
//! with the transient [`crate::RequestError::StaleView`] error instead
//! of being delivered across the view change. Retried sends depart in
//! the new epoch and pass. This is the simulated form of the fencing
//! tokens real membership services attach to in-flight requests.

use crate::fault::{mix, CrashWindow};
use std::str::FromStr;

/// What happened to a node at a membership event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewChange {
    /// A node not previously part of the cluster becomes a member. A
    /// node whose first event is a `Join` at `t` is absent during
    /// `[0, t)`.
    Join,
    /// A member departs. `graceful` departures are announced (the node
    /// drained its protocol state first); abrupt ones are
    /// indistinguishable from a crash. Both fence the epoch and open an
    /// absence window; the flag is carried so protocols and benches can
    /// treat announced departures differently.
    Leave {
        /// Whether the departure was announced (drained) or a crash.
        graceful: bool,
    },
    /// A previously departed member returns with its memory intact but
    /// its caches stale — the state-transfer case.
    Recover,
}

/// One scheduled membership event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// The node joining, leaving, or recovering.
    pub node: usize,
    /// Virtual instant of the view change.
    pub at_ns: u64,
    /// The change itself.
    pub change: ViewChange,
}

/// A deterministic schedule of membership churn.
///
/// ```
/// use interconnect::membership::{MembershipPlan, MembershipEvent, ViewChange};
///
/// let plan = MembershipPlan::scripted(1, vec![
///     MembershipEvent { node: 2, at_ns: 5_000_000, change: ViewChange::Leave { graceful: false } },
///     MembershipEvent { node: 2, at_ns: 9_000_000, change: ViewChange::Recover },
/// ]);
/// assert_eq!(plan.epoch_at(4_999_999), 0);
/// assert_eq!(plan.epoch_at(5_000_000), 1);
/// assert_eq!(plan.epoch_at(9_000_000), 2);
/// assert!(plan.down_at(2, 6_000_000));
/// assert!(!plan.down_at(2, 9_000_000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipPlan {
    /// Seed the churn generator drew from (carried for reporting; a
    /// scripted plan keeps whatever seed it was given).
    pub seed: u64,
    /// The events, sorted by `(at_ns, node)`.
    pub events: Vec<MembershipEvent>,
}

impl MembershipPlan {
    /// A plan from explicit events (sorted internally so epoch counting
    /// is well defined regardless of input order).
    pub fn scripted(seed: u64, mut events: Vec<MembershipEvent>) -> Self {
        events.sort_by_key(|e| (e.at_ns, e.node));
        Self { seed, events }
    }

    /// Seeded churn: `cycles` leave/recover pairs spread
    /// deterministically over `[from_ns, until_ns)`. Victims are drawn
    /// from `1..nodes` (node 0 stays up as the stable sponsor every
    /// recovering node can reach), the leave instant from the first 60%
    /// of each cycle's slice, and the recovery from its second half;
    /// every third departure is graceful. Same arguments, same schedule
    /// — always.
    pub fn churn(seed: u64, nodes: usize, from_ns: u64, until_ns: u64, cycles: usize) -> Self {
        assert!(nodes >= 2, "churn needs a victim and a survivor");
        assert!(until_ns > from_ns, "empty churn window");
        let span = until_ns - from_ns;
        let slice = span / cycles.max(1) as u64;
        let mut events = Vec::with_capacity(cycles * 2);
        for c in 0..cycles {
            let base = from_ns + c as u64 * slice;
            let node = 1 + (mix(seed ^ mix(c as u64 ^ 0x6d65_6d62)) as usize) % (nodes - 1);
            let leave_off = mix(seed ^ mix(c as u64 ^ 0x6c76)) % (slice * 6 / 10).max(1);
            let heal_off = mix(seed ^ mix(c as u64 ^ 0x7263)) % (slice * 3 / 10).max(1);
            let leave_ns = base + leave_off;
            let recover_ns = base + slice * 7 / 10 + heal_off;
            events.push(MembershipEvent {
                node,
                at_ns: leave_ns,
                change: ViewChange::Leave { graceful: c % 3 == 2 },
            });
            events.push(MembershipEvent { node, at_ns: recover_ns, change: ViewChange::Recover });
        }
        Self::scripted(seed, events)
    }

    /// Whether the plan schedules anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The view epoch at virtual instant `t_ns`: the number of events
    /// at or before `t_ns`. Pure — two calls with the same argument
    /// always agree, which is what makes epoch fencing deterministic.
    pub fn epoch_at(&self, t_ns: u64) -> u64 {
        // Events are sorted by time; partition_point is the count with
        // at_ns <= t_ns.
        self.events.partition_point(|e| e.at_ns <= t_ns) as u64
    }

    /// The absence windows the plan implies, as [`CrashWindow`]s the
    /// fault layer enforces: `[Leave, Recover)` for every departure
    /// (open-ended if the node never recovers) and `[0, Join)` for a
    /// node whose first event is a join.
    pub fn outages(&self) -> Vec<CrashWindow> {
        let mut out = Vec::new();
        let mut nodes: Vec<usize> = self.events.iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        for node in nodes {
            let mut absent_since: Option<u64> = None;
            let mut first = true;
            for e in self.events.iter().filter(|e| e.node == node) {
                match e.change {
                    ViewChange::Join if first => {
                        out.push(CrashWindow { node, from_ns: 0, until_ns: e.at_ns });
                    }
                    ViewChange::Join | ViewChange::Recover => {
                        if let Some(from_ns) = absent_since.take() {
                            out.push(CrashWindow { node, from_ns, until_ns: e.at_ns });
                        }
                    }
                    ViewChange::Leave { .. } => {
                        if absent_since.is_none() {
                            absent_since = Some(e.at_ns);
                        }
                    }
                }
                first = false;
            }
            if let Some(from_ns) = absent_since {
                out.push(CrashWindow { node, from_ns, until_ns: u64::MAX });
            }
        }
        out
    }

    /// Whether `node` is outside the cluster at instant `t`.
    pub fn down_at(&self, node: usize, t: u64) -> bool {
        self.outages().iter().any(|w| w.node == node && t >= w.from_ns && t < w.until_ns)
    }

    /// Total number of view changes the plan schedules.
    pub fn view_changes(&self) -> u64 {
        self.events.len() as u64
    }
}

/// A compact textual churn spec for configuration files:
/// `seed:cycles:from_ns:until_ns` (e.g. `42:3:6000000:30000000`).
/// Turned into a [`MembershipPlan`] once the node count is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipSpec {
    /// Churn generator seed.
    pub seed: u64,
    /// Number of leave/recover cycles.
    pub cycles: usize,
    /// Start of the churn window (virtual ns).
    pub from_ns: u64,
    /// End of the churn window (virtual ns).
    pub until_ns: u64,
}

impl MembershipSpec {
    /// Instantiate the plan for a cluster of `nodes`.
    pub fn plan(&self, nodes: usize) -> MembershipPlan {
        MembershipPlan::churn(self.seed, nodes, self.from_ns, self.until_ns, self.cycles)
    }
}

impl FromStr for MembershipSpec {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').map(str::trim).collect();
        if parts.len() != 4 {
            return Err(format!("membership spec {s:?}: expected seed:cycles:from_ns:until_ns"));
        }
        let num =
            |p: &str| -> Result<u64, String> { p.parse().map_err(|e| format!("membership spec {s:?}: {e}")) };
        let spec = MembershipSpec {
            seed: num(parts[0])?,
            cycles: num(parts[1])? as usize,
            from_ns: num(parts[2])?,
            until_ns: num(parts[3])?,
        };
        if spec.cycles == 0 {
            return Err(format!("membership spec {s:?}: cycles must be positive"));
        }
        if spec.until_ns <= spec.from_ns {
            return Err(format!("membership spec {s:?}: empty churn window"));
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_count_events() {
        let plan = MembershipPlan::scripted(
            0,
            vec![
                MembershipEvent { node: 1, at_ns: 100, change: ViewChange::Leave { graceful: true } },
                MembershipEvent { node: 1, at_ns: 300, change: ViewChange::Recover },
                MembershipEvent { node: 3, at_ns: 300, change: ViewChange::Leave { graceful: false } },
            ],
        );
        assert_eq!(plan.epoch_at(0), 0);
        assert_eq!(plan.epoch_at(99), 0);
        assert_eq!(plan.epoch_at(100), 1);
        assert_eq!(plan.epoch_at(299), 1);
        assert_eq!(plan.epoch_at(300), 3);
        assert_eq!(plan.epoch_at(u64::MAX), 3);
        assert_eq!(plan.view_changes(), 3);
    }

    #[test]
    fn outages_pair_leave_with_recover() {
        let plan = MembershipPlan::scripted(
            0,
            vec![
                MembershipEvent { node: 2, at_ns: 100, change: ViewChange::Leave { graceful: false } },
                MembershipEvent { node: 2, at_ns: 400, change: ViewChange::Recover },
                MembershipEvent { node: 3, at_ns: 200, change: ViewChange::Leave { graceful: true } },
            ],
        );
        let w = plan.outages();
        assert_eq!(w.len(), 2);
        assert!(w.iter().any(|c| c.node == 2 && c.from_ns == 100 && c.until_ns == 400));
        assert!(w.iter().any(|c| c.node == 3 && c.from_ns == 200 && c.until_ns == u64::MAX));
        assert!(plan.down_at(2, 100) && !plan.down_at(2, 400));
        assert!(plan.down_at(3, u64::MAX - 1));
        assert!(!plan.down_at(0, 150));
    }

    #[test]
    fn late_joiner_is_absent_until_join() {
        let plan = MembershipPlan::scripted(
            0,
            vec![MembershipEvent { node: 4, at_ns: 700, change: ViewChange::Join }],
        );
        assert!(plan.down_at(4, 0) && plan.down_at(4, 699));
        assert!(!plan.down_at(4, 700));
        assert_eq!(plan.epoch_at(700), 1);
    }

    #[test]
    fn churn_is_deterministic_and_bounded() {
        let a = MembershipPlan::churn(42, 8, 6_000_000, 30_000_000, 4);
        let b = MembershipPlan::churn(42, 8, 6_000_000, 30_000_000, 4);
        assert_eq!(a, b, "same arguments must give the same schedule");
        assert_eq!(a.events.len(), 8);
        for e in &a.events {
            assert!(e.node >= 1 && e.node < 8, "node 0 never churns");
            assert!(e.at_ns >= 6_000_000 && e.at_ns < 30_000_000);
        }
        // Every leave heals within the window.
        for w in a.outages() {
            assert!(w.until_ns < 30_000_000);
        }
        let c = MembershipPlan::churn(43, 8, 6_000_000, 30_000_000, 4);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn spec_parses_and_instantiates() {
        let spec: MembershipSpec = "42:3:6000000:30000000".parse().unwrap();
        assert_eq!(spec, MembershipSpec { seed: 42, cycles: 3, from_ns: 6_000_000, until_ns: 30_000_000 });
        let plan = spec.plan(4);
        assert_eq!(plan.events.len(), 6);
        assert!("42:3:6000000".parse::<MembershipSpec>().is_err());
        assert!("42:0:1:2".parse::<MembershipSpec>().is_err());
        assert!("42:1:5:5".parse::<MembershipSpec>().is_err());
        assert!("x:1:1:2".parse::<MembershipSpec>().is_err());
    }
}
