//! Property-based tests for the virtual-time substrate.

use proptest::prelude::*;
use sim::{Bus, LinkCost, Server, VirtualClock};

proptest! {
    #[test]
    fn clock_is_monotone_under_any_op_sequence(
        ops in proptest::collection::vec((any::<bool>(), 0u64..1_000_000), 1..200)
    ) {
        let c = VirtualClock::new();
        let mut last = 0;
        for (advance, amount) in ops {
            let now = if advance { c.advance(amount) } else { c.advance_to(amount) };
            prop_assert!(now >= last, "clock went backwards: {now} < {last}");
            last = now;
        }
    }

    #[test]
    fn server_intervals_never_overlap(
        reqs in proptest::collection::vec((0u64..1_000_000, 1u64..10_000), 1..100)
    ) {
        let s = Server::new();
        let mut intervals: Vec<(u64, u64)> =
            reqs.iter().map(|&(arrive, service)| s.serve(arrive, service)).collect();
        intervals.sort();
        for w in intervals.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "service intervals overlap: {w:?}");
        }
    }

    #[test]
    fn server_never_starts_before_arrival(
        reqs in proptest::collection::vec((0u64..1_000_000, 1u64..10_000), 1..100)
    ) {
        let s = Server::new();
        for (arrive, service) in reqs {
            let (start, end) = s.serve(arrive, service);
            prop_assert!(start >= arrive);
            prop_assert_eq!(end - start, service);
        }
    }

    #[test]
    fn bus_never_beats_line_rate(
        transfers in proptest::collection::vec((0u64..100_000_000, 1u64..5_000_000), 1..50),
        bw in 1_000_000u64..2_000_000_000,
    ) {
        let b = Bus::with_bandwidth(bw);
        for (arrive, bytes) in transfers {
            let done = b.transfer(arrive, bytes);
            let base = b.duration(bytes);
            prop_assert!(done >= arrive + base,
                "transfer finished faster than the line rate allows");
        }
    }

    #[test]
    fn bus_contention_bounded_by_demand(
        n in 1usize..8,
        bytes in 100_000u64..1_000_000,
    ) {
        // n identical overlapping streams: the slowest completion must
        // lie between 1× and (n+1)× the uncontended duration.
        let b = Bus::with_bandwidth(100_000_000);
        let base = b.duration(bytes);
        let mut worst = 0;
        for _ in 0..n {
            worst = worst.max(b.transfer(0, bytes));
        }
        prop_assert!(worst >= base);
        prop_assert!(worst <= base * (n as u64 + 1),
            "slowdown {worst} exceeds aggregate demand bound");
    }

    #[test]
    fn link_cost_is_additive_in_bytes(
        a in 0u64..1_000_000, c in 0u64..1_000_000,
    ) {
        let link = LinkCost::fast_ethernet();
        let sum = link.transfer_ns(a) + link.transfer_ns(c);
        let joint = link.transfer_ns(a + c);
        // Integer division may lose at most 1 ns per term.
        prop_assert!(joint >= sum.saturating_sub(2) && joint <= sum + 2);
    }

    #[test]
    fn concurrent_clock_advances_sum_exactly(
        amounts in proptest::collection::vec(1u64..1000, 2..16)
    ) {
        let c = VirtualClock::new();
        std::thread::scope(|s| {
            for &a in &amounts {
                let c = &c;
                s.spawn(move || c.advance(a));
            }
        });
        prop_assert_eq!(c.now(), amounts.iter().sum::<u64>());
    }
}

proptest! {
    #[test]
    fn bus_completion_is_monotone_in_bytes(
        arrive in 0u64..10_000_000,
        a in 1u64..1_000_000,
        b in 1u64..1_000_000,
    ) {
        // Within one bus, transferring more bytes from the same instant
        // never completes earlier (fresh bus per comparison).
        let (small, large) = (a.min(b), a.max(b));
        let b1 = Bus::with_bandwidth(100_000_000);
        let t_small = b1.transfer(arrive, small);
        let b2 = Bus::with_bandwidth(100_000_000);
        let t_large = b2.transfer(arrive, large);
        prop_assert!(t_large >= t_small);
    }

    #[test]
    fn clock_advance_returns_new_time(amounts in proptest::collection::vec(1u64..1_000, 1..50)) {
        let c = VirtualClock::new();
        let mut expect = 0;
        for a in amounts {
            expect += a;
            prop_assert_eq!(c.advance(a), expect);
        }
    }
}
