//! Named atomic counters: the substrate of HAMSTER's performance
//! monitoring (paper §4.3).
//!
//! Each HAMSTER management module owns a [`StatSet`]; the module exposes
//! query/reset services on top of it. Counters are independent of the base
//! architecture: the modules increment them in software regardless of what
//! the platform provides.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One monotonically increasing statistic.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// A named set of counters belonging to one module.
///
/// The set is fixed at construction: modules declare their statistics up
/// front so that lookups on the hot path are an index, not a hash.
#[derive(Debug, Clone)]
pub struct StatSet {
    names: Arc<Vec<&'static str>>,
    counters: Arc<Vec<Counter>>,
}

impl StatSet {
    /// Build a set with the given counter names. Names must be unique.
    pub fn new(names: &[&'static str]) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for n in names {
            assert!(seen.insert(*n), "duplicate counter name {n:?}");
        }
        Self {
            names: Arc::new(names.to_vec()),
            counters: Arc::new(names.iter().map(|_| Counter::new()).collect()),
        }
    }

    /// Number of counters in the set.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the set has no counters.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Index of a named counter, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| *n == name)
    }

    /// Counter at a known index (hot path).
    #[inline]
    pub fn at(&self, idx: usize) -> &Counter {
        &self.counters[idx]
    }

    /// Add `n` to the named counter. Panics on unknown names: statistics
    /// are declared at module construction, so an unknown name is a bug.
    pub fn add(&self, name: &str, n: u64) {
        let idx = self
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown counter {name:?}"));
        self.counters[idx].add(n);
    }

    /// Read the named counter.
    pub fn get(&self, name: &str) -> u64 {
        let idx = self
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown counter {name:?}"));
        self.counters[idx].get()
    }

    /// Snapshot all counters as a name → value map (the module's
    /// query-statistics service).
    pub fn snapshot(&self) -> BTreeMap<&'static str, u64> {
        self.names
            .iter()
            .zip(self.counters.iter())
            .map(|(n, c)| (*n, c.get()))
            .collect()
    }

    /// Reset every counter to zero (the module's reset service).
    pub fn reset_all(&self) {
        for c in self.counters.iter() {
            c.reset();
        }
    }
}

/// Number of log2 buckets in a [`Histogram`]: bucket `i` holds samples
/// whose value has `i` significant bits (bucket 0 is the value 0), so
/// the full `u64` range is covered.
const HIST_BUCKETS: usize = 65;

/// A lock-free latency histogram with logarithmic (power-of-two)
/// buckets, built for virtual-nanosecond samples on protocol hot paths.
///
/// Like [`StatSet`], clones share the underlying storage, so a module
/// can hand a cheap handle to its monitor while continuing to record.
/// Quantiles are approximate: a reported quantile is the *upper bound*
/// of the bucket containing it (within 2× of the true value), which is
/// plenty for "is p99 lock wait milliseconds or microseconds" questions.
/// The exact maximum recorded sample is tracked separately.
///
/// ```
/// use sim::stats::Histogram;
/// let h = Histogram::new();
/// for v in [100, 200, 300, 4000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// let q = h.quantiles();
/// assert_eq!(q.max, 4000);
/// assert!(q.p50 >= 200 && q.p50 < 512);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Arc<Vec<Counter>>,
    /// Exact running maximum (atomic max via compare-and-swap).
    max: Arc<AtomicU64>,
    /// Sum of all samples, for mean computation.
    sum: Arc<AtomicU64>,
}

/// Summary quantiles reported by [`Histogram::quantiles`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Quantiles {
    /// Number of recorded samples.
    pub count: u64,
    /// Median (upper bucket bound).
    pub p50: u64,
    /// 90th percentile (upper bucket bound).
    pub p90: u64,
    /// 99th percentile (upper bucket bound).
    pub p99: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Mean sample (sum / count, integer division).
    pub mean: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Arc::new((0..HIST_BUCKETS).map(|_| Counter::new()).collect()),
            max: Arc::new(AtomicU64::new(0)),
            sum: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Bucket index for a sample: its number of significant bits.
    #[inline]
    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Upper bound of bucket `i` (the largest value it can hold).
    fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket(v)].add(1);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|c| c.get()).sum()
    }

    /// Compute summary quantiles over everything recorded so far.
    pub fn quantiles(&self) -> Quantiles {
        let counts: Vec<u64> = self.buckets.iter().map(|c| c.get()).collect();
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return Quantiles::default();
        }
        // Rank of quantile q (1-based): ceil(q * count), i.e. the
        // smallest rank whose cumulative share reaches q.
        let rank = |num: u64, den: u64| count.saturating_mul(num).div_ceil(den).max(1);
        let at = |target_rank: u64| {
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target_rank {
                    return Self::bucket_bound(i);
                }
            }
            Self::bucket_bound(HIST_BUCKETS - 1)
        };
        let max = self.max.load(Ordering::Relaxed);
        Quantiles {
            count,
            p50: at(rank(50, 100)).min(max),
            p90: at(rank(90, 100)).min(max),
            p99: at(rank(99, 100)).min(max),
            max,
            mean: self.sum.load(Ordering::Relaxed) / count,
        }
    }

    /// Reset all buckets and the maximum to zero.
    pub fn reset(&self) {
        for c in self.buckets.iter() {
            c.reset();
        }
        self.max.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_get_reset() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn statset_named_access() {
        let s = StatSet::new(&["page_faults", "diffs_sent"]);
        s.add("page_faults", 3);
        s.add("diffs_sent", 1);
        assert_eq!(s.get("page_faults"), 3);
        assert_eq!(s.get("diffs_sent"), 1);
    }

    #[test]
    fn snapshot_and_reset() {
        let s = StatSet::new(&["a", "b"]);
        s.add("a", 2);
        let snap = s.snapshot();
        assert_eq!(snap["a"], 2);
        assert_eq!(snap["b"], 0);
        s.reset_all();
        assert_eq!(s.get("a"), 0);
    }

    #[test]
    #[should_panic(expected = "unknown counter")]
    fn unknown_name_panics() {
        let s = StatSet::new(&["a"]);
        s.add("nope", 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_rejected() {
        let _ = StatSet::new(&["a", "a"]);
    }

    #[test]
    fn clone_shares_counters() {
        let s = StatSet::new(&["a"]);
        let t = s.clone();
        s.add("a", 1);
        assert_eq!(t.get("a"), 1);
    }

    #[test]
    fn histogram_empty_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantiles(), Quantiles::default());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_single_sample() {
        let h = Histogram::new();
        h.record(1000);
        let q = h.quantiles();
        assert_eq!(q.count, 1);
        assert_eq!(q.max, 1000);
        assert_eq!(q.mean, 1000);
        // Every quantile falls in the sample's bucket (512..=1023),
        // clamped to the exact max.
        assert_eq!(q.p50, 1000);
        assert_eq!(q.p99, 1000);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bound_true_values() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let q = h.quantiles();
        assert_eq!(q.count, 1000);
        assert_eq!(q.max, 1000);
        assert!(q.p50 <= q.p90 && q.p90 <= q.p99 && q.p99 <= q.max);
        // Upper bucket bounds: within 2x above the true quantile.
        assert!(q.p50 >= 500 && q.p50 < 1024, "p50 = {}", q.p50);
        assert!(q.p99 >= 990, "p99 = {}", q.p99);
    }

    #[test]
    fn histogram_zero_and_reset() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        let q = h.quantiles();
        assert_eq!((q.count, q.p50, q.max), (2, 0, 0));
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantiles().max, 0);
    }

    #[test]
    fn histogram_clone_shares_storage() {
        let h = Histogram::new();
        let g = h.clone();
        h.record(7);
        assert_eq!(g.count(), 1);
        assert_eq!(g.quantiles().max, 7);
    }

    #[test]
    fn concurrent_increments_are_counted() {
        let s = StatSet::new(&["hits"]);
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let s = s.clone();
                sc.spawn(move || {
                    for _ in 0..1000 {
                        s.add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(s.get("hits"), 4000);
    }
}
