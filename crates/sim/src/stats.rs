//! Named atomic counters: the substrate of HAMSTER's performance
//! monitoring (paper §4.3).
//!
//! Each HAMSTER management module owns a [`StatSet`]; the module exposes
//! query/reset services on top of it. Counters are independent of the base
//! architecture: the modules increment them in software regardless of what
//! the platform provides.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One monotonically increasing statistic.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// A named set of counters belonging to one module.
///
/// The set is fixed at construction: modules declare their statistics up
/// front so that lookups on the hot path are an index, not a hash.
#[derive(Debug, Clone)]
pub struct StatSet {
    names: Arc<Vec<&'static str>>,
    counters: Arc<Vec<Counter>>,
}

impl StatSet {
    /// Build a set with the given counter names. Names must be unique.
    pub fn new(names: &[&'static str]) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for n in names {
            assert!(seen.insert(*n), "duplicate counter name {n:?}");
        }
        Self {
            names: Arc::new(names.to_vec()),
            counters: Arc::new(names.iter().map(|_| Counter::new()).collect()),
        }
    }

    /// Number of counters in the set.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the set has no counters.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Index of a named counter, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| *n == name)
    }

    /// Counter at a known index (hot path).
    #[inline]
    pub fn at(&self, idx: usize) -> &Counter {
        &self.counters[idx]
    }

    /// Add `n` to the named counter. Panics on unknown names: statistics
    /// are declared at module construction, so an unknown name is a bug.
    pub fn add(&self, name: &str, n: u64) {
        let idx = self
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown counter {name:?}"));
        self.counters[idx].add(n);
    }

    /// Read the named counter.
    pub fn get(&self, name: &str) -> u64 {
        let idx = self
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown counter {name:?}"));
        self.counters[idx].get()
    }

    /// Snapshot all counters as a name → value map (the module's
    /// query-statistics service).
    pub fn snapshot(&self) -> BTreeMap<&'static str, u64> {
        self.names
            .iter()
            .zip(self.counters.iter())
            .map(|(n, c)| (*n, c.get()))
            .collect()
    }

    /// Reset every counter to zero (the module's reset service).
    pub fn reset_all(&self) {
        for c in self.counters.iter() {
            c.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_get_reset() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn statset_named_access() {
        let s = StatSet::new(&["page_faults", "diffs_sent"]);
        s.add("page_faults", 3);
        s.add("diffs_sent", 1);
        assert_eq!(s.get("page_faults"), 3);
        assert_eq!(s.get("diffs_sent"), 1);
    }

    #[test]
    fn snapshot_and_reset() {
        let s = StatSet::new(&["a", "b"]);
        s.add("a", 2);
        let snap = s.snapshot();
        assert_eq!(snap["a"], 2);
        assert_eq!(snap["b"], 0);
        s.reset_all();
        assert_eq!(s.get("a"), 0);
    }

    #[test]
    #[should_panic(expected = "unknown counter")]
    fn unknown_name_panics() {
        let s = StatSet::new(&["a"]);
        s.add("nope", 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_rejected() {
        let _ = StatSet::new(&["a", "a"]);
    }

    #[test]
    fn clone_shares_counters() {
        let s = StatSet::new(&["a"]);
        let t = s.clone();
        s.add("a", 1);
        assert_eq!(t.get("a"), 1);
    }

    #[test]
    fn concurrent_increments_are_counted() {
        let s = StatSet::new(&["hits"]);
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let s = s.clone();
                sc.spawn(move || {
                    for _ in 0..1000 {
                        s.add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(s.get("hits"), 4000);
    }
}
