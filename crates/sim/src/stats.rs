//! Named atomic counters: the substrate of HAMSTER's performance
//! monitoring (paper §4.3).
//!
//! Each HAMSTER management module owns a [`StatSet`]; the module exposes
//! query/reset services on top of it. Counters are independent of the base
//! architecture: the modules increment them in software regardless of what
//! the platform provides.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One monotonically increasing statistic.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// A named set of counters belonging to one module.
///
/// The set is fixed at construction: modules declare their statistics up
/// front so that lookups on the hot path are an index, not a hash.
#[derive(Debug, Clone)]
pub struct StatSet {
    names: Arc<Vec<&'static str>>,
    counters: Arc<Vec<Counter>>,
}

impl StatSet {
    /// Build a set with the given counter names. Names must be unique.
    pub fn new(names: &[&'static str]) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for n in names {
            assert!(seen.insert(*n), "duplicate counter name {n:?}");
        }
        Self {
            names: Arc::new(names.to_vec()),
            counters: Arc::new(names.iter().map(|_| Counter::new()).collect()),
        }
    }

    /// Number of counters in the set.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the set has no counters.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Index of a named counter, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| *n == name)
    }

    /// Counter at a known index (hot path).
    #[inline]
    pub fn at(&self, idx: usize) -> &Counter {
        &self.counters[idx]
    }

    /// Add `n` to the named counter. Panics on unknown names: statistics
    /// are declared at module construction, so an unknown name is a bug.
    pub fn add(&self, name: &str, n: u64) {
        let idx = self
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown counter {name:?}"));
        self.counters[idx].add(n);
    }

    /// Read the named counter.
    pub fn get(&self, name: &str) -> u64 {
        let idx = self
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown counter {name:?}"));
        self.counters[idx].get()
    }

    /// Snapshot all counters as a name → value map (the module's
    /// query-statistics service).
    pub fn snapshot(&self) -> BTreeMap<&'static str, u64> {
        self.names
            .iter()
            .zip(self.counters.iter())
            .map(|(n, c)| (*n, c.get()))
            .collect()
    }

    /// Reset every counter to zero (the module's reset service).
    pub fn reset_all(&self) {
        for c in self.counters.iter() {
            c.reset();
        }
    }
}

/// Number of log2 buckets in a [`Histogram`]: bucket `i` holds samples
/// whose value has `i` significant bits (bucket 0 is the value 0), so
/// the full `u64` range is covered.
const HIST_BUCKETS: usize = 65;

/// A lock-free latency histogram with logarithmic (power-of-two)
/// buckets, built for virtual-nanosecond samples on protocol hot paths.
///
/// Like [`StatSet`], clones share the underlying storage, so a module
/// can hand a cheap handle to its monitor while continuing to record.
/// Quantiles are approximate: a reported quantile is the *upper bound*
/// of the bucket containing it (within 2× of the true value), which is
/// plenty for "is p99 lock wait milliseconds or microseconds" questions.
/// The exact maximum recorded sample is tracked separately.
///
/// ```
/// use sim::stats::Histogram;
/// let h = Histogram::new();
/// for v in [100, 200, 300, 4000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// let q = h.quantiles();
/// assert_eq!(q.max, 4000);
/// assert!(q.p50 >= 200 && q.p50 < 512);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Arc<Vec<Counter>>,
    /// Exact running maximum (atomic max via compare-and-swap).
    max: Arc<AtomicU64>,
    /// Sum of all samples, for mean computation.
    sum: Arc<AtomicU64>,
}

/// Summary quantiles reported by [`Histogram::quantiles`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Quantiles {
    /// Number of recorded samples.
    pub count: u64,
    /// Median (upper bucket bound).
    pub p50: u64,
    /// 90th percentile (upper bucket bound).
    pub p90: u64,
    /// 99th percentile (upper bucket bound).
    pub p99: u64,
    /// 99.9th percentile (upper bucket bound).
    pub p999: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Mean sample (sum / count, integer division).
    pub mean: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Arc::new((0..HIST_BUCKETS).map(|_| Counter::new()).collect()),
            max: Arc::new(AtomicU64::new(0)),
            sum: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Bucket index for a sample: its number of significant bits.
    #[inline]
    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Upper bound of bucket `i` (the largest value it can hold).
    fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket(v)].add(1);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|c| c.get()).sum()
    }

    /// Compute summary quantiles over everything recorded so far.
    pub fn quantiles(&self) -> Quantiles {
        let counts: Vec<u64> = self.buckets.iter().map(|c| c.get()).collect();
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return Quantiles::default();
        }
        // Rank of quantile q (1-based): ceil(q * count), i.e. the
        // smallest rank whose cumulative share reaches q.
        let rank = |num: u64, den: u64| count.saturating_mul(num).div_ceil(den).max(1);
        let at = |target_rank: u64| {
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target_rank {
                    return Self::bucket_bound(i);
                }
            }
            Self::bucket_bound(HIST_BUCKETS - 1)
        };
        let max = self.max.load(Ordering::Relaxed);
        Quantiles {
            count,
            p50: at(rank(50, 100)).min(max),
            p90: at(rank(90, 100)).min(max),
            p99: at(rank(99, 100)).min(max),
            p999: at(rank(999, 1000)).min(max),
            max,
            mean: self.sum.load(Ordering::Relaxed) / count,
        }
    }

    /// Reset all buckets and the maximum to zero.
    pub fn reset(&self) {
        for c in self.buckets.iter() {
            c.reset();
        }
        self.max.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Precision bits of a [`Sketch`]: each power-of-two octave is split
/// into `2^SKETCH_PRECISION` sub-buckets, bounding the relative error
/// of a reported quantile by `2^-SKETCH_PRECISION` (~3%).
const SKETCH_PRECISION: u32 = 5;

/// Sub-buckets per octave (`2^SKETCH_PRECISION`).
const SKETCH_SUB: u64 = 1 << SKETCH_PRECISION;

/// Total bucket count: values below `SKETCH_SUB` get exact unit
/// buckets; each of the remaining 59 octaves gets `SKETCH_SUB`
/// sub-buckets (the top index for `u64::MAX` is `59 * 32 + 31`).
const SKETCH_BUCKETS: usize = 60 * SKETCH_SUB as usize;

/// A deterministic streaming quantile sketch: a log-linear (HDR-style)
/// fixed-bucket histogram for request-latency SLO telemetry.
///
/// Where [`Histogram`] answers order-of-magnitude questions with
/// power-of-two buckets (quantiles within 2×), `Sketch` splits every
/// octave into 32 sub-buckets, so a reported p50/p90/p99/p999 is the
/// exact upper bound of a bucket within ~3% of the true sample. All
/// state is integer bucket counts; recording is commutative
/// (bucket-wise addition), so the same multiset of samples yields
/// byte-identical quantiles regardless of arrival order or thread
/// interleaving — the property the serve bench's byte-reproducible
/// artifacts rely on.
///
/// Clones share the underlying storage, like [`StatSet`] and
/// [`Histogram`].
///
/// ```
/// use sim::stats::Sketch;
/// let s = Sketch::new();
/// for v in 1..=1000u64 {
///     s.record(v);
/// }
/// let q = s.quantiles();
/// assert_eq!(q.count, 1000);
/// assert_eq!(q.max, 1000);
/// // Log-linear buckets: within ~3% above the true quantile.
/// assert!(q.p50 >= 500 && q.p50 <= 516, "p50 = {}", q.p50);
/// assert!(q.p99 >= 990 && q.p99 <= 1000, "p99 = {}", q.p99);
/// ```
#[derive(Debug, Clone)]
pub struct Sketch {
    buckets: Arc<Vec<Counter>>,
    /// Exact running maximum.
    max: Arc<AtomicU64>,
    /// Sum of all samples, for mean computation.
    sum: Arc<AtomicU64>,
}

impl Default for Sketch {
    fn default() -> Self {
        Self::new()
    }
}

impl Sketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self {
            buckets: Arc::new((0..SKETCH_BUCKETS).map(|_| Counter::new()).collect()),
            max: Arc::new(AtomicU64::new(0)),
            sum: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Bucket index for a sample: exact below `SKETCH_SUB`, then
    /// `(msb - 4) * 32 + 5-bit-mantissa` (log-linear).
    #[inline]
    fn bucket(v: u64) -> usize {
        if v < SKETCH_SUB {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros(); // >= SKETCH_PRECISION here
        let shift = msb - SKETCH_PRECISION;
        let mantissa = (v >> shift) & (SKETCH_SUB - 1);
        ((msb - SKETCH_PRECISION + 1) as u64 * SKETCH_SUB + mantissa) as usize
    }

    /// Upper bound of bucket `i` (the largest value it can hold).
    fn bucket_bound(i: usize) -> u64 {
        let i = i as u64;
        if i < SKETCH_SUB {
            return i;
        }
        let msb = (i / SKETCH_SUB) as u32 + SKETCH_PRECISION - 1;
        let mantissa = i % SKETCH_SUB;
        let shift = msb - SKETCH_PRECISION;
        let bound = (1u128 << msb) + ((mantissa as u128 + 1) << shift) - 1;
        bound.min(u64::MAX as u128) as u64
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket(v)].add(1);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|c| c.get()).sum()
    }

    /// Fold another sketch's buckets into this one (bucket-wise
    /// addition — commutative, so merge order never shows in the
    /// resulting quantiles).
    pub fn merge(&self, other: &Sketch) {
        for (b, o) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = o.get();
            if n > 0 {
                b.add(n);
            }
        }
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Compute summary quantiles over everything recorded so far.
    /// Reported values are exact bucket upper bounds clamped to the
    /// exact maximum, so they are byte-stable across reorderings.
    pub fn quantiles(&self) -> Quantiles {
        let counts: Vec<u64> = self.buckets.iter().map(|c| c.get()).collect();
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return Quantiles::default();
        }
        let rank = |num: u64, den: u64| count.saturating_mul(num).div_ceil(den).max(1);
        let at = |target_rank: u64| {
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target_rank {
                    return Self::bucket_bound(i);
                }
            }
            Self::bucket_bound(SKETCH_BUCKETS - 1)
        };
        let max = self.max.load(Ordering::Relaxed);
        Quantiles {
            count,
            p50: at(rank(50, 100)).min(max),
            p90: at(rank(90, 100)).min(max),
            p99: at(rank(99, 100)).min(max),
            p999: at(rank(999, 1000)).min(max),
            max,
            mean: self.sum.load(Ordering::Relaxed) / count,
        }
    }

    /// Reset all buckets, the sum, and the maximum to zero.
    pub fn reset(&self) {
        for c in self.buckets.iter() {
            c.reset();
        }
        self.max.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// How a [`MetricsSeries`] metric is folded into windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Per-window sum of deltas (throughput, retries, fences): the
    /// reported value for window `w` is the sum of all deltas whose
    /// timestamp falls in `w`.
    Rate,
    /// Running level sampled at window close (inflight requests):
    /// deltas are `+1`/`-1` events and the reported value for window
    /// `w` is the prefix sum of every delta up to the end of `w`.
    Level,
}

/// Handle to one registered [`MetricsSeries`] metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

/// One metric's resolved timeseries, as returned by
/// [`MetricsSeries::rows`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsRow {
    /// Registered metric name.
    pub name: String,
    /// How the per-window values were folded.
    pub kind: MetricKind,
    /// One value per window, resolved per [`MetricKind`] and padded
    /// with trailing windows so every row has the same length.
    pub values: Vec<i64>,
}

#[derive(Debug)]
struct MetricData {
    name: String,
    kind: MetricKind,
    /// Per-window delta sums (raw; resolved per kind at read time).
    deltas: Vec<i64>,
}

/// A virtual-time metrics timeseries: registered counters/gauges
/// snapshotted into fixed-width virtual-time windows.
///
/// Events are attributed to window `t_ns / window_ns`; within a window
/// only the delta *sum* is kept, and addition commutes, so the series
/// is byte-reproducible for any thread interleaving that delivers the
/// same (timestamp, delta) multiset — the same determinism argument as
/// [`Sketch`]. All values are integers; no wall-clock sampling is
/// involved anywhere.
///
/// Clones share the underlying storage.
///
/// ```
/// use sim::stats::{MetricKind, MetricsSeries};
/// let m = MetricsSeries::new(1_000_000); // 1 ms windows
/// let ops = m.register("ops", MetricKind::Rate);
/// let inflight = m.register("inflight", MetricKind::Level);
/// m.add(ops, 100, 1);
/// m.add(inflight, 100, 1);
/// m.add(ops, 1_500_000, 1);
/// m.add(inflight, 1_500_000, -1);
/// let rows = m.rows();
/// assert_eq!(rows[0].values, vec![1, 1]); // one op per window
/// assert_eq!(rows[1].values, vec![1, 0]); // level at window close
/// ```
#[derive(Debug, Clone)]
pub struct MetricsSeries {
    window_ns: u64,
    metrics: Arc<std::sync::Mutex<Vec<MetricData>>>,
}

impl MetricsSeries {
    /// A series with the given virtual-time window width (must be
    /// non-zero).
    pub fn new(window_ns: u64) -> Self {
        assert!(window_ns > 0, "window width must be non-zero");
        Self { window_ns, metrics: Arc::new(std::sync::Mutex::new(Vec::new())) }
    }

    /// The window width in virtual nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Register a metric. Names should be unique; registration order
    /// fixes the order of [`MetricsSeries::rows`].
    pub fn register(&self, name: &str, kind: MetricKind) -> MetricId {
        let mut m = self.metrics.lock().unwrap();
        assert!(m.iter().all(|d| d.name != name), "duplicate metric name {name:?}");
        m.push(MetricData { name: name.to_string(), kind, deltas: Vec::new() });
        MetricId(m.len() - 1)
    }

    /// Record a delta for `id` at virtual time `t_ns`.
    pub fn add(&self, id: MetricId, t_ns: u64, delta: i64) {
        let w = (t_ns / self.window_ns) as usize;
        let mut m = self.metrics.lock().unwrap();
        let d = &mut m[id.0].deltas;
        if d.len() <= w {
            d.resize(w + 1, 0);
        }
        d[w] += delta;
    }

    /// Number of windows the series spans (the latest window any
    /// metric touched, plus one; zero when nothing was recorded).
    pub fn windows(&self) -> usize {
        self.metrics.lock().unwrap().iter().map(|d| d.deltas.len()).max().unwrap_or(0)
    }

    /// Resolve every metric into a same-length per-window series, in
    /// registration order (deterministic).
    pub fn rows(&self) -> Vec<MetricsRow> {
        let m = self.metrics.lock().unwrap();
        let windows = m.iter().map(|d| d.deltas.len()).max().unwrap_or(0);
        m.iter()
            .map(|d| {
                let mut level = 0i64;
                let values = (0..windows)
                    .map(|w| {
                        let delta = d.deltas.get(w).copied().unwrap_or(0);
                        level += delta;
                        match d.kind {
                            MetricKind::Rate => delta,
                            MetricKind::Level => level,
                        }
                    })
                    .collect();
                MetricsRow { name: d.name.clone(), kind: d.kind, values }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_get_reset() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn statset_named_access() {
        let s = StatSet::new(&["page_faults", "diffs_sent"]);
        s.add("page_faults", 3);
        s.add("diffs_sent", 1);
        assert_eq!(s.get("page_faults"), 3);
        assert_eq!(s.get("diffs_sent"), 1);
    }

    #[test]
    fn snapshot_and_reset() {
        let s = StatSet::new(&["a", "b"]);
        s.add("a", 2);
        let snap = s.snapshot();
        assert_eq!(snap["a"], 2);
        assert_eq!(snap["b"], 0);
        s.reset_all();
        assert_eq!(s.get("a"), 0);
    }

    #[test]
    #[should_panic(expected = "unknown counter")]
    fn unknown_name_panics() {
        let s = StatSet::new(&["a"]);
        s.add("nope", 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_rejected() {
        let _ = StatSet::new(&["a", "a"]);
    }

    #[test]
    fn clone_shares_counters() {
        let s = StatSet::new(&["a"]);
        let t = s.clone();
        s.add("a", 1);
        assert_eq!(t.get("a"), 1);
    }

    #[test]
    fn histogram_empty_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantiles(), Quantiles::default());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_single_sample() {
        let h = Histogram::new();
        h.record(1000);
        let q = h.quantiles();
        assert_eq!(q.count, 1);
        assert_eq!(q.max, 1000);
        assert_eq!(q.mean, 1000);
        // Every quantile falls in the sample's bucket (512..=1023),
        // clamped to the exact max.
        assert_eq!(q.p50, 1000);
        assert_eq!(q.p99, 1000);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bound_true_values() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let q = h.quantiles();
        assert_eq!(q.count, 1000);
        assert_eq!(q.max, 1000);
        assert!(q.p50 <= q.p90 && q.p90 <= q.p99 && q.p99 <= q.max);
        // Upper bucket bounds: within 2x above the true quantile.
        assert!(q.p50 >= 500 && q.p50 < 1024, "p50 = {}", q.p50);
        assert!(q.p99 >= 990, "p99 = {}", q.p99);
    }

    #[test]
    fn histogram_zero_and_reset() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        let q = h.quantiles();
        assert_eq!((q.count, q.p50, q.max), (2, 0, 0));
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantiles().max, 0);
    }

    #[test]
    fn histogram_clone_shares_storage() {
        let h = Histogram::new();
        let g = h.clone();
        h.record(7);
        assert_eq!(g.count(), 1);
        assert_eq!(g.quantiles().max, 7);
    }

    #[test]
    fn histogram_p999_is_ordered_and_reaches_the_tail() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let q = h.quantiles();
        assert!(q.p99 <= q.p999 && q.p999 <= q.max);
        assert!(q.p999 >= 9_990, "p999 = {}", q.p999);
    }

    #[test]
    fn sketch_buckets_are_monotonic_and_bounds_contain_samples() {
        // Every representative value lands in a bucket whose bound is
        // >= the value, and bucket indices never decrease with v.
        let mut vals: Vec<u64> = (0..64u32)
            .flat_map(|s| [0u64, 1, 3].map(|off| (1u64 << s).saturating_add(off)))
            .collect();
        vals.sort_unstable();
        let mut prev = 0usize;
        for v in vals {
            let b = Sketch::bucket(v);
            assert!(b >= prev, "bucket({v}) = {b} < {prev}");
            let bound = Sketch::bucket_bound(b);
            assert!(bound >= v, "bound(bucket({v})) = {bound} too small");
            // Log-linear precision: the bound overshoots the sample by
            // at most one sub-bucket, i.e. a factor of 1 + 2/32.
            assert!(bound as u128 * 32 <= v as u128 * 34 + 32, "bound({v}) = {bound}");
            prev = b;
        }
        assert_eq!(Sketch::bucket(u64::MAX), SKETCH_BUCKETS - 1);
        assert_eq!(Sketch::bucket_bound(SKETCH_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn sketch_small_values_are_exact() {
        let s = Sketch::new();
        for v in 0..SKETCH_SUB {
            s.record(v);
        }
        // Rank-16 sample of 0..=31 is the value 15, reported exactly.
        assert_eq!(s.quantiles().p50, SKETCH_SUB / 2 - 1);
        assert_eq!(s.quantiles().max, SKETCH_SUB - 1);
    }

    #[test]
    fn sketch_quantiles_are_order_independent() {
        let a = Sketch::new();
        let b = Sketch::new();
        let vals: Vec<u64> = (0..5000u64).map(|i| (i * 2654435761) % 1_000_000).collect();
        for v in &vals {
            a.record(*v);
        }
        for v in vals.iter().rev() {
            b.record(*v);
        }
        assert_eq!(a.quantiles(), b.quantiles());
    }

    #[test]
    fn sketch_merge_equals_recording_everything_in_one() {
        let all = Sketch::new();
        let left = Sketch::new();
        let right = Sketch::new();
        for v in 1..=1000u64 {
            all.record(v * 7);
            if v % 2 == 0 { left.record(v * 7) } else { right.record(v * 7) }
        }
        let merged = Sketch::new();
        merged.merge(&left);
        merged.merge(&right);
        assert_eq!(merged.quantiles(), all.quantiles());
    }

    #[test]
    fn sketch_reset_and_shared_clone() {
        let s = Sketch::new();
        let t = s.clone();
        s.record(123);
        assert_eq!(t.count(), 1);
        t.reset();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantiles(), Quantiles::default());
    }

    #[test]
    fn metrics_series_rate_and_level_resolution() {
        let m = MetricsSeries::new(1000);
        let ops = m.register("ops", MetricKind::Rate);
        let inflight = m.register("inflight", MetricKind::Level);
        m.add(ops, 0, 1);
        m.add(ops, 999, 1);
        m.add(ops, 2500, 1);
        m.add(inflight, 0, 1);
        m.add(inflight, 500, 1);
        m.add(inflight, 2500, -1);
        let rows = m.rows();
        assert_eq!(m.windows(), 3);
        assert_eq!(rows[0].name, "ops");
        assert_eq!(rows[0].values, vec![2, 0, 1]);
        assert_eq!(rows[1].values, vec![2, 2, 1]);
    }

    #[test]
    fn metrics_series_is_order_independent_and_shared() {
        let m = MetricsSeries::new(100);
        let id = m.register("r", MetricKind::Rate);
        let n = m.clone();
        n.add(id, 950, 3);
        m.add(id, 10, 1);
        m.add(id, 950, 2);
        assert_eq!(m.rows()[0].values, vec![1, 0, 0, 0, 0, 0, 0, 0, 0, 5]);
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn metrics_series_duplicate_names_rejected() {
        let m = MetricsSeries::new(10);
        m.register("x", MetricKind::Rate);
        m.register("x", MetricKind::Level);
    }

    #[test]
    fn concurrent_increments_are_counted() {
        let s = StatSet::new(&["hits"]);
        std::thread::scope(|sc| {
            for _ in 0..4 {
                let s = s.clone();
                sc.spawn(move || {
                    for _ in 0..1000 {
                        s.add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(s.get("hits"), 4000);
    }
}
