//! A minimal recursive-descent JSON reader.
//!
//! The harness runs fully offline (no serde), yet several layers need to
//! read JSON back: `hamster-core` validates exported Chrome traces, the
//! analyzer validates its own `BENCH_analysis.json` report, and tests
//! spot-check benchmark artifacts. This module is the one shared parser;
//! it lives in `sim` because `sim` is the crate every layer already
//! depends on. Numbers are kept as `f64` (ample for validation).
//!
//! ```
//! use sim::json;
//! let v = json::parse("{\"makespan_ns\": 1500, \"lanes\": [\"net\"]}").unwrap();
//! let obj = v.as_object().unwrap();
//! assert_eq!(obj.get("makespan_ns").and_then(|n| n.as_num()), Some(1500.0));
//! assert_eq!(obj.get("lanes").unwrap().as_array().unwrap().len(), 1);
//! ```

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The member map if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The items if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// True when the value is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Num(_))
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Parse a complete JSON document (trailing data is an error).
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut pos = 0;
    let v = value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Value::Str(string(b, pos)?)),
        Some(b't') => literal(b, pos, "true", Value::Bool(true)),
        Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
        Some(b'n') => literal(b, pos, "null", Value::Null),
        Some(_) => number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        map.insert(key, value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        *pos += 4;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c => {
                // Re-assemble multi-byte UTF-8 sequences.
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let start = *pos - 1;
                    let len = match c {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = b.get(start..start + len).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                    *pos = start + len;
                }
            }
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_escapes() {
        let v = parse("{\"a\\n\": [1, -2.5e2, \"\\u0041ß\", true, null]}").unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj.get("a\n").unwrap().as_array().unwrap();
        assert_eq!(arr[2].as_str(), Some("Aß"));
        assert!(arr[1].is_number());
        assert_eq!(arr[1].as_num(), Some(-250.0));
        assert_eq!(arr[3], Value::Bool(true));
        assert_eq!(arr[4], Value::Null);
    }

    #[test]
    fn get_navigates_objects() {
        let v = parse("{\"outer\": {\"inner\": 3}}").unwrap();
        assert_eq!(v.get("outer").and_then(|o| o.get("inner")).and_then(|n| n.as_num()), Some(3.0));
        assert!(v.get("missing").is_none());
        assert!(parse("3").unwrap().get("x").is_none());
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} junk").is_err());
        assert!(parse("\"open").is_err());
    }
}
